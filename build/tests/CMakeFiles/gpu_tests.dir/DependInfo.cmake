
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/gpu/cost_model_test.cpp" "tests/CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cpp.o.d"
  "/root/repo/tests/gpu/executor_test.cpp" "tests/CMakeFiles/gpu_tests.dir/gpu/executor_test.cpp.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/executor_test.cpp.o.d"
  "/root/repo/tests/gpu/memory_test.cpp" "tests/CMakeFiles/gpu_tests.dir/gpu/memory_test.cpp.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/memory_test.cpp.o.d"
  "/root/repo/tests/gpu/profiler_test.cpp" "tests/CMakeFiles/gpu_tests.dir/gpu/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/profiler_test.cpp.o.d"
  "/root/repo/tests/gpu/sim_gpu_test.cpp" "tests/CMakeFiles/gpu_tests.dir/gpu/sim_gpu_test.cpp.o" "gcc" "tests/CMakeFiles/gpu_tests.dir/gpu/sim_gpu_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
