file(REMOVE_RECURSE
  "CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/cost_model_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/executor_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/executor_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/memory_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/memory_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/profiler_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/profiler_test.cpp.o.d"
  "CMakeFiles/gpu_tests.dir/gpu/sim_gpu_test.cpp.o"
  "CMakeFiles/gpu_tests.dir/gpu/sim_gpu_test.cpp.o.d"
  "gpu_tests"
  "gpu_tests.pdb"
  "gpu_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
