
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sac/interp_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/interp_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/interp_test.cpp.o.d"
  "/root/repo/tests/sac/lexer_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/lexer_test.cpp.o.d"
  "/root/repo/tests/sac/parser_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/parser_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/parser_test.cpp.o.d"
  "/root/repo/tests/sac/printer_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/printer_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/printer_test.cpp.o.d"
  "/root/repo/tests/sac/typecheck_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/typecheck_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/typecheck_test.cpp.o.d"
  "/root/repo/tests/sac/value_test.cpp" "tests/CMakeFiles/sac_frontend_tests.dir/sac/value_test.cpp.o" "gcc" "tests/CMakeFiles/sac_frontend_tests.dir/sac/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
