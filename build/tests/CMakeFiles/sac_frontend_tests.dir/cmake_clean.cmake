file(REMOVE_RECURSE
  "CMakeFiles/sac_frontend_tests.dir/sac/interp_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/interp_test.cpp.o.d"
  "CMakeFiles/sac_frontend_tests.dir/sac/lexer_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/lexer_test.cpp.o.d"
  "CMakeFiles/sac_frontend_tests.dir/sac/parser_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/parser_test.cpp.o.d"
  "CMakeFiles/sac_frontend_tests.dir/sac/printer_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/printer_test.cpp.o.d"
  "CMakeFiles/sac_frontend_tests.dir/sac/typecheck_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/typecheck_test.cpp.o.d"
  "CMakeFiles/sac_frontend_tests.dir/sac/value_test.cpp.o"
  "CMakeFiles/sac_frontend_tests.dir/sac/value_test.cpp.o.d"
  "sac_frontend_tests"
  "sac_frontend_tests.pdb"
  "sac_frontend_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sac_frontend_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
