# Empty compiler generated dependencies file for sac_frontend_tests.
# This may be replaced when dependencies are built.
