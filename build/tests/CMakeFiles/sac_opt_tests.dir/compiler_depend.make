# Empty compiler generated dependencies file for sac_opt_tests.
# This may be replaced when dependencies are built.
