file(REMOVE_RECURSE
  "CMakeFiles/sac_opt_tests.dir/sac/affine_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/affine_test.cpp.o.d"
  "CMakeFiles/sac_opt_tests.dir/sac/fold_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/fold_test.cpp.o.d"
  "CMakeFiles/sac_opt_tests.dir/sac/simplifier_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/simplifier_test.cpp.o.d"
  "CMakeFiles/sac_opt_tests.dir/sac/specialize_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/specialize_test.cpp.o.d"
  "CMakeFiles/sac_opt_tests.dir/sac/stdlib_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/stdlib_test.cpp.o.d"
  "CMakeFiles/sac_opt_tests.dir/sac/wlf_test.cpp.o"
  "CMakeFiles/sac_opt_tests.dir/sac/wlf_test.cpp.o.d"
  "sac_opt_tests"
  "sac_opt_tests.pdb"
  "sac_opt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sac_opt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
