
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/fmt_test.cpp" "tests/CMakeFiles/core_tests.dir/core/fmt_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/fmt_test.cpp.o.d"
  "/root/repo/tests/core/matrix_test.cpp" "tests/CMakeFiles/core_tests.dir/core/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/matrix_test.cpp.o.d"
  "/root/repo/tests/core/ndarray_test.cpp" "tests/CMakeFiles/core_tests.dir/core/ndarray_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/ndarray_test.cpp.o.d"
  "/root/repo/tests/core/shape_test.cpp" "tests/CMakeFiles/core_tests.dir/core/shape_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/shape_test.cpp.o.d"
  "/root/repo/tests/core/tiler_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tiler_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tiler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
