# Empty compiler generated dependencies file for gaspard_tests.
# This may be replaced when dependencies are built.
