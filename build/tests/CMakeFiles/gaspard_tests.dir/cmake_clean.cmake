file(REMOVE_RECURSE
  "CMakeFiles/gaspard_tests.dir/gaspard/chain_test.cpp.o"
  "CMakeFiles/gaspard_tests.dir/gaspard/chain_test.cpp.o.d"
  "gaspard_tests"
  "gaspard_tests.pdb"
  "gaspard_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaspard_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
