file(REMOVE_RECURSE
  "CMakeFiles/arrayol_tests.dir/arrayol/hierarchy_test.cpp.o"
  "CMakeFiles/arrayol_tests.dir/arrayol/hierarchy_test.cpp.o.d"
  "CMakeFiles/arrayol_tests.dir/arrayol/model_test.cpp.o"
  "CMakeFiles/arrayol_tests.dir/arrayol/model_test.cpp.o.d"
  "arrayol_tests"
  "arrayol_tests.pdb"
  "arrayol_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrayol_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
