# Empty compiler generated dependencies file for arrayol_tests.
# This may be replaced when dependencies are built.
