
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/properties/cost_model_property_test.cpp" "tests/CMakeFiles/property_tests.dir/properties/cost_model_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/properties/cost_model_property_test.cpp.o.d"
  "/root/repo/tests/properties/downscaler_property_test.cpp" "tests/CMakeFiles/property_tests.dir/properties/downscaler_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/properties/downscaler_property_test.cpp.o.d"
  "/root/repo/tests/properties/roundtrip_property_test.cpp" "tests/CMakeFiles/property_tests.dir/properties/roundtrip_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/properties/roundtrip_property_test.cpp.o.d"
  "/root/repo/tests/properties/tiler_property_test.cpp" "tests/CMakeFiles/property_tests.dir/properties/tiler_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/properties/tiler_property_test.cpp.o.d"
  "/root/repo/tests/properties/wlf_property_test.cpp" "tests/CMakeFiles/property_tests.dir/properties/wlf_property_test.cpp.o" "gcc" "tests/CMakeFiles/property_tests.dir/properties/wlf_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/saclo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gaspard/CMakeFiles/saclo_gaspard.dir/DependInfo.cmake"
  "/root/repo/build/src/arrayol/CMakeFiles/saclo_arrayol.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
