file(REMOVE_RECURSE
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/codegen_golden_test.cpp.o"
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/codegen_golden_test.cpp.o.d"
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/program_test.cpp.o"
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/program_test.cpp.o.d"
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/tape_test.cpp.o"
  "CMakeFiles/sac_cuda_tests.dir/sac_cuda/tape_test.cpp.o.d"
  "sac_cuda_tests"
  "sac_cuda_tests.pdb"
  "sac_cuda_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sac_cuda_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
