# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/gpu_tests[1]_include.cmake")
include("/root/repo/build/tests/sac_frontend_tests[1]_include.cmake")
include("/root/repo/build/tests/arrayol_tests[1]_include.cmake")
include("/root/repo/build/tests/gaspard_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/sac_cuda_tests[1]_include.cmake")
include("/root/repo/build/tests/sac_opt_tests[1]_include.cmake")
