file(REMOVE_RECURSE
  "CMakeFiles/saclo_apps.dir/downscaler/arrayol_model.cpp.o"
  "CMakeFiles/saclo_apps.dir/downscaler/arrayol_model.cpp.o.d"
  "CMakeFiles/saclo_apps.dir/downscaler/config.cpp.o"
  "CMakeFiles/saclo_apps.dir/downscaler/config.cpp.o.d"
  "CMakeFiles/saclo_apps.dir/downscaler/frames.cpp.o"
  "CMakeFiles/saclo_apps.dir/downscaler/frames.cpp.o.d"
  "CMakeFiles/saclo_apps.dir/downscaler/pipelines.cpp.o"
  "CMakeFiles/saclo_apps.dir/downscaler/pipelines.cpp.o.d"
  "CMakeFiles/saclo_apps.dir/downscaler/sac_source.cpp.o"
  "CMakeFiles/saclo_apps.dir/downscaler/sac_source.cpp.o.d"
  "libsaclo_apps.a"
  "libsaclo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
