# Empty compiler generated dependencies file for saclo_apps.
# This may be replaced when dependencies are built.
