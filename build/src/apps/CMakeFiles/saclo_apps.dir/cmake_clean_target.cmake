file(REMOVE_RECURSE
  "libsaclo_apps.a"
)
