file(REMOVE_RECURSE
  "libsaclo_arrayol.a"
)
