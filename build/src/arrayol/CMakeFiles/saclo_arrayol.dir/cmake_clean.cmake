file(REMOVE_RECURSE
  "CMakeFiles/saclo_arrayol.dir/hierarchy.cpp.o"
  "CMakeFiles/saclo_arrayol.dir/hierarchy.cpp.o.d"
  "CMakeFiles/saclo_arrayol.dir/model.cpp.o"
  "CMakeFiles/saclo_arrayol.dir/model.cpp.o.d"
  "libsaclo_arrayol.a"
  "libsaclo_arrayol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_arrayol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
