# Empty dependencies file for saclo_arrayol.
# This may be replaced when dependencies are built.
