
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arrayol/hierarchy.cpp" "src/arrayol/CMakeFiles/saclo_arrayol.dir/hierarchy.cpp.o" "gcc" "src/arrayol/CMakeFiles/saclo_arrayol.dir/hierarchy.cpp.o.d"
  "/root/repo/src/arrayol/model.cpp" "src/arrayol/CMakeFiles/saclo_arrayol.dir/model.cpp.o" "gcc" "src/arrayol/CMakeFiles/saclo_arrayol.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
