file(REMOVE_RECURSE
  "CMakeFiles/saclo_core.dir/fmt.cpp.o"
  "CMakeFiles/saclo_core.dir/fmt.cpp.o.d"
  "CMakeFiles/saclo_core.dir/matrix.cpp.o"
  "CMakeFiles/saclo_core.dir/matrix.cpp.o.d"
  "CMakeFiles/saclo_core.dir/shape.cpp.o"
  "CMakeFiles/saclo_core.dir/shape.cpp.o.d"
  "CMakeFiles/saclo_core.dir/tiler.cpp.o"
  "CMakeFiles/saclo_core.dir/tiler.cpp.o.d"
  "libsaclo_core.a"
  "libsaclo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
