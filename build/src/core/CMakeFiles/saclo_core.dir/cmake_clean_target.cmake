file(REMOVE_RECURSE
  "libsaclo_core.a"
)
