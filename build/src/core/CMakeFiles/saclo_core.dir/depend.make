# Empty dependencies file for saclo_core.
# This may be replaced when dependencies are built.
