
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fmt.cpp" "src/core/CMakeFiles/saclo_core.dir/fmt.cpp.o" "gcc" "src/core/CMakeFiles/saclo_core.dir/fmt.cpp.o.d"
  "/root/repo/src/core/matrix.cpp" "src/core/CMakeFiles/saclo_core.dir/matrix.cpp.o" "gcc" "src/core/CMakeFiles/saclo_core.dir/matrix.cpp.o.d"
  "/root/repo/src/core/shape.cpp" "src/core/CMakeFiles/saclo_core.dir/shape.cpp.o" "gcc" "src/core/CMakeFiles/saclo_core.dir/shape.cpp.o.d"
  "/root/repo/src/core/tiler.cpp" "src/core/CMakeFiles/saclo_core.dir/tiler.cpp.o" "gcc" "src/core/CMakeFiles/saclo_core.dir/tiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
