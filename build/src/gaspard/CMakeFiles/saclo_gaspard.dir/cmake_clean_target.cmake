file(REMOVE_RECURSE
  "libsaclo_gaspard.a"
)
