file(REMOVE_RECURSE
  "CMakeFiles/saclo_gaspard.dir/chain.cpp.o"
  "CMakeFiles/saclo_gaspard.dir/chain.cpp.o.d"
  "libsaclo_gaspard.a"
  "libsaclo_gaspard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_gaspard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
