# Empty compiler generated dependencies file for saclo_gaspard.
# This may be replaced when dependencies are built.
