
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gaspard/chain.cpp" "src/gaspard/CMakeFiles/saclo_gaspard.dir/chain.cpp.o" "gcc" "src/gaspard/CMakeFiles/saclo_gaspard.dir/chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arrayol/CMakeFiles/saclo_arrayol.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
