file(REMOVE_RECURSE
  "CMakeFiles/saclo_sac.dir/affine.cpp.o"
  "CMakeFiles/saclo_sac.dir/affine.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/ast.cpp.o"
  "CMakeFiles/saclo_sac.dir/ast.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/builtins.cpp.o"
  "CMakeFiles/saclo_sac.dir/builtins.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/interp.cpp.o"
  "CMakeFiles/saclo_sac.dir/interp.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/lexer.cpp.o"
  "CMakeFiles/saclo_sac.dir/lexer.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/parser.cpp.o"
  "CMakeFiles/saclo_sac.dir/parser.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/pipeline.cpp.o"
  "CMakeFiles/saclo_sac.dir/pipeline.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/printer.cpp.o"
  "CMakeFiles/saclo_sac.dir/printer.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/specialize.cpp.o"
  "CMakeFiles/saclo_sac.dir/specialize.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/stdlib.cpp.o"
  "CMakeFiles/saclo_sac.dir/stdlib.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/typecheck.cpp.o"
  "CMakeFiles/saclo_sac.dir/typecheck.cpp.o.d"
  "CMakeFiles/saclo_sac.dir/wlf.cpp.o"
  "CMakeFiles/saclo_sac.dir/wlf.cpp.o.d"
  "libsaclo_sac.a"
  "libsaclo_sac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_sac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
