file(REMOVE_RECURSE
  "libsaclo_sac.a"
)
