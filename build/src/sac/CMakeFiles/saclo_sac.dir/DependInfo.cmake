
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sac/affine.cpp" "src/sac/CMakeFiles/saclo_sac.dir/affine.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/affine.cpp.o.d"
  "/root/repo/src/sac/ast.cpp" "src/sac/CMakeFiles/saclo_sac.dir/ast.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/ast.cpp.o.d"
  "/root/repo/src/sac/builtins.cpp" "src/sac/CMakeFiles/saclo_sac.dir/builtins.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/builtins.cpp.o.d"
  "/root/repo/src/sac/interp.cpp" "src/sac/CMakeFiles/saclo_sac.dir/interp.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/interp.cpp.o.d"
  "/root/repo/src/sac/lexer.cpp" "src/sac/CMakeFiles/saclo_sac.dir/lexer.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/lexer.cpp.o.d"
  "/root/repo/src/sac/parser.cpp" "src/sac/CMakeFiles/saclo_sac.dir/parser.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/parser.cpp.o.d"
  "/root/repo/src/sac/pipeline.cpp" "src/sac/CMakeFiles/saclo_sac.dir/pipeline.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/pipeline.cpp.o.d"
  "/root/repo/src/sac/printer.cpp" "src/sac/CMakeFiles/saclo_sac.dir/printer.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/printer.cpp.o.d"
  "/root/repo/src/sac/specialize.cpp" "src/sac/CMakeFiles/saclo_sac.dir/specialize.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/specialize.cpp.o.d"
  "/root/repo/src/sac/stdlib.cpp" "src/sac/CMakeFiles/saclo_sac.dir/stdlib.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/stdlib.cpp.o.d"
  "/root/repo/src/sac/typecheck.cpp" "src/sac/CMakeFiles/saclo_sac.dir/typecheck.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/typecheck.cpp.o.d"
  "/root/repo/src/sac/wlf.cpp" "src/sac/CMakeFiles/saclo_sac.dir/wlf.cpp.o" "gcc" "src/sac/CMakeFiles/saclo_sac.dir/wlf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
