# Empty compiler generated dependencies file for saclo_sac.
# This may be replaced when dependencies are built.
