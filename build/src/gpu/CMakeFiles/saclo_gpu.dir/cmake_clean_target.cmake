file(REMOVE_RECURSE
  "libsaclo_gpu.a"
)
