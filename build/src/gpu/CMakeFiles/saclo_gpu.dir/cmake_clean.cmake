file(REMOVE_RECURSE
  "CMakeFiles/saclo_gpu.dir/cost_model.cpp.o"
  "CMakeFiles/saclo_gpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/saclo_gpu.dir/device.cpp.o"
  "CMakeFiles/saclo_gpu.dir/device.cpp.o.d"
  "CMakeFiles/saclo_gpu.dir/executor.cpp.o"
  "CMakeFiles/saclo_gpu.dir/executor.cpp.o.d"
  "CMakeFiles/saclo_gpu.dir/memory.cpp.o"
  "CMakeFiles/saclo_gpu.dir/memory.cpp.o.d"
  "CMakeFiles/saclo_gpu.dir/profiler.cpp.o"
  "CMakeFiles/saclo_gpu.dir/profiler.cpp.o.d"
  "CMakeFiles/saclo_gpu.dir/sim_gpu.cpp.o"
  "CMakeFiles/saclo_gpu.dir/sim_gpu.cpp.o.d"
  "libsaclo_gpu.a"
  "libsaclo_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
