# Empty dependencies file for saclo_gpu.
# This may be replaced when dependencies are built.
