
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cost_model.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/cost_model.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/device.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/device.cpp.o.d"
  "/root/repo/src/gpu/executor.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/executor.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/executor.cpp.o.d"
  "/root/repo/src/gpu/memory.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/memory.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/memory.cpp.o.d"
  "/root/repo/src/gpu/profiler.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/profiler.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/profiler.cpp.o.d"
  "/root/repo/src/gpu/sim_gpu.cpp" "src/gpu/CMakeFiles/saclo_gpu.dir/sim_gpu.cpp.o" "gcc" "src/gpu/CMakeFiles/saclo_gpu.dir/sim_gpu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
