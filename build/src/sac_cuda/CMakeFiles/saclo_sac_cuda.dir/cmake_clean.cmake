file(REMOVE_RECURSE
  "CMakeFiles/saclo_sac_cuda.dir/codegen_text.cpp.o"
  "CMakeFiles/saclo_sac_cuda.dir/codegen_text.cpp.o.d"
  "CMakeFiles/saclo_sac_cuda.dir/program.cpp.o"
  "CMakeFiles/saclo_sac_cuda.dir/program.cpp.o.d"
  "CMakeFiles/saclo_sac_cuda.dir/tape.cpp.o"
  "CMakeFiles/saclo_sac_cuda.dir/tape.cpp.o.d"
  "libsaclo_sac_cuda.a"
  "libsaclo_sac_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo_sac_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
