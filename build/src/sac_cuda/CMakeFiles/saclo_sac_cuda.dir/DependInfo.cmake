
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sac_cuda/codegen_text.cpp" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/codegen_text.cpp.o" "gcc" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/codegen_text.cpp.o.d"
  "/root/repo/src/sac_cuda/program.cpp" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/program.cpp.o" "gcc" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/program.cpp.o.d"
  "/root/repo/src/sac_cuda/tape.cpp" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/tape.cpp.o" "gcc" "src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/tape.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
