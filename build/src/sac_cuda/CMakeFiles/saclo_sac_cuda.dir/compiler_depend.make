# Empty compiler generated dependencies file for saclo_sac_cuda.
# This may be replaced when dependencies are built.
