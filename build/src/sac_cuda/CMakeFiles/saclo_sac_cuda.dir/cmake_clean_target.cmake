file(REMOVE_RECURSE
  "libsaclo_sac_cuda.a"
)
