# Empty compiler generated dependencies file for saclo-sacc.
# This may be replaced when dependencies are built.
