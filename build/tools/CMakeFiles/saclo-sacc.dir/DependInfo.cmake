
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/saclo_sacc.cpp" "tools/CMakeFiles/saclo-sacc.dir/saclo_sacc.cpp.o" "gcc" "tools/CMakeFiles/saclo-sacc.dir/saclo_sacc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
