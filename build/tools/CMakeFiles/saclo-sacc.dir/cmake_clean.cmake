file(REMOVE_RECURSE
  "CMakeFiles/saclo-sacc.dir/saclo_sacc.cpp.o"
  "CMakeFiles/saclo-sacc.dir/saclo_sacc.cpp.o.d"
  "saclo-sacc"
  "saclo-sacc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo-sacc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
