# Empty dependencies file for saclo-gaspard.
# This may be replaced when dependencies are built.
