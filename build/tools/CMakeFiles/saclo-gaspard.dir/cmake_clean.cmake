file(REMOVE_RECURSE
  "CMakeFiles/saclo-gaspard.dir/saclo_gaspard.cpp.o"
  "CMakeFiles/saclo-gaspard.dir/saclo_gaspard.cpp.o.d"
  "saclo-gaspard"
  "saclo-gaspard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/saclo-gaspard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
