
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_sac.cpp" "bench/CMakeFiles/bench_table2_sac.dir/table2_sac.cpp.o" "gcc" "bench/CMakeFiles/bench_table2_sac.dir/table2_sac.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/saclo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/sac_cuda/CMakeFiles/saclo_sac_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/sac/CMakeFiles/saclo_sac.dir/DependInfo.cmake"
  "/root/repo/build/src/gaspard/CMakeFiles/saclo_gaspard.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/saclo_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/arrayol/CMakeFiles/saclo_arrayol.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/saclo_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
