file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_sac.dir/table2_sac.cpp.o"
  "CMakeFiles/bench_table2_sac.dir/table2_sac.cpp.o.d"
  "bench_table2_sac"
  "bench_table2_sac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_sac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
