# Empty dependencies file for bench_fig9_sac_filters.
# This may be replaced when dependencies are built.
