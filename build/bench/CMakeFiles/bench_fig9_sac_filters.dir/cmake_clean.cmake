file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sac_filters.dir/fig9_sac_filters.cpp.o"
  "CMakeFiles/bench_fig9_sac_filters.dir/fig9_sac_filters.cpp.o.d"
  "bench_fig9_sac_filters"
  "bench_fig9_sac_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sac_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
