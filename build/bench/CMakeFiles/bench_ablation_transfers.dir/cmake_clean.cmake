file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_transfers.dir/ablation_transfers.cpp.o"
  "CMakeFiles/bench_ablation_transfers.dir/ablation_transfers.cpp.o.d"
  "bench_ablation_transfers"
  "bench_ablation_transfers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transfers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
