# Empty dependencies file for bench_ablation_transfers.
# This may be replaced when dependencies are built.
