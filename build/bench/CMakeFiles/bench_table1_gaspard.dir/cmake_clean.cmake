file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gaspard.dir/table1_gaspard.cpp.o"
  "CMakeFiles/bench_table1_gaspard.dir/table1_gaspard.cpp.o.d"
  "bench_table1_gaspard"
  "bench_table1_gaspard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gaspard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
