file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_wlf.dir/ablation_wlf.cpp.o"
  "CMakeFiles/bench_ablation_wlf.dir/ablation_wlf.cpp.o.d"
  "bench_ablation_wlf"
  "bench_ablation_wlf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wlf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
