# Empty compiler generated dependencies file for bench_ablation_wlf.
# This may be replaced when dependencies are built.
