# Empty dependencies file for bench_fig12_comparison.
# This may be replaced when dependencies are built.
