# Empty dependencies file for example_tiler_playground.
# This may be replaced when dependencies are built.
