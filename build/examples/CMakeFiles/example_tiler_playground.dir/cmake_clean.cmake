file(REMOVE_RECURSE
  "CMakeFiles/example_tiler_playground.dir/tiler_playground.cpp.o"
  "CMakeFiles/example_tiler_playground.dir/tiler_playground.cpp.o.d"
  "example_tiler_playground"
  "example_tiler_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tiler_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
