file(REMOVE_RECURSE
  "CMakeFiles/example_downscaler_gaspard.dir/downscaler_gaspard.cpp.o"
  "CMakeFiles/example_downscaler_gaspard.dir/downscaler_gaspard.cpp.o.d"
  "example_downscaler_gaspard"
  "example_downscaler_gaspard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_downscaler_gaspard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
