# Empty compiler generated dependencies file for example_downscaler_gaspard.
# This may be replaced when dependencies are built.
