# Empty compiler generated dependencies file for example_matmul.
# This may be replaced when dependencies are built.
