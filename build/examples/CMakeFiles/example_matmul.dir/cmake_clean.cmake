file(REMOVE_RECURSE
  "CMakeFiles/example_matmul.dir/matmul.cpp.o"
  "CMakeFiles/example_matmul.dir/matmul.cpp.o.d"
  "example_matmul"
  "example_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
