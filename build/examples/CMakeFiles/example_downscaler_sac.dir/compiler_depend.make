# Empty compiler generated dependencies file for example_downscaler_sac.
# This may be replaced when dependencies are built.
