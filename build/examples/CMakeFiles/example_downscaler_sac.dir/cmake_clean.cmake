file(REMOVE_RECURSE
  "CMakeFiles/example_downscaler_sac.dir/downscaler_sac.cpp.o"
  "CMakeFiles/example_downscaler_sac.dir/downscaler_sac.cpp.o.d"
  "example_downscaler_sac"
  "example_downscaler_sac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_downscaler_sac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
