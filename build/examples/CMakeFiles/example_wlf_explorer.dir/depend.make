# Empty dependencies file for example_wlf_explorer.
# This may be replaced when dependencies are built.
