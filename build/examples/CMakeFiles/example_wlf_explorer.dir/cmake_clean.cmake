file(REMOVE_RECURSE
  "CMakeFiles/example_wlf_explorer.dir/wlf_explorer.cpp.o"
  "CMakeFiles/example_wlf_explorer.dir/wlf_explorer.cpp.o.d"
  "example_wlf_explorer"
  "example_wlf_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wlf_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
