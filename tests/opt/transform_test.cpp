#include "opt/transform.hpp"

#include <gtest/gtest.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"

namespace saclo::opt {
namespace {

using apps::DownscalerConfig;

std::map<std::string, IntArray> downscaler_inputs(const aol::Model& model) {
  std::map<std::string, IntArray> inputs;
  for (const std::string& in : model.inputs()) {
    const Shape& shape = model.array_shape(in);
    inputs.emplace(in, IntArray::generate(shape, [&](const Index& idx) {
      std::int64_t v = 17;
      for (std::int64_t d : idx) v = v * 31 + d;
      return (v % 251) + static_cast<std::int64_t>(in.size());
    }));
  }
  return inputs;
}

/// The semantic equivalence every accepted rewrite must satisfy: same
/// model outputs, element for element.
void expect_same_outputs(const aol::Model& before, const aol::Model& after) {
  const auto inputs = downscaler_inputs(before);
  const auto ref = aol::evaluate(before, inputs);
  const auto got = aol::evaluate(after, inputs);
  ASSERT_EQ(before.outputs(), after.outputs());
  for (const std::string& out : before.outputs()) {
    EXPECT_EQ(ref.at(out), got.at(out)) << "output '" << out << "' diverged";
  }
}

/// A rank-1 copy chain with block-aligned tilers: in -> mid -> out.
/// The consumer reads `blocks` whole producer patterns per instance
/// (origin `skew` shifts it off block boundaries when nonzero).
aol::Model copy_chain(std::int64_t n, std::int64_t p, std::int64_t blocks, std::int64_t skew) {
  aol::Model m("CopyChain");
  m.add_array("in", Shape{n});
  m.add_array("mid", Shape{n});
  m.add_array("out", Shape{n});
  m.mark_input("in");
  m.mark_output("out");

  aol::ElementaryOp copy_op;
  copy_op.name = "copy";
  copy_op.compute = [](std::span<const std::int64_t> in, std::span<std::int64_t> out) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = in[i] + 1;
  };
  copy_op.flops_per_invocation = 1;
  copy_op.c_body = "/* copy */";

  aol::RepetitiveTask producer;
  producer.name = "producer";
  producer.repetition = Shape{n / p};
  producer.inputs.push_back({{"in", Shape{n}}, Shape{p}, {{0}, IntMat{{1}}, IntMat{{p}}}});
  producer.outputs.push_back({{"mid", Shape{n}}, Shape{p}, {{0}, IntMat{{1}}, IntMat{{p}}}});
  producer.op = copy_op;
  m.add_task(std::move(producer));

  const std::int64_t chunk = blocks * p;
  aol::RepetitiveTask consumer;
  consumer.name = "consumer";
  consumer.repetition = Shape{n / chunk};
  // Pattern {blocks, p}: the block structure is a pattern dimension of
  // its own, so a whole-instance read is affine per coordinate.
  consumer.inputs.push_back(
      {{"mid", Shape{n}}, Shape{blocks, p}, {{skew}, IntMat{{p, 1}}, IntMat{{chunk}}}});
  consumer.outputs.push_back(
      {{"out", Shape{n}}, Shape{chunk}, {{0}, IntMat{{1}}, IntMat{{chunk}}}});
  consumer.op = copy_op;
  m.add_task(std::move(consumer));

  m.validate();
  return m;
}

TEST(PavingChange, PreservesEvaluationOnDownscaler) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  const RewriteResult r = try_change_paving(model, "yvf", 1, 3);
  ASSERT_TRUE(r.legality.ok) << r.legality.reason;
  expect_same_outputs(model, *r.model);
  // The repetition shrank; the patterns grew a leading split dimension.
  const aol::RepetitiveTask& vf = r.model->tasks()[1];
  EXPECT_EQ(vf.repetition, (Shape{2, 4}));
  EXPECT_EQ(vf.inputs[0].pattern, (Shape{3, 13}));
  EXPECT_EQ(vf.outputs[0].pattern, (Shape{3, 4}));
}

TEST(PavingChange, PreservesEvaluationOnEveryLegalFactor) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  for (const std::string task : {"yhf", "yvf"}) {
    const Shape rep = task == "yhf" ? DownscalerConfig::tiny().h_repetition()
                                    : DownscalerConfig::tiny().v_repetition();
    for (std::size_t d = 0; d < rep.rank(); ++d) {
      for (std::int64_t k = 2; k <= rep[d]; ++k) {
        if (rep[d] % k != 0) continue;
        const RewriteResult r = try_change_paving(model, task, d, k);
        ASSERT_TRUE(r.legality.ok)
            << task << " dim " << d << " factor " << k << ": " << r.legality.reason;
        expect_same_outputs(model, *r.model);
      }
    }
  }
}

TEST(PavingChange, RejectsNonDividingFactor) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  const RewriteResult r = try_change_paving(model, "yvf", 1, 5);
  ASSERT_FALSE(r.legality.ok);
  EXPECT_NE(r.legality.reason.find("does not divide"), std::string::npos) << r.legality.reason;
  EXPECT_FALSE(r.model.has_value());
}

TEST(PavingChange, RejectsUnknownTaskAndBadDimension) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  EXPECT_FALSE(try_change_paving(model, "nope", 0, 2).legality.ok);
  const RewriteResult r = try_change_paving(model, "yvf", 7, 2);
  ASSERT_FALSE(r.legality.ok);
  EXPECT_NE(r.legality.reason.find("no dimension"), std::string::npos);
}

TEST(Fusion, DirectDownscalerFusionIsIllegal) {
  // The vertical filter reads columns of `mid` produced 3-at-a-time by
  // the horizontal filter: without a paving change the pattern slot
  // depends on the repetition index, which fusion must detect.
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  const RewriteResult r = try_fuse(model, "mid_y");
  ASSERT_FALSE(r.legality.ok);
  EXPECT_NE(r.legality.reason.find("incompatible paving/fitting"), std::string::npos)
      << r.legality.reason;
}

TEST(Fusion, LegalAfterEnablingPavingChange) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  const RewriteResult pv = try_change_paving(model, "yvf", 1, 3);
  ASSERT_TRUE(pv.legality.ok) << pv.legality.reason;
  const RewriteResult fz = try_fuse(*pv.model, "mid_y");
  ASSERT_TRUE(fz.legality.ok) << fz.legality.reason;
  ASSERT_EQ(fz.model->tasks().size(), 1u);
  EXPECT_EQ(fz.model->arrays().count("mid_y"), 0u);
  // Fused geometry: 13 producer instances of 11 pixels each feed one
  // consumer instance.
  const aol::RepetitiveTask& fused = fz.model->tasks()[0];
  EXPECT_EQ(fused.name, "yhf_yvf");
  EXPECT_EQ(fused.inputs[0].pattern, (Shape{13, 11}));
  expect_same_outputs(model, *fz.model);
}

TEST(Fusion, RejectsModelInputAndOutputArrays) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  const RewriteResult in = try_fuse(model, "frame_y");
  ASSERT_FALSE(in.legality.ok);
  EXPECT_NE(in.legality.reason.find("model input"), std::string::npos);
  const RewriteResult out = try_fuse(model, "out_y");
  ASSERT_FALSE(out.legality.ok);
  EXPECT_NE(out.legality.reason.find("model output"), std::string::npos);
  EXPECT_FALSE(try_fuse(model, "no_such_array").legality.ok);
}

TEST(Fusion, AlignedCopyChainFusesAndMisalignedDoesNot) {
  const aol::Model aligned = copy_chain(96, 4, 3, 0);
  const RewriteResult ok = try_fuse(aligned, "mid");
  ASSERT_TRUE(ok.legality.ok) << ok.legality.reason;
  ASSERT_EQ(ok.model->tasks().size(), 1u);
  expect_same_outputs(aligned, *ok.model);

  // A skewed consumer reads across producer-pattern boundaries; the
  // exhaustive check must refuse.
  const aol::Model skewed = copy_chain(96, 4, 3, 1);
  const RewriteResult bad = try_fuse(skewed, "mid");
  ASSERT_FALSE(bad.legality.ok);
  EXPECT_NE(bad.legality.reason.find("incompatible paving/fitting"), std::string::npos)
      << bad.legality.reason;
}

TEST(Fusion, RejectsMultiConsumerIntermediate) {
  aol::Model m = copy_chain(32, 4, 2, 0);
  // Second consumer of `mid`.
  aol::RepetitiveTask extra = m.tasks()[1];
  extra.name = "consumer2";
  m.add_array("out2", Shape{32});
  m.mark_output("out2");
  extra.outputs[0].port.name = "out2";
  m.add_task(std::move(extra));
  m.validate();
  const RewriteResult r = try_fuse(m, "mid");
  ASSERT_FALSE(r.legality.ok);
  EXPECT_NE(r.legality.reason.find("consumed through 2 ports"), std::string::npos)
      << r.legality.reason;
}

TEST(Merge, IndependentChannelsMerge) {
  const aol::Model model = apps::build_downscaler_model(DownscalerConfig::tiny());
  const RewriteResult r = try_merge(model, "bhf", "ghf");
  ASSERT_TRUE(r.legality.ok) << r.legality.reason;
  EXPECT_EQ(r.model->tasks().size(), model.tasks().size() - 1);
  expect_same_outputs(model, *r.model);
}

TEST(Merge, RejectsDependentTasksAndShapeMismatch) {
  const aol::Model chain = copy_chain(32, 4, 1, 0);
  // blocks=1 gives both tasks the same repetition space, but the
  // consumer depends on the producer.
  const RewriteResult dep = try_merge(chain, "producer", "consumer");
  ASSERT_FALSE(dep.legality.ok);
  EXPECT_NE(dep.legality.reason.find("depends on"), std::string::npos) << dep.legality.reason;

  const aol::Model ds = apps::build_downscaler_model(DownscalerConfig::tiny());
  const RewriteResult shape = try_merge(ds, "bhf", "gvf");
  ASSERT_FALSE(shape.legality.ok);
  EXPECT_NE(shape.legality.reason.find("repetition spaces differ"), std::string::npos);
  EXPECT_FALSE(try_merge(ds, "bhf", "bhf").legality.ok);
}

}  // namespace
}  // namespace saclo::opt
