#include "opt/search.hpp"

#include <gtest/gtest.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"

namespace saclo::opt {
namespace {

using apps::DownscalerConfig;

std::map<std::string, IntArray> inputs_for(const aol::Model& model) {
  std::map<std::string, IntArray> inputs;
  for (const std::string& in : model.inputs()) {
    inputs.emplace(in, IntArray::generate(model.array_shape(in), [&](const Index& idx) {
      std::int64_t v = 7;
      for (std::int64_t d : idx) v = v * 131 + d;
      return v % 255;
    }));
  }
  return inputs;
}

void expect_same_outputs(const aol::Model& before, const aol::Model& after) {
  const auto inputs = inputs_for(before);
  const auto ref = aol::evaluate(before, inputs);
  const auto got = aol::evaluate(after, inputs);
  for (const std::string& out : before.outputs()) {
    ASSERT_EQ(ref.at(out), got.at(out)) << "output '" << out << "' diverged";
  }
}

TEST(Search, LevelZeroIsIdentity) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::small());
  SearchOptions opts;
  opts.level = 0;
  const OptResult r = optimize(model, opts);
  EXPECT_TRUE(r.rewrites.empty());
  EXPECT_EQ(r.model.tasks().size(), model.tasks().size());
  EXPECT_DOUBLE_EQ(r.before.total_us(), r.after.total_us());
}

TEST(Search, FusesSingleChannelDownscalerToOneKernel) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::small());
  SearchOptions opts;
  opts.level = 1;
  const OptResult r = optimize(model, opts);
  ASSERT_EQ(r.model.tasks().size(), 1u);
  EXPECT_LT(r.after.total_us(), r.before.total_us());
  EXPECT_EQ(r.after.kernels, 1u);
  EXPECT_EQ(r.before.kernels, 2u);
  // The enabling paving change and the fusion are both reported.
  ASSERT_EQ(r.rewrites.size(), 2u);
  EXPECT_EQ(r.rewrites[0].kind, "paving_change");
  EXPECT_EQ(r.rewrites[1].kind, "fuse");
  expect_same_outputs(model, r.model);
}

TEST(Search, NeverAdoptsACostRegression) {
  // On the tiny geometry every kernel is dominated by the occupancy
  // floor, so fusing concentrates the memory traffic without saving
  // anything: the gate must keep the unfused schedule.
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  SearchOptions opts;
  opts.level = 2;
  const OptResult r = optimize(model, opts);
  EXPECT_LE(r.after.total_us(), r.before.total_us());
  expect_same_outputs(model, r.model);
}

TEST(Search, LevelTwoMergesRgbChannelsIntoOneKernel) {
  const aol::Model model = apps::build_downscaler_model(DownscalerConfig::small());
  SearchOptions opts;
  opts.level = 2;
  const OptResult r = optimize(model, opts);
  // 6 kernels -> 3 fused (one per channel) -> 1 merged kernel.
  ASSERT_EQ(r.model.tasks().size(), 1u);
  EXPECT_EQ(r.before.kernels, 6u);
  EXPECT_EQ(r.after.kernels, 1u);
  EXPECT_LT(r.after.total_us(), r.before.total_us());
  expect_same_outputs(model, r.model);
}

TEST(Search, LevelOneKeepsChannelsSeparate) {
  const aol::Model model = apps::build_downscaler_model(DownscalerConfig::small());
  SearchOptions opts;
  opts.level = 1;
  const OptResult r = optimize(model, opts);
  EXPECT_EQ(r.model.tasks().size(), 3u);
  expect_same_outputs(model, r.model);
}

TEST(Search, DeterministicAcrossRuns) {
  const aol::Model model = apps::build_downscaler_model(DownscalerConfig::small());
  SearchOptions opts;
  opts.level = 2;
  const OptResult a = optimize(model, opts);
  const OptResult b = optimize(model, opts);
  ASSERT_EQ(a.rewrites.size(), b.rewrites.size());
  for (std::size_t i = 0; i < a.rewrites.size(); ++i) {
    EXPECT_EQ(a.rewrites[i].kind, b.rewrites[i].kind);
    EXPECT_EQ(a.rewrites[i].detail, b.rewrites[i].detail);
  }
  EXPECT_DOUBLE_EQ(a.after.total_us(), b.after.total_us());
}

}  // namespace
}  // namespace saclo::opt
