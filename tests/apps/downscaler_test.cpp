#include "apps/downscaler/pipelines.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "apps/downscaler/frames.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/typecheck.hpp"

namespace saclo::apps {
namespace {

TEST(ConfigTest, PaperGeometry) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  EXPECT_EQ(cfg.mid_width(), 720);
  EXPECT_EQ(cfg.out_height(), 480);
  EXPECT_EQ(cfg.h_repetition(), (Shape{1080, 240}));
  EXPECT_EQ(cfg.v_repetition(), (Shape{120, 720}));
}

TEST(ConfigTest, ValidationCatchesBadGeometry) {
  DownscalerConfig cfg = DownscalerConfig::tiny();
  cfg.width = 33;  // not divisible by paving 8
  EXPECT_THROW(cfg.validate(), Error);
  cfg = DownscalerConfig::tiny();
  cfg.h.window_starts = {7};  // 7 + 6 > 11
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(SacSourceTest, GeneratedModuleParsesAndTypechecks) {
  const std::string src = downscaler_sac_source(DownscalerConfig::paper());
  const sac::Module m = sac::parse(src);
  EXPECT_NO_THROW(sac::typecheck(m));
  EXPECT_NE(m.find("hfilter_nongeneric"), nullptr);
  EXPECT_NE(m.find("vfilter_generic"), nullptr);
  EXPECT_NE(m.find("downscale_nongeneric"), nullptr);
}

TEST(FramesTest, SyntheticChannelsAre8Bit) {
  const IntArray c = synthetic_channel(Shape{18, 32}, 4, 1);
  for (std::int64_t i = 0; i < c.elements(); ++i) {
    EXPECT_GE(c[i], 0);
    EXPECT_LE(c[i], 255);
  }
  // Different frames / channels differ.
  EXPECT_NE(c, synthetic_channel(Shape{18, 32}, 5, 1));
  EXPECT_NE(c, synthetic_channel(Shape{18, 32}, 4, 2));
}

struct TinyFixture {
  DownscalerConfig cfg = DownscalerConfig::tiny();
  SacDownscaler::Options ng_opts;
  SacDownscaler::Options g_opts;
  TinyFixture() {
    ng_opts.workers = 1;
    g_opts.generic = true;
    g_opts.workers = 1;
  }
};

TEST(CrossSystemTest, SacCudaSeqAndGaspardAgree) {
  // The central correctness claim: all five implementations compute the
  // same frames.
  TinyFixture f;
  SacDownscaler ng(f.cfg, f.ng_opts);
  SacDownscaler g(f.cfg, f.g_opts);

  auto cuda_ng = ng.run_cuda_chain(1, 1, 1);
  auto cuda_g = g.run_cuda_chain(1, 1, 1);
  auto seq_ng = ng.run_seq(1, 1);
  auto seq_g = g.run_seq(1, 1);

  GaspardDownscaler::Options gopts;
  gopts.rgb = false;
  gopts.workers = 1;
  GaspardDownscaler gd(f.cfg, gopts);
  auto gaspard = gd.run(1, 1);

  ASSERT_EQ(cuda_ng.last_output.shape(), f.cfg.out_shape());
  EXPECT_EQ(cuda_ng.last_output, cuda_g.last_output);
  EXPECT_EQ(cuda_ng.last_output, seq_ng.last_output);
  EXPECT_EQ(cuda_ng.last_output, seq_g.last_output);
  EXPECT_EQ(cuda_ng.last_output, gaspard.last_output);
}

TEST(SacPipelineTest, ChainTransferCountsMatchPaperScheme) {
  TinyFixture f;
  SacDownscaler ng(f.cfg, f.ng_opts);
  auto r = ng.run_cuda_chain(5, 3, 1);
  // Per frame and channel: exactly one frame upload (attributed to H)
  // and one result download (attributed to V) — the paper's 900 + 900
  // over 300 RGB frames.
  EXPECT_EQ(r.h.h2d_calls, 15);
  EXPECT_EQ(r.h.d2h_calls, 0);
  EXPECT_EQ(r.v.h2d_calls, 0);
  EXPECT_EQ(r.v.d2h_calls, 15);
  // Kernel launches: kernels-per-filter x 15.
  EXPECT_EQ(r.h.kernel_launches, ng.h_kernels() * 15);
  EXPECT_EQ(r.v.kernel_launches, ng.v_kernels() * 15);
  EXPECT_NE(r.nvprof_table.find("H. Filter ("), std::string::npos);
  EXPECT_NE(r.nvprof_table.find("memcpyHtoDasync"), std::string::npos);
}

TEST(SacPipelineTest, KernelCountsShowWlfSplitting) {
  TinyFixture f;
  SacDownscaler ng(f.cfg, f.ng_opts);
  // Non-generic H: the 3 output-tile generators plus boundary splits.
  EXPECT_GE(ng.h_kernels(), 3);
  // V: 4 output-tile generators plus splits.
  EXPECT_GE(ng.v_kernels(), 4);
  // And more kernels than GASPARD2's single kernel per filter — the
  // paper's Section VIII-C observation.
  EXPECT_GT(ng.h_kernels(), 1);
  EXPECT_GT(ng.v_kernels(), 1);
}

TEST(SacPipelineTest, GenericHasHostBlocksAndNonGenericDoesNot) {
  TinyFixture f;
  SacDownscaler ng(f.cfg, f.ng_opts);
  SacDownscaler g(f.cfg, f.g_opts);
  EXPECT_EQ(ng.h_program().host_block_count(), 0);
  EXPECT_EQ(ng.v_program().host_block_count(), 0);
  EXPECT_GE(g.h_program().host_block_count(), 1);
  EXPECT_GE(g.v_program().host_block_count(), 1);
}

TEST(SacPipelineTest, GenericSlowerThanNonGenericAtScale) {
  // Figure 9's headline GPU effect needs a realistic frame size (at
  // tiny scale launch overhead dominates and the ordering flips).
  DownscalerConfig cfg = DownscalerConfig::small();
  SacDownscaler::Options ng_opts;
  SacDownscaler::Options g_opts;
  g_opts.generic = true;
  SacDownscaler ng(cfg, ng_opts);
  SacDownscaler g(cfg, g_opts);
  auto rng = ng.run_cuda_filter(true, 10, 1);
  auto rg = g.run_cuda_filter(true, 10, 1);
  EXPECT_GT(rg.ops.total_us(), rng.ops.total_us());
  // The generic variant pays host tiler time; the non-generic none.
  EXPECT_GT(rg.ops.host_us, 0.0);
  EXPECT_DOUBLE_EQ(rng.ops.host_us, 0.0);
  // Results agree.
  EXPECT_EQ(rng.last_output, rg.last_output);
}

TEST(SacPipelineTest, SeqTimesInsensitiveToGenericity) {
  TinyFixture f;
  SacDownscaler ng(f.cfg, f.ng_opts);
  SacDownscaler g(f.cfg, f.g_opts);
  auto sng = ng.run_seq(300, 0);
  auto sg = g.run_seq(300, 0);
  const double rel =
      std::abs(sng.total_us() - sg.total_us()) / std::max(sng.total_us(), sg.total_us());
  EXPECT_LT(rel, 0.5);  // "do not vary significantly" (Figure 9)
}

TEST(SacPipelineTest, CudaMuchFasterThanSeqAtScale) {
  DownscalerConfig cfg = DownscalerConfig::small();
  SacDownscaler::Options opts;
  SacDownscaler ng(cfg, opts);
  auto cuda = ng.run_cuda_filter(true, 300, 1);
  auto seq = ng.run_seq(300, 0);
  EXPECT_GT(seq.h_us / cuda.ops.total_us(), 2.0);
}

TEST(GaspardPipelineTest, TableOneCountsAtTinyScale) {
  TinyFixture f;
  GaspardDownscaler::Options gopts;
  GaspardDownscaler gd(f.cfg, gopts);
  auto r = gd.run(10, 1);
  EXPECT_EQ(r.h.kernel_launches, 30);  // 3 channels x 10 frames
  EXPECT_EQ(r.v.kernel_launches, 30);
  EXPECT_EQ(r.h.h2d_calls, 30);
  EXPECT_EQ(r.v.d2h_calls, 30);
  EXPECT_NE(r.nvprof_table.find("H. Filter (3 kernels)"), std::string::npos);
  EXPECT_NE(r.nvprof_table.find("V. Filter (3 kernels)"), std::string::npos);
}

TEST(WlfAblationTest, DisablingWlfAddsKernelGroupsAndTime) {
  DownscalerConfig cfg = DownscalerConfig::small();
  SacDownscaler::Options wlf_on;
  SacDownscaler::Options wlf_off;
  wlf_off.enable_wlf = false;
  SacDownscaler on(cfg, wlf_on);
  SacDownscaler off(cfg, wlf_off);
  // Without WLF each pipeline stage keeps its own with-loop.
  EXPECT_GT(off.h_kernels(), 0);
  auto r_on = on.run_cuda_filter(true, 20, 1);
  auto r_off = off.run_cuda_filter(true, 20, 1);
  // Unfused: intermediate arrays cost extra kernel traffic.
  EXPECT_GT(r_off.ops.kernel_us, r_on.ops.kernel_us);
  EXPECT_EQ(r_on.last_output, r_off.last_output);
}

TEST(AsyncStreamsTest, SacAsyncChainIsBitExact) {
  TinyFixture f;
  SacDownscaler sync_ds(f.cfg, f.ng_opts);
  SacDownscaler::Options async_opts = f.ng_opts;
  async_opts.async_streams = true;
  SacDownscaler async_ds(f.cfg, async_opts);

  auto sync_r = sync_ds.run_cuda_chain(4, 3, 4);
  auto async_r = async_ds.run_cuda_chain(4, 3, 4);
  EXPECT_EQ(async_r.last_output, sync_r.last_output);
  // The same operations run; only their placement on streams changes.
  EXPECT_EQ(async_r.h.kernel_launches, sync_r.h.kernel_launches);
  EXPECT_EQ(async_r.h.h2d_calls, sync_r.h.h2d_calls);
  EXPECT_EQ(async_r.v.d2h_calls, sync_r.v.d2h_calls);
  EXPECT_NEAR(async_r.total_us(), sync_r.total_us(), 1e-6 * sync_r.total_us() + 1e-6);
  // Overlap strictly shrinks the wall clock.
  EXPECT_LT(async_r.wall_us, sync_r.wall_us);
  EXPECT_NE(async_r.timeline.find("stream"), std::string::npos);
}

TEST(AsyncStreamsTest, SacGenericAsyncChainIsBitExact) {
  TinyFixture f;
  SacDownscaler sync_ds(f.cfg, f.g_opts);
  SacDownscaler::Options async_opts = f.g_opts;
  async_opts.async_streams = true;
  SacDownscaler async_ds(f.cfg, async_opts);

  auto sync_r = sync_ds.run_cuda_chain(4, 3, 4);
  auto async_r = async_ds.run_cuda_chain(4, 3, 4);
  EXPECT_EQ(async_r.last_output, sync_r.last_output);
  // Host tiler time is on the host timeline (async) vs host profiler
  // (sync) — the breakdown totals agree either way.
  EXPECT_NEAR(async_r.total_us(), sync_r.total_us(), 1e-6 * sync_r.total_us() + 1e-6);
  EXPECT_GT(async_r.h.host_us, 0.0);
  EXPECT_LT(async_r.wall_us, sync_r.wall_us);
}

TEST(AsyncStreamsTest, GaspardAsyncPipelineIsBitExact) {
  TinyFixture f;
  GaspardDownscaler::Options sync_opts;
  sync_opts.workers = 1;
  GaspardDownscaler::Options async_opts = sync_opts;
  async_opts.async_streams = true;
  GaspardDownscaler sync_ds(f.cfg, sync_opts);
  GaspardDownscaler async_ds(f.cfg, async_opts);

  auto sync_r = sync_ds.run(6, 6);
  auto async_r = async_ds.run(6, 6);
  EXPECT_EQ(async_r.last_output, sync_r.last_output);
  EXPECT_EQ(async_r.h.kernel_launches, sync_r.h.kernel_launches);
  EXPECT_NEAR(async_r.total_us(), sync_r.total_us(), 1e-6 * sync_r.total_us() + 1e-6);
  EXPECT_LT(async_r.wall_us, sync_r.wall_us);
}

TEST(AsyncStreamsTest, AsyncHidesTransfersButSyncDoesNot) {
  DownscalerConfig cfg = DownscalerConfig::small();
  SacDownscaler::Options sync_opts;
  SacDownscaler::Options async_opts;
  async_opts.async_streams = true;
  async_opts.capture_trace = true;
  SacDownscaler sync_ds(cfg, sync_opts);
  SacDownscaler async_ds(cfg, async_opts);

  auto sync_r = sync_ds.run_cuda_chain(8, 3, 1);
  auto async_r = async_ds.run_cuda_chain(8, 3, 1);
  EXPECT_DOUBLE_EQ(sync_r.wall_us, sync_r.total_us());  // fully serial
  EXPECT_LT(async_r.wall_us, 0.95 * sync_r.wall_us);
  EXPECT_NE(async_r.timeline.find("hidden behind kernels"), std::string::npos);
  // The Chrome trace export carries one event per op on its stream.
  EXPECT_NE(async_r.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(async_r.trace_json.find("memcpy_h2d"), std::string::npos);
}

TEST(PpmTest, WritesValidHeader) {
  const Shape s{8, 12};
  RgbFrame f = synthetic_frame(s, 0);
  const std::string path = "/tmp/saclo_test_frame.ppm";
  write_ppm(path, f);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  int w = 0;
  int h = 0;
  in >> w >> h;
  EXPECT_EQ(w, 12);
  EXPECT_EQ(h, 8);
}

}  // namespace
}  // namespace saclo::apps
