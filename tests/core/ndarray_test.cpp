#include "core/ndarray.hpp"

#include <gtest/gtest.h>

namespace saclo {
namespace {

TEST(NDArrayTest, DefaultIsScalarZero) {
  IntArray a;
  EXPECT_EQ(a.shape().rank(), 0u);
  EXPECT_EQ(a[0], 0);
}

TEST(NDArrayTest, FillConstructor) {
  IntArray a(Shape{2, 3}, 7);
  EXPECT_EQ(a.elements(), 6);
  for (std::int64_t i = 0; i < a.elements(); ++i) EXPECT_EQ(a[i], 7);
}

TEST(NDArrayTest, DataVectorSizeMustMatch) {
  EXPECT_THROW(IntArray(Shape{2, 2}, std::vector<std::int64_t>{1, 2, 3}), ShapeError);
}

TEST(NDArrayTest, AtUsesRowMajorLayout) {
  IntArray a(Shape{2, 3});
  a.at({1, 2}) = 42;
  EXPECT_EQ(a[5], 42);
}

TEST(NDArrayTest, GenerateEvaluatesAtEachIndex) {
  const IntArray a = IntArray::generate(Shape{3, 4}, [](const Index& i) { return 10 * i[0] + i[1]; });
  EXPECT_EQ(a.at({0, 0}), 0);
  EXPECT_EQ(a.at({2, 3}), 23);
}

TEST(NDArrayTest, ReshapePreservesData) {
  const IntArray a = IntArray::generate(Shape{2, 3}, [](const Index& i) { return i[0] * 3 + i[1]; });
  const IntArray b = a.reshaped(Shape{6});
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(b[i], i);
}

TEST(NDArrayTest, ReshapeChecksElementCount) {
  IntArray a(Shape{2, 3});
  EXPECT_THROW(a.reshaped(Shape{7}), ShapeError);
}

TEST(NDArrayTest, EqualityIsValueBased) {
  IntArray a(Shape{2}, 1);
  IntArray b(Shape{2}, 1);
  EXPECT_EQ(a, b);
  b[1] = 2;
  EXPECT_NE(a, b);
  EXPECT_NE(a, IntArray(Shape{3}, 1));
}

TEST(NDArrayTest, ScalarFactory) {
  const auto s = NDArray<double>::scalar(2.5);
  EXPECT_EQ(s.shape().rank(), 0u);
  EXPECT_DOUBLE_EQ(s[0], 2.5);
}

}  // namespace
}  // namespace saclo
