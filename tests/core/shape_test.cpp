#include "core/shape.hpp"

#include <gtest/gtest.h>

namespace saclo {
namespace {

TEST(ShapeTest, ScalarShapeHasOneElement) {
  Shape s{};
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.elements(), 1);
}

TEST(ShapeTest, ElementsIsProductOfExtents) {
  EXPECT_EQ((Shape{1080, 1920}).elements(), 1080 * 1920);
  EXPECT_EQ((Shape{3, 4, 5}).elements(), 60);
  EXPECT_EQ((Shape{7, 0, 2}).elements(), 0);
}

TEST(ShapeTest, NegativeExtentThrows) {
  EXPECT_THROW(Shape({2, -1}), ShapeError);
}

TEST(ShapeTest, StridesAreRowMajor) {
  const Index s = Shape{2, 3, 4}.strides();
  EXPECT_EQ(s, (Index{12, 4, 1}));
}

TEST(ShapeTest, LinearizeRoundTrips) {
  const Shape s{3, 5, 7};
  for (std::int64_t i = 0; i < s.elements(); ++i) {
    EXPECT_EQ(s.linearize(s.delinearize(i)), i);
  }
}

TEST(ShapeTest, LinearizeChecksBounds) {
  const Shape s{3, 5};
  EXPECT_THROW(s.linearize({3, 0}), ShapeError);
  EXPECT_THROW(s.linearize({0, 5}), ShapeError);
  EXPECT_THROW(s.linearize({-1, 0}), ShapeError);
  EXPECT_THROW(s.linearize({0}), ShapeError);
}

TEST(ShapeTest, ContainsMatchesBoundsAndRank) {
  const Shape s{2, 2};
  EXPECT_TRUE(s.contains({0, 0}));
  EXPECT_TRUE(s.contains({1, 1}));
  EXPECT_FALSE(s.contains({2, 0}));
  EXPECT_FALSE(s.contains({0}));
}

TEST(ShapeTest, ConcatJoinsDimensions) {
  EXPECT_EQ((Shape{1080, 240}).concat(Shape{11}), (Shape{1080, 240, 11}));
  EXPECT_EQ((Shape{}).concat(Shape{3}), (Shape{3}));
}

TEST(ShapeTest, TakeAndDropSplit) {
  const Shape s{2, 3, 4};
  EXPECT_EQ(s.take(1), (Shape{2}));
  EXPECT_EQ(s.drop(1), (Shape{3, 4}));
  EXPECT_EQ(s.take(0), Shape{});
  EXPECT_EQ(s.drop(3), Shape{});
  EXPECT_THROW(s.take(4), ShapeError);
}

TEST(FloorModTest, WrapsNegativeValues) {
  EXPECT_EQ(floor_mod(-1, 1920), 1919);
  EXPECT_EQ(floor_mod(1920, 1920), 0);
  EXPECT_EQ(floor_mod(1922, 1920), 2);
  EXPECT_EQ(floor_mod(0, 5), 0);
}

TEST(FloorModTest, RejectsNonPositiveModulus) {
  EXPECT_THROW(floor_mod(1, 0), ShapeError);
  EXPECT_THROW(floor_mod(1, -3), ShapeError);
}

TEST(FloorModTest, VectorFormChecksRank) {
  EXPECT_EQ(floor_mod(Index{-1, 1922}, Index{1080, 1920}), (Index{1079, 2}));
  EXPECT_THROW(floor_mod(Index{1}, Index{2, 3}), ShapeError);
}

TEST(ForEachIndexTest, VisitsRowMajorOrder) {
  std::vector<Index> seen;
  for_each_index(Shape{2, 2}, [&](const Index& i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (Index{0, 0}));
  EXPECT_EQ(seen[1], (Index{0, 1}));
  EXPECT_EQ(seen[2], (Index{1, 0}));
  EXPECT_EQ(seen[3], (Index{1, 1}));
}

TEST(ForEachIndexTest, EmptyShapeVisitsNothing) {
  int count = 0;
  for_each_index(Shape{0, 5}, [&](const Index&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ForEachIndexTest, ScalarShapeVisitsOnce) {
  int count = 0;
  for_each_index(Shape{}, [&](const Index& i) {
    ++count;
    EXPECT_TRUE(i.empty());
  });
  EXPECT_EQ(count, 1);
}

}  // namespace
}  // namespace saclo
