#include "core/fmt.hpp"

#include <gtest/gtest.h>

namespace saclo {
namespace {

TEST(FmtTest, CatConcatenatesHeterogeneousArgs) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
  EXPECT_EQ(cat(42), "42");
}

TEST(FmtTest, JoinWithSeparator) {
  EXPECT_EQ(join(std::vector<int>{1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(join(std::vector<std::string>{"x"}, ", "), "x");
  EXPECT_EQ(join(std::vector<int>{}, ","), "");
}

TEST(FmtTest, Bracketed) {
  EXPECT_EQ(bracketed({1080, 1920}), "[1080,1920]");
  EXPECT_EQ(bracketed({}), "[]");
  EXPECT_EQ(bracketed({-3}), "[-3]");
}

TEST(FmtTest, Padding) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(pad_right("abcdef", 3), "abcdef");
}

TEST(FmtTest, FixedDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
  EXPECT_EQ(fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace saclo
