#include "core/matrix.hpp"

#include <gtest/gtest.h>

#include "core/error.hpp"

namespace saclo {
namespace {

TEST(IntMatTest, InitializerListLayout) {
  const IntMat m{{1, 0}, {0, 8}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m.at(0, 0), 1);
  EXPECT_EQ(m.at(1, 1), 8);
}

TEST(IntMatTest, RaggedInitializerThrows) {
  EXPECT_THROW(IntMat({{1, 2}, {3}}), ShapeError);
}

TEST(IntMatTest, MatrixVectorProduct) {
  // The paper's horizontal-filter paving matrix {{1,0},{0,8}} maps
  // repetition index (r0, r1) to reference element (r0, 8*r1).
  const IntMat paving{{1, 0}, {0, 8}};
  EXPECT_EQ(paving.mv({5, 3}), (Index{5, 24}));
}

TEST(IntMatTest, MvChecksDimensions) {
  const IntMat m{{1, 0}};
  EXPECT_THROW(m.mv({1}), ShapeError);
}

TEST(IntMatTest, HcatConcatenatesColumns) {
  // CAT(paving, fitting) from the paper's generic tiler: one product
  // maps the concatenated (repetition ++ pattern) index.
  const IntMat paving{{1, 0}, {0, 8}};
  const IntMat fitting{{0}, {1}};
  const IntMat cat = paving.hcat(fitting);
  EXPECT_EQ(cat.rows(), 2u);
  EXPECT_EQ(cat.cols(), 3u);
  EXPECT_EQ(cat.mv({5, 3, 7}), (Index{5, 31}));
}

TEST(IntMatTest, HcatChecksRows) {
  EXPECT_THROW(IntMat(2, 2).hcat(IntMat(3, 1)), ShapeError);
}

TEST(IntMatTest, IdentityActsAsNoop) {
  const IntMat id = IntMat::identity(3);
  EXPECT_EQ(id.mv({4, 5, 6}), (Index{4, 5, 6}));
}

TEST(IntMatTest, OutOfRangeAccessThrows) {
  IntMat m(2, 2);
  EXPECT_THROW(m.at(2, 0), ShapeError);
  EXPECT_THROW(m.at(0, 2), ShapeError);
}

TEST(IntMatTest, ToStringIsBraceNested) {
  const IntMat m{{1, 0}, {0, 8}};
  EXPECT_EQ(m.to_string(), "{{1,0},{0,8}}");
}

}  // namespace
}  // namespace saclo
