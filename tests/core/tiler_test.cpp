#include "core/tiler.hpp"

#include <gtest/gtest.h>

namespace saclo {
namespace {

/// The paper's horizontal-filter input tiler (Figure 10), scaled down:
/// array {H, W}, pattern {11}, repetition {H, W/8},
/// origin {0,0}, fitting {{0},{1}}, paving {{1,0},{0,8}}.
TilerSpec hfilter_input_tiler() {
  TilerSpec t;
  t.origin = {0, 0};
  t.fitting = IntMat{{0}, {1}};
  t.paving = IntMat{{1, 0}, {0, 8}};
  return t;
}

TEST(TilerSpecTest, ValidateAcceptsPaperSpec) {
  const TilerSpec t = hfilter_input_tiler();
  EXPECT_NO_THROW(t.validate(Shape{1080, 1920}, Shape{11}, Shape{1080, 240}));
}

TEST(TilerSpecTest, ValidateRejectsWrongOriginRank) {
  TilerSpec t = hfilter_input_tiler();
  t.origin = {0};
  EXPECT_THROW(t.validate(Shape{16, 32}, Shape{11}, Shape{16, 4}), TilerError);
}

TEST(TilerSpecTest, ValidateRejectsWrongFitting) {
  TilerSpec t = hfilter_input_tiler();
  t.fitting = IntMat{{0, 0}, {1, 1}};
  EXPECT_THROW(t.validate(Shape{16, 32}, Shape{11}, Shape{16, 4}), TilerError);
}

TEST(TilerSpecTest, ElementIndexFollowsFormula) {
  const TilerSpec t = hfilter_input_tiler();
  const Shape arr{16, 32};
  // e = (o + P.r + F.i) mod s
  EXPECT_EQ(t.element_index(arr, {3, 2}, {5}), (Index{3, 21}));
  EXPECT_EQ(t.reference(arr, {3, 2}), (Index{3, 16}));
}

TEST(TilerSpecTest, ElementIndexWrapsModularly) {
  const TilerSpec t = hfilter_input_tiler();
  const Shape arr{16, 32};
  // Last tile: reference column 8*3 = 24, pattern element 10 -> 34 mod 32 = 2.
  EXPECT_EQ(t.element_index(arr, {0, 3}, {10}), (Index{0, 2}));
}

TEST(TilerGatherTest, GathersOverlappingPatterns) {
  const TilerSpec t = hfilter_input_tiler();
  const IntArray frame =
      IntArray::generate(Shape{4, 16}, [](const Index& i) { return i[0] * 100 + i[1]; });
  const IntArray tiles = gather(frame, t, Shape{11}, Shape{4, 2});
  EXPECT_EQ(tiles.shape(), (Shape{4, 2, 11}));
  // Tile (r0=1, r1=1) starts at column 8 of row 1.
  for (std::int64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(tiles.at({1, 1, k}), 100 + 8 + k);
  }
  // Elements 8..10 wrap around to columns 0..2.
  EXPECT_EQ(tiles.at({1, 1, 8}), 100 + 0);
  EXPECT_EQ(tiles.at({1, 1, 10}), 100 + 2);
}

TEST(TilerScatterTest, RoundTripsWithExactPartition) {
  // Output tiler of the downscaler: pattern {3}, paving {{1,0},{0,3}} —
  // an exact partition of the output frame.
  TilerSpec t;
  t.origin = {0, 0};
  t.fitting = IntMat{{0}, {1}};
  t.paving = IntMat{{1, 0}, {0, 3}};
  const Shape out_shape{4, 12};
  const Shape pattern{3};
  const Shape repetition{4, 4};
  ASSERT_TRUE(is_exact_partition(t, out_shape, pattern, repetition));

  const IntArray original =
      IntArray::generate(out_shape, [](const Index& i) { return i[0] * 1000 + i[1]; });
  const IntArray tiles = gather(original, t, pattern, repetition);
  IntArray rebuilt(out_shape, -1);
  scatter(rebuilt, tiles, t, pattern, repetition);
  EXPECT_EQ(rebuilt, original);
}

TEST(TilerScatterTest, RejectsWrongTileShape) {
  TilerSpec t;
  t.origin = {0};
  t.fitting = IntMat{{1}};
  t.paving = IntMat{{4}};
  IntArray out(Shape{16});
  IntArray tiles(Shape{4, 3});  // pattern should be {4}
  EXPECT_THROW(scatter(out, tiles, t, Shape{4}, Shape{4}), TilerError);
}

TEST(TilerCoverageTest, InputTilerOversamples) {
  // The 11-wide pattern with paving step 8 reads boundary pixels more
  // than once: coverage is not a partition.
  const TilerSpec t = hfilter_input_tiler();
  EXPECT_FALSE(is_exact_partition(t, Shape{4, 16}, Shape{11}, Shape{4, 2}));
  const IntArray cover = coverage_map(t, Shape{4, 16}, Shape{11}, Shape{4, 2});
  // Each row: 2 tiles x 11 elements = 22 reads over 16 columns.
  std::int64_t row_total = 0;
  for (std::int64_t c = 0; c < 16; ++c) row_total += cover.at({0, c});
  EXPECT_EQ(row_total, 22);
}

TEST(TilerPartitionPropertyTest, BlockTilersPartition) {
  // Property: for any (h, w, bh, bw) with bh|h and bw|w, the block
  // tiler with fitting=diag(1,1), paving=diag(bh,bw) partitions.
  for (std::int64_t h : {2, 4, 6}) {
    for (std::int64_t w : {3, 5}) {
      for (std::int64_t bh : {1, 2}) {
        for (std::int64_t bw : {1, 3}) {
          if (h % bh != 0 || w % bw != 0) continue;
          TilerSpec t;
          t.origin = {0, 0};
          t.fitting = IntMat{{1, 0}, {0, 1}};
          t.paving = IntMat{{bh, 0}, {0, bw}};
          EXPECT_TRUE(is_exact_partition(t, Shape{h, w}, Shape{bh, bw}, Shape{h / bh, w / bw}))
              << "h=" << h << " w=" << w << " bh=" << bh << " bw=" << bw;
        }
      }
    }
  }
}

}  // namespace
}  // namespace saclo
