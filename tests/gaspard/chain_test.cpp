#include "gaspard/chain.hpp"

#include <gtest/gtest.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"
#include "apps/downscaler/frames.hpp"

namespace saclo::gaspard {
namespace {

using apps::DownscalerConfig;

TEST(ChainTest, BuildsOneKernelPerTask) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  OpenClApplication app = OpenClApplication::build(apps::build_downscaler_model(cfg));
  // GASPARD2 maps each elementary task to one kernel: 3 channels x 2
  // filters = 6 kernels — the paper's "H. Filter (3 kernels)" + "V.
  // Filter (3 kernels)".
  EXPECT_EQ(app.kernels().size(), 6u);
  int hf = 0;
  int vf = 0;
  for (const TaskKernel& k : app.kernels()) {
    if (k.name.find("hf") != std::string::npos) ++hf;
    if (k.name.find("vf") != std::string::npos) ++vf;
  }
  EXPECT_EQ(hf, 3);
  EXPECT_EQ(vf, 3);
}

TEST(ChainTest, KernelWorkItemsAreRepetitionPoints) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  OpenClApplication app = OpenClApplication::build(apps::build_downscaler_model(cfg));
  for (const TaskKernel& k : app.kernels()) {
    if (k.name.find("hf") != std::string::npos) {
      EXPECT_EQ(k.work_items, 1080 * 240);
    } else {
      EXPECT_EQ(k.work_items, 120 * 720);
    }
  }
}

TEST(ChainTest, GeneratedSourceHasFigure11Shape) {
  // The paper's Figure 11: work-item decode with iGID % extent,
  // reference point from the paving matrix, pattern filling from the
  // fitting matrix, modular wrap by the array extents.
  const DownscalerConfig cfg = DownscalerConfig::paper();
  OpenClApplication app = OpenClApplication::build(apps::build_downscaler_model(cfg));
  const std::string src = app.opencl_source();
  EXPECT_NE(src.find("__kernel void KRN_bhf"), std::string::npos);
  EXPECT_NE(src.find("get_global_id(0)"), std::string::npos);
  EXPECT_NE(src.find("tlIter[0] = iGID % 1080;"), std::string::npos);
  EXPECT_NE(src.find("ref[1] = 0 + 0*tlIter[0] + 8*tlIter[1];"), std::string::npos);
  EXPECT_NE(src.find("% 1920"), std::string::npos);
  EXPECT_NE(src.find("__global const int*"), std::string::npos);
}

TEST(ChainTest, TilerCodeEmitsPavingAndFitting) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  aol::Model m = apps::build_single_channel_model(cfg);
  const aol::RepetitiveTask& hf = m.tasks()[0];
  const std::string code =
      emit_tiler_code(hf, hf.inputs[0], /*is_input=*/true, m.array_shape("frame_y"));
  EXPECT_NE(code.find("ref[0] = 0 + 1*tlIter[0] + 0*tlIter[1];"), std::string::npos);
  EXPECT_NE(code.find("for(tl[0]=0; tl[0] < 11; tl[0]++)"), std::string::npos);
  EXPECT_NE(code.find("+ 1*tl[0]) % 1920"), std::string::npos);
}

TEST(ChainTest, SimulatedRunMatchesReferenceEvaluation) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  aol::Model model = apps::build_downscaler_model(cfg);
  OpenClApplication app = OpenClApplication::build(model);

  std::map<std::string, IntArray> inputs;
  int ch = 0;
  for (const std::string& in : model.inputs()) {
    inputs.emplace(in, apps::synthetic_channel(cfg.frame_shape(), 3, ch++));
  }
  const auto expected = aol::evaluate(model, inputs);

  gpu::VirtualGpu gpu(gpu::gtx480(), 2);
  gpu::opencl::CommandQueue queue(gpu);
  const auto actual = app.run(queue, inputs, /*execute=*/true);
  ASSERT_EQ(actual.size(), 3u);
  for (const auto& [name, arr] : actual) {
    EXPECT_EQ(arr, expected.at(name)) << name;
  }
}

TEST(ChainTest, TransferAndKernelCountsPerInvocation) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  OpenClApplication app = OpenClApplication::build(apps::build_downscaler_model(cfg));
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  gpu::opencl::CommandQueue queue(gpu);
  app.run(queue, {}, /*execute=*/false);
  std::int64_t h2d = 0;
  std::int64_t d2h = 0;
  std::int64_t kernels = 0;
  for (const auto& row : gpu.profiler().rows()) {
    if (row.kind == gpu::OpKind::MemcpyHtoD) h2d += row.calls;
    if (row.kind == gpu::OpKind::MemcpyDtoH) d2h += row.calls;
    if (row.kind == gpu::OpKind::Kernel) kernels += row.calls;
  }
  // Per frame: 3 channel uploads, 3 result downloads, 6 kernels — the
  // paper's 900/900 counts over 300 frames.
  EXPECT_EQ(h2d, 3);
  EXPECT_EQ(d2h, 3);
  EXPECT_EQ(kernels, 6);
}

TEST(ChainTest, TimingOnlyEqualsExecutedTiming) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  aol::Model model = apps::build_downscaler_model(cfg);
  OpenClApplication app = OpenClApplication::build(model);
  std::map<std::string, IntArray> inputs;
  int ch = 0;
  for (const std::string& in : model.inputs()) {
    inputs.emplace(in, apps::synthetic_channel(cfg.frame_shape(), 0, ch++));
  }
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  gpu::opencl::CommandQueue queue(gpu);
  app.run(queue, inputs, true);
  const double first = gpu.clock_us();
  app.run(queue, inputs, false);
  EXPECT_NEAR(gpu.clock_us() - first, first, first * 1e-9);
}

TEST(ChainTest, HFilterKernelCostMatchesPaperMagnitude) {
  // One GASPARD2 horizontal-filter launch at paper scale should land
  // near Table I's 938us per call.
  const DownscalerConfig cfg = DownscalerConfig::paper();
  OpenClApplication app = OpenClApplication::build(apps::build_downscaler_model(cfg));
  const gpu::DeviceSpec dev = gpu::gtx480();
  for (const TaskKernel& k : app.kernels()) {
    if (k.name.find("hf") == std::string::npos) continue;
    const double us = gpu::kernel_time_us(dev, k.work_items, k.cost);
    EXPECT_GT(us, 938.0 * 0.6) << k.name;
    EXPECT_LT(us, 938.0 * 1.4) << k.name;
  }
}

}  // namespace
}  // namespace saclo::gaspard
