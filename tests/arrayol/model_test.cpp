#include "arrayol/model.hpp"

#include <gtest/gtest.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"
#include "apps/downscaler/frames.hpp"

namespace saclo::aol {
namespace {

using apps::DownscalerConfig;

/// A toy model: one task doubling 4-element blocks of a 16-vector.
Model toy_model() {
  Model m("toy");
  m.add_array("in", Shape{16});
  m.add_array("out", Shape{16});
  m.mark_input("in");
  m.mark_output("out");
  RepetitiveTask t;
  t.name = "dbl";
  t.repetition = Shape{4};
  TiledPort in;
  in.port = {"in", Shape{16}};
  in.pattern = Shape{4};
  in.tiler.origin = {0};
  in.tiler.fitting = IntMat{{1}};
  in.tiler.paving = IntMat{{4}};
  t.inputs.push_back(std::move(in));
  TiledPort out;
  out.port = {"out", Shape{16}};
  out.pattern = Shape{4};
  out.tiler.origin = {0};
  out.tiler.fitting = IntMat{{1}};
  out.tiler.paving = IntMat{{4}};
  t.outputs.push_back(std::move(out));
  t.op.name = "double";
  t.op.compute = [](std::span<const std::int64_t> i, std::span<std::int64_t> o) {
    for (std::size_t k = 0; k < o.size(); ++k) o[k] = 2 * i[k];
  };
  t.op.flops_per_invocation = 4;
  t.op.c_body = "for (int k = 0; k < 4; ++k) out[k] = 2 * in[k];";
  m.add_task(std::move(t));
  return m;
}

TEST(ModelTest, ToyModelValidatesAndEvaluates) {
  Model m = toy_model();
  EXPECT_NO_THROW(m.validate());
  IntArray in = IntArray::generate(Shape{16}, [](const Index& i) { return i[0] + 1; });
  auto env = evaluate(m, {{"in", in}});
  const IntArray& out = env.at("out");
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(out[i], 2 * (i + 1));
}

TEST(ModelTest, NonPartitionOutputTilerRejected) {
  Model m("bad");
  m.add_array("in", Shape{16});
  m.add_array("out", Shape{16});
  m.mark_input("in");
  m.mark_output("out");
  RepetitiveTask t;
  t.name = "bad";
  t.repetition = Shape{4};
  TiledPort in;
  in.port = {"in", Shape{16}};
  in.pattern = Shape{4};
  in.tiler.origin = {0};
  in.tiler.fitting = IntMat{{1}};
  in.tiler.paving = IntMat{{4}};
  t.inputs.push_back(std::move(in));
  TiledPort out;
  out.port = {"out", Shape{16}};
  out.pattern = Shape{4};
  out.tiler.origin = {0};
  out.tiler.fitting = IntMat{{1}};
  out.tiler.paving = IntMat{{2}};  // overlapping writes!
  t.outputs.push_back(std::move(out));
  t.op.compute = [](std::span<const std::int64_t>, std::span<std::int64_t>) {};
  m.add_task(std::move(t));
  EXPECT_THROW(m.validate(), ModelError);
}

TEST(ModelTest, DuplicateArrayRejected) {
  Model m("dup");
  m.add_array("a", Shape{4});
  EXPECT_THROW(m.add_array("a", Shape{4}), ModelError);
}

TEST(ModelTest, UnknownInputRejected) {
  Model m("x");
  EXPECT_THROW(m.mark_input("ghost"), ModelError);
}

TEST(ModelTest, WrongPortShapeRejected) {
  Model m = toy_model();
  Model bad("bad2");
  bad.add_array("in", Shape{16});
  bad.add_array("out", Shape{16});
  bad.mark_input("in");
  bad.mark_output("out");
  RepetitiveTask t;
  t.name = "t";
  t.repetition = Shape{4};
  TiledPort in;
  in.port = {"in", Shape{8}};  // wrong shape
  in.pattern = Shape{4};
  in.tiler.origin = {0};
  in.tiler.fitting = IntMat{{1}};
  in.tiler.paving = IntMat{{4}};
  t.inputs.push_back(std::move(in));
  t.op.compute = [](std::span<const std::int64_t>, std::span<std::int64_t>) {};
  bad.add_task(std::move(t));
  EXPECT_THROW(bad.validate(), ModelError);
}

TEST(ModelTest, ScheduleRespectsDependences) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  Model m = apps::build_downscaler_model(cfg);
  const auto order = m.schedule();
  ASSERT_EQ(order.size(), 6u);
  // Every vf task must come after its channel's hf task.
  std::map<std::string, std::size_t> pos;
  for (std::size_t i = 0; i < order.size(); ++i) pos[m.tasks()[order[i]].name] = i;
  for (const char* ch : {"b", "g", "r"}) {
    EXPECT_LT(pos.at(std::string(ch) + "hf"), pos.at(std::string(ch) + "vf"));
  }
}

TEST(ModelTest, CycleDetected) {
  Model m("cycle");
  m.add_array("a", Shape{4});
  m.add_array("b", Shape{4});
  auto mk = [&](const std::string& name, const std::string& in_arr, const std::string& out_arr) {
    RepetitiveTask t;
    t.name = name;
    t.repetition = Shape{4};
    TiledPort in;
    in.port = {in_arr, Shape{4}};
    in.pattern = Shape{1};
    in.tiler.origin = {0};
    in.tiler.fitting = IntMat{{1}};
    in.tiler.paving = IntMat{{1}};
    t.inputs.push_back(std::move(in));
    TiledPort out;
    out.port = {out_arr, Shape{4}};
    out.pattern = Shape{1};
    out.tiler.origin = {0};
    out.tiler.fitting = IntMat{{1}};
    out.tiler.paving = IntMat{{1}};
    t.outputs.push_back(std::move(out));
    t.op.compute = [](std::span<const std::int64_t>, std::span<std::int64_t>) {};
    m.add_task(std::move(t));
  };
  mk("t1", "a", "b");
  mk("t2", "b", "a");
  EXPECT_THROW(m.schedule(), ModelError);
}

TEST(ModelTest, DownscalerModelMatchesPaperGeometry) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  Model m = apps::build_downscaler_model(cfg);
  EXPECT_NO_THROW(m.validate());
  ASSERT_EQ(m.tasks().size(), 6u);
  // The paper's Figure 10: repetition space {1080, 240} for the
  // horizontal filter of a 1080x1920 frame.
  for (const RepetitiveTask& t : m.tasks()) {
    if (t.name.find("hf") != std::string::npos) {
      EXPECT_EQ(t.repetition, (Shape{1080, 240}));
      EXPECT_EQ(t.inputs[0].pattern, (Shape{11}));
      EXPECT_EQ(t.outputs[0].pattern, (Shape{3}));
    } else {
      EXPECT_EQ(t.repetition, (Shape{120, 720}));
    }
  }
  EXPECT_EQ(m.array_shape("mid_b"), (Shape{1080, 720}));
  EXPECT_EQ(m.array_shape("out_b"), (Shape{480, 720}));
}

TEST(ModelTest, DownscalerEvaluatesAtTinyScale) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  Model m = apps::build_single_channel_model(cfg);
  const IntArray frame = apps::synthetic_channel(cfg.frame_shape(), 0, 0);
  auto env = evaluate(m, {{"frame_y", frame}});
  const IntArray& out = env.at("out_y");
  EXPECT_EQ(out.shape(), cfg.out_shape());
  // Hand-check one output pixel: out(0,0) comes from mid row 0,
  // columns window {0..5} of mid(0,.), which in turn come from frame.
  // (Full cross-checks against the SaC pipelines are in the apps tests.)
  std::int64_t any_nonzero = 0;
  for (std::int64_t i = 0; i < out.elements(); ++i) any_nonzero += out[i] != 0;
  EXPECT_GT(any_nonzero, 0);
}

}  // namespace
}  // namespace saclo::aol
