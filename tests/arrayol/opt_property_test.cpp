// Property tests for the transformation optimizer over randomized
// Array-OL geometries: every *accepted* rewrite (paving change, fusion,
// full cost-gated search) must preserve the ODT mapping — identical
// model outputs element for element — and every *rejected* candidate
// must carry a diagnostic naming the violated precondition.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/config.hpp"
#include "core/fmt.hpp"
#include "opt/search.hpp"
#include "opt/transform.hpp"

namespace saclo::opt {
namespace {

using apps::DownscalerConfig;

std::map<std::string, IntArray> random_inputs(const aol::Model& model, std::mt19937& rng) {
  std::uniform_int_distribution<std::int64_t> pixel(0, 255);
  std::map<std::string, IntArray> inputs;
  for (const std::string& in : model.inputs()) {
    inputs.emplace(in, IntArray::generate(model.array_shape(in),
                                          [&](const Index&) { return pixel(rng); }));
  }
  return inputs;
}

void expect_same_outputs(const aol::Model& before, const aol::Model& after, std::mt19937& rng,
                         const std::string& what) {
  const auto inputs = random_inputs(before, rng);
  const auto ref = aol::evaluate(before, inputs);
  const auto got = aol::evaluate(after, inputs);
  ASSERT_EQ(before.outputs(), after.outputs()) << what;
  for (const std::string& out : before.outputs()) {
    EXPECT_EQ(ref.at(out), got.at(out)) << what << ": output '" << out << "' diverged";
  }
}

/// A random valid downscaler geometry: the width must be a multiple of
/// the horizontal paving (8) and the height of the vertical paving (9).
DownscalerConfig random_config(std::mt19937& rng) {
  DownscalerConfig cfg = DownscalerConfig::tiny();
  std::uniform_int_distribution<std::int64_t> h_mult(1, 4);
  std::uniform_int_distribution<std::int64_t> w_mult(1, 5);
  cfg.height = cfg.v.paving * 2 * h_mult(rng);  // 18..72
  cfg.width = cfg.h.paving * 2 * w_mult(rng);   // 16..80
  cfg.validate();
  return cfg;
}

std::vector<std::int64_t> dividing_factors(std::int64_t extent) {
  std::vector<std::int64_t> factors;
  for (std::int64_t k = 2; k <= extent; ++k) {
    if (extent % k == 0) factors.push_back(k);
  }
  return factors;
}

TEST(OptProperty, AcceptedPavingChangesPreserveOdtMappingOnRandomGeometries) {
  std::mt19937 rng(20110516);  // the paper's conference date
  for (int trial = 0; trial < 12; ++trial) {
    const DownscalerConfig cfg = random_config(rng);
    const aol::Model model = apps::build_single_channel_model(cfg);
    const std::string task = trial % 2 == 0 ? "yhf" : "yvf";
    const Shape rep = task == "yhf" ? cfg.h_repetition() : cfg.v_repetition();
    const std::size_t dim = std::uniform_int_distribution<std::size_t>(0, rep.rank() - 1)(rng);
    const std::vector<std::int64_t> factors = dividing_factors(rep[dim]);
    if (factors.empty()) continue;
    const std::int64_t factor =
        factors[std::uniform_int_distribution<std::size_t>(0, factors.size() - 1)(rng)];

    const std::string what = cat(cfg.height, "x", cfg.width, " ", task, " dim ", dim,
                                 " factor ", factor);
    const RewriteResult r = try_change_paving(model, task, dim, factor);
    ASSERT_TRUE(r.legality.ok) << what << ": " << r.legality.reason;
    expect_same_outputs(model, *r.model, rng, what);
  }
}

TEST(OptProperty, IllegalPavingChangesAreRejectedWithDiagnostics) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const DownscalerConfig cfg = random_config(rng);
    const aol::Model model = apps::build_single_channel_model(cfg);
    const Shape rep = cfg.h_repetition();
    const std::size_t dim = std::uniform_int_distribution<std::size_t>(0, rep.rank() - 1)(rng);
    // A factor beyond the extent can never divide it.
    const std::int64_t bad = rep[dim] + 1;
    const RewriteResult r = try_change_paving(model, "yhf", dim, bad);
    EXPECT_FALSE(r.legality.ok);
    EXPECT_FALSE(r.legality.reason.empty()) << "rejection must carry a diagnostic";
    EXPECT_FALSE(r.model.has_value());
  }
}

TEST(OptProperty, FusionRejectionsCarryDiagnostics) {
  const aol::Model model = apps::build_single_channel_model(DownscalerConfig::tiny());
  // Not an intermediate: model inputs/outputs and unknown names all
  // name a reason instead of silently failing.
  for (const std::string arr : {"frame_y", "out_y", "nonexistent"}) {
    const RewriteResult r = try_fuse(model, arr);
    EXPECT_FALSE(r.legality.ok) << arr;
    EXPECT_FALSE(r.legality.reason.empty()) << arr << ": rejection must carry a diagnostic";
    EXPECT_FALSE(r.model.has_value()) << arr;
  }
}

TEST(OptProperty, CostGatedSearchPreservesOdtMappingOnRandomGeometries) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 6; ++trial) {
    const DownscalerConfig cfg = random_config(rng);
    const aol::Model model = trial % 2 == 0 ? apps::build_single_channel_model(cfg)
                                            : apps::build_downscaler_model(cfg);
    for (int level : {1, 2}) {
      SearchOptions options;
      options.level = level;
      const OptResult result = optimize(model, options);
      const std::string what =
          cat(cfg.height, "x", cfg.width, " O", level, " (", result.rewrites.size(),
              " rewrites)");
      // The cost gate may adopt nothing on a small geometry; whatever
      // it adopted, the optimized model must still compute the same
      // function — and never with *more* tasks.
      EXPECT_LE(result.model.tasks().size(), model.tasks().size()) << what;
      expect_same_outputs(model, result.model, rng, what);
    }
  }
}

}  // namespace
}  // namespace saclo::opt
