#include "arrayol/hierarchy.hpp"

#include <gtest/gtest.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/frames.hpp"
#include "gaspard/chain.hpp"

namespace saclo::aol {
namespace {

using apps::DownscalerConfig;

RepetitiveTask copy_task(const std::string& in, const std::string& out, std::int64_t n) {
  RepetitiveTask t;
  t.name = "cp";
  t.repetition = Shape{n};
  TiledPort pi;
  pi.port = {in, Shape{n}};
  pi.pattern = Shape{1};
  pi.tiler.origin = {0};
  pi.tiler.fitting = IntMat{{1}};
  pi.tiler.paving = IntMat{{1}};
  t.inputs.push_back(std::move(pi));
  TiledPort po;
  po.port = {out, Shape{n}};
  po.pattern = Shape{1};
  po.tiler.origin = {0};
  po.tiler.fitting = IntMat{{1}};
  po.tiler.paving = IntMat{{1}};
  t.outputs.push_back(std::move(po));
  t.op.name = "inc";
  t.op.compute = [](std::span<const std::int64_t> i, std::span<std::int64_t> o) {
    o[0] = i[0] + 1;
  };
  t.op.flops_per_invocation = 1;
  t.op.c_body = "out[0] = in[0] + 1;";
  return t;
}

TEST(HierarchyTest, FlattensNestedInstances) {
  HierarchicalModel hm("Top");
  {
    Component& inc = hm.define("Inc");
    inc.add_array("a", Shape{8});
    inc.add_array("b", Shape{8});
    inc.mark_input("a");
    inc.mark_output("b");
    inc.add_task(copy_task("a", "b", 8));
  }
  {
    Component& twice = hm.define("Twice");
    twice.add_array("x", Shape{8});
    twice.add_array("tmp", Shape{8});
    twice.add_array("y", Shape{8});
    twice.mark_input("x");
    twice.mark_output("y");
    twice.add_instance(Instance{"first", "Inc", {{"a", "x"}, {"b", "tmp"}}});
    twice.add_instance(Instance{"second", "Inc", {{"a", "tmp"}, {"b", "y"}}});
  }
  {
    Component& top = hm.define("Top");
    top.add_array("in", Shape{8});
    top.add_array("out", Shape{8});
    top.mark_input("in");
    top.mark_output("out");
    top.add_instance(Instance{"t", "Twice", {{"x", "in"}, {"y", "out"}}});
  }
  Model flat = hm.flatten();
  EXPECT_NO_THROW(flat.validate());
  EXPECT_EQ(flat.tasks().size(), 2u);
  EXPECT_EQ(flat.tasks()[0].name, "t.first.cp");
  EXPECT_EQ(flat.tasks()[1].name, "t.second.cp");
  // The internal array got a unique flattened name.
  EXPECT_TRUE(flat.arrays().count("t.tmp"));

  const IntArray in = IntArray::generate(Shape{8}, [](const Index& i) { return i[0] * 5; });
  auto env = evaluate(flat, {{"in", in}});
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(env.at("out")[i], i * 5 + 2);
}

TEST(HierarchyTest, UnboundPortRejected) {
  HierarchicalModel hm("Top");
  Component& inc = hm.define("Inc");
  inc.add_array("a", Shape{4});
  inc.add_array("b", Shape{4});
  inc.mark_input("a");
  inc.mark_output("b");
  inc.add_task(copy_task("a", "b", 4));
  Component& top = hm.define("Top");
  top.add_array("in", Shape{4});
  top.mark_input("in");
  top.add_instance(Instance{"i", "Inc", {{"a", "in"}}});  // b unbound
  EXPECT_THROW(hm.flatten(), ModelError);
}

TEST(HierarchyTest, ShapeMismatchRejected) {
  HierarchicalModel hm("Top");
  Component& inc = hm.define("Inc");
  inc.add_array("a", Shape{4});
  inc.add_array("b", Shape{4});
  inc.mark_input("a");
  inc.mark_output("b");
  inc.add_task(copy_task("a", "b", 4));
  Component& top = hm.define("Top");
  top.add_array("in", Shape{8});  // wrong size
  top.add_array("out", Shape{4});
  top.mark_input("in");
  top.mark_output("out");
  top.add_instance(Instance{"i", "Inc", {{"a", "in"}, {"b", "out"}}});
  EXPECT_THROW(hm.flatten(), ModelError);
}

TEST(HierarchyTest, BindingInternalArrayRejected) {
  HierarchicalModel hm("Top");
  Component& inc = hm.define("Inc");
  inc.add_array("a", Shape{4});
  inc.add_array("b", Shape{4});
  inc.add_array("scratch", Shape{4});  // internal
  inc.mark_input("a");
  inc.mark_output("b");
  inc.add_task(copy_task("a", "b", 4));
  Component& top = hm.define("Top");
  top.add_array("in", Shape{4});
  top.add_array("out", Shape{4});
  top.mark_input("in");
  top.mark_output("out");
  top.add_instance(
      Instance{"i", "Inc", {{"a", "in"}, {"b", "out"}, {"scratch", "in"}}});
  EXPECT_THROW(hm.flatten(), ModelError);
}

TEST(HierarchyTest, InstantiationCycleRejected) {
  HierarchicalModel hm("A");
  Component& a = hm.define("A");
  a.add_array("p", Shape{4});
  a.mark_input("p");
  a.add_instance(Instance{"x", "B", {{"q", "p"}}});
  Component& b = hm.define("B");
  b.add_array("q", Shape{4});
  b.mark_input("q");
  b.add_instance(Instance{"y", "A", {{"p", "q"}}});
  EXPECT_THROW(hm.flatten(), ModelError);
}

TEST(HierarchyTest, HierarchicalDownscalerMatchesFlatModel) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  HierarchicalModel hm = apps::build_hierarchical_downscaler(cfg);
  Model flat = hm.flatten();
  EXPECT_NO_THROW(flat.validate());
  EXPECT_EQ(flat.tasks().size(), 6u);

  Model reference = apps::build_downscaler_model(cfg);
  std::map<std::string, IntArray> inputs;
  int ch = 0;
  for (const std::string& in : reference.inputs()) {
    inputs.emplace(in, apps::synthetic_channel(cfg.frame_shape(), 2, ch++));
  }
  const auto a = evaluate(flat, inputs);
  const auto b = evaluate(reference, inputs);
  for (const std::string& out : reference.outputs()) {
    EXPECT_EQ(a.at(out), b.at(out)) << out;
  }
}

TEST(HierarchyTest, FlattenedModelFeedsTheOpenClChain) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  Model flat = apps::build_hierarchical_downscaler(cfg).flatten();
  auto app = gaspard::OpenClApplication::build(flat);
  EXPECT_EQ(app.kernels().size(), 6u);
  // Kernel names carry the instance path (b.h.hf, ...).
  bool found = false;
  for (const auto& k : app.kernels()) {
    if (k.name.find("b.h.hf") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
  // And it runs, matching the reference evaluation.
  std::map<std::string, IntArray> inputs;
  int ch = 0;
  for (const std::string& in : flat.inputs()) {
    inputs.emplace(in, apps::synthetic_channel(cfg.frame_shape(), 0, ch++));
  }
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  gpu::opencl::CommandQueue queue(gpu);
  const auto actual = app.run(queue, inputs, true);
  const auto expected = evaluate(flat, inputs);
  for (const auto& [name, arr] : actual) EXPECT_EQ(arr, expected.at(name)) << name;
}

}  // namespace
}  // namespace saclo::aol
