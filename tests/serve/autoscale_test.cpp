// Elastic fleet autoscaling: the pure control law tick by tick, the
// scale_up()/scale_down() mechanics on a paused runtime, graceful-drain
// correctness under a randomized mid-burst scale-down (nothing lost,
// nothing duplicated, nothing leaked, bit-exact outputs), and the
// closed control loop reacting to a live backlog.

#include "serve/autoscale.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "serve/traffic.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

JobSpec small_job(Route route = Route::SacNongeneric) {
  JobSpec spec;
  spec.route = route;
  spec.frames = 2;
  spec.exec_frames = 1;
  return spec;
}

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
}

std::uint64_t result_checksum(const std::vector<JobResult>& results) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const JobResult& r : results) {
    fold(h, static_cast<std::uint64_t>(r.route));
    fold(h, static_cast<std::uint64_t>(r.frames));
    fold(h, static_cast<std::uint64_t>(r.last_output.elements()));
    for (std::int64_t i = 0; i < r.last_output.elements(); ++i) {
      fold(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(r.last_output[i])));
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// AutoscaleController — the pure control law, clock injected.

AutoscalePolicy test_policy() {
  AutoscalePolicy p;
  p.min_devices = 1;
  p.max_devices = 4;
  p.interval_ms = 10;
  p.queue_high = 4;
  p.queue_low = 1;
  p.up_periods = 2;
  p.down_periods = 3;
  p.cooldown_ms = 50;
  return p;
}

AutoscaleSignals signals(std::size_t queued, int active) {
  AutoscaleSignals s;
  s.queued = queued;
  s.active = active;
  return s;
}

TEST(AutoscalePolicyTest, ValidateRejectsBadShapes) {
  AutoscalePolicy p = test_policy();
  p.min_devices = 0;
  EXPECT_THROW(p.validate(), ServeError);

  p = test_policy();
  p.max_devices = 0;  // below min_devices
  EXPECT_THROW(p.validate(), ServeError);

  p = test_policy();
  p.queue_low = p.queue_high;  // empty hysteresis band
  EXPECT_THROW(p.validate(), ServeError);

  p = test_policy();
  p.interval_ms = 0;
  EXPECT_THROW(p.validate(), ServeError);

  p = test_policy();
  p.slo_low = 1.5;
  EXPECT_THROW(p.validate(), ServeError);
}

TEST(AutoscaleControllerTest, UpNeedsConsecutivePressuredPeriods) {
  AutoscaleController c(test_policy());
  // 10 jobs on 2 devices = 5 per device > queue_high of 4.
  EXPECT_EQ(c.step(signals(10, 2), 0.0), ScaleDecision::Hold);
  EXPECT_EQ(c.up_streak(), 1);
  EXPECT_EQ(c.step(signals(10, 2), 10.0), ScaleDecision::Up);
  EXPECT_EQ(c.up_streak(), 0) << "acting resets the streak";
}

TEST(AutoscaleControllerTest, ACalmPeriodResetsTheStreak) {
  AutoscaleController c(test_policy());
  EXPECT_EQ(c.step(signals(10, 2), 0.0), ScaleDecision::Hold);
  // One period inside the hysteresis band wipes the pressure history.
  EXPECT_EQ(c.step(signals(4, 2), 10.0), ScaleDecision::Hold);
  EXPECT_EQ(c.up_streak(), 0);
  EXPECT_EQ(c.step(signals(10, 2), 20.0), ScaleDecision::Hold);
  EXPECT_EQ(c.step(signals(10, 2), 30.0), ScaleDecision::Up);
}

TEST(AutoscaleControllerTest, CooldownSwallowsPressureAfterAnAction) {
  AutoscaleController c(test_policy());
  c.step(signals(10, 2), 0.0);
  ASSERT_EQ(c.step(signals(10, 2), 10.0), ScaleDecision::Up);
  // Inside the 50 ms cooldown: pressure is treated as transient.
  EXPECT_EQ(c.step(signals(20, 3), 20.0), ScaleDecision::Hold);
  EXPECT_EQ(c.step(signals(20, 3), 40.0), ScaleDecision::Hold);
  EXPECT_EQ(c.up_streak(), 0) << "cooldown periods don't accumulate streak";
  // Past the cooldown the streak rebuilds from zero.
  EXPECT_EQ(c.step(signals(20, 3), 60.0), ScaleDecision::Hold);
  EXPECT_EQ(c.step(signals(20, 3), 70.0), ScaleDecision::Up);
}

TEST(AutoscaleControllerTest, DownIsMorePatientThanUp) {
  AutoscaleController c(test_policy());  // up after 2, down after 3
  EXPECT_EQ(c.step(signals(0, 2), 0.0), ScaleDecision::Hold);
  EXPECT_EQ(c.step(signals(0, 2), 10.0), ScaleDecision::Hold);
  EXPECT_EQ(c.down_streak(), 2);
  EXPECT_EQ(c.step(signals(0, 2), 20.0), ScaleDecision::Down);
}

TEST(AutoscaleControllerTest, DecisionsAreClampedToTheFleetBounds) {
  AutoscaleController c(test_policy());
  // At max_devices, sustained pressure never asks for more.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c.step(signals(100, 4), i * 10.0), ScaleDecision::Hold);
  }
  // At min_devices, an idle fleet never drains the last device.
  AutoscaleController c2(test_policy());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(c2.step(signals(0, 1), i * 10.0), ScaleDecision::Hold);
  }
}

TEST(AutoscaleControllerTest, SloPressureTriggersUpAndVetoesDown) {
  AutoscalePolicy p = test_policy();
  p.slo_low = 0.9;
  AutoscaleController c(p);
  // Queue is idle (down pressure), but a tenant is missing its SLO:
  // scale-down is vetoed and the SLO counts as up pressure instead.
  AutoscaleSignals s = signals(0, 2);
  s.min_slo_attainment = 0.5;
  EXPECT_EQ(c.step(s, 0.0), ScaleDecision::Hold);
  EXPECT_EQ(c.down_streak(), 0);
  EXPECT_EQ(c.step(s, 10.0), ScaleDecision::Up);

  AutoscalePolicy lat = test_policy();
  lat.p99_high_ms = 5.0;
  AutoscaleController c2(lat);
  AutoscaleSignals slow = signals(0, 2);
  slow.p99_us = 20000.0;  // 20 ms p99 > 5 ms trigger
  EXPECT_EQ(c2.step(slow, 0.0), ScaleDecision::Hold);
  EXPECT_EQ(c2.step(slow, 10.0), ScaleDecision::Up);
}

// ---------------------------------------------------------------------------
// Elastic fleet mechanics.

TEST(ElasticFleetTest, FixedFleetRejectsScaling) {
  ServeRuntime::Options opts;  // max_devices = 0: the historical fixed fleet
  ServeRuntime runtime(opts);
  EXPECT_THROW(runtime.scale_up(), ServeError);
  EXPECT_THROW(runtime.scale_down(), ServeError);
  EXPECT_EQ(runtime.active_devices(), 2);
  runtime.drain();
}

TEST(ElasticFleetTest, ValidatesTheElasticOptions) {
  ServeRuntime::Options opts;
  opts.devices = 4;
  opts.max_devices = 2;  // ceiling below the starting fleet
  EXPECT_THROW(ServeRuntime runtime(opts), ServeError);
}

TEST(ElasticFleetTest, ScaleUpActivatesPrebuiltSlots) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.max_devices = 3;
  opts.event_log_capacity = 64;
  ServeRuntime runtime(opts);
  EXPECT_EQ(runtime.device_count(), 3) << "slots are pre-built";
  EXPECT_EQ(runtime.active_devices(), 1);
  EXPECT_TRUE(runtime.device_active(0));
  EXPECT_FALSE(runtime.device_active(1));

  EXPECT_EQ(runtime.scale_up(), 1);
  EXPECT_EQ(runtime.scale_up(), 2);
  EXPECT_EQ(runtime.active_devices(), 3);
  EXPECT_THROW(runtime.scale_up(), ServeError) << "at max_devices";

  // The activations are in the event log with the new active count.
  int scale_ups = 0;
  for (const obs::Event& e : runtime.event_log()->snapshot()) {
    if (e.type == obs::EventType::ScaleUp) {
      ++scale_ups;
      EXPECT_EQ(e.arg, 1 + scale_ups);
    }
  }
  EXPECT_EQ(scale_ups, 2);
  runtime.drain();
}

TEST(ElasticFleetTest, ScaleDownRehomesQueuedJobsAndRetiresTheSlot) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.max_devices = 4;
  opts.start_paused = true;  // hold dispatch: queue depths are observable
  opts.queue_capacity = 8;
  opts.event_log_capacity = 64;
  ServeRuntime runtime(opts);

  // Four equal jobs alternate across the two active devices.
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(small_job()));
  {
    const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
    EXPECT_EQ(s.devices[0].queue_depth, 2);
    EXPECT_EQ(s.devices[1].queue_depth, 2);
  }

  // Drain device 1 while paused: its queued jobs move to device 0 and
  // the slot retires (the retirement path runs even while paused).
  EXPECT_EQ(runtime.scale_down(1), 1);
  EXPECT_FALSE(runtime.device_active(1));
  EXPECT_EQ(runtime.active_devices(), 1);
  {
    const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
    EXPECT_EQ(s.devices[0].queue_depth, 4);
    EXPECT_EQ(s.devices[1].queue_depth, 0);
    EXPECT_EQ(s.scale_downs, 1);
    EXPECT_EQ(s.jobs_rehomed, 2);
  }

  // Draining the last active device would empty the fleet.
  EXPECT_THROW(runtime.scale_down(0), ServeError);
  // A non-active target is a caller error.
  EXPECT_THROW(runtime.scale_down(1), ServeError);
  EXPECT_THROW(runtime.scale_down(99), ServeError);

  runtime.resume();
  for (auto& f : futures) EXPECT_GT(f.get().last_output.elements(), 0);
  runtime.drain();

  // The drain left nothing behind: started with 2 re-homed, completed
  // with 0 reclaimed buffers.
  bool saw_started = false;
  bool saw_complete = false;
  for (const obs::Event& e : runtime.event_log()->snapshot()) {
    if (e.type == obs::EventType::DrainStarted) {
      saw_started = true;
      EXPECT_EQ(e.device, 1);
      EXPECT_EQ(e.arg, 2);
    }
    if (e.type == obs::EventType::DrainComplete) {
      saw_complete = true;
      EXPECT_EQ(e.device, 1);
      EXPECT_EQ(e.arg, 0) << "retired device leaked buffers";
    }
  }
  EXPECT_TRUE(saw_started);
  EXPECT_TRUE(saw_complete);
}

TEST(ElasticFleetTest, ScaleDownPicksTheLeastBackloggedVictim) {
  ServeRuntime::Options opts;
  opts.devices = 3;
  opts.max_devices = 3;
  opts.start_paused = true;
  opts.queue_capacity = 8;
  ServeRuntime runtime(opts);

  // 0 and 1 get two jobs each (least-loaded alternation over three
  // devices places the first three jobs on 0,1,2 and the fourth on 0 —
  // so give 2's lone job to the test by submitting five).
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(runtime.submit(small_job()));
  // Depths now 2,2,1: the default victim is device 2.
  EXPECT_EQ(runtime.scale_down(), 2);
  EXPECT_FALSE(runtime.device_active(2));

  runtime.resume();
  for (auto& f : futures) f.get();
  runtime.drain();
}

TEST(ElasticFleetTest, WarmingDeviceIsPlacementDeprioritized) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.max_devices = 2;
  opts.warmup_ms = 60000;  // effectively forever at test scale
  opts.start_paused = true;
  opts.queue_capacity = 8;
  ServeRuntime runtime(opts);

  runtime.scale_up();
  EXPECT_EQ(runtime.active_devices(), 2);

  // The fresh device is warming: even though its backlog estimate is
  // zero, placement keeps preferring the warmed-up device 0.
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(runtime.submit(small_job()));
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.devices[0].queue_depth, 3);
  EXPECT_EQ(s.devices[1].queue_depth, 0);

  runtime.resume();
  for (auto& f : futures) f.get();
  runtime.drain();
}

// ---------------------------------------------------------------------------
// Drain correctness.

TEST(ElasticFleetTest, RandomizedMidBurstScalingLosesNothingAndStaysBitExact) {
  // The drain-correctness property the whole tentpole hangs on: a
  // fleet that randomly grows and shrinks mid-burst completes every
  // accepted job exactly once, leaks nothing, and produces the same
  // bytes as a fleet that never scaled.
  const int kJobs = 36;
  std::vector<JobSpec> specs;
  std::mt19937_64 rng(20260807);
  const Route routes[] = {Route::SacNongeneric, Route::SacGeneric, Route::Gaspard};
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec = small_job(routes[rng() % 3]);
    spec.frames = 2 + static_cast<int>(rng() % 3);
    specs.push_back(spec);
  }

  // Reference: a fixed single-device fleet (bit-exactness anchor).
  std::uint64_t reference = 0;
  {
    ServeRuntime::Options opts;
    opts.devices = 1;
    opts.queue_capacity = kJobs;
    ServeRuntime runtime(opts);
    std::vector<std::future<JobResult>> futures;
    for (const JobSpec& spec : specs) futures.push_back(runtime.submit(spec));
    std::vector<JobResult> results;
    for (auto& f : futures) results.push_back(f.get());
    runtime.drain();
    reference = result_checksum(results);
  }

  // Elastic run: random scale ops race the burst from a second thread.
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.max_devices = 4;
  opts.queue_capacity = kJobs;
  opts.event_log_capacity = 256;
  ServeRuntime runtime(opts);

  std::atomic<bool> done{false};
  std::thread scaler([&] {
    std::mt19937_64 srng(7);
    while (!done.load()) {
      try {
        if (srng() % 2 == 0) {
          runtime.scale_down();
        } else {
          runtime.scale_up();
        }
      } catch (const ServeError&) {
        // At a bound or racing another op — expected, keep going.
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::future<JobResult>> futures;
  for (const JobSpec& spec : specs) {
    futures.push_back(runtime.submit(spec));
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  std::vector<JobResult> results;
  for (auto& f : futures) results.push_back(f.get());  // throws on any loss
  done.store(true);
  scaler.join();
  runtime.drain();

  // Nothing lost, nothing duplicated, nothing leaked, same bytes.
  EXPECT_EQ(results.size(), static_cast<std::size_t>(kJobs));
  EXPECT_EQ(result_checksum(results), reference);
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, kJobs);
  EXPECT_EQ(s.jobs_failed, 0);
  for (const obs::Event& e : runtime.event_log()->snapshot()) {
    if (e.type == obs::EventType::DrainComplete) {
      EXPECT_EQ(e.arg, 0) << "drain of device " << e.device << " leaked buffers";
    }
  }
}

TEST(ElasticFleetTest, InBackoffRetriesAreRehomedByADrain) {
  // A job sitting out its retry backoff on a draining device must be
  // re-homed with its gate intact — and still complete elsewhere.
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.max_devices = 2;
  opts.queue_capacity = 4;
  opts.retry_backoff_base_ms = 300.0;  // long enough to drain mid-backoff
  opts.degraded_cooldown_ms = -1.0;    // device 0 stays degraded
  opts.fault_plan = testsupport::FaultPlanBuilder().fail_after_kernels(0, 0).build();
  opts.event_log_capacity = 64;
  ServeRuntime runtime(opts);

  // The first job lands on device 0 (least-loaded tie-break), faults on
  // its first kernel, and re-enqueues on device 1 behind the backoff.
  auto future = runtime.submit(small_job());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  auto retry_on_survivor = [&] {
    return runtime.metrics().snapshot().devices[1].queue_depth == 1;
  };
  while (!retry_on_survivor() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(retry_on_survivor()) << "retry never reached the survivor's queue";

  // Drain device 1 while the retry is still gated: the pending re-homes
  // to device 0 (degraded but operative — the only survivor).
  EXPECT_EQ(runtime.scale_down(1), 1);
  EXPECT_FALSE(runtime.device_active(1));

  const JobResult r = future.get();  // completes despite fault + drain
  EXPECT_GT(r.last_output.elements(), 0);
  EXPECT_EQ(r.attempts, 1);
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 1);
  EXPECT_GE(s.jobs_rehomed, 1);
}

// ---------------------------------------------------------------------------
// The closed loop.

TEST(AutoscalerTest, GrowsTheFleetUnderBacklogPressure) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.max_devices = 3;
  opts.start_paused = true;  // the backlog can only grow: deterministic pressure
  opts.queue_capacity = 16;
  ServeRuntime runtime(opts);

  AutoscalePolicy policy;
  policy.min_devices = 1;
  policy.max_devices = 3;
  policy.interval_ms = 5;
  policy.queue_high = 2;
  policy.up_periods = 2;
  policy.cooldown_ms = 10;
  Autoscaler scaler(runtime, policy);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 12; ++i) futures.push_back(runtime.submit(small_job()));

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (runtime.active_devices() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(runtime.active_devices(), 3) << "the loop never reached max_devices";

  scaler.stop();
  const Autoscaler::Stats stats = scaler.stats();
  EXPECT_GE(stats.periods, 2);
  EXPECT_GE(stats.ups, 2);

  runtime.resume();
  for (auto& f : futures) f.get();
  runtime.drain();
}

TEST(AutoscalerTest, StopIsIdempotentAndStopsThePeriods) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.max_devices = 2;
  ServeRuntime runtime(opts);
  AutoscalePolicy policy;
  policy.min_devices = 1;
  policy.max_devices = 2;
  policy.interval_ms = 5;
  Autoscaler scaler(runtime, policy);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  scaler.stop();
  const std::int64_t periods = scaler.stats().periods;
  scaler.stop();  // idempotent
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(scaler.stats().periods, periods);
  runtime.drain();
}

// ---------------------------------------------------------------------------
// Seeded replay stress: the whole stack under one roof — generator,
// replayer, autoscaler, drains, work stealing — sized for the TSan job.

TEST(AutoscaleReplayStressTest, SeededReplayUnderAutoscalingAccountsForEverything) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.seed = 1234;
  spec.duration_ms = 600;
  spec.base_rate_hz = 90;
  const TrafficTrace trace = generate_trace(spec);

  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.max_devices = 3;
  opts.queue_capacity = trace.arrivals.size();  // shed-free
  opts.work_stealing = true;
  opts.warmup_ms = 20.0;
  opts.event_log_capacity = 4096;
  ServeRuntime runtime(opts);

  AutoscalePolicy policy;
  policy.min_devices = 1;
  policy.max_devices = 3;
  policy.interval_ms = 10;
  policy.queue_high = 3;
  policy.queue_low = 1;
  policy.up_periods = 1;
  policy.down_periods = 3;
  policy.cooldown_ms = 40;
  Autoscaler scaler(runtime, policy);

  const ReplayStats stats = replay_trace(runtime, trace, 2.0);
  scaler.stop();
  runtime.drain();

  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(trace.arrivals.size()));
  EXPECT_EQ(stats.completed + stats.failed + stats.shed, stats.submitted);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.failed, 0);

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, stats.completed);
  for (const obs::Event& e : runtime.event_log()->snapshot()) {
    if (e.type == obs::EventType::DrainComplete) {
      EXPECT_EQ(e.arg, 0) << "drain of device " << e.device << " leaked buffers";
    }
  }
}

}  // namespace
}  // namespace saclo::serve
