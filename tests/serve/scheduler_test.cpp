#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "serve/job.hpp"
#include "support/mini_json.hpp"

namespace saclo::serve {
namespace {

JobSpec small_job(Route route = Route::SacNongeneric) {
  JobSpec spec;
  spec.route = route;
  spec.frames = 2;
  spec.exec_frames = 1;
  return spec;
}

TEST(ServeRuntimeTest, FleetResultsAreBitExactAgainstSingleDevice) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  ServeRuntime runtime(opts);

  for (Route route : {Route::SacNongeneric, Route::SacGeneric, Route::Gaspard}) {
    JobSpec spec;
    spec.route = route;
    spec.frames = 3;  // every frame executes functionally (exec_frames = -1)
    const JobResult reference = reference_run(spec, opts.device);
    ASSERT_GT(reference.last_output.elements(), 0) << route_name(route);

    // Two copies of the job so both fleet devices are exercised.
    auto f1 = runtime.submit(spec);
    auto f2 = runtime.submit(spec);
    const JobResult r1 = f1.get();
    const JobResult r2 = f2.get();
    EXPECT_EQ(r1.last_output, reference.last_output) << route_name(route);
    EXPECT_EQ(r2.last_output, reference.last_output) << route_name(route);
    EXPECT_GT(r1.sim_wall_us, 0.0);
    EXPECT_GE(r1.latency_us, r1.exec_us);
  }
}

TEST(ServeRuntimeTest, SimulatedThroughputScalesAcrossDevices) {
  // The tentpole acceptance criterion: the same 16 jobs on 4 devices
  // finish in at most ~1/4 of the simulated fleet time of 1 device,
  // so frames/s of simulated time scales >= 3x.
  const int kJobs = 16;
  double fps[2] = {0, 0};
  const int device_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServeRuntime::Options opts;
    opts.devices = device_counts[i];
    opts.queue_capacity = kJobs;
    ServeRuntime runtime(opts);
    std::vector<std::future<JobResult>> futures;
    for (int j = 0; j < kJobs; ++j) {
      JobSpec spec = small_job();
      spec.frames = 8;
      futures.push_back(runtime.submit(spec));
    }
    for (auto& f : futures) f.get();
    runtime.drain();
    fps[i] = runtime.metrics().snapshot().throughput_fps_sim;
    ASSERT_GT(fps[i], 0.0);
  }
  EXPECT_GE(fps[1] / fps[0], 3.0) << "1 device: " << fps[0] << " fps, 4 devices: " << fps[1];
}

TEST(ServeRuntimeTest, LeastLoadedPlacementBalancesEqualJobs) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.start_paused = true;  // hold dispatch so queue depths are observable
  ServeRuntime runtime(opts);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(small_job()));

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.devices[0].queue_depth, 2);
  EXPECT_EQ(s.devices[1].queue_depth, 2);

  runtime.drain();
  for (auto& f : futures) EXPECT_GE(f.get().device, 0);
}

TEST(ServeRuntimeTest, BigJobShiftsSmallJobsToTheOtherDevice) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.start_paused = true;
  ServeRuntime runtime(opts);

  JobSpec big = small_job();
  big.frames = 32;  // cost-model estimate dwarfs three small jobs
  std::vector<std::future<JobResult>> futures;
  futures.push_back(runtime.submit(big));
  for (int i = 0; i < 3; ++i) futures.push_back(runtime.submit(small_job()));

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.devices[0].queue_depth, 1);
  EXPECT_EQ(s.devices[1].queue_depth, 3);

  runtime.drain();
  EXPECT_EQ(futures[0].get().device, 0);
  for (int i = 1; i < 4; ++i) EXPECT_EQ(futures[i].get().device, 1);
}

TEST(ServeRuntimeTest, TrySubmitShedsLoadWhenTheBacklogIsFull) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.queue_capacity = 2;
  opts.start_paused = true;
  ServeRuntime runtime(opts);

  auto f1 = runtime.try_submit(small_job());
  auto f2 = runtime.try_submit(small_job());
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(runtime.queued_jobs(), 2u);

  // Backlog at capacity: the non-blocking path refuses.
  EXPECT_FALSE(runtime.try_submit(small_job()).has_value());

  runtime.drain();
  EXPECT_EQ(runtime.queued_jobs(), 0u);
  EXPECT_EQ(runtime.inflight_jobs(), 0u);
  // Space freed up: submission works again.
  auto f3 = runtime.try_submit(small_job());
  ASSERT_TRUE(f3.has_value());
  EXPECT_GT(f3->get().sim_wall_us, 0.0);
}

TEST(ServeRuntimeTest, BlockingSubmitWaitsForSpace) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.queue_capacity = 2;
  ServeRuntime runtime(opts);

  // More jobs than capacity: submit() must block-and-resume rather than
  // fail, and every future must still deliver.
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) EXPECT_EQ(f.get().device, 0);
  EXPECT_EQ(runtime.metrics().snapshot().jobs_completed, 6);
}

TEST(ServeRuntimeTest, SubmitAfterShutdownIsRejected) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  ServeRuntime runtime(opts);
  runtime.shutdown();
  EXPECT_THROW(runtime.submit(small_job()), ServeError);
  EXPECT_FALSE(runtime.try_submit(small_job()).has_value());
}

TEST(ServeRuntimeTest, InvalidSpecsAreRejectedAtSubmission) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  ServeRuntime runtime(opts);
  JobSpec bad;
  bad.frames = 0;
  EXPECT_THROW(runtime.submit(bad), ServeError);
  JobSpec too_many_exec = small_job();
  too_many_exec.exec_frames = 99;
  EXPECT_THROW(runtime.submit(too_many_exec), ServeError);
}

TEST(ServeRuntimeTest, ConcurrentSubmittersAllGetTheirResults) {
  // The ThreadSanitizer target: many producer threads race submit()
  // against two dispatcher threads and the metrics reader.
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.queue_capacity = 8;  // forces backpressure under the race
  ServeRuntime runtime(opts);

  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 6;
  std::vector<std::thread> producers;
  std::vector<std::vector<std::future<JobResult>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&runtime, &futures, t] {
      for (int i = 0; i < kJobsPerThread; ++i) {
        futures[static_cast<std::size_t>(t)].push_back(runtime.submit(small_job()));
      }
    });
  }
  for (auto& p : producers) p.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const JobResult r = f.get();
      EXPECT_GE(r.device, 0);
      EXPECT_LT(r.device, 2);
      EXPECT_GT(r.sim_wall_us, 0.0);
    }
  }
  runtime.drain();
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, kThreads * kJobsPerThread);
  EXPECT_EQ(s.jobs_failed, 0);
}

TEST(ServeRuntimeTest, AllocatorReachesZeroMissSteadyState) {
  // Acceptance criterion: after one warmup job the caching allocator
  // serves every further (identical) job without touching the raw pool.
  ServeRuntime::Options opts;
  opts.devices = 1;
  ServeRuntime runtime(opts);

  runtime.submit(small_job()).get();
  runtime.drain();
  const CachingDeviceAllocator::Stats warm = runtime.allocator_stats(0);
  ASSERT_GT(warm.misses, 0);  // warmup populated the cache

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) f.get();
  runtime.drain();

  const CachingDeviceAllocator::Stats steady = runtime.allocator_stats(0);
  EXPECT_EQ(steady.misses, warm.misses) << "steady state must not hit the raw pool";
  EXPECT_GT(steady.hits, warm.hits);
  EXPECT_EQ(steady.live_blocks, 0);
}

TEST(ServeRuntimeTest, MetricsJsonAndTraceExportAreWellFormed) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  ServeRuntime runtime(opts);
  runtime.submit(small_job()).get();
  runtime.drain();

  const testsupport::Json metrics = testsupport::parse_json(runtime.metrics_json());
  EXPECT_DOUBLE_EQ(metrics.at("jobs_completed").number, 1.0);
  ASSERT_EQ(metrics.at("per_device").array.size(), 2u);
  EXPECT_TRUE(metrics.at("per_device").array[0].has("allocator"));

  // The device that ran the job has a non-empty, parseable Chrome trace.
  const int device = static_cast<int>(
      metrics.at("per_device").array[0].at("jobs").number > 0 ? 0 : 1);
  const testsupport::Json trace = testsupport::parse_json(runtime.device_trace_json(device));
  EXPECT_GT(trace.at("traceEvents").array.size(), 0u);

  EXPECT_NE(runtime.report().find("throughput"), std::string::npos);
}

TEST(ServeRuntimeTest, DeviceSimClocksAdvanceOnlyWhereJobsRan) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.start_paused = true;
  ServeRuntime runtime(opts);
  auto f = runtime.submit(small_job());  // lands on device 0
  runtime.drain();
  EXPECT_EQ(f.get().device, 0);
  EXPECT_GT(runtime.device_sim_clock_us(0), 0.0);
  EXPECT_EQ(runtime.device_sim_clock_us(1), 0.0);
}

}  // namespace
}  // namespace saclo::serve
