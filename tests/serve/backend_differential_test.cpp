// Cross-backend differential suite: the sim and host execution backends
// must produce byte-identical downscaler output for the same job — both
// SaC tilers and the GASPARD route, across geometries, through the
// single-device reference path and the serving fleet, and under
// injected faults with failover. This is the suite the CI
// backend-differential job gates on.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <string>
#include <tuple>
#include <vector>

#include "fault/fault.hpp"
#include "gpu/backend_kind.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

using testsupport::expect_zero_allocator_leaks;
using testsupport::FaultPlanBuilder;
using testsupport::faulty_fleet_options;

enum class Geometry { Tiny, Wide };

const char* geometry_name(Geometry g) { return g == Geometry::Tiny ? "Tiny" : "Wide"; }

apps::DownscalerConfig config_for(Geometry g) {
  apps::DownscalerConfig cfg = apps::DownscalerConfig::tiny();
  if (g == Geometry::Wide) {
    // Still test-sized, but a different paving multiple in both
    // directions so tile boundaries land elsewhere than in tiny().
    cfg.height = 36;
    cfg.width = 64;
  }
  return cfg;
}

JobSpec job_for(Route route, Geometry g) {
  JobSpec spec;
  spec.route = route;
  spec.config = config_for(g);
  spec.frames = 3;  // exec_frames = -1: every frame executes functionally
  return spec;
}

class BackendDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Route, Geometry>> {};

// Single-device reference path: same spec, sim vs host backend — the
// output bytes and the operation mix must both be identical. The op
// counts matter beyond the pixels: identical counts are what make one
// fault plan strike the same boundary on either backend.
TEST_P(BackendDifferentialTest, ReferenceRunIsBitExactAcrossBackends) {
  const JobSpec spec = job_for(std::get<0>(GetParam()), std::get<1>(GetParam()));
  ServeRuntime::Options defaults;

  const JobResult sim = reference_run(spec, defaults.device, 1, gpu::BackendKind::Sim);
  const JobResult host = reference_run(spec, defaults.device, 1, gpu::BackendKind::Host);
  ASSERT_GT(sim.last_output.elements(), 0);

  EXPECT_EQ(host.last_output, sim.last_output) << "host diverged from sim";
  EXPECT_EQ(host.ops.kernel_launches, sim.ops.kernel_launches);
  EXPECT_EQ(host.ops.h2d_calls, sim.ops.h2d_calls);
  EXPECT_EQ(host.ops.d2h_calls, sim.ops.d2h_calls);

  // More workers change the host backend's chunking, never its output.
  const JobResult host4 = reference_run(spec, defaults.device, 4, gpu::BackendKind::Host);
  EXPECT_EQ(host4.last_output, sim.last_output) << "host output depends on worker count";
}

// The serving fleet on the host backend must agree with the sim
// reference, job for job.
TEST_P(BackendDifferentialTest, FleetOnHostBackendMatchesSimReference) {
  const JobSpec spec = job_for(std::get<0>(GetParam()), std::get<1>(GetParam()));
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.backend = gpu::BackendKind::Host;
  const JobResult reference = reference_run(spec, opts.device);

  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(spec));
  for (auto& f : futures) {
    EXPECT_EQ(f.get().last_output, reference.last_output);
  }
  runtime.drain();
  EXPECT_EQ(runtime.metrics().snapshot().jobs_completed, 4);
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutes, BackendDifferentialTest,
    ::testing::Combine(::testing::Values(Route::SacNongeneric, Route::SacGeneric,
                                         Route::Gaspard),
                       ::testing::Values(Geometry::Tiny, Geometry::Wide)),
    [](const ::testing::TestParamInfo<BackendDifferentialTest::ParamType>& info) {
      return std::string(route_name(std::get<0>(info.param))) + "_" +
             geometry_name(std::get<1>(info.param));
    });

class BackendFaultDifferentialTest : public ::testing::TestWithParam<Route> {};

// The acceptance scenario of the backends tentpole: the same fault plan
// on the same fleet, once per backend. On both, the job must fail over
// off the faulted device and complete bit-exact against the fault-free
// reference — identical fault boundaries are part of the backend
// contract, not a sim-only feature.
TEST_P(BackendFaultDifferentialTest, FaultedFailoverIsBitExactOnEveryBackend) {
  const JobSpec spec = job_for(GetParam(), Geometry::Tiny);
  ServeRuntime::Options defaults;
  const JobResult reference = reference_run(spec, defaults.device);
  ASSERT_GE(reference.ops.kernel_launches, 2);

  for (gpu::BackendKind backend : {gpu::BackendKind::Sim, gpu::BackendKind::Host}) {
    // Mid-job kernel fault on device 0; device 1 finishes the work.
    ServeRuntime::Options opts = faulty_fleet_options(
        2, FaultPlanBuilder()
               .fail_after_kernels(0, reference.ops.kernel_launches / 2)
               .build());
    opts.backend = backend;
    ServeRuntime runtime(opts);
    auto future = runtime.submit(spec);
    runtime.resume();
    const JobResult r = future.get();
    runtime.drain();

    const char* name = gpu::backend_kind_name(backend);
    EXPECT_EQ(r.device, 1) << name;
    EXPECT_EQ(r.attempts, 1) << name;
    EXPECT_EQ(r.last_output, reference.last_output)
        << name << ": faulted failover diverged from the fault-free run";
    const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
    EXPECT_EQ(s.device_faults, 1) << name;
    EXPECT_EQ(s.jobs_completed, 1) << name;
    EXPECT_EQ(s.jobs_failed, 0) << name;
    expect_zero_allocator_leaks(runtime);
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoutes, BackendFaultDifferentialTest,
                         ::testing::Values(Route::SacNongeneric, Route::SacGeneric,
                                           Route::Gaspard),
                         [](const ::testing::TestParamInfo<Route>& info) {
                           return route_name(info.param);
                         });

// --- Fused-vs-unfused differential -------------------------------------------
//
// The Array-OL optimizer rewrites the gaspard model (kernel fusion,
// paving changes, channel merges) before code generation. The rewritten
// schedule must be bit-identical to the unfused one on every backend —
// the optimizer is a scheduling change, never a semantic one.

/// A geometry large enough that the cost model actually adopts the
/// fusion rewrites (tiny() is refused by the occupancy floor).
apps::DownscalerConfig fusing_config() {
  apps::DownscalerConfig cfg = apps::DownscalerConfig::tiny();
  cfg.height = 180;
  cfg.width = 256;
  return cfg;
}

class OptLevelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(OptLevelDifferentialTest, FusedScheduleIsBitExactOnEveryBackend) {
  JobSpec spec;
  spec.route = Route::Gaspard;
  spec.config = fusing_config();
  spec.frames = 2;
  ServeRuntime::Options defaults;
  const JobResult unfused = reference_run(spec, defaults.device);
  ASSERT_GT(unfused.last_output.elements(), 0);

  spec.opt_level = GetParam();
  for (gpu::BackendKind backend : {gpu::BackendKind::Sim, gpu::BackendKind::Host}) {
    const char* name = gpu::backend_kind_name(backend);
    const JobResult fused = reference_run(spec, defaults.device, 1, backend);
    EXPECT_EQ(fused.last_output, unfused.last_output)
        << name << ": opt_level " << spec.opt_level << " diverged from unfused";
    // The whole point of the rewrite: fewer, larger kernels per frame.
    EXPECT_LT(fused.ops.kernel_launches, unfused.ops.kernel_launches)
        << name << ": opt_level " << spec.opt_level << " did not reduce launches";
  }
}

TEST_P(OptLevelDifferentialTest, FusedFaultedFailoverMatchesUnfusedReference) {
  JobSpec spec;
  spec.route = Route::Gaspard;
  spec.config = fusing_config();
  spec.frames = 2;
  ServeRuntime::Options defaults;
  const JobResult unfused = reference_run(spec, defaults.device);

  spec.opt_level = GetParam();
  const JobResult fused_ref = reference_run(spec, defaults.device);
  ASSERT_GE(fused_ref.ops.kernel_launches, 2);
  for (gpu::BackendKind backend : {gpu::BackendKind::Sim, gpu::BackendKind::Host}) {
    ServeRuntime::Options opts = faulty_fleet_options(
        2, FaultPlanBuilder()
               .fail_after_kernels(0, fused_ref.ops.kernel_launches / 2)
               .build());
    opts.backend = backend;
    ServeRuntime runtime(opts);
    auto future = runtime.submit(spec);
    runtime.resume();
    const JobResult r = future.get();
    runtime.drain();

    const char* name = gpu::backend_kind_name(backend);
    EXPECT_EQ(r.attempts, 1) << name;
    EXPECT_EQ(r.last_output, unfused.last_output)
        << name << ": fused faulted failover diverged from the unfused fault-free run";
    expect_zero_allocator_leaks(runtime);
  }
}

INSTANTIATE_TEST_SUITE_P(FusionLevels, OptLevelDifferentialTest, ::testing::Values(1, 2),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "O" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace saclo::serve
