#include "serve/allocator.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "gpu/memory.hpp"

namespace saclo::serve {
namespace {

TEST(CachingAllocatorTest, SizeClassesArePow2WithA256Floor) {
  EXPECT_EQ(CachingDeviceAllocator::size_class(1), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(255), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(256), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(257), 512);
  EXPECT_EQ(CachingDeviceAllocator::size_class(1000), 1024);
  EXPECT_EQ(CachingDeviceAllocator::size_class(4096), 4096);
  EXPECT_EQ(CachingDeviceAllocator::size_class(4097), 8192);
}

TEST(CachingAllocatorTest, ReusesAFreedBlockOfTheSameClass) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);
  EXPECT_EQ(a.bytes, 100);  // logical size; backing store is the class
  EXPECT_EQ(pool.bytes(a).size(), 256u);
  cache.free(a);

  // Same class (256) -> served from the cache, same pool buffer.
  const gpu::BufferHandle b = cache.allocate(120);
  EXPECT_EQ(b.id, a.id);

  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.frees, 1);
  EXPECT_EQ(s.live_blocks, 1);
  EXPECT_EQ(s.cached_blocks, 0);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(CachingAllocatorTest, DifferentClassMissesTheCache) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);  // class 256
  cache.free(a);
  const gpu::BufferHandle b = cache.allocate(300);  // class 512
  EXPECT_NE(b.id, a.id);

  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.cached_blocks, 1);  // the 256 block stays parked
  EXPECT_EQ(s.cached_bytes, 256);
}

TEST(CachingAllocatorTest, RecycledBlocksComeBackZeroFilled) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(64);
  for (std::byte& b : pool.bytes(a)) b = std::byte{0xAB};
  cache.free(a);

  const gpu::BufferHandle b = cache.allocate(64);
  ASSERT_EQ(b.id, a.id);
  for (std::byte byte : pool.bytes(b)) EXPECT_EQ(byte, std::byte{0});
}

TEST(CachingAllocatorTest, DoubleFreeOfARecycledHandleThrows) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);
  cache.free(a);
  try {
    cache.free(a);
    FAIL() << "expected DeviceMemoryError";
  } catch (const gpu::DeviceMemoryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("double free"), std::string::npos) << what;
    EXPECT_NE(what.find("recycled"), std::string::npos) << what;
  }
}

TEST(CachingAllocatorTest, ForeignHandlesAreForwardedToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  const gpu::BufferHandle raw = pool.allocate(64);
  CachingDeviceAllocator cache(pool);
  cache.free(raw);  // allocated before the cache was installed
  EXPECT_EQ(pool.live_allocations(), 0u);
  EXPECT_EQ(cache.stats().frees, 0);  // not parked, not counted
}

TEST(CachingAllocatorTest, TrimReleasesParkedBlocksToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  cache.free(cache.allocate(100));
  cache.free(cache.allocate(300));
  EXPECT_EQ(pool.live_allocations(), 2u);

  cache.trim();
  EXPECT_EQ(pool.live_allocations(), 0u);
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.cached_blocks, 0);
  EXPECT_EQ(s.cached_bytes, 0);
  EXPECT_EQ(s.trimmed_blocks, 2);
}

TEST(CachingAllocatorTest, DeviceOomTrimsTheCacheAndRetries) {
  gpu::DeviceMemoryPool pool(1024);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(512);
  cache.free(a);  // parked: the pool still charges 512 of 1024

  // Class 1024 doesn't fit next to the parked 512 -> the allocator
  // releases the cache and retries instead of surfacing the OOM.
  const gpu::BufferHandle b = cache.allocate(1024);
  EXPECT_TRUE(b.valid());
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.trimmed_blocks, 1);
  EXPECT_EQ(s.cached_blocks, 0);
  cache.free(b);
}

TEST(CachingAllocatorTest, OomWithEmptyCacheStillThrows) {
  gpu::DeviceMemoryPool pool(1024);
  CachingDeviceAllocator cache(pool);
  EXPECT_THROW(cache.allocate(4096), gpu::DeviceMemoryError);
}

TEST(CachingAllocatorTest, FragmentationCountsUnrequestedClassBytes) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(300);  // class 512
  CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.live_bytes, 512);
  EXPECT_EQ(s.requested_bytes, 300);
  EXPECT_DOUBLE_EQ(s.fragmentation(), (512.0 - 300.0) / 512.0);

  cache.free(a);
  s = cache.stats();
  EXPECT_EQ(s.live_bytes, 0);
  EXPECT_DOUBLE_EQ(s.fragmentation(), 0.0);
}

TEST(CachingAllocatorTest, SteadyStateLoopStopsMissingAfterWarmup) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  // A frame loop allocating the same shapes every iteration: one warmup
  // round of misses, then every allocation is a cache hit and the pool
  // sees zero new raw allocations.
  const std::int64_t shapes[] = {1000, 4000, 256};
  for (std::int64_t bytes : shapes) cache.free(cache.allocate(bytes));
  const CachingDeviceAllocator::Stats warm = cache.stats();
  const std::size_t pool_blocks = pool.live_allocations();

  for (int iter = 0; iter < 10; ++iter) {
    for (std::int64_t bytes : shapes) cache.free(cache.allocate(bytes));
  }
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.misses, warm.misses);
  EXPECT_EQ(s.hits, warm.hits + 30);
  EXPECT_EQ(pool.live_allocations(), pool_blocks);
  EXPECT_EQ(pool.peak_bytes(), warm.pool_peak_bytes);
}

TEST(CachingAllocatorTest, ReclaimLiveSweepsLeakedBlocksBackToTheCache) {
  // The failover sweep: a job died mid-frame-loop and (hypothetically)
  // left live blocks behind. reclaim_live() parks them for reuse
  // instead of leaking them for the device's lifetime.
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);   // class 256
  const gpu::BufferHandle b = cache.allocate(3000);  // class 4096
  EXPECT_EQ(cache.reclaim_live(), 2);

  CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.reclaimed_blocks, 2);
  EXPECT_EQ(s.live_blocks, 0);
  EXPECT_EQ(s.live_bytes, 0);
  EXPECT_EQ(s.requested_bytes, 0);
  EXPECT_EQ(s.cached_blocks, 2);
  EXPECT_EQ(s.cached_bytes, 256 + 4096);

  // The swept blocks serve the next job from the cache...
  const gpu::BufferHandle c = cache.allocate(200);
  EXPECT_EQ(c.id, a.id);
  // ...zero-filled, so a retried job can't observe the dead job's data.
  for (std::byte byte : pool.bytes(c)) EXPECT_EQ(byte, std::byte{0});
  // The stale handle of the reclaimed block is now a double free.
  EXPECT_THROW(cache.free(b), gpu::DeviceMemoryError);

  // Idempotent when nothing is live.
  cache.free(c);
  EXPECT_EQ(cache.reclaim_live(), 0);
}

TEST(CachingAllocatorTest, DestructorReturnsCachedBlocksToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  {
    CachingDeviceAllocator cache(pool);
    cache.free(cache.allocate(100));
    cache.free(cache.allocate(5000));
    EXPECT_EQ(pool.live_allocations(), 2u);
  }
  EXPECT_EQ(pool.live_allocations(), 0u);
  EXPECT_EQ(pool.used_bytes(), 0);
}

}  // namespace
}  // namespace saclo::serve
