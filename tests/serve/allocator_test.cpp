#include "serve/allocator.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "gpu/memory.hpp"

namespace saclo::serve {
namespace {

TEST(CachingAllocatorTest, SizeClassesArePow2WithA256Floor) {
  EXPECT_EQ(CachingDeviceAllocator::size_class(1), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(255), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(256), 256);
  EXPECT_EQ(CachingDeviceAllocator::size_class(257), 512);
  EXPECT_EQ(CachingDeviceAllocator::size_class(1000), 1024);
  EXPECT_EQ(CachingDeviceAllocator::size_class(4096), 4096);
  EXPECT_EQ(CachingDeviceAllocator::size_class(4097), 8192);
}

TEST(CachingAllocatorTest, ReusesAFreedBlockOfTheSameClass) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);
  EXPECT_EQ(a.bytes, 100);  // logical size; backing store is the class
  EXPECT_EQ(pool.bytes(a).size(), 256u);
  cache.free(a);

  // Same class (256) -> served from the cache, same pool buffer.
  const gpu::BufferHandle b = cache.allocate(120);
  EXPECT_EQ(b.id, a.id);

  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.frees, 1);
  EXPECT_EQ(s.live_blocks, 1);
  EXPECT_EQ(s.cached_blocks, 0);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.5);
}

TEST(CachingAllocatorTest, DifferentClassMissesTheCache) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);  // class 256
  cache.free(a);
  const gpu::BufferHandle b = cache.allocate(300);  // class 512
  EXPECT_NE(b.id, a.id);

  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.cached_blocks, 1);  // the 256 block stays parked
  EXPECT_EQ(s.cached_bytes, 256);
}

TEST(CachingAllocatorTest, RecycledBlocksComeBackZeroFilled) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(64);
  for (std::byte& b : pool.bytes(a)) b = std::byte{0xAB};
  cache.free(a);

  const gpu::BufferHandle b = cache.allocate(64);
  ASSERT_EQ(b.id, a.id);
  for (std::byte byte : pool.bytes(b)) EXPECT_EQ(byte, std::byte{0});
}

TEST(CachingAllocatorTest, DoubleFreeOfARecycledHandleThrows) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);
  cache.free(a);
  try {
    cache.free(a);
    FAIL() << "expected DeviceMemoryError";
  } catch (const gpu::DeviceMemoryError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("double free"), std::string::npos) << what;
    EXPECT_NE(what.find("recycled"), std::string::npos) << what;
  }
}

TEST(CachingAllocatorTest, ForeignHandlesAreForwardedToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  const gpu::BufferHandle raw = pool.allocate(64);
  CachingDeviceAllocator cache(pool);
  cache.free(raw);  // allocated before the cache was installed
  EXPECT_EQ(pool.live_allocations(), 0u);
  EXPECT_EQ(cache.stats().frees, 0);  // not parked, not counted
}

TEST(CachingAllocatorTest, TrimReleasesParkedBlocksToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  cache.free(cache.allocate(100));
  cache.free(cache.allocate(300));
  EXPECT_EQ(pool.live_allocations(), 2u);

  cache.trim();
  EXPECT_EQ(pool.live_allocations(), 0u);
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.cached_blocks, 0);
  EXPECT_EQ(s.cached_bytes, 0);
  EXPECT_EQ(s.trimmed_blocks, 2);
}

TEST(CachingAllocatorTest, DeviceOomTrimsTheCacheAndRetries) {
  gpu::DeviceMemoryPool pool(1024);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(512);
  cache.free(a);  // parked: the pool still charges 512 of 1024

  // Class 1024 doesn't fit next to the parked 512 -> the allocator
  // releases the cache and retries instead of surfacing the OOM.
  const gpu::BufferHandle b = cache.allocate(1024);
  EXPECT_TRUE(b.valid());
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.trimmed_blocks, 1);
  EXPECT_EQ(s.cached_blocks, 0);
  cache.free(b);
}

TEST(CachingAllocatorTest, OomWithEmptyCacheStillThrows) {
  gpu::DeviceMemoryPool pool(1024);
  CachingDeviceAllocator cache(pool);
  EXPECT_THROW(cache.allocate(4096), gpu::DeviceMemoryError);
}

TEST(CachingAllocatorTest, FragmentationCountsUnrequestedClassBytes) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(300);  // class 512
  CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.live_bytes, 512);
  EXPECT_EQ(s.requested_bytes, 300);
  EXPECT_DOUBLE_EQ(s.fragmentation(), (512.0 - 300.0) / 512.0);

  cache.free(a);
  s = cache.stats();
  EXPECT_EQ(s.live_bytes, 0);
  EXPECT_DOUBLE_EQ(s.fragmentation(), 0.0);
}

TEST(CachingAllocatorTest, SteadyStateLoopStopsMissingAfterWarmup) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  // A frame loop allocating the same shapes every iteration: one warmup
  // round of misses, then every allocation is a cache hit and the pool
  // sees zero new raw allocations.
  const std::int64_t shapes[] = {1000, 4000, 256};
  for (std::int64_t bytes : shapes) cache.free(cache.allocate(bytes));
  const CachingDeviceAllocator::Stats warm = cache.stats();
  const std::size_t pool_blocks = pool.live_allocations();

  for (int iter = 0; iter < 10; ++iter) {
    for (std::int64_t bytes : shapes) cache.free(cache.allocate(bytes));
  }
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.misses, warm.misses);
  EXPECT_EQ(s.hits, warm.hits + 30);
  EXPECT_EQ(pool.live_allocations(), pool_blocks);
  EXPECT_EQ(pool.peak_bytes(), warm.pool_peak_bytes);
}

TEST(CachingAllocatorTest, ReclaimLiveSweepsLeakedBlocksBackToTheCache) {
  // The failover sweep: a job died mid-frame-loop and (hypothetically)
  // left live blocks behind. reclaim_live() parks them for reuse
  // instead of leaking them for the device's lifetime.
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);

  const gpu::BufferHandle a = cache.allocate(100);   // class 256
  const gpu::BufferHandle b = cache.allocate(3000);  // class 4096
  EXPECT_EQ(cache.reclaim_live(), 2);

  CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.reclaimed_blocks, 2);
  EXPECT_EQ(s.live_blocks, 0);
  EXPECT_EQ(s.live_bytes, 0);
  EXPECT_EQ(s.requested_bytes, 0);
  EXPECT_EQ(s.cached_blocks, 2);
  EXPECT_EQ(s.cached_bytes, 256 + 4096);

  // The swept blocks serve the next job from the cache...
  const gpu::BufferHandle c = cache.allocate(200);
  EXPECT_EQ(c.id, a.id);
  // ...zero-filled, so a retried job can't observe the dead job's data.
  for (std::byte byte : pool.bytes(c)) EXPECT_EQ(byte, std::byte{0});
  // The stale handle of the reclaimed block is now a double free.
  EXPECT_THROW(cache.free(b), gpu::DeviceMemoryError);

  // Idempotent when nothing is live.
  cache.free(c);
  EXPECT_EQ(cache.reclaim_live(), 0);
}

TEST(CachingAllocatorCapTest, CapEvictsLeastRecentlyParkedFirst) {
  gpu::DeviceMemoryPool pool(1 << 20);
  // Cap = two 256-byte blocks per class.
  CachingDeviceAllocator cache(pool, 512);

  const gpu::BufferHandle a = cache.allocate(100);
  const gpu::BufferHandle b = cache.allocate(100);
  const gpu::BufferHandle c = cache.allocate(100);
  const std::uint64_t a_id = a.id;
  const std::uint64_t b_id = b.id;
  const std::uint64_t c_id = c.id;
  cache.free(a);  // parked first — the coldest
  cache.free(b);
  cache.free(c);  // overflows the cap: a (LRU) is evicted, b and c stay

  CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.cap_evictions, 1);
  EXPECT_EQ(s.cached_blocks, 2);
  EXPECT_EQ(s.cached_bytes, 512);

  // Reuse is MRU: c (warmest) first, then b; a's buffer went back to
  // the pool, so the third allocation is a fresh miss.
  EXPECT_EQ(cache.allocate(100).id, c_id);
  EXPECT_EQ(cache.allocate(100).id, b_id);
  const gpu::BufferHandle fresh = cache.allocate(100);
  EXPECT_NE(fresh.id, a_id);
  s = cache.stats();
  EXPECT_EQ(s.hits, 2);
  EXPECT_EQ(s.misses, 4);
}

TEST(CachingAllocatorCapTest, CapIsPerClassNotGlobal) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool, 1024);

  // Four 256-class blocks (cap allows 4) and one 1024-class block
  // (cap allows 1): both classes fill to their own cap, no eviction.
  std::vector<gpu::BufferHandle> small;
  for (int i = 0; i < 4; ++i) small.push_back(cache.allocate(200));
  const gpu::BufferHandle big = cache.allocate(1000);
  for (const gpu::BufferHandle& h : small) cache.free(h);
  cache.free(big);
  EXPECT_EQ(cache.stats().cap_evictions, 0);
  EXPECT_EQ(cache.stats().cached_bytes, 4 * 256 + 1024);

  // Overflowing the 256 class takes more simultaneous live blocks than
  // its cap admits (reuse-then-repark can never grow the parked count):
  // five live at once, freed together, parks a fifth block over the cap
  // and evicts from that class only — the 1024 class is untouched.
  std::vector<gpu::BufferHandle> five;
  for (int i = 0; i < 5; ++i) five.push_back(cache.allocate(200));
  for (const gpu::BufferHandle& h : five) cache.free(h);
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.cap_evictions, 1);
  EXPECT_EQ(s.cached_bytes, 4 * 256 + 1024);
}

TEST(CachingAllocatorCapTest, MixedGeometryStormRespectsCapAndKeepsInvariants) {
  gpu::DeviceMemoryPool pool(8 << 20);
  const std::int64_t cap = 6144;  // a few blocks of every class under test
  CachingDeviceAllocator cache(pool, cap);

  // Deterministic mixed-geometry storm: allocation sizes cycle through
  // several size classes, three of every size live at once per round,
  // like a fleet device triple-buffering tiny and wide frames. The six
  // live 2048-class blocks (12 KiB) exceed that class's 6 KiB cap, so
  // every round's bulk free overflows it and the LRU blocks go back to
  // the pool.
  const std::int64_t sizes[] = {100, 300, 1000, 2000, 120, 900, 50, 1500};
  std::vector<gpu::BufferHandle> live;
  double last_hit_rate = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (int rep = 0; rep < 3; ++rep)
      for (std::int64_t size : sizes) live.push_back(cache.allocate(size));
    // Free in a shuffled-ish (reverse) order so park order differs from
    // allocation order.
    while (!live.empty()) {
      cache.free(live.back());
      live.pop_back();
    }
    const CachingDeviceAllocator::Stats s = cache.stats();
    // The cap bounds every class's parked bytes at all times.
    EXPECT_LE(s.cached_bytes, 4 * cap);  // 4 distinct classes in the mix
    // Steady state recycles the same warm blocks, so the hit rate is
    // monotone non-decreasing over rounds.
    EXPECT_GE(s.hit_rate() + 1e-12, last_hit_rate);
    last_hit_rate = s.hit_rate();
  }
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_GT(s.cap_evictions, 0);  // the storm did overflow classes
  EXPECT_GT(s.hit_rate(), 0.8);   // and still mostly recycled
  EXPECT_EQ(s.live_blocks, 0);

  // Double-free detection survives the cap machinery: a handle whose
  // block was cap-evicted is indistinguishable from any other stale
  // handle — freeing it again must still throw.
  const gpu::BufferHandle h = cache.allocate(100);
  cache.free(h);
  EXPECT_THROW(cache.free(h), gpu::DeviceMemoryError);
}

TEST(CachingAllocatorCapTest, ReclaimLiveEnforcesTheCapToo) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool, 512);

  // Three live blocks of one class; a fault-abort sweep parks all
  // three at once, which must not leave the class over its cap.
  (void)cache.allocate(100);
  (void)cache.allocate(100);
  (void)cache.allocate(100);
  EXPECT_EQ(cache.reclaim_live(), 3);
  const CachingDeviceAllocator::Stats s = cache.stats();
  EXPECT_EQ(s.cached_bytes, 512);
  EXPECT_GE(s.cap_evictions, 1);
}

TEST(CachingAllocatorCapTest, UncappedKeepsEveryParkedBlock) {
  gpu::DeviceMemoryPool pool(1 << 20);
  CachingDeviceAllocator cache(pool);  // 0 = uncapped, historical behavior
  std::vector<gpu::BufferHandle> blocks;
  for (int i = 0; i < 32; ++i) blocks.push_back(cache.allocate(100));
  for (const gpu::BufferHandle& h : blocks) cache.free(h);
  EXPECT_EQ(cache.stats().cap_evictions, 0);
  EXPECT_EQ(cache.stats().cached_blocks, 32);
}

TEST(CachingAllocatorTest, DestructorReturnsCachedBlocksToThePool) {
  gpu::DeviceMemoryPool pool(1 << 20);
  {
    CachingDeviceAllocator cache(pool);
    cache.free(cache.allocate(100));
    cache.free(cache.allocate(5000));
    EXPECT_EQ(pool.live_allocations(), 2u);
  }
  EXPECT_EQ(pool.live_allocations(), 0u);
  EXPECT_EQ(pool.used_bytes(), 0);
}

}  // namespace
}  // namespace saclo::serve
