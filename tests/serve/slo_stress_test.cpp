// Overload stress for the multi-tenant scheduler: 500 jobs thrown at a
// 4-device fleet with a small queue, per-tenant rate limiting, load
// shedding and injected device faults all enabled at once. The exit
// criterion is exact accounting: every one of the 500 submissions ends
// in exactly one of {completed, shed, failed} — no future hangs, no job
// is double-counted, no buffer leaks.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

using saclo::testsupport::FaultPlanBuilder;

TEST(SloStressTest, OverloadWithFaultsAccountsEveryOneOf500Submissions) {
  ServeRuntime::Options opts;
  opts.devices = 4;
  opts.queue_capacity = 16;  // well under the offered load: queue-full sheds
  opts.policy = SchedPolicy::Edf;
  opts.preemption = true;
  opts.work_stealing = true;
  opts.shed_on_full = true;
  opts.tenant_rate_limit = 2000.0;  // sustained overload: rate-limit sheds too
  opts.tenant_rate_burst = 8.0;
  opts.max_retries = 2;
  opts.retry_backoff_base_ms = 0.05;
  opts.retry_backoff_cap_ms = 0.5;
  opts.degraded_cooldown_ms = 2.0;  // faulted devices heal and rejoin
  opts.fault_plan = FaultPlanBuilder()
                        .fail_after_kernels(/*device=*/1, /*kernels=*/5)
                        .fail_after_transfers(/*device=*/2, /*transfers=*/5)
                        .build();
  ServeRuntime runtime(opts);

  const int kJobs = 500;
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    JobSpec s;
    s.route = static_cast<Route>(i % 3);
    s.frames = 2;
    s.exec_frames = 1;
    s.priority = static_cast<Priority>(i % 3);
    s.deadline_ms = i % 4 == 0 ? 2.0 : 0.0;
    s.tenant = i % 3 == 0 ? "alpha" : (i % 3 == 1 ? "beta" : "gamma");
    futures.push_back(runtime.submit(s));
  }

  // Every future must resolve — a shed job's future carries the typed
  // ShedError immediately, a fault-exhausted job's carries DeviceFault.
  int completed = 0;
  int shed = 0;
  int failed = 0;
  for (auto& f : futures) {
    try {
      const JobResult r = f.get();
      EXPECT_EQ(r.frames, 2);
      ++completed;
    } catch (const ShedError&) {
      ++shed;
    } catch (const fault::DeviceFault&) {
      ++failed;
    }
  }
  EXPECT_EQ(completed + shed + failed, kJobs);
  runtime.drain();

  // The metrics ledger must agree with the futures exactly.
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_submitted, kJobs);
  EXPECT_EQ(s.jobs_completed, completed);
  EXPECT_EQ(s.jobs_shed, shed);
  EXPECT_EQ(s.jobs_failed, failed);
  EXPECT_EQ(s.jobs_completed + s.jobs_shed + s.jobs_failed, s.jobs_submitted);

  // The overload actually happened: admission shed load (burst 8 on a
  // 500-job burst) and the per-tenant ledger covers every submission.
  EXPECT_GT(s.jobs_shed, 0);
  std::int64_t tenant_submitted = 0;
  for (const FleetMetrics::Snapshot::TenantSnapshot& t : s.tenants) {
    EXPECT_TRUE(t.tenant == "alpha" || t.tenant == "beta" || t.tenant == "gamma") << t.tenant;
    EXPECT_LE(t.completed + t.shed, t.submitted) << t.tenant;  // the rest failed
    tenant_submitted += t.submitted;
  }
  EXPECT_EQ(tenant_submitted, kJobs);

  // Faulted attempts must have returned every buffer.
  testsupport::expect_zero_allocator_leaks(runtime);
}

}  // namespace
}  // namespace saclo::serve
