// The live observability plane end to end: a ServeRuntime with an
// embedded telemetry endpoint must answer every mounted route from
// live snapshots — during the run and after drain — and the /metrics
// scrape of a drained fleet must be counter-identical to what
// --metrics-out writes. Also covers the AlertMonitor wiring: /alerts,
// the alert wire events, and the handler replacement at stop().

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "serve/alerting.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"
#include "support/mini_json.hpp"

namespace saclo::serve {
namespace {

using saclo::testsupport::FaultPlanBuilder;
using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

JobSpec small_job() {
  JobSpec spec;
  spec.frames = 2;
  spec.exec_frames = 1;
  return spec;
}

/// One GET against 127.0.0.1:port; returns (status line .. headers,
/// body) split at the blank line.
std::pair<std::string, std::string> http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect failed: " << std::strerror(errno);
  const std::string raw = "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n";
  EXPECT_EQ(::send(fd, raw.data(), raw.size(), 0), static_cast<ssize_t>(raw.size()));
  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t split = response.find("\r\n\r\n");
  if (split == std::string::npos) return {response, ""};
  return {response.substr(0, split), response.substr(split + 4)};
}

/// Drops the saclo_device_seconds_total lines: that gauge accrues real
/// wall-clock inside every snapshot, so it is the one metric two
/// scrapes legitimately disagree on.
std::string without_device_seconds(const std::string& prom) {
  std::istringstream in(prom);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.find("saclo_device_seconds_total") == std::string::npos) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

ServeRuntime::Options telemetry_options() {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.telemetry_port = 0;  // ephemeral: tests never fight over a port
  opts.event_log_capacity = 4096;
  return opts;
}

TEST(TelemetryServeTest, NoTelemetryByDefault) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  ServeRuntime runtime(opts);
  EXPECT_EQ(runtime.telemetry(), nullptr);
}

TEST(TelemetryServeTest, ScrapeAfterDrainIsCounterIdenticalToExport) {
  ServeRuntime runtime(telemetry_options());
  ASSERT_NE(runtime.telemetry(), nullptr);
  const int port = runtime.telemetry()->port();
  ASSERT_GT(port, 0);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) f.get();
  runtime.drain();

  const auto [headers, scraped] = http_get(port, "/metrics");
  EXPECT_NE(headers.find("200"), std::string::npos);
  EXPECT_NE(headers.find("text/plain; version=0.0.4"), std::string::npos)
      << "Prometheus scrapers key on the exposition-format content type";
  const std::string exported = runtime.metrics_prometheus();
  EXPECT_EQ(without_device_seconds(scraped), without_device_seconds(exported))
      << "live scrape and --metrics-out diverged beyond the wall-clock gauge";
  EXPECT_NE(scraped.find("saclo_jobs_completed_total 4"), std::string::npos);
  EXPECT_NE(scraped.find("saclo_build_info{"), std::string::npos);
  EXPECT_NE(scraped.find("saclo_events_dropped_total 0"), std::string::npos);
}

TEST(TelemetryServeTest, HealthAndReadinessReflectFleetState) {
  ServeRuntime runtime(telemetry_options());
  const int port = runtime.telemetry()->port();
  auto [h_headers, h_body] = http_get(port, "/healthz");
  EXPECT_NE(h_headers.find("200"), std::string::npos);
  EXPECT_NE(h_body.find("ok"), std::string::npos);
  auto [r_headers, r_body] = http_get(port, "/readyz");
  EXPECT_NE(r_headers.find("200"), std::string::npos);
  EXPECT_NE(r_body.find("ready"), std::string::npos);
  runtime.drain();
}

TEST(TelemetryServeTest, DebugEndpointsServeLiveSnapshots) {
  ServeRuntime runtime(telemetry_options());
  const int port = runtime.telemetry()->port();
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 2; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) f.get();
  runtime.drain();

  // /debug/fleet is the JSON metrics document.
  const auto [f_headers, fleet] = http_get(port, "/debug/fleet");
  EXPECT_NE(f_headers.find("application/json"), std::string::npos);
  const Json fleet_json = parse_json(fleet);
  ASSERT_TRUE(fleet_json.is_object());
  EXPECT_DOUBLE_EQ(fleet_json.at("jobs_completed").number, 2.0);

  // /debug/trace is the merged Chrome trace built so far.
  const auto [t_headers, trace] = http_get(port, "/debug/trace");
  const Json trace_json = parse_json(trace);
  EXPECT_FALSE(trace_json.at("traceEvents").array.empty());

  // /debug/events tails the event log; n bounds the tail.
  const auto [e_headers, events] = http_get(port, "/debug/events?n=3");
  EXPECT_NE(e_headers.find("application/x-ndjson"), std::string::npos);
  int lines = 0;
  std::istringstream stream(events);
  for (std::string line; std::getline(stream, line);) {
    if (!line.empty()) {
      EXPECT_TRUE(parse_json(line).is_object());
      ++lines;
    }
  }
  EXPECT_GT(lines, 0);
  EXPECT_LE(lines, 3);
}

TEST(TelemetryServeTest, DebugEventsWithoutEventLogIs404) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.telemetry_port = 0;
  ServeRuntime runtime(opts);  // event log off
  const auto [headers, body] = http_get(runtime.telemetry()->port(), "/debug/events");
  EXPECT_NE(headers.find("404"), std::string::npos);
  EXPECT_NE(body.find("event_log_capacity"), std::string::npos)
      << "the 404 should say how to turn the log on: " << body;
  runtime.drain();
}

TEST(TelemetryServeTest, MidRunScrapeIsSafeWhileDispatchersRecord) {
  // Scrape every endpoint WHILE jobs run: snapshot-based reads must
  // not race the recording side (TSan builds of this suite are the
  // proof) and must never wedge the fleet.
  ServeRuntime runtime(telemetry_options());
  const int port = runtime.telemetry()->port();
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(runtime.submit(small_job()));
  for (int round = 0; round < 3; ++round) {
    for (const char* path : {"/metrics", "/healthz", "/readyz", "/debug/trace",
                             "/debug/fleet", "/debug/events?n=8"}) {
      const auto [headers, body] = http_get(port, path);
      EXPECT_FALSE(headers.empty()) << path << " returned nothing mid-run";
    }
  }
  for (auto& f : futures) f.get();
  runtime.drain();
  EXPECT_GE(runtime.telemetry()->requests_served(), 18u);
}

TEST(TelemetryServeTest, ShutdownStopsTheEndpoint) {
  ServeRuntime runtime(telemetry_options());
  obs::TelemetryServer* server = runtime.telemetry();
  ASSERT_TRUE(server->running());
  runtime.drain();
  runtime.shutdown();
  EXPECT_FALSE(server->running());
}

TEST(TelemetryServeTest, CriticalPathAnalyzerAttributesTheRun) {
  ServeRuntime runtime(telemetry_options());
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) f.get();
  runtime.drain();
  const obs::CriticalPath path =
      obs::analyze_critical_path(runtime.device_traces(), runtime.events());
  EXPECT_GT(path.makespan_us, 0.0);
  EXPECT_EQ(path.devices.size(), 2u);
  EXPECT_EQ(path.jobs_waited, 3);
  ASSERT_FALSE(path.routes.empty());
  EXPECT_EQ(path.routes[0].route, "sac") << "default jobs run the SaC route";
  const std::string report = obs::critical_path_report(path);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("gpu0"), std::string::npos);
  EXPECT_NE(report.find("queue wait"), std::string::npos);
}

TEST(TelemetryServeTest, AlertMonitorRaisesOnFaultsAndServesAlerts) {
  // A fleet whose device 0 dies permanently: the degraded-device rule
  // must raise through the monitor, the runtime must log the
  // alert_raised wire event, and /alerts must show the active alert.
  ServeRuntime::Options opts = testsupport::faulty_fleet_options(
      2, FaultPlanBuilder()
             .fail_after_kernels(/*device=*/0, /*kernels=*/0, /*recurring=*/true)
             .build());
  opts.start_paused = false;  // dispatch immediately; no staged placement here
  opts.telemetry_port = 0;
  opts.event_log_capacity = 4096;
  ServeRuntime runtime(opts);

  AlertMonitorOptions monitor_options;
  monitor_options.interval_ms = -1;  // manual sampling: deterministic
  AlertMonitor monitor(runtime, monitor_options);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(small_job()));
  for (auto& f : futures) f.get();
  runtime.drain();

  const std::vector<obs::AlertTransition> fired = monitor.sample_now();
  bool degraded_raised = false;
  for (const obs::AlertTransition& t : fired) {
    if (t.kind == obs::AlertKind::DeviceDegraded && t.raised) degraded_raised = true;
  }
  ASSERT_TRUE(degraded_raised) << "permanently faulted device never raised";
  EXPECT_EQ(monitor.active().size(), 1u);

  // The wire event landed in the log with the kind in arg.
  bool wire_event = false;
  std::istringstream events(runtime.events_jsonl());
  for (std::string line; std::getline(events, line);) {
    if (line.find("\"event\":\"alert_raised\"") != std::string::npos) {
      wire_event = true;
      EXPECT_NE(line.find("\"arg\":2"), std::string::npos)
          << "arg should carry AlertKind::DeviceDegraded: " << line;
    }
  }
  EXPECT_TRUE(wire_event);

  // The gauge and the endpoint agree.
  EXPECT_NE(runtime.metrics_prometheus().find("saclo_alerts_active 1"),
            std::string::npos);
  const auto [headers, body] = http_get(runtime.telemetry()->port(), "/alerts");
  EXPECT_NE(headers.find("application/json"), std::string::npos);
  EXPECT_NE(body.find("device_degraded"), std::string::npos) << body;

  // After stop() the endpoint answers honestly instead of dangling.
  monitor.stop();
  const auto [stopped_headers, stopped_body] =
      http_get(runtime.telemetry()->port(), "/alerts");
  EXPECT_NE(stopped_headers.find("503"), std::string::npos);
  EXPECT_NE(stopped_body.find("stopped"), std::string::npos);

  // The JSONL alert log renders one line per transition.
  const std::string log = monitor.transitions_jsonl();
  EXPECT_NE(log.find("\"type\":\"alert_raised\""), std::string::npos);
  EXPECT_NE(log.find("\"kind\":\"device_degraded\""), std::string::npos);
}

TEST(TelemetryServeTest, BackgroundMonitorSamplesOnItsOwn) {
  ServeRuntime runtime(telemetry_options());
  AlertMonitorOptions monitor_options;
  monitor_options.interval_ms = 5;
  {
    AlertMonitor monitor(runtime, monitor_options);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 2; ++i) futures.push_back(runtime.submit(small_job()));
    for (auto& f : futures) f.get();
    runtime.drain();
    // A healthy run raises nothing; the destructor joins the thread.
    EXPECT_TRUE(monitor.transitions().empty());
  }
  runtime.shutdown();
}

}  // namespace
}  // namespace saclo::serve
