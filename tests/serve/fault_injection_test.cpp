#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "fault/fault.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

using testsupport::expect_zero_allocator_leaks;
using testsupport::FaultPlanBuilder;
using testsupport::faulty_fleet_options;

/// Where in the job's life the injected fault strikes device 0.
enum class FaultTiming {
  FirstKernel,  ///< before any kernel ran
  MidTransfer,  ///< halfway through the job's PCIe traffic
  LastFrame,    ///< at the job's final kernel launch
};

const char* timing_name(FaultTiming timing) {
  switch (timing) {
    case FaultTiming::FirstKernel: return "FirstKernel";
    case FaultTiming::MidTransfer: return "MidTransfer";
    case FaultTiming::LastFrame: return "LastFrame";
  }
  return "?";
}

JobSpec full_job(Route route) {
  JobSpec spec;
  spec.route = route;
  spec.frames = 3;  // exec_frames = -1: every frame executes functionally
  return spec;
}

/// Builds the plan that fails device 0 at the requested point of this
/// exact job, using the fault-free reference run's operation counts.
fault::FaultPlan plan_for(FaultTiming timing, const JobResult& reference) {
  FaultPlanBuilder builder;
  switch (timing) {
    case FaultTiming::FirstKernel:
      builder.fail_after_kernels(0, 0);
      break;
    case FaultTiming::MidTransfer: {
      const std::int64_t transfers = reference.ops.h2d_calls + reference.ops.d2h_calls;
      EXPECT_GE(transfers, 2) << "job too small to fault mid-transfer";
      builder.fail_after_transfers(0, transfers / 2);
      break;
    }
    case FaultTiming::LastFrame:
      EXPECT_GE(reference.ops.kernel_launches, 1);
      builder.fail_after_kernels(0, reference.ops.kernel_launches - 1);
      break;
  }
  return builder.build();
}

class FaultFailoverTest
    : public ::testing::TestWithParam<std::tuple<Route, FaultTiming>> {};

// The tentpole acceptance scenario, over every route x fault timing: a
// job interrupted mid-frame-loop on device 0 completes on device 1,
// bit-exact against a fault-free single-device run, with the failover
// reported and no allocator leak left behind on the faulted device.
TEST_P(FaultFailoverTest, FaultedJobFailsOverBitExact) {
  const Route route = std::get<0>(GetParam());
  const FaultTiming timing = std::get<1>(GetParam());
  const JobSpec spec = full_job(route);

  ServeRuntime::Options ref_opts;
  const JobResult reference = reference_run(spec, ref_opts.device);
  ASSERT_GT(reference.last_output.elements(), 0);

  ServeRuntime runtime(faulty_fleet_options(2, plan_for(timing, reference)));
  auto future = runtime.submit(spec);  // empty fleet: lands on device 0
  runtime.resume();
  const JobResult r = future.get();
  runtime.drain();

  EXPECT_EQ(r.device, 1) << "job must complete on the healthy device";
  EXPECT_EQ(r.attempts, 1) << "one injected fault, one failover";
  EXPECT_EQ(r.last_output, reference.last_output)
      << "failover must be bit-exact vs the fault-free run";

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.device_faults, 1);
  EXPECT_GE(s.failovers, 1);
  EXPECT_EQ(s.jobs_completed, 1);
  EXPECT_EQ(s.jobs_failed, 0);
  EXPECT_EQ(s.devices[0].faults, 1);

  EXPECT_TRUE(runtime.device_degraded(0)) << "cooldown < 0 keeps it degraded";
  EXPECT_FALSE(runtime.device_degraded(1));
  expect_zero_allocator_leaks(runtime);
}

INSTANTIATE_TEST_SUITE_P(
    AllRoutes, FaultFailoverTest,
    ::testing::Combine(::testing::Values(Route::SacNongeneric, Route::SacGeneric,
                                         Route::Gaspard),
                       ::testing::Values(FaultTiming::FirstKernel,
                                         FaultTiming::MidTransfer,
                                         FaultTiming::LastFrame)),
    [](const ::testing::TestParamInfo<FaultFailoverTest::ParamType>& info) {
      return std::string(route_name(std::get<0>(info.param))) + "_" +
             timing_name(std::get<1>(info.param));
    });

TEST(FaultFailoverTest, RetryBudgetExhaustionSurfacesTheFault) {
  // One permanently dead device and nowhere to fail over to: after
  // max_retries re-enqueues the job's future must carry the DeviceFault
  // instead of hanging, and the failure must land in the metrics.
  ServeRuntime::Options opts = faulty_fleet_options(
      1, FaultPlanBuilder()
             .fail_after_ms(0, 0.0, fault::FaultKind::Any, /*recurring=*/true)
             .build());
  opts.max_retries = 2;
  ServeRuntime runtime(opts);
  auto future = runtime.submit(full_job(Route::SacNongeneric));
  runtime.drain();

  EXPECT_THROW(future.get(), fault::DeviceFault);
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_failed, 1);
  EXPECT_EQ(s.devices[0].jobs_failed, 1);
  EXPECT_EQ(s.retries, 2) << "exactly the per-job budget";
  EXPECT_EQ(s.device_faults, 3) << "initial attempt + 2 retries";
  expect_zero_allocator_leaks(runtime);
}

TEST(FaultFailoverTest, HealthyDevicesKeepServingAroundADegradedOne) {
  // Device 0 dies on its first kernel forever; a batch of jobs must
  // still all complete (on device 1) and placement must stop feeding
  // the degraded device.
  ServeRuntime runtime(faulty_fleet_options(
      2, FaultPlanBuilder().fail_after_kernels(0, 0, /*recurring=*/true).build()));
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 6; ++i) futures.push_back(runtime.submit(full_job(Route::SacNongeneric)));
  runtime.resume();
  runtime.drain();

  for (auto& f : futures) EXPECT_EQ(f.get().device, 1);
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 6);
  EXPECT_EQ(s.jobs_failed, 0);
  EXPECT_EQ(s.degraded_devices, 1);
  expect_zero_allocator_leaks(runtime);
}

}  // namespace
}  // namespace saclo::serve
