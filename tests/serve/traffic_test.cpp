#include "serve/traffic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "support/mini_json.hpp"
#include "serve/scheduler.hpp"

namespace saclo::serve {
namespace {

using testsupport::Json;
using testsupport::parse_json;

// ---------------------------------------------------------------------------
// Generator

TEST(TrafficGeneratorTest, SameSpecSameTrace) {
  const TrafficSpec spec = TrafficSpec::ci_default();
  const TrafficTrace a = generate_trace(spec);
  const TrafficTrace b = generate_trace(spec);
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.arrivals[i].t_ms, b.arrivals[i].t_ms);
    EXPECT_EQ(a.arrivals[i].class_name, b.arrivals[i].class_name);
  }
  // Byte-for-byte too: the committed-trace workflow depends on it.
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(TrafficGeneratorTest, DifferentSeedsDiffer) {
  TrafficSpec spec = TrafficSpec::ci_default();
  const std::string a = generate_trace(spec).to_json();
  spec.seed = 43;
  EXPECT_NE(generate_trace(spec).to_json(), a);
}

TEST(TrafficGeneratorTest, ArrivalsAreSortedInWindowAndRateScales) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 2000;
  const TrafficTrace trace = generate_trace(spec);
  ASSERT_FALSE(trace.arrivals.empty());
  double prev = 0;
  std::set<std::string> names;
  for (const TrafficArrival& a : trace.arrivals) {
    EXPECT_GE(a.t_ms, prev);
    EXPECT_LT(a.t_ms, spec.duration_ms);
    prev = a.t_ms;
    names.insert(a.class_name);
    // Each arrival's JobSpec is fully materialised and valid.
    EXPECT_NO_THROW(a.spec.validate());
  }
  // The weighted mix actually samples every class over 2 seconds.
  EXPECT_EQ(names.size(), spec.classes.size());

  // Doubling the base rate roughly doubles the arrival count (the
  // burst overlay is unchanged, so "roughly").
  TrafficSpec doubled = spec;
  doubled.base_rate_hz *= 2;
  const std::size_t n1 = trace.arrivals.size();
  const std::size_t n2 = generate_trace(doubled).arrivals.size();
  EXPECT_GT(static_cast<double>(n2), 1.4 * static_cast<double>(n1));
}

TEST(TrafficGeneratorTest, BurstsAddClumpedArrivals) {
  TrafficSpec calm = TrafficSpec::ci_default();
  calm.burst_rate_hz = 0;
  TrafficSpec bursty = calm;
  bursty.burst_rate_hz = 10;
  const std::size_t calm_n = generate_trace(calm).arrivals.size();
  const std::size_t bursty_n = generate_trace(bursty).arrivals.size();
  EXPECT_GT(bursty_n, calm_n);
}

TEST(TrafficSpecTest, ValidateRejectsBadShapes) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 0;
  EXPECT_THROW(spec.validate(), TrafficError);

  spec = TrafficSpec::ci_default();
  spec.diurnal_amplitude = 1.0;  // rate would touch zero-crossing edge
  EXPECT_THROW(spec.validate(), TrafficError);

  spec = TrafficSpec::ci_default();
  spec.classes.clear();
  EXPECT_THROW(spec.validate(), TrafficError);

  spec = TrafficSpec::ci_default();
  spec.classes[0].weight = 0;
  EXPECT_THROW(spec.validate(), TrafficError);

  // Geometry constraints surface through the class validator (via the
  // downscaler config, hence the base error type): heights must be
  // multiples of the vertical paving (9), widths of the horizontal (8).
  spec = TrafficSpec::ci_default();
  spec.classes[0].height = 20;
  EXPECT_THROW(spec.validate(), Error);
}

// ---------------------------------------------------------------------------
// CLI spec grammar

TEST(TrafficSpecTest, ParseOverridesOnlyNamedKeys) {
  const TrafficSpec spec = TrafficSpec::parse("seed=7,base_rate_hz=80");
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_DOUBLE_EQ(spec.base_rate_hz, 80.0);
  const TrafficSpec def = TrafficSpec::ci_default();
  EXPECT_DOUBLE_EQ(spec.duration_ms, def.duration_ms);
  EXPECT_EQ(spec.classes.size(), def.classes.size());
}

TEST(TrafficSpecTest, ParseEmptyIsCiDefault) {
  EXPECT_EQ(generate_trace(TrafficSpec::parse("")).to_json(),
            generate_trace(TrafficSpec::ci_default()).to_json());
}

TEST(TrafficSpecTest, ParseRejectsMalformedFields) {
  EXPECT_THROW(TrafficSpec::parse("seed"), TrafficError);
  EXPECT_THROW(TrafficSpec::parse("bogus=1"), TrafficError);
  EXPECT_THROW(TrafficSpec::parse("seed=notanumber"), TrafficError);
}

// ---------------------------------------------------------------------------
// JSON round-trip

TEST(TrafficTraceTest, JsonRoundTripsExactly) {
  const TrafficTrace trace = generate_trace(TrafficSpec::ci_default());
  const std::string json = trace.to_json();
  const TrafficTrace back = TrafficTrace::from_json(json);
  // The fixed point CI relies on: parse(print(x)) prints identically.
  EXPECT_EQ(back.to_json(), json);
  ASSERT_EQ(back.arrivals.size(), trace.arrivals.size());
  for (std::size_t i = 0; i < trace.arrivals.size(); ++i) {
    EXPECT_EQ(back.arrivals[i].class_name, trace.arrivals[i].class_name);
    EXPECT_EQ(back.arrivals[i].spec.tenant, trace.arrivals[i].spec.tenant);
    EXPECT_EQ(back.arrivals[i].spec.route, trace.arrivals[i].spec.route);
  }
}

TEST(TrafficTraceTest, JsonIsWellFormed) {
  const Json root = parse_json(generate_trace(TrafficSpec::ci_default()).to_json());
  ASSERT_TRUE(root.is_object());
  ASSERT_TRUE(root.at("spec").is_object());
  ASSERT_TRUE(root.at("spec").at("classes").is_array());
  ASSERT_TRUE(root.at("arrivals").is_array());
  EXPECT_FALSE(root.at("arrivals").array.empty());
  const Json& first = root.at("arrivals").array.front();
  EXPECT_TRUE(first.has("t_ms"));
  EXPECT_TRUE(first.has("class"));
}

TEST(TrafficTraceTest, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(TrafficTrace::from_json(""), TrafficError);
  EXPECT_THROW(TrafficTrace::from_json("{\"broken"), TrafficError);
  EXPECT_THROW(TrafficTrace::from_json("[1,2]"), TrafficError);

  // An arrival referencing a class the spec doesn't define.
  TrafficTrace trace = generate_trace(TrafficSpec::ci_default());
  std::string json = trace.to_json();
  const std::string name = trace.arrivals.front().class_name;
  json.replace(json.find("\"class\":\"" + name), 9 + name.size() + 2,
               "\"class\":\"ghost\"");
  EXPECT_THROW(TrafficTrace::from_json(json), TrafficError);
}

// ---------------------------------------------------------------------------
// Replay

TEST(TrafficReplayTest, AccountsForEveryArrival) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 300;
  const TrafficTrace trace = generate_trace(spec);

  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.queue_capacity = trace.arrivals.size();  // shed-free replay
  ServeRuntime runtime(opts);
  const ReplayStats stats = replay_trace(runtime, trace, 8.0);
  runtime.drain();

  EXPECT_EQ(stats.submitted, static_cast<std::int64_t>(trace.arrivals.size()));
  EXPECT_EQ(stats.completed + stats.failed + stats.shed, stats.submitted);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.failed, 0);
  EXPECT_NE(stats.checksum, 0u);
  EXPECT_GT(stats.elapsed_ms, 0.0);
}

TEST(TrafficReplayTest, ChecksumIsAFunctionOfTheTraceNotTheFleet) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 200;
  const TrafficTrace trace = generate_trace(spec);

  std::uint64_t checksums[2];
  int i = 0;
  for (int devices : {1, 3}) {
    ServeRuntime::Options opts;
    opts.devices = devices;
    opts.queue_capacity = trace.arrivals.size();
    ServeRuntime runtime(opts);
    checksums[i++] = replay_trace(runtime, trace, 8.0).checksum;
    runtime.drain();
  }
  EXPECT_EQ(checksums[0], checksums[1]);
}

TEST(TrafficReplayTest, OverloadedBacklogShedsHonestly) {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 200;
  spec.base_rate_hz = 200;
  const TrafficTrace trace = generate_trace(spec);

  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.queue_capacity = 2;  // tiny backlog: most of the burst sheds
  ServeRuntime runtime(opts);
  const ReplayStats stats = replay_trace(runtime, trace, 16.0);
  runtime.drain();

  EXPECT_GT(stats.shed, 0);
  EXPECT_EQ(stats.completed + stats.failed + stats.shed, stats.submitted);
}

TEST(TrafficReplayTest, RejectsNonPositiveSpeed) {
  const TrafficTrace trace = generate_trace(TrafficSpec::ci_default());
  ServeRuntime::Options opts;
  ServeRuntime runtime(opts);
  EXPECT_THROW(replay_trace(runtime, trace, 0.0), TrafficError);
  runtime.drain();
}

}  // namespace
}  // namespace saclo::serve
