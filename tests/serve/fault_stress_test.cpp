#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "obs/events.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

// Seeded chaos: 200 jobs from 4 producer threads race across a
// 4-device fleet carrying a random fault plan. The invariants under
// any schedule (this suite also runs under ThreadSanitizer in CI):
//   - every future resolves: completed + failed == submitted,
//   - no completed job was retried past the per-job budget,
//   - the accounting balances (metrics agree with the futures),
//   - no device leaks an allocator block, faulted or not,
//   - a deliberately tiny event ring drops honestly: it fills to
//     capacity, counts every rejected emit, and exports exactly what
//     it kept.
TEST(FaultStressTest, RandomFaultPlansPreserveTheInvariants) {
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 50;
  constexpr int kJobs = kThreads * kJobsPerThread;

  for (const std::uint64_t seed : {19937ULL, 480ULL}) {
    ServeRuntime::Options opts;
    opts.devices = 4;
    opts.queue_capacity = 64;
    opts.fault_plan = fault::FaultPlan::random(seed, /*devices=*/4, /*faults=*/10);
    opts.max_retries = 3;
    opts.retry_backoff_base_ms = 0.1;
    opts.retry_backoff_cap_ms = 1.0;
    opts.degraded_cooldown_ms = 2.0;  // degraded devices rejoin mid-storm
    opts.event_log_capacity = 64;     // far too small for 200 jobs: forces drops
    ServeRuntime runtime(opts);
    SCOPED_TRACE("seed " + std::to_string(seed) + " plan:\n" +
                 opts.fault_plan.describe());

    std::vector<std::thread> producers;
    std::vector<std::vector<std::future<JobResult>>> futures(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&runtime, &futures, t] {
        for (int i = 0; i < kJobsPerThread; ++i) {
          JobSpec spec;
          spec.frames = 2;
          spec.exec_frames = 1;
          futures[static_cast<std::size_t>(t)].push_back(runtime.submit(spec));
        }
      });
    }
    for (auto& p : producers) p.join();
    runtime.drain();

    int completed = 0;
    int failed = 0;
    for (auto& per_thread : futures) {
      for (auto& f : per_thread) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready)
            << "drain() returned with an unresolved future";
        try {
          const JobResult r = f.get();
          ++completed;
          EXPECT_GE(r.device, 0);
          EXPECT_LT(r.device, 4);
          EXPECT_LE(r.attempts, opts.max_retries) << "job retried past its budget";
        } catch (const fault::DeviceFault&) {
          ++failed;  // retry budget exhausted: a legal outcome
        }
      }
    }
    EXPECT_EQ(completed + failed, kJobs);

    const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
    EXPECT_EQ(s.jobs_submitted, kJobs);
    EXPECT_EQ(s.jobs_completed, completed);
    EXPECT_EQ(s.jobs_failed, failed);
    EXPECT_LE(s.retries, static_cast<std::int64_t>(kJobs) * opts.max_retries);
    EXPECT_GE(s.retries, s.failovers);
    testsupport::expect_zero_allocator_leaks(runtime);

    // 200 jobs emit >= 4 lifecycle events each, so the 64-slot ring
    // overflowed; its drop accounting must stay exact under the race.
    const obs::EventLog* log = runtime.event_log();
    ASSERT_NE(log, nullptr);
    EXPECT_EQ(log->recorded(), opts.event_log_capacity);
    EXPECT_GT(log->dropped(), 0u);
    EXPECT_EQ(log->snapshot().size(), opts.event_log_capacity);
    const std::string jsonl = runtime.events_jsonl();
    const std::size_t lines =
        static_cast<std::size_t>(std::count(jsonl.begin(), jsonl.end(), '\n'));
    EXPECT_EQ(lines, opts.event_log_capacity + 1)  // events + log_summary
        << "JSONL export disagrees with the ring contents";
  }
}

}  // namespace
}  // namespace saclo::serve
