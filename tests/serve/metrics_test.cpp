#include "serve/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/mini_json.hpp"

namespace saclo::serve {
namespace {

using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

TEST(PercentileTest, InterpolatesBetweenSamples) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 50.5);
  EXPECT_NEAR(percentile(v, 0.99), 99.01, 1e-9);
}

TEST(PercentileTest, HandlesDegenerateSamples) {
  EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0}, 0.5), 2.0);  // sorts internally
}

JobResult job(int frames, double sim_us, double latency_us) {
  JobResult r;
  r.frames = frames;
  r.sim_wall_us = sim_us;
  r.latency_us = latency_us;
  return r;
}

TEST(FleetMetricsTest, TracksQueueDepthHighWater) {
  FleetMetrics m(2);
  m.on_submit(0);
  m.on_submit(0);
  m.on_submit(0);
  m.on_dispatch(0);
  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.devices[0].queue_depth, 2);
  EXPECT_EQ(s.devices[0].max_queue_depth, 3);
  EXPECT_EQ(s.devices[0].running, 1);
  EXPECT_EQ(s.devices[1].max_queue_depth, 0);
}

TEST(FleetMetricsTest, ComputesUtilizationAgainstFleetMakespan) {
  FleetMetrics m(2);
  // Device 0 runs two jobs to a sim clock of 1000us; device 1 one job
  // to 500us. Makespan is 1000us, so utilizations are 1.0 and 0.5.
  m.on_submit(0);
  m.on_dispatch(0);
  m.on_complete(0, job(4, 400.0, 900.0), 400.0);
  m.on_submit(0);
  m.on_dispatch(0);
  m.on_complete(0, job(4, 600.0, 1100.0), 1000.0);
  m.on_submit(1);
  m.on_dispatch(1);
  m.on_complete(1, job(4, 500.0, 800.0), 500.0);

  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.jobs_completed, 3);
  EXPECT_EQ(s.frames_completed, 12);
  EXPECT_DOUBLE_EQ(s.sim_makespan_us, 1000.0);
  EXPECT_DOUBLE_EQ(s.devices[0].utilization, 1.0);
  EXPECT_DOUBLE_EQ(s.devices[1].utilization, 0.5);
  // 12 frames / 1000us of simulated fleet time = 12000 frames/s.
  EXPECT_DOUBLE_EQ(s.throughput_fps_sim, 12000.0);
  // Extrema are tracked exactly by the latency histogram; percentiles
  // are accurate to one log-bucket width (~19%) of the exact sample
  // percentile (here the exact p50 of {800, 900, 1100} is 900).
  EXPECT_DOUBLE_EQ(s.latency_max_us, 1100.0);
  const double p50_bucket_width =
      obs::LogHistogram::upper_bound(obs::LogHistogram::bucket_index(900.0)) -
      obs::LogHistogram::lower_bound(obs::LogHistogram::bucket_index(900.0));
  EXPECT_NEAR(s.latency_p50_us, 900.0, p50_bucket_width);
}

TEST(FleetMetricsTest, CountsFailedJobsSeparately) {
  FleetMetrics m(1);
  m.on_submit(0);
  m.on_dispatch(0);
  m.on_failed(0);
  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.jobs_submitted, 1);
  EXPECT_EQ(s.jobs_completed, 0);
  EXPECT_EQ(s.jobs_failed, 1);
  EXPECT_EQ(s.devices[0].running, 0);
}

TEST(FleetMetricsTest, JsonExportParsesAndCarriesTheNumbers) {
  FleetMetrics m(2);
  m.on_submit(0);
  m.on_dispatch(0);
  m.on_complete(0, job(8, 250.0, 470.0), 250.0);
  m.set_elapsed_real_us(1000.0);
  CachingDeviceAllocator::Stats alloc;
  alloc.hits = 9;
  alloc.misses = 3;
  alloc.pool_peak_bytes = 4096;
  m.set_allocator_stats(0, alloc);

  const Json root = parse_json(m.json());
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.at("devices").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("jobs_completed").number, 1.0);
  EXPECT_DOUBLE_EQ(root.at("frames_completed").number, 8.0);
  EXPECT_DOUBLE_EQ(root.at("sim_makespan_us").number, 250.0);
  EXPECT_DOUBLE_EQ(root.at("latency_real_us").at("p50").number, 470.0);
  ASSERT_TRUE(root.at("per_device").is_array());
  ASSERT_EQ(root.at("per_device").array.size(), 2u);
  const Json& dev0 = root.at("per_device").array[0];
  EXPECT_DOUBLE_EQ(dev0.at("jobs").number, 1.0);
  ASSERT_TRUE(dev0.has("allocator"));
  EXPECT_DOUBLE_EQ(dev0.at("allocator").at("hits").number, 9.0);
  EXPECT_DOUBLE_EQ(dev0.at("allocator").at("pool_peak_bytes").number, 4096.0);
  EXPECT_FALSE(root.at("per_device").array[1].has("allocator"));
}

TEST(FleetMetricsTest, FailedJobsAreAttributedToTheirDevice) {
  // Regression: on_failed() used to bump only the fleet total, so the
  // per-device rows could not show where jobs were dying.
  FleetMetrics m(2);
  m.on_submit(1);
  m.on_dispatch(1);
  m.on_failed(1);
  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.jobs_failed, 1);
  EXPECT_EQ(s.devices[0].jobs_failed, 0);
  EXPECT_EQ(s.devices[1].jobs_failed, 1);

  const Json root = parse_json(m.json());
  EXPECT_DOUBLE_EQ(root.at("per_device").array[0].at("jobs_failed").number, 0.0);
  EXPECT_DOUBLE_EQ(root.at("per_device").array[1].at("jobs_failed").number, 1.0);
  // The text report's device table carries a "failed" column.
  EXPECT_NE(m.report().find("failed"), std::string::npos);
}

TEST(FleetMetricsTest, HealthSectionGoldenKeysAndCounters) {
  // Golden key-set for the JSON health section: a fault on device 1,
  // one failover onto device 0, a same-device retry, and a degrade /
  // heal cycle.
  FleetMetrics m(2);
  m.on_submit(1);
  m.on_dispatch(1);
  m.on_device_fault(1, /*reclaimed_blocks=*/3);
  m.on_degraded(1);
  m.on_failover(/*from=*/1, /*to=*/0);   // counts a retry AND a failover
  m.on_failover(/*from=*/0, /*to=*/0);   // same device: retry only
  m.on_device_fault(0);

  const Json root = parse_json(m.json());
  ASSERT_TRUE(root.has("health"));
  const Json& health = root.at("health");
  for (const char* key : {"device_faults", "failovers", "retries",
                          "degraded_devices", "buffers_reclaimed"}) {
    EXPECT_TRUE(health.has(key)) << "health section lost key " << key;
  }
  EXPECT_DOUBLE_EQ(health.at("device_faults").number, 2.0);
  EXPECT_DOUBLE_EQ(health.at("failovers").number, 1.0);
  EXPECT_DOUBLE_EQ(health.at("retries").number, 2.0);
  EXPECT_DOUBLE_EQ(health.at("degraded_devices").number, 1.0);
  EXPECT_DOUBLE_EQ(health.at("buffers_reclaimed").number, 3.0);

  const Json& dev1 = root.at("per_device").array[1];
  EXPECT_DOUBLE_EQ(dev1.at("faults").number, 1.0);
  EXPECT_TRUE(dev1.at("degraded").boolean);
  EXPECT_GE(dev1.at("degraded_us").number, 0.0);
  EXPECT_FALSE(root.at("per_device").array[0].at("degraded").boolean);

  // Healing stops the degraded clock and clears the flag.
  m.on_healed(1);
  const FleetMetrics::Snapshot healed = m.snapshot();
  EXPECT_EQ(healed.degraded_devices, 0);
  EXPECT_FALSE(healed.devices[1].degraded);
  EXPECT_GE(healed.devices[1].degraded_us, 0.0);

  // The text report surfaces the same counters.
  const std::string report = m.report();
  EXPECT_NE(report.find("health:"), std::string::npos);
  EXPECT_NE(report.find("2 device fault(s)"), std::string::npos);
  EXPECT_NE(report.find("1 failover(s)"), std::string::npos);
}

TEST(FleetMetricsTest, SchedulingAndTenantSectionsGolden) {
  // Golden key-set for the multi-tenant SLO surfaces: two gold-tenant
  // jobs (one meets its deadline, one misses), a rate-limited shed for
  // the free tenant, one preemption and one steal.
  FleetMetrics m(2);

  m.on_submit(0, "gold");
  m.on_dispatch(0);
  JobResult hit = job(2, 500.0, 900.0);
  hit.tenant = "gold";
  hit.priority = Priority::High;
  hit.deadline_us = 1000.0;
  hit.slo_met = true;
  m.on_complete(0, hit, 500.0);

  m.on_submit(0, "gold");
  m.on_dispatch(0);
  m.on_preempted(/*from=*/0, /*to=*/1);  // displaced to device 1's queue
  m.on_steal(/*from=*/1, /*to=*/0);      // ... and stolen right back
  m.on_dispatch(0);
  JobResult miss = job(2, 500.0, 2500.0);
  miss.tenant = "gold";
  miss.priority = Priority::High;
  miss.deadline_us = 1000.0;
  miss.slo_met = false;
  m.on_complete(0, miss, 1000.0);

  m.on_shed("free", ShedReason::RateLimited);

  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.jobs_shed, 1);
  EXPECT_EQ(s.preemptions, 1);
  EXPECT_EQ(s.steals, 1);
  EXPECT_EQ(s.deadline_misses, 1);
  EXPECT_EQ(s.class_latency_hist[static_cast<std::size_t>(Priority::High)].count(), 2);

  // JSON: the scheduling section, the per-tenant ledger and the
  // per-class latency split must all survive renames.
  const Json root = parse_json(m.json());
  ASSERT_TRUE(root.has("scheduling"));
  const Json& sched = root.at("scheduling");
  for (const char* key : {"jobs_shed", "preemptions", "steals", "deadline_misses"}) {
    EXPECT_TRUE(sched.has(key)) << "scheduling section lost key " << key;
  }
  EXPECT_DOUBLE_EQ(sched.at("jobs_shed").number, 1.0);
  EXPECT_DOUBLE_EQ(sched.at("deadline_misses").number, 1.0);

  ASSERT_TRUE(root.has("tenants"));
  bool saw_gold = false;
  bool saw_free = false;
  for (const Json& t : root.at("tenants").array) {
    for (const char* key :
         {"tenant", "submitted", "completed", "shed", "slo_jobs", "slo_met", "slo_attainment"}) {
      EXPECT_TRUE(t.has(key)) << "tenant entry lost key " << key;
    }
    if (t.at("tenant").string == "gold") {
      saw_gold = true;
      EXPECT_DOUBLE_EQ(t.at("slo_jobs").number, 2.0);
      EXPECT_DOUBLE_EQ(t.at("slo_met").number, 1.0);
      EXPECT_DOUBLE_EQ(t.at("slo_attainment").number, 0.5);
    }
    if (t.at("tenant").string == "free") {
      saw_free = true;
      EXPECT_DOUBLE_EQ(t.at("shed").number, 1.0);
    }
  }
  EXPECT_TRUE(saw_gold);
  EXPECT_TRUE(saw_free);

  ASSERT_TRUE(root.has("latency_by_class"));
  const Json& by_class = root.at("latency_by_class");
  for (const char* cls : {"high", "normal", "low"}) {
    EXPECT_TRUE(by_class.has(cls)) << "latency_by_class lost class " << cls;
  }
  EXPECT_DOUBLE_EQ(by_class.at("high").at("count").number, 2.0);

  // Text report: the scheduling line and the tenant table.
  const std::string report = m.report();
  EXPECT_NE(report.find("scheduling:"), std::string::npos);
  EXPECT_NE(report.find("1 shed, 1 preemption(s), 1 steal(s), 1 deadline miss(es)"),
            std::string::npos);
  EXPECT_NE(report.find("tenants:"), std::string::npos);
  EXPECT_NE(report.find("gold"), std::string::npos);
  EXPECT_NE(report.find("(50.0%)"), std::string::npos);

  // Prometheus: counters, the per-tenant gauge and the labeled
  // per-class histogram series.
  const std::string prom = m.prometheus();
  for (const char* needle :
       {"saclo_jobs_shed_total 1", "saclo_preemptions_total 1", "saclo_steals_total 1",
        "saclo_deadline_misses_total 1", "saclo_tenant_slo_attainment{tenant=\"gold\"}",
        "saclo_tenant_jobs_shed_total{tenant=\"free\"} 1",
        "saclo_class_latency_us_count{class=\"high\"} 2"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "prometheus lost " << needle;
  }
}

TEST(FleetMetricsTest, AutoscaleSectionGolden) {
  // Golden key-set for the elastic-fleet surfaces: a 3-slot fleet that
  // starts with slot 2 inactive, scales it up, re-homes one queued and
  // one running job off device 1, and drains device 1 away.
  FleetMetrics m(3);
  m.set_active(2, false);

  m.on_submit(0);
  m.on_submit(1);
  m.on_submit(1);

  m.set_active(2, true);
  m.on_scale_up(2);

  // Drain device 1: the queued job re-homes through the scale-down
  // path (queued=true moves the queue-depth gauge)...
  m.on_drain_started(1, /*rehomed=*/1);
  m.on_rehomed(1, 0);
  // ...and its running job stops at the frame gate and re-homes with
  // queued=false (it had already left the queue gauge at dispatch).
  m.on_dispatch(1);
  m.on_rehomed(1, 2, /*queued=*/false);
  m.on_drain_complete(1);
  m.set_active(1, false);

  CachingDeviceAllocator::Stats alloc;
  alloc.cap_evictions = 5;
  m.set_allocator_stats(0, alloc);

  const FleetMetrics::Snapshot s = m.snapshot();
  EXPECT_EQ(s.scale_ups, 1);
  EXPECT_EQ(s.scale_downs, 1);
  EXPECT_EQ(s.jobs_rehomed, 2);
  EXPECT_EQ(s.active_devices, 2);  // 0 and 2
  EXPECT_TRUE(s.devices[0].active);
  EXPECT_FALSE(s.devices[1].active);
  EXPECT_EQ(s.alloc_cap_evictions, 5);
  EXPECT_GT(s.device_seconds, 0.0);
  // The queue gauges moved with the re-homes: device 1 holds nothing.
  EXPECT_EQ(s.devices[1].queue_depth, 0);
  EXPECT_EQ(s.devices[1].running, 0);
  EXPECT_EQ(s.devices[0].queue_depth, 2);
  EXPECT_EQ(s.devices[2].queue_depth, 1);

  // JSON: the autoscale section and the per-device activity fields.
  const Json root = parse_json(m.json());
  ASSERT_TRUE(root.has("autoscale"));
  const Json& a = root.at("autoscale");
  for (const char* key : {"scale_ups", "scale_downs", "jobs_rehomed", "active_devices",
                          "device_seconds", "alloc_cap_evictions"}) {
    EXPECT_TRUE(a.has(key)) << "autoscale section lost key " << key;
  }
  EXPECT_DOUBLE_EQ(a.at("scale_ups").number, 1.0);
  EXPECT_DOUBLE_EQ(a.at("jobs_rehomed").number, 2.0);
  EXPECT_DOUBLE_EQ(a.at("alloc_cap_evictions").number, 5.0);
  bool saw_inactive = false;
  for (const Json& d : root.at("per_device").array) {
    EXPECT_TRUE(d.has("active"));
    EXPECT_TRUE(d.has("active_us"));
    if (d.at("device").number == 1.0) {
      saw_inactive = true;
      EXPECT_FALSE(d.at("active").boolean);
    }
    if (d.has("allocator")) {
      EXPECT_TRUE(d.at("allocator").has("cap_evictions"))
          << "allocator object lost cap_evictions";
    }
  }
  EXPECT_TRUE(saw_inactive);

  // Text report: the autoscale line.
  const std::string report = m.report();
  EXPECT_NE(report.find("autoscale:"), std::string::npos);
  EXPECT_NE(report.find("2/3 active, 1 scale-up(s), 1 scale-down(s), 2 job(s) re-homed"),
            std::string::npos);

  // Prometheus: the elastic-fleet series.
  const std::string prom = m.prometheus();
  for (const char* needle :
       {"saclo_scale_ups_total 1", "saclo_scale_downs_total 1", "saclo_jobs_rehomed_total 2",
        "saclo_active_devices 2", "saclo_device_seconds_total",
        "saclo_alloc_cap_evictions_total 5"}) {
    EXPECT_NE(prom.find(needle), std::string::npos) << "prometheus lost " << needle;
  }
}

TEST(PromEscapeTest, EscapesLabelValueMetacharacters) {
  EXPECT_EQ(prom_escape_label_value("plain-tenant"), "plain-tenant");
  EXPECT_EQ(prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(prom_escape_label_value("a\nb"), "a\\nb");
  EXPECT_EQ(prom_escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}

TEST(FleetMetricsTest, HostileTenantNameCannotBreakTheExposition) {
  // A tenant id is caller-controlled text that ends up inside label
  // quotes; quotes/backslashes/newlines must come out escaped, never
  // raw (a raw newline would split the series into a bogus line).
  FleetMetrics m(1);
  m.on_shed("evil\"t\\en\nant", ShedReason::RateLimited);
  const std::string prom = m.prometheus();
  EXPECT_NE(prom.find("tenant=\"evil\\\"t\\\\en\\nant\""), std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("evil\"t"), std::string::npos) << "raw quote leaked";
  // The JSON export shares the escape set, so it must still parse.
  const Json root = parse_json(m.json());
  ASSERT_TRUE(root.is_object());
  ASSERT_FALSE(root.at("tenants").array.empty());
}

TEST(FleetMetricsTest, BuildInfoGaugeCarriesIdentityLabels) {
  FleetMetrics m(1);
  // Without identity set: no constant gauge (a bare saclo_build_info 1
  // with empty labels would be noise).
  EXPECT_EQ(m.prometheus().find("saclo_build_info"), std::string::npos);
  m.set_build_info("abc1234", "sim,host");
  const std::string prom = m.prometheus();
  EXPECT_NE(prom.find("saclo_build_info{sha=\"abc1234\",backend_opts=\"sim,host\"} 1"),
            std::string::npos)
      << prom;
  const FleetMetrics::Snapshot snap = m.snapshot();
  EXPECT_EQ(snap.build_sha, "abc1234");
  EXPECT_EQ(snap.build_backend_opts, "sim,host");
}

TEST(FleetMetricsTest, EventsDroppedAndActiveAlertsSurface) {
  FleetMetrics m(1);
  std::string prom = m.prometheus();
  EXPECT_NE(prom.find("saclo_events_dropped_total 0"), std::string::npos);
  EXPECT_NE(prom.find("saclo_alerts_active 0"), std::string::npos);
  m.set_events_dropped(17);
  m.set_active_alerts(2);
  prom = m.prometheus();
  EXPECT_NE(prom.find("saclo_events_dropped_total 17"), std::string::npos);
  EXPECT_NE(prom.find("saclo_alerts_active 2"), std::string::npos);
}

TEST(FleetMetricsTest, ReportMentionsEveryDevice) {
  FleetMetrics m(3);
  const std::string report = m.report();
  EXPECT_NE(report.find("gpu0"), std::string::npos);
  EXPECT_NE(report.find("gpu1"), std::string::npos);
  EXPECT_NE(report.find("gpu2"), std::string::npos);
  EXPECT_NE(report.find("throughput"), std::string::npos);
}

}  // namespace
}  // namespace saclo::serve
