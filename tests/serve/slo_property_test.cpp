// Property tests for the SLO scheduler: over randomized (but seeded)
// job mixes, the scheduling policy may reorder work however it likes —
// it must never change what a job computes, starve one, or lose one.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <random>
#include <vector>

#include "serve/job.hpp"
#include "serve/scheduler.hpp"

namespace saclo::serve {
namespace {

std::vector<JobSpec> random_mix(std::uint32_t seed, int count) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> route_d(0, 2);
  std::uniform_int_distribution<int> prio_d(0, 2);
  std::uniform_int_distribution<int> frames_d(1, 4);
  std::uniform_int_distribution<int> deadline_d(0, 2);
  std::uniform_int_distribution<int> tenant_d(0, 1);
  std::vector<JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    JobSpec s;
    s.route = static_cast<Route>(route_d(rng));
    s.priority = static_cast<Priority>(prio_d(rng));
    s.frames = frames_d(rng);
    s.exec_frames = 1;
    const int dl = deadline_d(rng);
    s.deadline_ms = dl == 0 ? 0.0 : (dl == 1 ? 5.0 : 50.0);
    s.tenant = tenant_d(rng) == 0 ? "tenant-a" : "tenant-b";
    specs.push_back(s);
  }
  return specs;
}

/// Runs the whole mix under `policy` and returns the per-job outputs in
/// submission order. Asserts the liveness properties on the way out:
/// every future resolves (no starvation, no lost job) and the metrics
/// account every submission as completed.
std::vector<IntArray> run_mix(const std::vector<JobSpec>& specs, SchedPolicy policy) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.queue_capacity = specs.size();
  opts.policy = policy;
  opts.preemption = true;
  opts.work_stealing = policy != SchedPolicy::Fifo;
  ServeRuntime runtime(opts);

  std::vector<std::future<JobResult>> futures;
  futures.reserve(specs.size());
  for (const JobSpec& s : specs) futures.push_back(runtime.submit(s));

  std::vector<IntArray> outputs;
  outputs.reserve(specs.size());
  for (auto& f : futures) {
    JobResult r = f.get();  // resolves for every job, under every policy
    outputs.push_back(std::move(r.last_output));
  }
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  const auto n = static_cast<std::int64_t>(specs.size());
  EXPECT_EQ(s.jobs_submitted, n) << sched_policy_name(policy);
  EXPECT_EQ(s.jobs_completed, n) << sched_policy_name(policy);
  EXPECT_EQ(s.jobs_failed, 0) << sched_policy_name(policy);
  EXPECT_EQ(s.jobs_shed, 0) << sched_policy_name(policy);
  return outputs;
}

TEST(SloPropertyTest, PolicyChoiceNeverChangesJobResults) {
  // Priority/edf with preemption and work stealing reorder, displace
  // and migrate jobs aggressively; fifo does none of that. Elementwise
  // output identity across the three runs is the bit-exactness
  // property the scheduler promises.
  for (const std::uint32_t seed : {11u, 23u, 47u}) {
    const std::vector<JobSpec> specs = random_mix(seed, 24);
    const std::vector<IntArray> fifo = run_mix(specs, SchedPolicy::Fifo);
    ASSERT_EQ(fifo.size(), specs.size());
    for (const SchedPolicy policy : {SchedPolicy::Priority, SchedPolicy::Edf}) {
      const std::vector<IntArray> got = run_mix(specs, policy);
      ASSERT_EQ(got.size(), fifo.size());
      for (std::size_t i = 0; i < fifo.size(); ++i) {
        EXPECT_EQ(got[i], fifo[i]) << "seed " << seed << ", policy "
                                   << sched_policy_name(policy) << ", job " << i;
      }
    }
  }
}

TEST(SloPropertyTest, ContinuousHighPriorityLoadNeverStarvesTheLowClass) {
  // A stream of Low jobs interleaved with a majority of High jobs: the
  // policy always prefers High, so the only thing keeping Low alive is
  // that arrival preemption displaces at most one frame and queued Low
  // jobs still dispatch when nothing better is ready. Every Low future
  // resolving is the starvation bound.
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.queue_capacity = 48;
  opts.policy = SchedPolicy::Priority;
  opts.preemption = true;
  ServeRuntime runtime(opts);

  std::vector<std::future<JobResult>> low_futures;
  std::vector<std::future<JobResult>> high_futures;
  for (int i = 0; i < 36; ++i) {
    JobSpec s;
    s.frames = 2;
    s.exec_frames = 1;
    s.priority = i % 3 == 0 ? Priority::Low : Priority::High;
    (i % 3 == 0 ? low_futures : high_futures).push_back(runtime.submit(s));
  }
  for (auto& f : high_futures) EXPECT_EQ(f.get().frames, 2);
  for (auto& f : low_futures) {
    const JobResult r = f.get();
    EXPECT_EQ(r.frames, 2);
    EXPECT_EQ(r.priority, Priority::Low);
  }
  runtime.drain();
  EXPECT_EQ(runtime.metrics().snapshot().jobs_completed, 36);
}

}  // namespace
}  // namespace saclo::serve
