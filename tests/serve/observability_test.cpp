// End-to-end checks of the fleet observability pipeline: one faulted
// serving run must yield a coherent merged Chrome trace (the failed-over
// job's spans on both devices, linked by a flow pair), a structured
// JSONL event log whose per-job sequences match the JobResults, and a
// Prometheus exposition whose histogram agrees with the JSON report.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"
#include "support/mini_json.hpp"

namespace saclo::serve {
namespace {

using saclo::testsupport::FaultPlanBuilder;
using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

std::vector<Json> parse_jsonl(const std::string& text) {
  std::vector<Json> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) out.push_back(parse_json(line));
  }
  return out;
}

JobSpec small_job() {
  JobSpec spec;
  spec.frames = 2;
  spec.exec_frames = 1;
  return spec;
}

/// One deterministic failover: device 0 dies at its first kernel
/// (one-shot), so exactly one job faults there and completes elsewhere.
struct FailoverRun {
  ServeRuntime runtime;
  std::vector<JobResult> results;
  JobResult failed_over;  ///< the job with attempts == 1

  static ServeRuntime::Options options() {
    ServeRuntime::Options opts = testsupport::faulty_fleet_options(
        2, FaultPlanBuilder().fail_after_kernels(/*device=*/0, /*kernels=*/0).build());
    opts.event_log_capacity = 4096;
    return opts;
  }

  explicit FailoverRun(int jobs = 4) : runtime(options()) {
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < jobs; ++i) futures.push_back(runtime.submit(small_job()));
    runtime.drain();
    for (auto& f : futures) results.push_back(f.get());
    for (const JobResult& r : results) {
      if (r.attempts > 0) failed_over = r;
    }
    EXPECT_EQ(failed_over.attempts, 1) << "expected exactly one failover in the staged run";
  }
};

TEST(ObservabilityTest, DisabledByDefaultWithEmptyExports) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  ServeRuntime runtime(opts);
  runtime.submit(small_job()).get();
  runtime.drain();
  EXPECT_EQ(runtime.event_log(), nullptr);
  EXPECT_EQ(runtime.events_jsonl(), "");
  // The merged trace still works — spans only, no runtime events.
  const Json trace = parse_json(runtime.merged_trace_json());
  EXPECT_FALSE(trace.at("traceEvents").array.empty());
}

TEST(ObservabilityTest, MergedTraceLinksFailoverAcrossDevices) {
  FailoverRun run;
  const Json trace = parse_json(run.runtime.merged_trace_json());
  const Json& events = trace.at("traceEvents");
  const double job = static_cast<double>(run.failed_over.id);

  // The failed-over job left spans on both devices: its faulted attempt
  // 0 on device 0 and the completing attempt 1 on the other device.
  std::map<int, int> spans_by_device;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "X" && e.has("args") && e.at("args").at("job").number == job) {
      ++spans_by_device[static_cast<int>(e.at("pid").number)];
    }
  }
  ASSERT_EQ(spans_by_device.size(), 2u);
  EXPECT_GT(spans_by_device[0], 0);
  EXPECT_GT(spans_by_device[run.failed_over.device], 0);

  // One flow pair with id = job * 256 + attempt ties the hop together.
  const double flow_id = job * 256 + 1;
  int flow_starts = 0;
  int flow_finishes = 0;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "s" && e.at("id").number == flow_id) {
      ++flow_starts;
      EXPECT_DOUBLE_EQ(e.at("pid").number, 0.0);  // leaves the faulted device
    }
    if (e.at("ph").string == "f" && e.at("id").number == flow_id) {
      ++flow_finishes;
      EXPECT_DOUBLE_EQ(e.at("pid").number, run.failed_over.device);
    }
  }
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);

  // The fault itself shows as an instant event on device 0.
  bool fault_instant = false;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "i" && e.at("name").string == "device_fault") {
      EXPECT_DOUBLE_EQ(e.at("pid").number, 0.0);
      fault_instant = true;
    }
  }
  EXPECT_TRUE(fault_instant);
}

TEST(ObservabilityTest, EventSequencesMatchTheJobResults) {
  FailoverRun run;
  const std::vector<Json> lines = parse_jsonl(run.runtime.events_jsonl());
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back().at("event").string, "log_summary");
  EXPECT_DOUBLE_EQ(lines.back().at("dropped").number, 0.0);

  // Per-job event sequences, in ring (= emission) order.
  std::map<std::uint64_t, std::vector<std::string>> sequences;
  for (const Json& line : lines) {
    const std::string& type = line.at("event").string;
    if (type == "log_summary") continue;
    const std::uint64_t job = static_cast<std::uint64_t>(line.at("job").number);
    if (job != 0) sequences[job].push_back(type);
  }

  for (const JobResult& r : run.results) {
    ASSERT_TRUE(sequences.count(r.id)) << "job " << r.id << " left no events";
    const std::vector<std::string>& seq = sequences[r.id];
    // Lifecycle brackets.
    ASSERT_GE(seq.size(), 4u);
    EXPECT_EQ(seq[0], "job_admitted");
    EXPECT_EQ(seq[1], "job_placed");
    EXPECT_EQ(seq[2], "job_dispatched");
    EXPECT_EQ(seq.back(), "job_completed");
    // The log's fault/failover/dispatch counts must agree with the
    // result's attempt count: attempts faults, attempts failovers,
    // attempts + 1 dispatches.
    std::map<std::string, int> counts;
    for (const std::string& s : seq) ++counts[s];
    EXPECT_EQ(counts["device_fault"], r.attempts) << "job " << r.id;
    EXPECT_EQ(counts["failover"], r.attempts) << "job " << r.id;
    EXPECT_EQ(counts["job_dispatched"], r.attempts + 1) << "job " << r.id;
    // The completing attempt emitted one frame_done per frame.
    EXPECT_GE(counts["frame_done"], r.frames) << "job " << r.id;
  }
}

TEST(ObservabilityTest, PrometheusHistogramAgreesWithJsonReport) {
  FailoverRun run;
  const std::string prom = run.runtime.metrics_prometheus();
  const Json json = parse_json(run.runtime.metrics_json());

  // Counters line up across the two exports.
  const auto prom_value = [&prom](const std::string& name) {
    const std::size_t pos = prom.find("\n" + name + " ");
    EXPECT_NE(pos, std::string::npos) << name << " missing from exposition";
    return std::stod(prom.substr(pos + name.size() + 2));
  };
  EXPECT_DOUBLE_EQ(prom_value("saclo_jobs_completed_total"),
                   json.at("jobs_completed").number);
  EXPECT_DOUBLE_EQ(prom_value("saclo_device_faults_total"),
                   json.at("health").at("device_faults").number);
  EXPECT_DOUBLE_EQ(prom_value("saclo_job_latency_us_count"),
                   json.at("jobs_completed").number);

  // The p95 the JSON report quotes must fall inside the histogram
  // bucket the exposition puts the 95th percentile in — both views
  // derive from one LogHistogram, so disagreement means a broken
  // exporter.
  std::vector<std::pair<double, std::int64_t>> buckets;  // (le, cumulative)
  std::size_t pos = 0;
  while ((pos = prom.find("saclo_job_latency_us_bucket{le=\"", pos)) != std::string::npos) {
    const std::size_t le_at = pos + std::string("saclo_job_latency_us_bucket{le=\"").size();
    const std::string le_text = prom.substr(le_at, prom.find('"', le_at) - le_at);
    const double le = le_text == "+Inf" ? std::numeric_limits<double>::infinity()
                                        : std::stod(le_text);
    const std::size_t count_at = prom.find("} ", pos) + 2;
    buckets.emplace_back(le, std::stoll(prom.substr(count_at)));
    ++pos;
  }
  ASSERT_GE(buckets.size(), 2u);
  const std::int64_t total = buckets.back().second;
  ASSERT_EQ(total, static_cast<std::int64_t>(run.results.size()));

  // LogHistogram::percentile places rank q*(count-1) in the first
  // bucket whose cumulative count exceeds it, and interpolates inside
  // that bucket — so the JSON p95 must land within that bucket's range.
  const double p95 = json.at("latency_real_us").at("p95").number;
  const double rank = 0.95 * static_cast<double>(total - 1);
  double lower = 0.0;
  for (const auto& [le, cum] : buckets) {
    if (static_cast<double>(cum) > rank) {
      EXPECT_GE(p95, lower);
      EXPECT_LE(p95, le);
      return;
    }
    lower = le;
  }
  FAIL() << "p95 bucket not found in the exposition";
}

}  // namespace
}  // namespace saclo::serve
