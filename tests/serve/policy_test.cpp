#include "serve/policy.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/downscaler/pipelines.hpp"
#include "gpu/sim_gpu.hpp"
#include "serve/admission.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"
#include "support/mini_json.hpp"

namespace saclo::serve {
namespace {

using saclo::testsupport::FaultPlanBuilder;
using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

std::vector<Json> parse_jsonl(const std::string& text) {
  std::vector<Json> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (!line.empty()) out.push_back(parse_json(line));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Name parsing

TEST(PolicyTest, PriorityNamesRoundTrip) {
  for (Priority p : {Priority::High, Priority::Normal, Priority::Low}) {
    EXPECT_EQ(parse_priority(priority_name(p)), p);
  }
}

TEST(PolicyTest, ParsePriorityRejectsUnknownNames) {
  EXPECT_THROW(parse_priority("urgent"), ServeError);
  EXPECT_THROW(parse_priority(""), ServeError);
  EXPECT_THROW(parse_priority("High"), ServeError) << "names are case-sensitive";
}

TEST(PolicyTest, SchedPolicyNamesRoundTrip) {
  for (SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::Priority, SchedPolicy::Edf}) {
    EXPECT_EQ(parse_sched_policy(sched_policy_name(p)), p);
  }
}

TEST(PolicyTest, ParseSchedPolicyRejectsUnknownNames) {
  EXPECT_THROW(parse_sched_policy("lifo"), ServeError);
  EXPECT_THROW(parse_sched_policy(""), ServeError);
  EXPECT_THROW(parse_sched_policy("EDF"), ServeError) << "names are case-sensitive";
}

// ---------------------------------------------------------------------------
// Comparator semantics

SchedKey key(Priority priority, double deadline_us, std::uint64_t seq) {
  SchedKey k;
  k.priority = priority;
  k.deadline_us = deadline_us;
  k.seq = seq;
  return k;
}

TEST(PolicyTest, FifoOrdersBySubmissionAlone) {
  // Fifo is the pre-SLO behavior: class and deadline are invisible.
  const SchedKey urgent = key(Priority::High, 100.0, 2);
  const SchedKey earlier = key(Priority::Low, 0.0, 1);
  EXPECT_TRUE(schedules_before(SchedPolicy::Fifo, earlier, urgent));
  EXPECT_FALSE(schedules_before(SchedPolicy::Fifo, urgent, earlier));
}

TEST(PolicyTest, PriorityOrdersByClassThenSubmission) {
  const SchedKey high_late = key(Priority::High, 0.0, 9);
  const SchedKey normal_early = key(Priority::Normal, 0.0, 1);
  const SchedKey low_early = key(Priority::Low, 0.0, 2);
  EXPECT_TRUE(schedules_before(SchedPolicy::Priority, high_late, normal_early));
  EXPECT_TRUE(schedules_before(SchedPolicy::Priority, normal_early, low_early));
  // Within a class, submission order wins — deadlines are ignored.
  const SchedKey normal_deadline = key(Priority::Normal, 50.0, 3);
  EXPECT_TRUE(schedules_before(SchedPolicy::Priority, normal_early, normal_deadline));
}

TEST(PolicyTest, EdfOrdersWithinClassByDeadline) {
  // Class still dominates: a High job without a deadline beats a Low
  // job with the tightest deadline in the queue.
  const SchedKey high_no_dl = key(Priority::High, 0.0, 9);
  const SchedKey low_tight = key(Priority::Low, 1.0, 1);
  EXPECT_TRUE(schedules_before(SchedPolicy::Edf, high_no_dl, low_tight));

  // Within a class: earlier absolute deadline first.
  const SchedKey soon = key(Priority::Normal, 100.0, 5);
  const SchedKey later = key(Priority::Normal, 200.0, 1);
  EXPECT_TRUE(schedules_before(SchedPolicy::Edf, soon, later));

  // A deadline-carrying job beats a best-effort (deadline 0) peer.
  const SchedKey best_effort = key(Priority::Normal, 0.0, 1);
  EXPECT_TRUE(schedules_before(SchedPolicy::Edf, later, best_effort));

  // Equal deadlines (including none at all) fall back to submission.
  const SchedKey tie_a = key(Priority::Normal, 100.0, 1);
  const SchedKey tie_b = key(Priority::Normal, 100.0, 2);
  EXPECT_TRUE(schedules_before(SchedPolicy::Edf, tie_a, tie_b));
  EXPECT_FALSE(schedules_before(SchedPolicy::Edf, tie_b, tie_a));
}

TEST(PolicyTest, ComparatorIsIrreflexiveUnderEveryPolicy) {
  // schedules_before must be a strict ordering or the best-ready scan
  // (and the steal victim selection) would loop on equal keys.
  const SchedKey k1 = key(Priority::Normal, 100.0, 4);
  for (SchedPolicy p : {SchedPolicy::Fifo, SchedPolicy::Priority, SchedPolicy::Edf}) {
    EXPECT_FALSE(schedules_before(p, k1, k1)) << sched_policy_name(p);
  }
}

// ---------------------------------------------------------------------------
// Admission control (injected clock: no sleeps, no flakiness)

using Clock = std::chrono::steady_clock;

TEST(AdmissionTest, TokenBucketStartsFullAndRefillsAtTheSustainedRate) {
  const Clock::time_point t0 = Clock::now();
  TokenBucket bucket(/*rate_per_s=*/1.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_TRUE(bucket.try_take(t0));
  EXPECT_FALSE(bucket.try_take(t0)) << "burst exhausted";
  // Half a second accrues half a token — still shed.
  EXPECT_FALSE(bucket.try_take(t0 + std::chrono::milliseconds(500)));
  // Two seconds after exhaustion at 1 token/s the bucket is full again
  // (burst 2): exactly two takes pass.
  EXPECT_TRUE(bucket.try_take(t0 + std::chrono::milliseconds(2000)));
  EXPECT_TRUE(bucket.try_take(t0 + std::chrono::milliseconds(2000)));
  EXPECT_FALSE(bucket.try_take(t0 + std::chrono::milliseconds(2000)));
}

TEST(AdmissionTest, TokenBucketRefillCapsAtBurst) {
  const Clock::time_point t0 = Clock::now();
  TokenBucket bucket(/*rate_per_s=*/10.0, /*burst=*/3.0);
  EXPECT_TRUE(bucket.try_take(t0));
  // A long idle stretch accrues far more than burst tokens; only burst
  // of them survive.
  const Clock::time_point later = t0 + std::chrono::seconds(100);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(bucket.try_take(later)) << "take " << i;
  EXPECT_FALSE(bucket.try_take(later));
}

TEST(AdmissionTest, ControllerIsolatesTenants) {
  AdmissionController admission(/*rate_per_s=*/1.0, /*burst=*/1.0);
  const Clock::time_point t0 = Clock::now();
  EXPECT_TRUE(admission.admit("alpha", t0));
  EXPECT_FALSE(admission.admit("alpha", t0)) << "alpha exhausted its own bucket";
  EXPECT_TRUE(admission.admit("beta", t0)) << "beta's bucket is untouched";
}

TEST(AdmissionTest, ShedReasonNamesAreStable) {
  EXPECT_STREQ(shed_reason_name(ShedReason::RateLimited), "rate_limited");
  EXPECT_STREQ(shed_reason_name(ShedReason::QueueFull), "queue_full");
}

// ---------------------------------------------------------------------------
// Option and spec validation

TEST(SchedulerOptionsTest, RejectsNegativeRateLimit) {
  ServeRuntime::Options opts;
  opts.tenant_rate_limit = -1.0;
  EXPECT_THROW(ServeRuntime{opts}, ServeError);
}

TEST(SchedulerOptionsTest, RejectsSubUnitBurstWhenLimiting) {
  ServeRuntime::Options opts;
  opts.tenant_rate_limit = 10.0;
  opts.tenant_rate_burst = 0.5;
  EXPECT_THROW(ServeRuntime{opts}, ServeError);
  // Without limiting the burst value is inert and may stay default.
  opts.tenant_rate_limit = 0.0;
  ServeRuntime ok(opts);
  ok.shutdown();
}

TEST(SchedulerOptionsTest, RejectsZeroCapacityQueue) {
  ServeRuntime::Options opts;
  opts.queue_capacity = 0;
  EXPECT_THROW(ServeRuntime{opts}, ServeError);
}

TEST(SchedulerOptionsTest, JobSpecRejectsNegativeDeadlineAndEmptyTenant) {
  JobSpec bad_deadline;
  bad_deadline.deadline_ms = -5.0;
  EXPECT_THROW(bad_deadline.validate(), ServeError);
  JobSpec bad_tenant;
  bad_tenant.tenant.clear();
  EXPECT_THROW(bad_tenant.validate(), ServeError);
}

TEST(SchedulerOptionsTest, SubmitRejectsDeadlinesInsideOneBatchWindow) {
  // With batching on, a job may legally wait a full batch window before
  // dispatch — a deadline below that window could expire while the job
  // coalesces, so the runtime refuses it up front.
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.batch_max = 2;
  opts.batch_wait_ms = 5.0;
  ServeRuntime runtime(opts);
  JobSpec spec;
  spec.frames = 2;
  spec.exec_frames = 1;
  spec.deadline_ms = 2.0;  // inside the 5ms batch window
  EXPECT_THROW(runtime.submit(spec), ServeError);
  spec.deadline_ms = 50.0;  // clears the window: accepted
  runtime.submit(spec).get();
}

// ---------------------------------------------------------------------------
// Preemption points

TEST(PreemptionGateTest, GateStopsAtTheNextFrameBoundaryExactly) {
  // The bounded-inversion guarantee at its source: even a gate that
  // demands preemption before every frame cedes the device after
  // exactly one frame per chunk (the loop always makes one frame of
  // progress, so a preempt storm cannot livelock a job), and the
  // chunked run is bit-exact against the uninterrupted one.
  const apps::DownscalerConfig cfg = apps::DownscalerConfig::tiny();
  const apps::SacDownscaler::Options opts;
  apps::SacDownscaler downscaler(cfg, opts);
  const int kFrames = 4;

  gpu::VirtualGpu whole_gpu(opts.device);
  const auto whole = downscaler.run_cuda_chain_on(whole_gpu, kFrames, 1, kFrames);
  ASSERT_EQ(whole.next_frame, kFrames);

  gpu::VirtualGpu chunked_gpu(opts.device);
  const apps::FrameGate never = [](int) { return false; };
  apps::SacDownscaler::CudaResult last;
  int frame = 0;
  int chunks = 0;
  while (frame < kFrames) {
    auto r = downscaler.run_cuda_chain_on(chunked_gpu, kFrames, 1, kFrames, {}, true, frame,
                                          never);
    EXPECT_EQ(r.next_frame, frame + 1) << "exactly one frame per preempted chunk";
    frame = r.next_frame;
    last = std::move(r);
    ++chunks;
  }
  EXPECT_EQ(chunks, kFrames);
  EXPECT_EQ(last.last_output, whole.last_output);
}

TEST(SchedulerPreemptionTest, HighPriorityArrivalPreemptsARunningLowJob) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.policy = SchedPolicy::Priority;
  opts.event_log_capacity = 256;
  ServeRuntime runtime(opts);

  JobSpec low;
  low.priority = Priority::Low;
  low.frames = 64;  // long enough that the high job arrives mid-run
  auto low_future = runtime.submit(low);
  // Wait until the low job left the queue — it is now inside its frame
  // loop on the only device.
  while (runtime.queued_jobs() > 0) std::this_thread::sleep_for(std::chrono::microseconds(50));

  JobSpec high;
  high.priority = Priority::High;
  high.frames = 2;
  high.exec_frames = 1;
  auto high_future = runtime.submit(high);

  const JobResult high_result = high_future.get();
  const JobResult low_result = low_future.get();
  runtime.drain();

  EXPECT_GE(low_result.preemptions, 1) << "the arrival must displace the running job";
  EXPECT_EQ(high_result.preemptions, 0);

  // Displacement never costs correctness: the resumed job keeps its
  // completed frames and its output matches the single-device run.
  const JobResult reference = reference_run(low, opts.device);
  EXPECT_EQ(low_result.last_output, reference.last_output);

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_GE(s.preemptions, 1);

  // The high job finished before the job submitted ahead of it — the
  // whole point of preempting — and the event log says why.
  std::uint64_t first_completed = 0;
  for (const Json& line : parse_jsonl(runtime.events_jsonl())) {
    if (line.at("event").string == "job_completed") {
      first_completed = static_cast<std::uint64_t>(line.at("job").number);
      break;
    }
  }
  EXPECT_EQ(first_completed, high_result.id);
  EXPECT_NE(runtime.events_jsonl().find("\"job_preempted\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Work stealing

TEST(SchedulerStealTest, StealingDefaultsOffToKeepPlacementDeterministic) {
  // Several placement tests (and the batching heuristics) rely on jobs
  // running where the cost model put them; stealing is strictly opt-in.
  EXPECT_FALSE(ServeRuntime::Options{}.work_stealing);
}

TEST(SchedulerStealTest, IdleDispatcherStealsABackedOffRetry) {
  // Deterministic steal scenario: device 1 faults its very first kernel
  // (one-shot), so its job fails over to device 0 — which is busy with
  // a long job — behind a retry backoff. Device 1's dispatcher, now
  // idle and degraded-for-placement but healthy-for-work, steals the
  // retry back (backing-off entries are stealable: nothing would ever
  // wake an idle thief when the backoff elapses) and completes it.
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.work_stealing = true;
  opts.event_log_capacity = 256;
  opts.fault_plan = FaultPlanBuilder().fail_after_kernels(/*device=*/1, /*kernels=*/0).build();
  opts.degraded_cooldown_ms = -1.0;
  opts.retry_backoff_base_ms = 0.05;
  opts.retry_backoff_cap_ms = 0.5;
  ServeRuntime runtime(opts);

  JobSpec big;
  big.frames = 64;  // keeps device 0 busy through the fault + steal
  auto big_future = runtime.submit(big);  // least-loaded tie-break: device 0

  JobSpec small;
  small.frames = 2;
  small.exec_frames = 1;
  auto small_future = runtime.submit(small);  // placed on device 1, faults instantly

  const JobResult big_result = big_future.get();
  const JobResult small_result = small_future.get();
  runtime.drain();

  EXPECT_EQ(big_result.device, 0);
  EXPECT_EQ(small_result.device, 1) << "the thief ran the stolen job";
  EXPECT_EQ(small_result.attempts, 1);

  const JobResult reference = reference_run(small, opts.device);
  EXPECT_EQ(small_result.last_output, reference.last_output);

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_GE(s.steals, 1);
  EXPECT_EQ(s.jobs_completed, 2);
  EXPECT_NE(runtime.events_jsonl().find("\"job_stolen\""), std::string::npos);
  testsupport::expect_zero_allocator_leaks(runtime);
}

}  // namespace
}  // namespace saclo::serve
