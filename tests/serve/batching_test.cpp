// Dynamic batching in the serving runtime: a dispatcher coalesces
// queued same-key jobs into one fused frame loop (stream barrier elided
// between members). Batching is a scheduling change only — every
// member's output must stay bit-exact against the single-job reference,
// including when a fault strikes mid-batch and one member fails over.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "serve/job.hpp"
#include "serve/scheduler.hpp"
#include "support/fault_fixtures.hpp"

namespace saclo::serve {
namespace {

using testsupport::expect_zero_allocator_leaks;
using testsupport::FaultPlanBuilder;
using testsupport::faulty_fleet_options;

JobSpec gaspard_job() {
  JobSpec spec;
  spec.route = Route::Gaspard;
  spec.config = apps::DownscalerConfig::tiny();
  spec.frames = 2;  // exec_frames = -1: every frame executes functionally
  return spec;
}

JobSpec sac_job() {
  JobSpec spec;
  spec.route = Route::SacNongeneric;
  spec.config = apps::DownscalerConfig::tiny();
  spec.frames = 2;
  return spec;
}

/// Paused single-device fleet: everything queues behind the pause, so
/// resume() hands the dispatcher the whole backlog at once and the
/// batch composition is deterministic.
ServeRuntime::Options paused_batching_options(int batch_max) {
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.start_paused = true;
  opts.batch_max = batch_max;
  opts.event_log_capacity = 1024;
  return opts;
}

TEST(BatchingTest, CoalescedBatchIsBitExactAndCounted) {
  const JobSpec spec = gaspard_job();
  ServeRuntime::Options opts = paused_batching_options(4);
  const JobResult reference = reference_run(spec, opts.device);
  ASSERT_GT(reference.last_output.elements(), 0);

  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(spec));
  runtime.resume();
  for (auto& f : futures) {
    const JobResult r = f.get();
    EXPECT_EQ(r.last_output, reference.last_output) << "batched member diverged";
    EXPECT_EQ(r.attempts, 0);
  }
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 4);
  EXPECT_EQ(s.batches_formed, 1);
  EXPECT_EQ(s.jobs_batched, 4);
  EXPECT_EQ(s.batch_size_hist.max(), 4);

  // The coalescing is observable: a batch_formed event carrying the
  // batch size, and the members' device spans stamped with the batch id.
  const std::string events = runtime.events_jsonl();
  EXPECT_NE(events.find("\"event\":\"batch_formed\""), std::string::npos) << events;
  EXPECT_NE(events.find("\"arg\":4"), std::string::npos) << events;
  EXPECT_NE(runtime.device_trace_json(0).find("\"batch\":"), std::string::npos);
}

TEST(BatchingTest, OnlySameKeyJobsCoalesce) {
  ServeRuntime::Options opts = paused_batching_options(4);
  const JobResult gaspard_ref = reference_run(gaspard_job(), opts.device);
  const JobResult sac_ref = reference_run(sac_job(), opts.device);

  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> gaspard_futures;
  std::vector<std::future<JobResult>> sac_futures;
  for (int i = 0; i < 2; ++i) {
    gaspard_futures.push_back(runtime.submit(gaspard_job()));
    sac_futures.push_back(runtime.submit(sac_job()));
  }
  runtime.resume();
  for (auto& f : gaspard_futures) EXPECT_EQ(f.get().last_output, gaspard_ref.last_output);
  for (auto& f : sac_futures) EXPECT_EQ(f.get().last_output, sac_ref.last_output);
  runtime.drain();

  // The interleaved backlog [g, s, g, s] must form per-key batches of
  // 2, never a mixed batch of 4.
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 4);
  EXPECT_EQ(s.batches_formed, 2);
  EXPECT_EQ(s.jobs_batched, 4);
  EXPECT_EQ(s.batch_size_hist.max(), 2);
}

TEST(BatchingTest, DifferentOptLevelsDoNotCoalesce) {
  const JobSpec unfused = gaspard_job();
  JobSpec fused = gaspard_job();
  fused.opt_level = 1;
  EXPECT_NE(batch_key(unfused), batch_key(fused));
  EXPECT_EQ(batch_key(unfused), batch_key(gaspard_job()));
}

TEST(BatchingTest, BatchMaxOneNeverBatches) {
  const JobSpec spec = gaspard_job();
  ServeRuntime::Options opts = paused_batching_options(1);
  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 3; ++i) futures.push_back(runtime.submit(spec));
  runtime.resume();
  for (auto& f : futures) f.get();
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 3);
  EXPECT_EQ(s.batches_formed, 0);
  EXPECT_EQ(s.jobs_batched, 0);
  EXPECT_EQ(runtime.events_jsonl().find("batch_formed"), std::string::npos);
}

TEST(BatchingTest, BatchWaitCoalescesLateArrivals) {
  const JobSpec spec = gaspard_job();
  ServeRuntime::Options opts;
  opts.devices = 1;
  opts.batch_max = 4;
  opts.batch_wait_ms = 500.0;  // far longer than the submission loop takes
  const JobResult reference = reference_run(spec, opts.device);

  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(spec));
  for (auto& f : futures) EXPECT_EQ(f.get().last_output, reference.last_output);
  runtime.drain();

  // The dispatcher may pick a leader before the later submissions land,
  // but the wait window keeps the batch open for them: at least one
  // multi-member batch must have formed.
  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 4);
  EXPECT_GE(s.batches_formed, 1);
  EXPECT_GE(s.jobs_batched, 2);
}

// A fault striking mid-batch: the faulted member follows the normal
// failover path to a healthy device while the members behind it keep
// the original device busy — and every output stays bit-exact.
TEST(BatchingTest, MidBatchFaultFailsOverBitExact) {
  const JobSpec spec = gaspard_job();
  ServeRuntime::Options defaults;
  const JobResult reference = reference_run(spec, defaults.device);
  ASSERT_GE(reference.ops.kernel_launches, 2);

  // Two devices, alternating placement: device 0's queue holds jobs
  // 1 and 3, which coalesce into one batch. The fault boundary lands
  // inside the batch's second member.
  const int boundary = reference.ops.kernel_launches + reference.ops.kernel_launches / 2;
  ServeRuntime::Options opts =
      faulty_fleet_options(2, FaultPlanBuilder().fail_after_kernels(0, boundary).build());
  opts.batch_max = 4;
  opts.event_log_capacity = 1024;
  ServeRuntime runtime(opts);

  std::vector<std::future<JobResult>> futures;
  for (int i = 0; i < 4; ++i) futures.push_back(runtime.submit(spec));
  runtime.resume();
  int failovers = 0;
  for (auto& f : futures) {
    const JobResult r = f.get();
    EXPECT_EQ(r.last_output, reference.last_output)
        << "mid-batch faulted member diverged from the fault-free reference";
    failovers += r.attempts;
  }
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  EXPECT_EQ(s.jobs_completed, 4);
  EXPECT_EQ(s.jobs_failed, 0);
  EXPECT_EQ(s.device_faults, 1);
  EXPECT_EQ(failovers, 1);
  expect_zero_allocator_leaks(runtime);
}

TEST(BatchingTest, InvalidBatchingOptionsAreRejected) {
  {
    ServeRuntime::Options opts;
    opts.batch_max = 0;
    EXPECT_THROW(ServeRuntime runtime(opts), ServeError);
  }
  {
    ServeRuntime::Options opts;
    opts.batch_wait_ms = -1.0;
    EXPECT_THROW(ServeRuntime runtime(opts), ServeError);
  }
  JobSpec spec = gaspard_job();
  spec.opt_level = 3;
  EXPECT_THROW(spec.validate(), ServeError);
  spec.opt_level = -1;
  EXPECT_THROW(spec.validate(), ServeError);
}

}  // namespace
}  // namespace saclo::serve
