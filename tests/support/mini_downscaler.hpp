#pragma once

/// A miniature single-channel downscaler in the exact style of the
/// paper's Figures 4-7 (generic input tiler, task function, and both
/// output tilers), scaled down so tests run fast:
/// frame 8x16 -> 8x6 (11-pixel pattern, paving step 8, tiles of 3).
inline const char* kMiniDownscalerSrc = R"(
int[*] zeros(int h, int w) {
  z = with { ([0,0] <= iv < [h,w]) : 0; } : genarray([h,w]);
  return (z);
}

int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                   int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  output = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          off = origin + MV( CAT( paving, fitting), rep++pat);
          iv = off % shape(in_frame);
          elem = in_frame[iv];
        } : elem;
      } : genarray( in_pattern, 0);
    } : tile;
  } : genarray( repetition);
  return( output);
}

int[*] task(int[*] input, int[.] out_pattern, int[.] repetition)
{
  output = with {
    (. <= rep <= .) {
      tile = with { (. <= pv <= .) : 0; } : genarray( out_pattern, 0);
      tmp0 = input[rep][0] + input[rep][1] + input[rep][2] +
             input[rep][3] + input[rep][4] + input[rep][5];
      tile[0] = tmp0 / 6 - tmp0 % 6;
      tmp1 = input[rep][2] + input[rep][3] + input[rep][4] +
             input[rep][5] + input[rep][6] + input[rep][7];
      tile[1] = tmp1 / 6 - tmp1 % 6;
      tmp2 = input[rep][5] + input[rep][6] + input[rep][7] +
             input[rep][8] + input[rep][9] + input[rep][10];
      tile[2] = tmp2 / 6 - tmp2 % 6;
    } : tile;
  } : genarray( repetition);
  return( output);
}

int[*] nongeneric_output_tiler(int[*] output, int[*] input)
{
  output = with {
    ([0,0]<=[i,j]<=. step [1,3]):input[[i,j/3,0]];
    ([0,1]<=[i,j]<=. step [1,3]):input[[i,j/3,1]];
    ([0,2]<=[i,j]<=. step [1,3]):input[[i,j/3,2]];
  } : modarray( output);
  return( output);
}

int[*] generic_output_tiler(int[*] out_frame, int[*] input,
                            int[.] out_pattern, int[.] repetition,
                            int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  for( i=0; i< repetition[[0]]; i++) {
    for( j=0; j< repetition[[1]]; j++) {
      for( k=0; k< out_pattern[[0]]; k++) {
        off = origin + MV( CAT(paving, fitting), [i,j,k]);
        iv = off % shape( out_frame);
        out_frame[iv] = input[[i,j,k]];
      }
    }
  }
  return( out_frame);
}

int[*] hfilter_nongeneric(int[*] frame)
{
  gathered = input_tiler(frame, [11], [8,2], [0,0], [[0],[1]], [[1,0],[0,8]]);
  compressed = task(gathered, [3], [8,2]);
  base = zeros(8, 6);
  output = nongeneric_output_tiler(base, compressed);
  return( output);
}

int[*] hfilter_generic(int[*] frame)
{
  gathered = input_tiler(frame, [11], [8,2], [0,0], [[0],[1]], [[1,0],[0,8]]);
  compressed = task(gathered, [3], [8,2]);
  base = zeros(8, 6);
  output = generic_output_tiler(base, compressed, [3], [8,2], [0,0], [[0],[1]], [[1,0],[0,3]]);
  return( output);
}
)";
