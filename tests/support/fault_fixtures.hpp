#pragma once

// Shared scaffolding for the fault-injection and failover suites:
// a fluent FaultPlan builder, canned ServeRuntime options that make
// failover deterministic, and the leak assertion every faulted run
// must satisfy.

#include <gtest/gtest.h>

#include <cstdint>

#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "serve/scheduler.hpp"

namespace saclo::testsupport {

/// Fluent builder over fault::FaultPlan so tests read as the failure
/// scenario they stage:
///
///   FaultPlanBuilder()
///       .fail_after_kernels(/*device=*/0, /*kernels=*/0)
///       .fail_after_ms(/*device=*/1, /*ms=*/2.0, fault::FaultKind::Transfer)
///       .build();
class FaultPlanBuilder {
 public:
  /// Device fails at its (kernels + 1)-th kernel launch; 0 fails the
  /// very first kernel.
  FaultPlanBuilder& fail_after_kernels(int device, std::int64_t kernels,
                                       bool recurring = false) {
    fault::FaultSpec spec;
    spec.device = device;
    spec.after_kernels = kernels;
    spec.kind = fault::FaultKind::Kernel;
    spec.recurring = recurring;
    plan_.add(spec);
    return *this;
  }

  /// Device fails at its (transfers + 1)-th accounted PCIe transfer.
  FaultPlanBuilder& fail_after_transfers(int device, std::int64_t transfers,
                                         bool recurring = false) {
    fault::FaultSpec spec;
    spec.device = device;
    spec.after_transfers = transfers;
    spec.kind = fault::FaultKind::Transfer;
    spec.recurring = recurring;
    plan_.add(spec);
    return *this;
  }

  /// Device fails at the first op of `kind` once its simulated clock
  /// reaches `ms` milliseconds.
  FaultPlanBuilder& fail_after_ms(int device, double ms,
                                  fault::FaultKind kind = fault::FaultKind::Any,
                                  bool recurring = false) {
    fault::FaultSpec spec;
    spec.device = device;
    spec.after_ms = ms;
    spec.kind = kind;
    spec.recurring = recurring;
    plan_.add(spec);
    return *this;
  }

  fault::FaultPlan build() const { return plan_; }

 private:
  fault::FaultPlan plan_;
};

/// Fleet options tuned for deterministic failover tests: degraded
/// devices never heal (so the faulted device provably stays avoided),
/// backoff is tiny (tests don't wait), and dispatch starts paused so a
/// test can stage placement before any job runs.
inline serve::ServeRuntime::Options faulty_fleet_options(int devices,
                                                         fault::FaultPlan plan) {
  serve::ServeRuntime::Options opts;
  opts.devices = devices;
  opts.queue_capacity = 32;
  opts.start_paused = true;
  opts.fault_plan = std::move(plan);
  opts.degraded_cooldown_ms = -1.0;  // degraded stays degraded: assertable
  opts.retry_backoff_base_ms = 0.05;
  opts.retry_backoff_cap_ms = 0.5;
  return opts;
}

/// Every fault-injection test's exit criterion: after drain(), no
/// device — including the one whose job died mid-frame-loop — holds a
/// live allocator block. Faulted attempts must hand every buffer back.
inline void expect_zero_allocator_leaks(serve::ServeRuntime& runtime) {
  for (int d = 0; d < runtime.device_count(); ++d) {
    const serve::CachingDeviceAllocator::Stats stats = runtime.allocator_stats(d);
    EXPECT_EQ(stats.live_blocks, 0) << "device " << d << " leaked blocks";
    EXPECT_EQ(stats.live_bytes, 0) << "device " << d << " leaked bytes";
  }
}

}  // namespace saclo::testsupport
