#pragma once

// Minimal recursive-descent JSON parser for tests that validate the
// project's machine-readable exports (Chrome traces, fleet metrics,
// BENCH_*.json). Throws std::runtime_error on malformed input — which
// is exactly the assertion the tests want.

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace saclo::testsupport {

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }
  bool has(const std::string& key) const { return object.count(key) != 0; }
  const Json& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing characters after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }
  char next() {
    char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) throw std::runtime_error(std::string("expected '") + c + "'");
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return boolean();
      case 'n':
        return null();
      default:
        return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      Json key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace(key.string, value());
      skip_ws();
      const char c = next();
      if (c == '}') return v;
      if (c != ',') throw std::runtime_error("expected ',' or '}' in object");
    }
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      const char c = next();
      if (c == ']') return v;
      if (c != ',') throw std::runtime_error("expected ',' or ']' in array");
    }
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::String;
    expect('"');
    for (;;) {
      char c = next();
      if (c == '"') return v;
      if (c == '\\') {
        const char esc = next();
        switch (esc) {
          case '"':
            v.string += '"';
            break;
          case '\\':
            v.string += '\\';
            break;
          case '/':
            v.string += '/';
            break;
          case 'n':
            v.string += '\n';
            break;
          case 't':
            v.string += '\t';
            break;
          default:
            throw std::runtime_error("unsupported escape in test JSON");
        }
      } else {
        v.string += c;
      }
    }
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::Bool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw std::runtime_error("bad literal");
    }
    return v;
  }

  Json null() {
    if (text_.compare(pos_, 4, "null") != 0) throw std::runtime_error("bad literal");
    pos_ += 4;
    return {};
  }

  Json number() {
    Json v;
    v.kind = Json::Kind::Number;
    std::size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) || text_[end] == '-' ||
            text_[end] == '+' || text_[end] == '.' || text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) throw std::runtime_error("bad number");
    v.number = std::stod(text_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

inline Json parse_json(const std::string& text) { return JsonParser(text).parse(); }

}  // namespace saclo::testsupport
