#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/plan.hpp"

namespace saclo::fault {
namespace {

// -- spec grammar -----------------------------------------------------------

TEST(FaultSpecTest, ParseRoundTripsThroughDescribe) {
  const std::vector<std::string> canonical = {
      "dev=0,after_kernels=0,kind=kernel",
      "dev=2,after_ms=50,kind=kernel",
      "dev=1,after_transfers=7,kind=transfer,recurring",
      "dev=3,after_ms=0.5,kind=any",
  };
  for (const std::string& text : canonical) {
    const FaultSpec spec = parse_fault_spec(text);
    EXPECT_EQ(parse_fault_spec(spec.describe()).describe(), spec.describe()) << text;
  }
}

TEST(FaultSpecTest, ParseAcceptsAliasesAndDefaults) {
  // "device=" is an alias for "dev=", count triggers imply their kind,
  // and specs are one-shot unless "recurring" appears.
  const FaultSpec spec = parse_fault_spec("device=1,after_kernels=3");
  EXPECT_EQ(spec.device, 1);
  EXPECT_EQ(spec.after_kernels, 3);
  EXPECT_EQ(spec.kind, FaultKind::Kernel);
  EXPECT_FALSE(spec.recurring);
  EXPECT_FALSE(parse_fault_spec("dev=0,after_ms=1,oneshot").recurring);
}

TEST(FaultSpecTest, MalformedSpecsAreRejected) {
  // No trigger, two triggers, unknown key, bad number, bad kind,
  // kind inconsistent with a count trigger, negative values.
  for (const std::string bad : {
           "dev=0",
           "dev=0,after_kernels=1,after_ms=2",
           "dev=0,after_kernels=1,bogus=3",
           "dev=0,after_kernels=abc",
           "dev=0,after_ms=1,kind=sideways",
           "dev=0,after_kernels=1,kind=transfer",
           "dev=0,after_transfers=1,kind=kernel",
           "dev=-1,after_kernels=1",
           "dev=0,after_kernels=-2",
           "dev=0,after_ms=-3",
           "",
       }) {
    EXPECT_THROW(parse_fault_spec(bad), FaultPlanError) << "'" << bad << "'";
  }
}

// -- injector semantics -----------------------------------------------------

TEST(FaultInjectorTest, AfterKernelsZeroFailsTheVeryFirstKernel) {
  FaultInjector injector(
      {parse_fault_spec("dev=0,after_kernels=0")});
  EXPECT_THROW(injector.on_kernel(0.0), DeviceFault);
  EXPECT_EQ(injector.kernels_seen(), 0) << "the faulted launch never happened";
  EXPECT_EQ(injector.faults_fired(), 1);
  // One-shot: the device works again afterwards.
  EXPECT_NO_THROW(injector.on_kernel(1.0));
  EXPECT_EQ(injector.kernels_seen(), 1);
}

TEST(FaultInjectorTest, CountTriggersCountSuccessfulOpsOfTheirKindOnly) {
  FaultInjector injector(
      {parse_fault_spec("dev=0,after_kernels=2")});
  injector.on_kernel(0.0);
  injector.on_transfer(0.0);  // transfers don't advance the kernel count
  injector.on_kernel(1.0);
  EXPECT_THROW(injector.on_kernel(2.0), DeviceFault);
  EXPECT_EQ(injector.kernels_seen(), 2);
  EXPECT_EQ(injector.transfers_seen(), 1);
}

TEST(FaultInjectorTest, RecurringCountFaultReArms) {
  // after_kernels=2, recurring: launches 3, 6, 9, ... fail.
  FaultInjector injector(
      {parse_fault_spec("dev=0,after_kernels=2,recurring")});
  injector.on_kernel(0.0);
  injector.on_kernel(0.0);
  EXPECT_THROW(injector.on_kernel(0.0), DeviceFault);
  injector.on_kernel(0.0);
  injector.on_kernel(0.0);
  EXPECT_THROW(injector.on_kernel(0.0), DeviceFault);
  EXPECT_EQ(injector.faults_fired(), 2);
}

TEST(FaultInjectorTest, TimeTriggerHonoursKindAndClock) {
  FaultInjector injector(
      {parse_fault_spec("dev=0,after_ms=1,kind=transfer")});
  // Before the deadline nothing fires; kernels never fire this spec.
  injector.on_transfer(999.0);
  injector.on_kernel(2000.0);
  EXPECT_THROW(injector.on_transfer(1000.0), DeviceFault);
  EXPECT_NO_THROW(injector.on_transfer(3000.0)) << "one-shot glitch cleared";
}

TEST(FaultInjectorTest, RecurringTimeFaultIsAPermanentlyDeadDevice) {
  FaultInjector injector(
      {parse_fault_spec("dev=0,after_ms=1,recurring")});
  injector.on_kernel(0.0);
  EXPECT_THROW(injector.on_kernel(1000.0), DeviceFault);
  EXPECT_THROW(injector.on_transfer(5000.0), DeviceFault);
  EXPECT_THROW(injector.on_kernel(9000.0), DeviceFault);
}

TEST(FaultInjectorTest, UnarmedInjectorIsTransparent) {
  FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  for (int i = 0; i < 100; ++i) {
    injector.on_kernel(static_cast<double>(i));
    injector.on_transfer(static_cast<double>(i));
  }
  EXPECT_EQ(injector.faults_fired(), 0);
}

// -- plans ------------------------------------------------------------------

TEST(FaultPlanTest, ParseSplitsOnSemicolonsAndFiltersPerDevice) {
  const FaultPlan plan =
      FaultPlan::parse("dev=0,after_kernels=0; dev=2,after_ms=50,kind=kernel");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.specs_for(0).size(), 1u);
  EXPECT_TRUE(plan.specs_for(1).empty());
  EXPECT_EQ(plan.specs_for(2).size(), 1u);
  // Trailing separators are CLI-friendly noise; broken specs are not.
  EXPECT_EQ(FaultPlan::parse("dev=0,after_kernels=0;").size(), 1u);
  EXPECT_THROW(FaultPlan::parse("dev=0,after_kernels=0;dev=1"), FaultPlanError);
}

TEST(FaultPlanTest, RandomPlansAreSeedDeterministicAndValid) {
  const FaultPlan a = FaultPlan::random(/*seed=*/42, /*devices=*/4, /*faults=*/12);
  const FaultPlan b = FaultPlan::random(/*seed=*/42, /*devices=*/4, /*faults=*/12);
  const FaultPlan c = FaultPlan::random(/*seed=*/43, /*devices=*/4, /*faults=*/12);
  EXPECT_EQ(a.describe(), b.describe()) << "same seed must replay the same plan";
  EXPECT_NE(a.describe(), c.describe());
  ASSERT_EQ(a.size(), 12u);
  for (const FaultSpec& spec : a.specs()) {
    EXPECT_NO_THROW(spec.validate());
    EXPECT_GE(spec.device, 0);
    EXPECT_LT(spec.device, 4);
  }
}

}  // namespace
}  // namespace saclo::fault
