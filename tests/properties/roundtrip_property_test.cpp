#include <gtest/gtest.h>

#include "apps/downscaler/sac_source.hpp"
#include "core/fmt.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/printer.hpp"
#include "sac/typecheck.hpp"

namespace saclo::sac {
namespace {

/// Property: print(parse(x)) is a fixpoint — parsing the printer's
/// output and printing again yields the same text, and both modules
/// compute the same values.
class RoundTripProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripProperty, PrintParsePrintIsStable) {
  const Module m1 = parse(GetParam());
  const std::string p1 = print(m1);
  const Module m2 = parse(p1);
  const std::string p2 = print(m2);
  EXPECT_EQ(p1, p2);
}

TEST_P(RoundTripProperty, ReparsedModuleTypechecks) {
  const Module m1 = parse(GetParam());
  EXPECT_NO_THROW(typecheck(parse(print(m1))));
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTripProperty,
    ::testing::Values(
        "int f(int a, int b) { return (a * b + a / b - a % b); }",
        "int[*] f(int[*] v) { return (with { (. <= iv <= .) : v[iv] + 1; } "
        ": genarray(shape(v))); }",
        "int[*] f(int[*] v) { return (with { ([0,0] <= [i,j] < [4,4] step [1,2] width [1,1]) "
        ": i * j; } : genarray([4,4], 0)); }",
        "int f(int[*] v) { return (with { ([0] <= [i] < [8]) : v[[i]]; } : fold(+, 0)); }",
        "int f(int n) { s = 0; for (i = 0; i < n; i = i + 2) { s = s + i; } return (s); }",
        "int f(int a) { if (a > 0 && a < 10 || a == 42) { return (1); } else { return (0); } }",
        "int[*] f(int[*] m) { return (m[[1,2]] ++ shape(m)); }",
        "int[*] f(int[*] o) { return (with { ([0] <= [i] < [6] step [2]) : 0 - i; } "
        ": modarray(o)); }"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return saclo::cat("p", info.index);
    });

/// Property: the generated downscaler module round-trips for several
/// geometries (covers every construct the generator emits).
class SourceGenRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SourceGenRoundTrip, GeneratedModuleRoundTrips) {
  apps::DownscalerConfig cfg;
  switch (GetParam()) {
    case 0: cfg = apps::DownscalerConfig::tiny(); break;
    case 1: cfg = apps::DownscalerConfig::small(); break;
    default: cfg = apps::DownscalerConfig::paper(); break;
  }
  const std::string src = apps::downscaler_sac_source(cfg);
  const Module m = parse(src);
  const std::string p1 = print(m);
  EXPECT_EQ(p1, print(parse(p1)));
  EXPECT_NO_THROW(typecheck(m));
}

INSTANTIATE_TEST_SUITE_P(Configs, SourceGenRoundTrip, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace saclo::sac
