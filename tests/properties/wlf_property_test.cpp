#include <gtest/gtest.h>

#include "core/fmt.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"

namespace saclo::sac {
namespace {

Module wrap(const FunDef& fn) {
  Module m;
  m.functions.push_back(FunDef{fn.name, fn.return_type, fn.params, clone_block(fn.body), fn.line});
  return m;
}

/// Property: for every (size, shift, scale, step, producer-split)
/// combination, the WLF-optimised program computes exactly what the
/// unoptimised one does. This sweeps the generator-splitting machinery
/// (interval clipping, residue matching, default regions, wrap-around)
/// far beyond the downscaler's specific geometry.
struct FoldCase {
  std::int64_t size;    // producer length
  std::int64_t shift;   // consumer reads a[[scale*i + shift]]
  std::int64_t scale;   // >= 1
  std::int64_t step;    // consumer generator step
  std::int64_t split;   // producer split point (two generators)
};

std::ostream& operator<<(std::ostream& os, const FoldCase& c) {
  return os << "n" << c.size << "_sh" << c.shift << "_sc" << c.scale << "_st" << c.step
            << "_sp" << c.split;
}

class WlfFoldProperty : public ::testing::TestWithParam<FoldCase> {};

TEST_P(WlfFoldProperty, OptimisedEqualsReference) {
  const FoldCase& c = GetParam();
  const std::int64_t consumer_n = std::max<std::int64_t>((c.size - c.shift) / c.scale, 1);
  const std::string src = cat(R"(
int[*] main(int[*] v) {
  a = with {
    ([0] <= iv < [)", c.split, R"(]) : v[iv] * 10;
    ([)", c.split, R"(] <= iv < [)", c.size, R"(]) : v[iv] + 1000;
  } : genarray([)", c.size, R"(], -1);
  b = with {
    ([0] <= [i] < [)", consumer_n, R"(] step [)", c.step, R"(]) : a[[)", c.scale,
                              R"( * i + )", c.shift, R"(]];
  } : genarray([)", consumer_n, R"(], -7);
  return (b);
}
)");
  const Module m = parse(src);
  const IntArray v =
      IntArray::generate(Shape{c.size}, [](const Index& i) { return i[0] * 3 + 1; });
  const Value expected = run_function(m, "main", {Value(v)});

  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{c.size})});
  const Value actual = run_function(wrap(cf.fn), "main", {Value(v)});
  EXPECT_EQ(expected, actual) << print(cf.fn);
  // The fold must actually have happened (the access is affine).
  EXPECT_GE(cf.stats.folds, 1) << print(cf.fn);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WlfFoldProperty,
    ::testing::Values(FoldCase{16, 0, 1, 1, 8}, FoldCase{16, 3, 1, 1, 8},
                      FoldCase{16, 0, 2, 1, 8}, FoldCase{16, 1, 2, 1, 5},
                      FoldCase{24, 2, 3, 1, 7}, FoldCase{16, 0, 1, 2, 8},
                      FoldCase{16, 3, 1, 3, 4}, FoldCase{30, 5, 2, 2, 13},
                      FoldCase{16, 0, 1, 1, 1}, FoldCase{16, 0, 1, 1, 15},
                      FoldCase{12, 11, 1, 1, 6}, FoldCase{40, 7, 4, 3, 21}),
    [](const ::testing::TestParamInfo<FoldCase>& info) {
      return cat("n", info.param.size, "_sh", info.param.shift, "_sc", info.param.scale, "_st",
                 info.param.step, "_sp", info.param.split);
    });

/// Property: the two-dimensional wrap-around elimination is sound for
/// arbitrary paving/pattern geometries — the downscaler pipeline is run
/// for every geometry in the sweep and compared against the
/// interpreter.
struct GeoCase {
  std::int64_t h;
  std::int64_t w;
  std::int64_t pattern;
  std::int64_t paving;
  std::int64_t tile;
};

class WlfGeometryProperty : public ::testing::TestWithParam<GeoCase> {};

TEST_P(WlfGeometryProperty, FusedTilerPipelineIsExact) {
  const GeoCase& c = GetParam();
  const std::int64_t reps = c.w / c.paving;
  const std::int64_t out_w = reps * c.tile;
  // windows of width `pattern - tile + 1` starting at 0..tile-1 —
  // always within the pattern.
  const std::int64_t win = c.pattern - c.tile + 1;
  std::string task_lines;
  for (std::int64_t k = 0; k < c.tile; ++k) {
    std::string sum;
    for (std::int64_t x = 0; x < win; ++x) {
      sum += (x ? " + " : "") + cat("input[rep][", k + x, "]");
    }
    task_lines += cat("      tmp", k, " = ", sum, ";\n      tile[", k, "] = tmp", k, " / ", win,
                      " - tmp", k, " % ", win, ";\n");
  }
  std::string gens;
  for (std::int64_t r = 0; r < c.tile; ++r) {
    gens += cat("    ([0,", r, "] <= [i,j] <= . step [1,", c.tile, "]) : mid[[i, j / ", c.tile,
                ", ", r, "]];\n");
  }
  // The input tiler, written with explicit wrap-around selects (the
  // generic Figure 4 shape, inlined to keep the generated module
  // compact).
  const std::string tiler_src = cat(R"(
int[*] gathered(int[*] frame) {
  g = with {
    (. <= rep <= .) {
      t = with {
        (. <= pat <= .) {
          col = (rep[1] * )", c.paving, R"( + pat[0]) % )", c.w, R"(;
          e = frame[[rep[0], col]];
        } : e;
      } : genarray([)", c.pattern, R"(], 0);
    } : t;
  } : genarray([)", c.h, ",", reps, R"(]);
  return (g);
}
)");
  const std::string program = cat(tiler_src, R"(
int[*] main(int[*] frame) {
  input = gathered(frame);
  mid = with {
    (. <= rep <= .) {
      tile = with { (. <= pv <= .) : 0; } : genarray([)", c.tile, R"(], 0);
)", task_lines, R"(
    } : tile;
  } : genarray([)", c.h, ",", reps, R"(]);
  base = with { ([0,0] <= iv < [)", c.h, ",", out_w, R"(]) : 0; } : genarray([)", c.h, ",",
                              out_w, R"(]);
  out = with {
)", gens, R"(  } : modarray(base);
  return (out);
}
)");
  const Module m = parse(program);
  const IntArray frame = IntArray::generate(
      Shape{c.h, c.w}, [](const Index& i) { return (i[0] * 37 + i[1] * 11) % 251; });
  const Value expected = run_function(m, "main", {Value(frame)});
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{c.h, c.w})});
  const Value actual = run_function(wrap(cf.fn), "main", {Value(frame)});
  EXPECT_EQ(expected, actual) << print(cf.fn);
  EXPECT_GE(cf.stats.folds, 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WlfGeometryProperty,
                         ::testing::Values(GeoCase{4, 16, 11, 8, 3}, GeoCase{4, 16, 9, 8, 3},
                                           GeoCase{6, 20, 7, 5, 2}, GeoCase{3, 24, 13, 6, 4},
                                           GeoCase{5, 12, 5, 4, 2}, GeoCase{2, 32, 11, 8, 4}),
                         [](const ::testing::TestParamInfo<GeoCase>& info) {
                           return cat("h", info.param.h, "w", info.param.w, "p",
                                      info.param.pattern, "s", info.param.paving, "t",
                                      info.param.tile);
                         });

}  // namespace
}  // namespace saclo::sac
