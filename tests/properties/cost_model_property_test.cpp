#include <gtest/gtest.h>

#include "core/fmt.hpp"
#include "gpu/cost_model.hpp"

namespace saclo::gpu {
namespace {

/// Property sweep over the kernel timing model: monotonicity in every
/// input and sane asymptotics, across several device models.
struct CostCase {
  const char* device_name;
  DeviceSpec device;
};

class CostModelProperty : public ::testing::TestWithParam<CostCase> {};

TEST_P(CostModelProperty, MonotonicInThreads) {
  const DeviceSpec& dev = GetParam().device;
  KernelCost c;
  c.flops_per_thread = 20;
  c.global_loads_per_thread = 8;
  c.global_stores_per_thread = 2;
  double prev = 0;
  for (std::int64_t threads : {1'000, 10'000, 100'000, 1'000'000, 10'000'000}) {
    const double t = kernel_time_us(dev, threads, c);
    EXPECT_GE(t, prev) << "threads=" << threads;
    prev = t;
  }
}

TEST_P(CostModelProperty, MonotonicInMemoryTraffic) {
  const DeviceSpec& dev = GetParam().device;
  double prev = 0;
  for (double loads : {1.0, 2.0, 4.0, 8.0, 16.0, 64.0}) {
    KernelCost c;
    c.global_loads_per_thread = loads;
    c.global_stores_per_thread = 1;
    const double t = kernel_time_us(dev, 500'000, c);
    EXPECT_GE(t, prev) << "loads=" << loads;
    prev = t;
  }
}

TEST_P(CostModelProperty, MonotonicInStrideAndClamped) {
  const DeviceSpec& dev = GetParam().device;
  KernelCost c;
  c.global_loads_per_thread = 8;
  c.global_stores_per_thread = 2;
  double prev = 0;
  for (std::int64_t stride : {1, 2, 4, 8, 16, 64, 1024, 1 << 20}) {
    c.warp_access_stride = stride;
    const double t = kernel_time_us(dev, 500'000, c);
    EXPECT_GE(t, prev) << "stride=" << stride;
    prev = t;
  }
  // Clamp: beyond max_stride_penalty nothing changes.
  c.warp_access_stride = 1 << 20;
  const double a = kernel_time_us(dev, 500'000, c);
  c.warp_access_stride = 1 << 21;
  EXPECT_DOUBLE_EQ(a, kernel_time_us(dev, 500'000, c));
}

TEST_P(CostModelProperty, LaunchOverheadIsLowerBound) {
  const DeviceSpec& dev = GetParam().device;
  KernelCost c;
  for (std::int64_t threads : {0, 1, 32, 1000}) {
    EXPECT_GE(kernel_time_us(dev, threads, c), dev.kernel_launch_overhead_us);
  }
}

TEST_P(CostModelProperty, RooflineTakesTheMax) {
  const DeviceSpec& dev = GetParam().device;
  // Compute-only and memory-only kernels; a combined kernel costs the
  // max of the two (plus overhead), never the sum.
  KernelCost compute;
  compute.flops_per_thread = 5000;
  KernelCost memory;
  memory.global_loads_per_thread = 64;
  KernelCost both;
  both.flops_per_thread = 5000;
  both.global_loads_per_thread = 64;
  const std::int64_t n = 1'000'000;
  const double tc = kernel_time_us(dev, n, compute);
  const double tm = kernel_time_us(dev, n, memory);
  const double tb = kernel_time_us(dev, n, both);
  EXPECT_NEAR(tb, std::max(tc, tm), 1e-6);
}

TEST_P(CostModelProperty, TransfersScaleLinearly) {
  const DeviceSpec& dev = GetParam().device;
  for (Dir dir : {Dir::HostToDevice, Dir::DeviceToHost}) {
    const double t1 = transfer_time_us(dev, 1 << 20, dir) - dev.pcie_latency_us;
    const double t4 = transfer_time_us(dev, 4 << 20, dir) - dev.pcie_latency_us;
    EXPECT_NEAR(t4, 4 * t1, t1 * 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, CostModelProperty,
                         ::testing::Values(CostCase{"gtx480", gtx480()},
                                           CostCase{"gtx280", gtx280()},
                                           CostCase{"bigger_fermi", bigger_fermi()}),
                         [](const ::testing::TestParamInfo<CostCase>& info) {
                           return info.param.device_name;
                         });

}  // namespace
}  // namespace saclo::gpu
