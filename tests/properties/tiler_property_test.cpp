#include <gtest/gtest.h>

#include "core/tiler.hpp"

namespace saclo {
namespace {

/// A parameterised tiler scenario over a 2-D array.
struct TilerCase {
  const char* name;
  Index array;       // array shape
  Index pattern;     // pattern shape (rank 1 or 2)
  Index repetition;  // repetition shape
  Index origin;
  IntMat fitting;
  IntMat paving;
  bool expect_partition;
};

std::ostream& operator<<(std::ostream& os, const TilerCase& c) { return os << c.name; }

class TilerProperty : public ::testing::TestWithParam<TilerCase> {};

TEST_P(TilerProperty, ValidatesAndCoversConsistently) {
  const TilerCase& c = GetParam();
  TilerSpec spec{c.origin, c.fitting, c.paving};
  const Shape array(c.array);
  const Shape pattern(c.pattern);
  const Shape repetition(c.repetition);
  ASSERT_NO_THROW(spec.validate(array, pattern, repetition));

  // Property 1: the coverage map counts exactly repetition*pattern
  // visits in total (the tiler formulas never lose an element).
  const IntArray cover = coverage_map(spec, array, pattern, repetition);
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < cover.elements(); ++i) total += cover[i];
  EXPECT_EQ(total, repetition.elements() * pattern.elements());

  // Property 2: partition expectation.
  EXPECT_EQ(is_exact_partition(spec, array, pattern, repetition), c.expect_partition);
}

TEST_P(TilerProperty, GatherScatterRoundTripOnPartitions) {
  const TilerCase& c = GetParam();
  if (!c.expect_partition) GTEST_SKIP() << "round-trip only holds for partitions";
  TilerSpec spec{c.origin, c.fitting, c.paving};
  const Shape array(c.array);
  const Shape pattern(c.pattern);
  const Shape repetition(c.repetition);
  const IntArray original = IntArray::generate(
      array, [](const Index& i) { return i[0] * 1009 + (i.size() > 1 ? i[1] * 31 : 0) + 7; });
  const IntArray tiles = gather(original, spec, pattern, repetition);
  IntArray rebuilt(array, -1);
  scatter(rebuilt, tiles, spec, pattern, repetition);
  EXPECT_EQ(rebuilt, original);
}

TEST_P(TilerProperty, GatherAgreesWithElementFormula) {
  const TilerCase& c = GetParam();
  TilerSpec spec{c.origin, c.fitting, c.paving};
  const Shape array(c.array);
  const Shape pattern(c.pattern);
  const Shape repetition(c.repetition);
  const IntArray in = IntArray::generate(
      array, [](const Index& i) { return i[0] * 131 + (i.size() > 1 ? i[1] : 0); });
  const IntArray tiles = gather(in, spec, pattern, repetition);
  // Spot-check every tile against e = (o + P.r + F.i) mod s.
  for_each_index(repetition, [&](const Index& rep) {
    for_each_index(pattern, [&](const Index& pat) {
      Index at = rep;
      at.insert(at.end(), pat.begin(), pat.end());
      EXPECT_EQ(tiles.at(at), in.at(spec.element_index(array, rep, pat)));
    });
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TilerProperty,
    ::testing::Values(
        TilerCase{"hfilter_input", {6, 32}, {11}, {6, 4}, {0, 0},
                  IntMat{{0}, {1}}, IntMat{{1, 0}, {0, 8}}, false},
        TilerCase{"hfilter_output", {6, 12}, {3}, {6, 4}, {0, 0},
                  IntMat{{0}, {1}}, IntMat{{1, 0}, {0, 3}}, true},
        TilerCase{"vfilter_input", {18, 8}, {13}, {2, 8}, {0, 0},
                  IntMat{{1}, {0}}, IntMat{{9, 0}, {0, 1}}, false},
        TilerCase{"vfilter_output", {8, 6}, {4}, {2, 6}, {0, 0},
                  IntMat{{1}, {0}}, IntMat{{4, 0}, {0, 1}}, true},
        TilerCase{"block_2x4", {8, 16}, {2, 4}, {4, 4}, {0, 0},
                  IntMat{{1, 0}, {0, 1}}, IntMat{{2, 0}, {0, 4}}, true},
        TilerCase{"column_strips", {8, 15}, {8, 5}, {3}, {0, 0},
                  IntMat{{1, 0}, {0, 1}}, IntMat{{0}, {5}}, true},
        TilerCase{"offset_origin", {8, 8}, {2}, {8, 4}, {0, 3},
                  IntMat{{0}, {1}}, IntMat{{1, 0}, {0, 2}}, true},
        TilerCase{"skewed_paving", {6, 12}, {2}, {6, 6}, {0, 0},
                  IntMat{{0}, {1}}, IntMat{{1, 1}, {0, 2}}, true},
        TilerCase{"strided_fitting", {4, 16}, {4}, {4, 2}, {0, 0},
                  IntMat{{0}, {2}}, IntMat{{1, 0}, {0, 8}}, false},
        TilerCase{"interleave", {12}, {3}, {4}, {0},
                  IntMat{{4}}, IntMat{{1}}, true}),
    [](const ::testing::TestParamInfo<TilerCase>& info) { return info.param.name; });

}  // namespace
}  // namespace saclo
