#include <gtest/gtest.h>

#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/pipelines.hpp"
#include "core/fmt.hpp"

namespace saclo::apps {
namespace {

/// Property sweep over downscaler geometries: all five implementation
/// routes (interpreter via SAC-Seq, SAC-CUDA generic/non-generic,
/// GASPARD2) must agree bit-exact, and the structural invariants
/// (kernel counts, transfer counts, host fallbacks) must hold for every
/// geometry, not just the paper's.
struct Geometry {
  std::int64_t height;
  std::int64_t width;
  FilterSpec h;
  FilterSpec v;
};

class DownscalerProperty : public ::testing::TestWithParam<Geometry> {
 protected:
  DownscalerConfig config() const {
    DownscalerConfig cfg;
    cfg.height = GetParam().height;
    cfg.width = GetParam().width;
    cfg.h = GetParam().h;
    cfg.v = GetParam().v;
    cfg.validate();
    return cfg;
  }
};

TEST_P(DownscalerProperty, AllFiveRoutesAgree) {
  const DownscalerConfig cfg = config();
  SacDownscaler::Options ng_opts;
  SacDownscaler::Options g_opts;
  g_opts.generic = true;
  SacDownscaler ng(cfg, ng_opts);
  SacDownscaler g(cfg, g_opts);
  GaspardDownscaler::Options gopts;
  gopts.rgb = false;
  GaspardDownscaler gd(cfg, gopts);

  auto cuda_ng = ng.run_cuda_chain(1, 1, 1);
  auto cuda_g = g.run_cuda_chain(1, 1, 1);
  auto seq = ng.run_seq(1, 1);
  auto gaspard = gd.run(1, 1);

  ASSERT_EQ(cuda_ng.last_output.shape(), cfg.out_shape());
  EXPECT_EQ(cuda_ng.last_output, cuda_g.last_output);
  EXPECT_EQ(cuda_ng.last_output, seq.last_output);
  EXPECT_EQ(cuda_ng.last_output, gaspard.last_output);
}

TEST_P(DownscalerProperty, StructuralInvariants) {
  const DownscalerConfig cfg = config();
  SacDownscaler::Options ng_opts;
  SacDownscaler ng(cfg, ng_opts);
  // At least one kernel per output-tile residue.
  EXPECT_GE(ng.h_kernels(), static_cast<int>(cfg.h.tile()));
  EXPECT_GE(ng.v_kernels(), static_cast<int>(cfg.v.tile()));
  // The fused non-generic pipeline never touches the host.
  EXPECT_EQ(ng.h_program().host_block_count(), 0);
  EXPECT_EQ(ng.v_program().host_block_count(), 0);
  // Chain transfers: one upload + one download per frame/channel.
  auto r = ng.run_cuda_chain(4, 2, 1);
  EXPECT_EQ(r.h.h2d_calls, 8);
  EXPECT_EQ(r.v.d2h_calls, 8);
  EXPECT_EQ(r.h.kernel_launches, static_cast<std::int64_t>(ng.h_kernels()) * 8);
}

TEST_P(DownscalerProperty, OutputIsWithinPixelRange) {
  // The 6-tap average of 8-bit data stays within [0, 255] after the
  // paper's tmp/6 - tmp%6 computation can dip slightly below the mean;
  // it must never leave [-win, 255].
  const DownscalerConfig cfg = config();
  SacDownscaler::Options opts;
  SacDownscaler ng(cfg, opts);
  auto r = ng.run_cuda_chain(1, 1, 1);
  for (std::int64_t i = 0; i < r.last_output.elements(); ++i) {
    EXPECT_GE(r.last_output[i], -cfg.h.window - cfg.v.window);
    EXPECT_LE(r.last_output[i], 255);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DownscalerProperty,
    ::testing::Values(
        // The paper's geometry, scaled down.
        Geometry{18, 32, {11, 8, {0, 2, 5}, 6}, {13, 9, {0, 2, 5, 7}, 6}},
        // Non-overlapping patterns (pattern == paving).
        Geometry{18, 32, {8, 8, {0, 1, 2}, 6}, {9, 9, {0, 1, 2, 3}, 6}},
        // 2:1 halving in both directions with 4-tap windows.
        Geometry{16, 24, {5, 4, {0, 2}, 3}, {5, 4, {0, 2}, 3}},
        // Asymmetric: wide horizontal windows, narrow vertical ones.
        Geometry{12, 40, {13, 10, {0, 3, 6}, 7}, {7, 6, {0, 2, 4}, 3}},
        // Single-output tiles (pure decimation).
        Geometry{18, 32, {6, 8, {0}, 6}, {4, 9, {0}, 4}}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return saclo::cat("g", info.index, "_", info.param.height, "x", info.param.width);
    });

}  // namespace
}  // namespace saclo::apps
