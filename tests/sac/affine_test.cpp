#include "sac/affine.hpp"

#include <gtest/gtest.h>

#include "sac/parser.hpp"

namespace saclo::sac::affine {
namespace {

/// A 2-D lattice mimicking the non-generic output tiler's generator:
/// i in [0,8) step 1, j in [1,24) step 3 (t1 in [0,8)).
Lattice tiler_lattice() {
  Lattice lat;
  lat.dims = {{0, 1, 8}, {1, 3, 8}};
  lat.scalar_names = {"i", "j"};
  return lat;
}

Lin eval(const std::string& expr_src, const AffineEval& ae) {
  const ExprPtr e = parse_expression(expr_src);
  auto lin = ae.eval_scalar(*e);
  EXPECT_TRUE(lin.has_value()) << expr_src;
  return lin.value_or(Lin{});
}

TEST(AffineEvalTest, LatticeVariablesAreLinear) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Lin i = eval("i", ae);
  EXPECT_EQ(i.coeff, (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(i.c0, 0);
  const Lin j = eval("j", ae);
  EXPECT_EQ(j.coeff, (std::vector<std::int64_t>{0, 3}));
  EXPECT_EQ(j.c0, 1);
}

TEST(AffineEvalTest, DivisionOnLatticeSimplifies) {
  // j = 3*t1 + 1, so j/3 == t1 (truncated division on the lattice).
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Lin t1 = eval("j / 3", ae);
  EXPECT_EQ(t1.coeff, (std::vector<std::int64_t>{0, 1}));
  EXPECT_EQ(t1.c0, 0);
}

TEST(AffineEvalTest, ModOnLatticeSimplifies) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Lin r = eval("j % 3", ae);
  EXPECT_TRUE(r.is_const());
  EXPECT_EQ(r.c0, 1);
}

TEST(AffineEvalTest, UnsupportedDivisionFails) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  // i/3 does not divide evenly on the lattice (step 1).
  const ExprPtr e = parse_expression("i / 3");
  EXPECT_FALSE(ae.eval_scalar(*e).has_value());
}

TEST(AffineEvalTest, ArithmeticCombines) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Lin l = eval("2 * i + (j - 1) / 3 + 5", ae);
  EXPECT_EQ(l.coeff, (std::vector<std::int64_t>{2, 1}));
  EXPECT_EQ(l.c0, 5);
}

TEST(AffineEvalTest, BodyBindingsResolve) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Module m = parse("int f(int i, int j) { rep = [i, j / 3]; off = rep * 8; return (0); }");
  ae.bind_block(m.functions[0].body);
  const ExprPtr e = parse_expression("off");
  auto vec = ae.eval_vector(*e);
  ASSERT_TRUE(vec.has_value());
  ASSERT_EQ(vec->size(), 2u);
  EXPECT_EQ((*vec)[0].coeff, (std::vector<std::int64_t>{8, 0}));
  EXPECT_EQ((*vec)[1].coeff, (std::vector<std::int64_t>{0, 8}));
}

TEST(AffineEvalTest, MVOfConstantMatrix) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const ExprPtr e = parse_expression("MV([[1,0],[0,8]], [i, j/3])");
  auto vec = ae.eval_vector(*e);
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ((*vec)[0].coeff, (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ((*vec)[1].coeff, (std::vector<std::int64_t>{0, 8}));
}

TEST(AffineEvalTest, ConcatBuildsLongerVectors) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const ExprPtr e = parse_expression("[i] ++ [j, 4]");
  auto vec = ae.eval_vector(*e);
  ASSERT_TRUE(vec.has_value());
  EXPECT_EQ(vec->size(), 3u);
  EXPECT_EQ((*vec)[2].c0, 4);
}

TEST(AffineEvalTest, RangeOverLatticeBox) {
  const Lattice lat = tiler_lattice();
  AffineEval ae(lat);
  const Lin j = eval("j", ae);
  const auto [lo, hi] = ae.range(j);
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 1 + 3 * 7);
  const Lin combo = eval("8 * (j / 3) + 10", ae);
  const auto [clo, chi] = ae.range(combo);
  EXPECT_EQ(clo, 10);
  EXPECT_EQ(chi, 8 * 7 + 10);
}

TEST(LinToExprTest, EmitsIndexVariableForms) {
  const Lattice lat = tiler_lattice();
  Lin l;
  l.coeff = {0, 1};
  l.c0 = 0;
  // t1 == (j - 1) / 3
  const ExprPtr e = lin_to_expr(l, lat);
  AffineEval ae(lat);
  auto back = ae.eval_scalar(*e);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, l);
}

TEST(LinToExprTest, ConstantsStayConstants) {
  const Lattice lat = tiler_lattice();
  Lin l;
  l.coeff = {0, 0};
  l.c0 = 42;
  const ExprPtr e = lin_to_expr(l, lat);
  EXPECT_EQ(e->kind, ExprKind::IntLit);
  EXPECT_EQ(e->int_val, 42);
}

// --- regions -------------------------------------------------------------------

TEST(DimRegionTest, CountAndFirst) {
  const DimRegion r{2, 20, 1, 3};  // t in [2,20), t % 3 == 1
  EXPECT_EQ(r.first(), 4);
  EXPECT_EQ(r.count(), 6);  // 4,7,10,13,16,19
  EXPECT_EQ(r.last(), 19);
}

TEST(DimRegionTest, EmptyWhenNoResidueFits) {
  const DimRegion r{5, 6, 0, 3};  // only t=5, needs t%3==0
  EXPECT_TRUE(r.empty());
}

TEST(DimRegionTest, IntersectMergesResidues) {
  const DimRegion a{0, 30, 1, 2};  // odd
  const DimRegion b{0, 30, 2, 3};  // ==2 mod 3
  const auto i = a.intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->m, 6);
  EXPECT_EQ(i->r, 5);
  EXPECT_EQ(i->first(), 5);
}

TEST(DimRegionTest, IntersectDetectsInfeasibleResidues) {
  const DimRegion a{0, 30, 0, 2};
  const DimRegion b{0, 30, 1, 2};
  EXPECT_FALSE(a.intersect(b).has_value());
}

TEST(DimRegionTest, SubtractPartitions) {
  const DimRegion full{0, 24, 0, 1};
  const DimRegion cut{8, 16, 1, 2};  // odd numbers in [8,16)
  const auto parts = full.subtract(cut);
  std::int64_t total = 0;
  for (const DimRegion& p : parts) {
    total += p.count();
    // No part may intersect the cut.
    EXPECT_FALSE(p.intersect(cut).has_value() && p.intersect(cut)->count() > 0);
  }
  EXPECT_EQ(total + full.intersect(cut)->count(), full.count());
}

TEST(BoxTest, SubtractIsExactPartition) {
  const Box a{DimRegion::full(10), DimRegion::full(12)};
  const Box b{{2, 7, 0, 1}, {3, 12, 0, 3}};
  const auto inter = box_intersect(a, b);
  ASSERT_TRUE(inter.has_value());
  const auto parts = box_subtract(a, b);
  std::int64_t total = box_count(*inter);
  for (const Box& p : parts) {
    total += box_count(p);
    // Parts must be disjoint from b.
    auto pi = box_intersect(p, b);
    EXPECT_TRUE(!pi || box_count(*pi) == 0);
  }
  EXPECT_EQ(total, box_count(a));
}

}  // namespace
}  // namespace saclo::sac::affine
