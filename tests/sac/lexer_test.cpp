#include "sac/lexer.hpp"

#include <gtest/gtest.h>

namespace saclo::sac {
namespace {

std::vector<Tok> kinds(const std::string& src) {
  std::vector<Tok> out;
  for (const Token& t : lex(src)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, KeywordsAndIdentifiers) {
  const auto ks = kinds("with genarray modarray step width foo bar_2");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::KwWith, Tok::KwGenarray, Tok::KwModarray, Tok::KwStep,
                                  Tok::KwWidth, Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(LexerTest, IntegerAndFloatLiterals) {
  const auto toks = lex("1080 3.5 0");
  EXPECT_EQ(toks[0].kind, Tok::IntLit);
  EXPECT_EQ(toks[0].int_val, 1080);
  EXPECT_EQ(toks[1].kind, Tok::FloatLit);
  EXPECT_DOUBLE_EQ(toks[1].float_val, 3.5);
  EXPECT_EQ(toks[2].int_val, 0);
}

TEST(LexerTest, DotIsSeparateFromFloats) {
  // `.` bounds in generators must lex as Dot, not start a float.
  const auto ks = kinds("( . <= rep <= . )");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::LParen, Tok::Dot, Tok::Le, Tok::Ident, Tok::Le, Tok::Dot,
                                  Tok::RParen, Tok::End}));
}

TEST(LexerTest, PlusPlusVersusPlus) {
  const auto ks = kinds("rep++pat + 1");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::Ident, Tok::PlusPlus, Tok::Ident, Tok::Plus, Tok::IntLit,
                                  Tok::End}));
}

TEST(LexerTest, ComparisonOperators) {
  const auto ks = kinds("<= < >= > == != =");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::Le, Tok::Lt, Tok::Ge, Tok::Gt, Tok::Eq, Tok::Ne,
                                  Tok::Assign, Tok::End}));
}

TEST(LexerTest, CommentsAreSkipped) {
  const auto ks = kinds("a // line comment\n b /* block \n comment */ c");
  EXPECT_EQ(ks, (std::vector<Tok>{Tok::Ident, Tok::Ident, Tok::Ident, Tok::End}));
}

TEST(LexerTest, UnterminatedCommentThrows) {
  EXPECT_THROW(lex("a /* oops"), ParseError);
}

TEST(LexerTest, UnknownCharacterThrows) {
  EXPECT_THROW(lex("a $ b"), ParseError);
  EXPECT_THROW(lex("a & b"), ParseError);
}

TEST(LexerTest, TracksLineNumbers) {
  const auto toks = lex("a\nb\n  c");
  EXPECT_EQ(toks[0].line, 1);
  EXPECT_EQ(toks[1].line, 2);
  EXPECT_EQ(toks[2].line, 3);
  EXPECT_EQ(toks[2].col, 3);
}

TEST(LexerTest, PaperTilerSignatureLexes) {
  const std::string src =
      "int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.,.] fitting)";
  EXPECT_NO_THROW(lex(src));
}

}  // namespace
}  // namespace saclo::sac
