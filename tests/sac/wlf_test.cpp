#include "sac/wlf.hpp"

#include <gtest/gtest.h>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"

namespace saclo::sac {
namespace {

/// A miniature single-channel downscaler in the exact style of the
/// paper's Figures 4-7: generic input tiler, task, and both output
/// tilers. Frame 8x16 -> 8x6 (11-pixel pattern, paving 8, tiles of 3).
const char* kMiniDownscaler = R"(
int[*] zeros(int h, int w) {
  z = with { ([0,0] <= iv < [h,w]) : 0; } : genarray([h,w]);
  return (z);
}

int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                   int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  output = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          off = origin + MV( CAT( paving, fitting), rep++pat);
          iv = off % shape(in_frame);
          elem = in_frame[iv];
        } : elem;
      } : genarray( in_pattern, 0);
    } : tile;
  } : genarray( repetition);
  return( output);
}

int[*] task(int[*] input, int[.] out_pattern, int[.] repetition)
{
  output = with {
    (. <= rep <= .) {
      tile = with { (. <= pv <= .) : 0; } : genarray( out_pattern, 0);
      tmp0 = input[rep][0] + input[rep][1] + input[rep][2] +
             input[rep][3] + input[rep][4] + input[rep][5];
      tile[0] = tmp0 / 6 - tmp0 % 6;
      tmp1 = input[rep][2] + input[rep][3] + input[rep][4] +
             input[rep][5] + input[rep][6] + input[rep][7];
      tile[1] = tmp1 / 6 - tmp1 % 6;
      tmp2 = input[rep][5] + input[rep][6] + input[rep][7] +
             input[rep][8] + input[rep][9] + input[rep][10];
      tile[2] = tmp2 / 6 - tmp2 % 6;
    } : tile;
  } : genarray( repetition);
  return( output);
}

int[*] nongeneric_output_tiler(int[*] output, int[*] input)
{
  output = with {
    ([0,0]<=[i,j]<=. step [1,3]):input[[i,j/3,0]];
    ([0,1]<=[i,j]<=. step [1,3]):input[[i,j/3,1]];
    ([0,2]<=[i,j]<=. step [1,3]):input[[i,j/3,2]];
  } : modarray( output);
  return( output);
}

int[*] generic_output_tiler(int[*] out_frame, int[*] input,
                            int[.] out_pattern, int[.] repetition,
                            int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  for( i=0; i< repetition[[0]]; i++) {
    for( j=0; j< repetition[[1]]; j++) {
      for( k=0; k< out_pattern[[0]]; k++) {
        off = origin + MV( CAT(paving, fitting), [i,j,k]);
        iv = off % shape( out_frame);
        out_frame[iv] = input[[i,j,k]];
      }
    }
  }
  return( out_frame);
}

int[*] hfilter_nongeneric(int[*] frame)
{
  gathered = input_tiler(frame, [11], [8,2], [0,0], [[0],[1]], [[1,0],[0,8]]);
  compressed = task(gathered, [3], [8,2]);
  base = zeros(8, 6);
  output = nongeneric_output_tiler(base, compressed);
  return( output);
}

int[*] hfilter_generic(int[*] frame)
{
  gathered = input_tiler(frame, [11], [8,2], [0,0], [[0],[1]], [[1,0],[0,8]]);
  compressed = task(gathered, [3], [8,2]);
  base = zeros(8, 6);
  output = generic_output_tiler(base, compressed, [3], [8,2], [0,0], [[0],[1]], [[1,0],[0,3]]);
  return( output);
}
)";

Module wrap(const FunDef& fn) {
  Module m;
  m.functions.push_back(FunDef{fn.name, fn.return_type, fn.params, clone_block(fn.body), fn.line});
  return m;
}

int count_top_level_withs(const std::vector<StmtPtr>& body) {
  int n = 0;
  for (const StmtPtr& s : body) {
    if (s->kind == StmtKind::Assign && s->value && s->value->kind == ExprKind::With) ++n;
  }
  return n;
}

int count_for_stmts(const std::vector<StmtPtr>& body) {
  int n = 0;
  for (const StmtPtr& s : body) {
    if (s->kind == StmtKind::For) ++n;
  }
  return n;
}

const Expr* first_with(const std::vector<StmtPtr>& body) {
  for (const StmtPtr& s : body) {
    if (s->kind == StmtKind::Assign && s->value && s->value->kind == ExprKind::With) {
      return s->value.get();
    }
  }
  return nullptr;
}

TEST(ConcreteGeneratorTest, NormalisesBoundsAndWidths) {
  const ExprPtr e = parse_expression(
      "with { ([0,1] <= iv <= [7,19] step [1,3] width [1,3]) : 0; } : genarray([8,24])");
  auto cg = concrete_generator(e->generators[0]);
  ASSERT_TRUE(cg.has_value());
  EXPECT_EQ(cg->lb, (Index{0, 1}));
  EXPECT_EQ(cg->ub, (Index{8, 20}));  // inclusive -> exclusive
  // width==step collapses to a dense stride-1 dimension.
  EXPECT_EQ(cg->step, (Index{1, 1}));
  EXPECT_EQ(cg->width, (Index{1, 1}));
}

TEST(ConcreteGeneratorTest, PointsCountsLatticeSize) {
  const ExprPtr e = parse_expression(
      "with { ([0,0] <= iv < [8,24] step [1,3]) : 0; } : genarray([8,24])");
  auto cg = concrete_generator(e->generators[0]);
  ASSERT_TRUE(cg.has_value());
  EXPECT_EQ(cg->points(), 8 * 8);
}

TEST(WlfTest, FoldsNonGenericPipelineIntoOneWithLoop) {
  const Module m = parse(kMiniDownscaler);
  CompiledFunction cf =
      compile(m, "hfilter_nongeneric", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  EXPECT_GT(cf.stats.folds, 0);
  EXPECT_GT(cf.stats.modarrays_converted, 0);
  // Everything fuses into a single with-loop assignment plus the return.
  EXPECT_EQ(count_top_level_withs(cf.fn.body), 1) << print(cf.fn);
  const Expr* w = first_with(cf.fn.body);
  ASSERT_NE(w, nullptr);
  // The residue-3 output generators survive, plus boundary splits from
  // the %-elimination (the paper's Figure 8 effect).
  EXPECT_GE(w->generators.size(), 3u);
  // No references to the intermediate arrays remain.
  const std::string text = print(cf.fn);
  EXPECT_EQ(text.find("gathered"), std::string::npos) << text;
  EXPECT_EQ(text.find("compressed"), std::string::npos) << text;
}

TEST(WlfTest, FoldedProgramComputesIdenticalResult) {
  const Module m = parse(kMiniDownscaler);
  const IntArray frame =
      IntArray::generate(Shape{8, 16}, [](const Index& i) { return i[0] * 31 + i[1] * 7 + 3; });
  const Value expected = run_function(m, "hfilter_nongeneric", {Value(frame)});

  CompiledFunction cf =
      compile(m, "hfilter_nongeneric", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  const Value actual = run_function(wrap(cf.fn), "hfilter_nongeneric", {Value(frame)});
  EXPECT_EQ(expected, actual) << print(cf.fn);
}

TEST(WlfTest, ModSplitRemovesInteriorMods) {
  const Module m = parse(kMiniDownscaler);
  CompiledFunction cf =
      compile(m, "hfilter_nongeneric", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  EXPECT_GT(cf.stats.mods_removed, 0);
  // The interior generators must have no column-wrap '% 16' left; only
  // boundary generators may keep it. (The task's arithmetic '% 6'
  // legitimately appears everywhere.)
  const Expr* w = first_with(cf.fn.body);
  ASSERT_NE(w, nullptr);
  int gens_with_wrap = 0;
  for (const Generator& g : w->generators) {
    const std::string t = print(*g.value) + print(g.body);
    if (t.find("% 16") != std::string::npos) ++gens_with_wrap;
  }
  EXPECT_GT(static_cast<int>(w->generators.size()), 3);  // boundary split happened
  EXPECT_LT(gens_with_wrap, static_cast<int>(w->generators.size()));
  // The row-wrap '% 8' is always provably redundant and must be gone.
  for (const Generator& g : w->generators) {
    const std::string t = print(*g.value) + print(g.body);
    EXPECT_EQ(t.find("% 8"), std::string::npos);
  }
}

TEST(WlfTest, GenericOutputTilerBlocksFolding) {
  const Module m = parse(kMiniDownscaler);
  CompiledFunction cf =
      compile(m, "hfilter_generic", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  // The gather+task fuse, but the for-nest output tiler survives as a
  // loop — the paper's Section VII limitation.
  EXPECT_GE(count_top_level_withs(cf.fn.body), 1);
  EXPECT_EQ(count_for_stmts(cf.fn.body), 1) << print(cf.fn);
}

TEST(WlfTest, GenericPipelineComputesIdenticalResult) {
  const Module m = parse(kMiniDownscaler);
  const IntArray frame =
      IntArray::generate(Shape{8, 16}, [](const Index& i) { return (i[0] * 13 + i[1] * 5) % 97; });
  const Value expected = run_function(m, "hfilter_generic", {Value(frame)});
  CompiledFunction cf =
      compile(m, "hfilter_generic", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  const Value actual = run_function(wrap(cf.fn), "hfilter_generic", {Value(frame)});
  EXPECT_EQ(expected, actual) << print(cf.fn);
}

TEST(WlfTest, GenericAndNonGenericAgree) {
  const Module m = parse(kMiniDownscaler);
  const IntArray frame =
      IntArray::generate(Shape{8, 16}, [](const Index& i) { return i[0] * 17 + i[1]; });
  const Value a = run_function(m, "hfilter_generic", {Value(frame)});
  const Value b = run_function(m, "hfilter_nongeneric", {Value(frame)});
  EXPECT_EQ(a, b);
}

TEST(WlfTest, DisabledWlfKeepsPipelineStages) {
  const Module m = parse(kMiniDownscaler);
  CompileOptions opts;
  opts.enable_wlf = false;
  CompiledFunction cf =
      compile(m, "hfilter_nongeneric", {ArgSpec::array(ElemType::Int, Shape{8, 16})}, opts);
  EXPECT_EQ(cf.stats.folds, 0);
  // Input tiler, task and output tiler all survive.
  EXPECT_GE(count_top_level_withs(cf.fn.body), 3) << print(cf.fn);
  // And it still computes the right thing.
  const IntArray frame =
      IntArray::generate(Shape{8, 16}, [](const Index& i) { return i[0] + i[1]; });
  EXPECT_EQ(run_function(m, "hfilter_nongeneric", {Value(frame)}),
            run_function(wrap(cf.fn), "hfilter_nongeneric", {Value(frame)}));
}

TEST(WlfTest, SimpleMapMapFusion) {
  // The textbook WLF case: two elementwise maps fuse to one.
  const char* src = R"(
int[*] main(int[*] v) {
  a = with { (. <= iv <= .) : v[iv] * 2; } : genarray(shape(v));
  b = with { (. <= iv <= .) : a[iv] + 1; } : genarray(shape(v));
  return (b);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{10})});
  EXPECT_EQ(cf.stats.folds, 1);
  EXPECT_EQ(count_top_level_withs(cf.fn.body), 1) << print(cf.fn);
  const IntArray v = IntArray::generate(Shape{10}, [](const Index& i) { return i[0]; });
  EXPECT_EQ(run_function(wrap(cf.fn), "main", {Value(v)}),
            run_function(m, "main", {Value(v)}));
}

TEST(WlfTest, FoldAcrossProducerGeneratorsSplitsConsumer) {
  // Producer has two generators; the consumer reads with a shift, so
  // its single generator must split at the producer's boundary.
  const char* src = R"(
int[*] main(int[*] v) {
  a = with {
    ([0] <= iv < [6]) : v[iv] * 10;
    ([6] <= iv < [12]) : v[iv] * 100;
  } : genarray([12]);
  b = with { ([0] <= [i] < [10]) : a[[i + 2]]; } : genarray([10]);
  return (b);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{12})});
  EXPECT_GE(cf.stats.generator_splits, 1);
  const IntArray v = IntArray::generate(Shape{12}, [](const Index& i) { return i[0] + 1; });
  EXPECT_EQ(run_function(wrap(cf.fn), "main", {Value(v)}),
            run_function(m, "main", {Value(v)}));
}

TEST(WlfTest, DefaultRegionSubstituted) {
  // Consumer reads outside the producer's generators: the genarray
  // default must be substituted there.
  const char* src = R"(
int[*] main(int[*] v) {
  a = with { ([2] <= iv < [8]) : v[iv]; } : genarray([8], -5);
  b = with { ([0] <= [i] < [8]) : a[[i]] * 2; } : genarray([8]);
  return (b);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{8})});
  const IntArray v = IntArray::generate(Shape{8}, [](const Index& i) { return i[0] * 3; });
  const Value out = run_function(wrap(cf.fn), "main", {Value(v)});
  EXPECT_EQ(out.ints()[0], -10);
  EXPECT_EQ(out.ints()[1], -10);
  EXPECT_EQ(out.ints()[2], 12);
  EXPECT_EQ(run_function(m, "main", {Value(v)}), out);
}

TEST(WlfTest, SteppedProducerResidueMatching) {
  // Producer writes only even positions; consumer reads 2*i (always
  // even) — fold must hit the generator, never the default.
  const char* src = R"(
int[*] main(int[*] v) {
  a = with { ([0] <= iv < [16] step [2]) : v[iv] + 1000; } : genarray([16], 0);
  b = with { ([0] <= [i] < [8]) : a[[2 * i]]; } : genarray([8]);
  return (b);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{16})});
  const IntArray v = IntArray::generate(Shape{16}, [](const Index& i) { return i[0]; });
  const Value out = run_function(wrap(cf.fn), "main", {Value(v)});
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(out.ints()[i], 2 * i + 1000);
  EXPECT_EQ(run_function(m, "main", {Value(v)}), out);
}

TEST(DceTest, RemovesUnusedProducers) {
  const char* src = R"(
int[*] main(int[*] v) {
  unused = with { (. <= iv <= .) : v[iv] * 9; } : genarray(shape(v));
  b = with { (. <= iv <= .) : v[iv] + 1; } : genarray(shape(v));
  return (b);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{4})});
  EXPECT_EQ(count_top_level_withs(cf.fn.body), 1);
  EXPECT_EQ(print(cf.fn).find("unused"), std::string::npos);
}

TEST(ModarrayConversionTest, FullCoverageBecomesGenarray) {
  const char* src = R"(
int[*] main(int[*] v) {
  base = with { ([0,0] <= iv < [4,6]) : 0; } : genarray([4,6]);
  out = with {
    ([0,0] <= [i,j] <= . step [1,2]) : v[[i, j/2]];
    ([0,1] <= [i,j] <= . step [1,2]) : v[[i, j/2]] * 2;
  } : modarray(base);
  return (out);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{4, 3})});
  EXPECT_EQ(cf.stats.modarrays_converted, 1);
  const Expr* w = first_with(cf.fn.body);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->op.kind, WithOpKind::Genarray);
  const IntArray v =
      IntArray::generate(Shape{4, 3}, [](const Index& i) { return i[0] * 10 + i[1]; });
  EXPECT_EQ(run_function(wrap(cf.fn), "main", {Value(v)}),
            run_function(m, "main", {Value(v)}));
}

TEST(ModarrayConversionTest, PartialCoverageStaysModarray) {
  const char* src = R"(
int[*] main(int[*] v) {
  base = with { ([0] <= iv < [8]) : 7; } : genarray([8]);
  out = with { ([0] <= [i] < [8] step [2]) : v[[i]]; } : modarray(base);
  return (out);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{8})});
  EXPECT_EQ(cf.stats.modarrays_converted, 0);
  const IntArray v = IntArray::generate(Shape{8}, [](const Index& i) { return i[0]; });
  EXPECT_EQ(run_function(wrap(cf.fn), "main", {Value(v)}),
            run_function(m, "main", {Value(v)}));
}

}  // namespace
}  // namespace saclo::sac
