#include "sac/interp.hpp"

#include <gtest/gtest.h>

#include "sac/parser.hpp"

namespace saclo::sac {
namespace {

Value run(const std::string& src, const std::string& fn, std::vector<Value> args) {
  const Module m = parse(src);
  return run_function(m, fn, std::move(args));
}

Value run_main(const std::string& src, std::vector<Value> args = {}) {
  return run(src, "main", std::move(args));
}

TEST(InterpTest, ScalarArithmetic) {
  EXPECT_EQ(run_main("int main() { return (2 + 3 * 4); }").as_int(), 14);
  EXPECT_EQ(run_main("int main() { return (7 / 2); }").as_int(), 3);
  EXPECT_EQ(run_main("int main() { return (7 % 3); }").as_int(), 1);
  EXPECT_EQ(run_main("int main() { return (-5 + 2); }").as_int(), -3);
}

TEST(InterpTest, DivisionByZeroThrows) {
  EXPECT_THROW(run_main("int main() { return (1 / 0); }"), EvalError);
  EXPECT_THROW(run_main("int main() { return (1 % 0); }"), EvalError);
}

TEST(InterpTest, ArrayLiteralAndSelection) {
  EXPECT_EQ(run_main("int main() { a = [10, 20, 30]; return (a[1]); }").as_int(), 20);
  EXPECT_EQ(run_main("int main() { a = [[1,2],[3,4]]; return (a[[1,0]]); }").as_int(), 3);
  // Partial selection yields a subarray.
  EXPECT_EQ(run_main("int main() { a = [[1,2],[3,4]]; b = a[1]; return (b[1]); }").as_int(), 4);
}

TEST(InterpTest, OutOfBoundsSelectionThrows) {
  EXPECT_THROW(run_main("int main() { a = [1,2]; return (a[2]); }"), EvalError);
  EXPECT_THROW(run_main("int main() { a = [1,2]; return (a[-1]); }"), EvalError);
}

TEST(InterpTest, ElementwiseVectorOps) {
  EXPECT_EQ(run_main("int main() { v = [5, 7] % [4, 4]; return (v[0] * 10 + v[1]); }").as_int(),
            13);
  EXPECT_EQ(run_main("int main() { v = [1, 2] + 10; return (v[1]); }").as_int(), 12);
}

TEST(InterpTest, BuiltinShapeDimConcat) {
  EXPECT_EQ(run_main("int main() { a = [[1,2,3],[4,5,6]]; s = shape(a); "
                     "return (s[0] * 10 + s[1]); }")
                .as_int(),
            23);
  EXPECT_EQ(run_main("int main() { a = [[1,2],[3,4]]; return (dim(a)); }").as_int(), 2);
  EXPECT_EQ(run_main("int main() { v = [1] ++ [2, 3]; return (shape(v)[0]); }").as_int(), 3);
  EXPECT_EQ(run_main("int main() { v = CAT([1], [2, 3]); return (v[2]); }").as_int(), 3);
}

TEST(InterpTest, BuiltinMV) {
  EXPECT_EQ(run_main("int main() { m = [[1,0],[0,8]]; v = MV(m, [5,3]); "
                     "return (v[0] * 100 + v[1]); }")
                .as_int(),
            524);
}

TEST(InterpTest, ForLoopAccumulates) {
  EXPECT_EQ(run_main("int main() { s = 0; for (i = 0; i < 10; i++) { s = s + i; } return (s); }")
                .as_int(),
            45);
  EXPECT_EQ(
      run_main("int main() { s = 0; for (i = 0; i < 10; i = i + 3) { s = s + i; } return (s); }")
          .as_int(),
      18);
}

TEST(InterpTest, IfElse) {
  const std::string src =
      "int main(int a) { if (a > 0) { r = 1; } else { r = 0 - 1; } return (r); }";
  EXPECT_EQ(run(src, "main", {Value::from_int(5)}).as_int(), 1);
  EXPECT_EQ(run(src, "main", {Value::from_int(-5)}).as_int(), -1);
}

TEST(InterpTest, FunctionCalls) {
  const std::string src =
      "int sq(int x) { return (x * x); } int main() { return (sq(3) + sq(4)); }";
  EXPECT_EQ(run_main(src), Value::from_int(25));
}

TEST(InterpTest, RecursionWorksInInterpreter) {
  const std::string src =
      "int fact(int n) { if (n <= 1) { return (1); } return (n * fact(n - 1)); }"
      "int main() { return (fact(6)); }";
  EXPECT_EQ(run_main(src).as_int(), 720);
}

TEST(InterpTest, GenarrayBasic) {
  const Value v = run_main(
      "int[*] main() { return (with { ([0,0] <= iv < [2,3]) : iv[0] * 10 + iv[1]; }"
      " : genarray([2,3])); }");
  EXPECT_EQ(v.shape(), (Shape{2, 3}));
  EXPECT_EQ(v.ints().at({1, 2}), 12);
}

TEST(InterpTest, GenarrayWithDefault) {
  const Value v = run_main(
      "int[*] main() { return (with { ([1] <= iv < [3]) : 7; } : genarray([5], -1)); }");
  EXPECT_EQ(v.ints()[0], -1);
  EXPECT_EQ(v.ints()[1], 7);
  EXPECT_EQ(v.ints()[2], 7);
  EXPECT_EQ(v.ints()[3], -1);
}

TEST(InterpTest, GenarrayNonScalarCells) {
  // genarray(frame) with vector cells: shape is frame ++ cell.
  const Value v = run_main(
      "int[*] main() { return (with { ([0] <= iv < [4]) : [iv[0], 2 * iv[0]]; }"
      " : genarray([4])); }");
  EXPECT_EQ(v.shape(), (Shape{4, 2}));
  EXPECT_EQ(v.ints().at({3, 1}), 6);
}

TEST(InterpTest, GeneratorStepAndWidth) {
  const Value v = run_main(
      "int[*] main() { return (with { ([0] <= iv < [10] step [4] width [2]) : 1; }"
      " : genarray([10], 0)); }");
  const std::vector<std::int64_t> expected{1, 1, 0, 0, 1, 1, 0, 0, 1, 1};
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_EQ(v.ints()[i], expected[static_cast<std::size_t>(i)]);
}

TEST(InterpTest, ModarrayOverwritesSelectively) {
  const Value v = run_main(
      "int[*] main() { base = with { ([0] <= iv < [6]) : 9; } : genarray([6]);"
      " return (with { ([0] <= [i] < [6] step [2]) : i; } : modarray(base)); }");
  const std::vector<std::int64_t> expected{0, 9, 2, 9, 4, 9};
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_EQ(v.ints()[i], expected[static_cast<std::size_t>(i)]);
}

TEST(InterpTest, DestructuredGeneratorVars) {
  const Value v = run_main(
      "int[*] main() { return (with { ([0,0] <= [i,j] < [2,2]) : i * 2 + j; }"
      " : genarray([2,2])); }");
  EXPECT_EQ(v.ints().at({1, 1}), 3);
}

TEST(InterpTest, DotBoundsResolveFromOperation) {
  const Value v = run_main(
      "int[*] main() { base = with { ([0] <= iv < [4]) : 0; } : genarray([4]);"
      " return (with { (. <= [i] <= .) : i + 1; } : modarray(base)); }");
  EXPECT_EQ(v.ints()[3], 4);
}

TEST(InterpTest, WithBodyBindingsAreLocalPerCell) {
  // The body binding `t` must not leak between cells or to the outside.
  const Value v = run_main(
      "int main() { t = 100; x = with { ([0] <= [i] < [3]) { t = i * i; } : t; }"
      " : genarray([3]); return (t + x[2]); }");
  EXPECT_EQ(v.as_int(), 104);
}

TEST(InterpTest, ElementAssignmentOnArrays) {
  const Value v = run_main(
      "int[*] main() { a = [0, 0, 0]; a[1] = 5; a[[2]] = 7; return (a); }");
  EXPECT_EQ(v.ints()[1], 5);
  EXPECT_EQ(v.ints()[2], 7);
}

TEST(InterpTest, ElemAssignShapeMismatchThrows) {
  EXPECT_THROW(run_main("int[*] main() { a = [[1,2],[3,4]]; a[0] = 5; return (a); }"),
               EvalError);
}

TEST(InterpTest, NestedWithLoopsGatherTiles) {
  // A miniature version of the paper's input tiler: gather 3-element
  // patterns with step-2 paving from an 8-vector.
  const std::string src = R"(
int[*] main() {
  frame = with { ([0] <= [i] < [8]) : i * i; } : genarray([8]);
  out = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          iv = (rep * 2 + pat) % shape(frame);
          e = frame[iv];
        } : e;
      } : genarray([3], 0);
    } : tile;
  } : genarray([4]);
  return (out);
}
)";
  const Value v = run_main(src);
  EXPECT_EQ(v.shape(), (Shape{4, 3}));
  EXPECT_EQ(v.ints().at({0, 0}), 0);
  EXPECT_EQ(v.ints().at({3, 1}), 49);   // (3*2+1)^2
  EXPECT_EQ(v.ints().at({3, 2}), 0);    // wraps to index 0
}

TEST(InterpTest, OpsCounterIncreases) {
  const Module m = parse("int main() { s = 0; for (i = 0; i < 100; i++) { s = s + i; } return (s); }");
  Interp interp(m);
  EXPECT_EQ(interp.call("main", {}).as_int(), 4950);
  EXPECT_GT(interp.ops(), 100.0);
}

TEST(InterpTest, FloatArrays) {
  const Value v = run_main(
      "float[*] main() { return (with { ([0] <= [i] < [3]) : tod(i) * 1.5; } : genarray([3], 0.0)); }");
  EXPECT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.floats()[2], 3.0);
}

}  // namespace
}  // namespace saclo::sac
