#include <gtest/gtest.h>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"
#include "sac/typecheck.hpp"
#include "sac_cuda/program.hpp"

namespace saclo::sac {
namespace {

Value run_main(const std::string& src, std::vector<Value> args = {}) {
  const Module m = parse(src);
  typecheck(m);
  return run_function(m, "main", std::move(args));
}

TEST(FoldTest, SumOverRange) {
  EXPECT_EQ(run_main("int main() { s = with { ([0] <= [i] < [10]) : i; } : fold(+, 0); "
                     "return (s); }")
                .as_int(),
            45);
}

TEST(FoldTest, ProductAndNeutral) {
  EXPECT_EQ(run_main("int main() { p = with { ([1] <= [i] <= [5]) : i; } : fold(*, 1); "
                     "return (p); }")
                .as_int(),
            120);
  // Empty generator range: the neutral element survives.
  EXPECT_EQ(run_main("int main() { p = with { ([5] <= [i] < [5]) : i; } : fold(*, 7); "
                     "return (p); }")
                .as_int(),
            7);
}

TEST(FoldTest, MinMaxOverArray) {
  const std::string src = R"(
int main(int[*] v) {
  lo = with { ([0] <= [i] < [8]) : v[[i]]; } : fold(min, 1000000);
  hi = with { ([0] <= [i] < [8]) : v[[i]]; } : fold(max, 0 - 1000000);
  return (hi - lo);
}
)";
  const IntArray v(Shape{8}, std::vector<std::int64_t>{5, -3, 9, 2, 14, 0, -7, 4});
  EXPECT_EQ(run_main(src, {Value(v)}).as_int(), 21);
}

TEST(FoldTest, TwoDimensionalAndStepped) {
  EXPECT_EQ(run_main("int main() { s = with { ([0,0] <= [i,j] < [4,4]) : i * 4 + j; } "
                     ": fold(+, 0); return (s); }")
                .as_int(),
            120);
  // Stepped generator: only even indices contribute.
  EXPECT_EQ(run_main("int main() { s = with { ([0] <= [i] < [10] step [2]) : i; } "
                     ": fold(+, 0); return (s); }")
                .as_int(),
            20);
}

TEST(FoldTest, MultipleGeneratorsAccumulate) {
  EXPECT_EQ(run_main("int main() { s = with { ([0] <= [i] < [3]) : 1; ([0] <= [j] < [4]) : 10; }"
                     " : fold(+, 0); return (s); }")
                .as_int(),
            43);
}

TEST(FoldTest, VectorVarGenerator) {
  EXPECT_EQ(run_main("int main() { s = with { ([0,0] <= iv < [3,3]) : iv[0] + iv[1]; } "
                     ": fold(+, 0); return (s); }")
                .as_int(),
            18);
}

TEST(FoldTest, PrinterRoundTrips) {
  const std::string src =
      "int main() { s = with { ([0] <= [i] < [4]) : i; } : fold(+, 0); return (s); }";
  const Module m = parse(src);
  const Module m2 = parse(print(m));
  EXPECT_EQ(run_function(m2, "main", {}).as_int(), 6);
}

TEST(FoldTest, TypecheckRejectsBadOperators) {
  EXPECT_THROW(typecheck(parse(
                   "int main() { s = with { ([0] <= [i] < [4]) : i; } : fold(shape, 0); "
                   "return (s); }")),
               TypeError);
}

TEST(FoldTest, TypecheckRejectsDotBounds) {
  EXPECT_THROW(
      typecheck(parse("int main() { s = with { (. <= [i] <= .) : 1; } : fold(+, 0); "
                      "return (s); }")),
      TypeError);
}

TEST(FoldTest, TypecheckRejectsNonScalarNeutral) {
  EXPECT_THROW(typecheck(parse(
                   "int main() { s = with { ([0] <= [i] < [4]) : i; } : fold(+, [1,2]); "
                   "return (s); }")),
               TypeError);
}

TEST(FoldTest, SpecializedFoldBehavesIdentically) {
  const std::string src = R"(
int main(int[*] v) {
  n = shape(v)[0];
  s = with { ([0] <= [i] < [n]) : v[[i]] * v[[i]]; } : fold(+, 0);
  return (s);
}
)";
  const Module m = parse(src);
  const IntArray v = IntArray::generate(Shape{12}, [](const Index& i) { return i[0] + 1; });
  const Value expected = run_function(m, "main", {Value(v)});
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{12})});
  Module wrapped;
  wrapped.functions.push_back(
      FunDef{cf.fn.name, cf.fn.return_type, cf.fn.params, clone_block(cf.fn.body), 0});
  EXPECT_EQ(run_function(wrapped, "main", {Value(v)}), expected);
}

TEST(FoldTest, WlfFoldsProducerIntoFoldConsumer) {
  // A map followed by a reduction: the producer's cells substitute into
  // the fold's generator, eliminating the intermediate array.
  const std::string src = R"(
int main(int[*] v) {
  sq = with { ([0] <= [i] < [16]) : v[[i]] * v[[i]]; } : genarray([16]);
  s = with { ([0] <= [i] < [16]) : sq[[i]]; } : fold(+, 0);
  return (s);
}
)";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{16})});
  EXPECT_GE(cf.stats.folds, 1);
  const std::string text = print(cf.fn);
  EXPECT_EQ(text.find("sq"), std::string::npos) << text;  // intermediate eliminated
  const IntArray v = IntArray::generate(Shape{16}, [](const Index& i) { return i[0]; });
  Module wrapped;
  wrapped.functions.push_back(
      FunDef{cf.fn.name, cf.fn.return_type, cf.fn.params, clone_block(cf.fn.body), 0});
  EXPECT_EQ(run_function(wrapped, "main", {Value(v)}).as_int(),
            run_function(m, "main", {Value(v)}).as_int());
}

TEST(FoldTest, CudaBackendRunsFoldOnHost) {
  // The paper's backend only parallelises genarray/modarray with-loops;
  // folds execute on the host (after the producers ran on the device).
  const std::string src = R"(
int main(int[*] v) {
  sq = with { (. <= [i] <= .) : v[[i]] * 3; } : genarray(shape(v));
  s = with { ([0] <= [i] < [64]) : sq[[i]]; } : fold(+, 0);
  total = with { ([0] <= [i] < [64]) : sq[[i]] + s; } : genarray([64]);
  return (total);
}
)";
  const Module m = parse(src);
  sac::CompileOptions opts;
  opts.enable_wlf = false;  // keep the fold separate from its producer
  CompiledFunction cf = compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{64})}, opts);
  auto prog = sac_cuda::CudaProgram::plan(cf);
  EXPECT_GE(prog.host_block_count(), 1);  // the fold
  EXPECT_GE(prog.kernel_count(), 1);      // the maps
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  gpu::cuda::Runtime rt(gpu);
  gpu::Profiler host_profiler;
  const IntArray v = IntArray::generate(Shape{64}, [](const Index& i) { return i[0] % 7; });
  const Value expected = run_function(m, "main", {Value(v)});
  const Value actual = prog.run(rt, {Value(v)}, gpu::i7_930(), host_profiler, true);
  EXPECT_EQ(expected, actual);
}

}  // namespace
}  // namespace saclo::sac
