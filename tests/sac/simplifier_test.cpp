#include <gtest/gtest.h>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"

namespace saclo::sac {
namespace {

/// Unit tests of individual optimiser rewrite rules, observed through
/// the printed output of compiled functions.
std::string optimised(const std::string& src, const std::string& fn,
                      std::vector<ArgSpec> args) {
  const Module m = parse(src);
  CompiledFunction cf = compile(m, fn, args);
  return print(cf.fn);
}

TEST(SimplifierTest, MvOfConstantMatrixExpands) {
  const std::string out = optimised(
      "int[*] f(int[*] v) { o = with { ([0,0] <= [i,j] < [4,4]) : "
      "v[MV([[1,0],[0,8]], [i,j])]; } : genarray([4,4]); return (o); }",
      "f", {ArgSpec::array(ElemType::Int, Shape{4, 32})});
  EXPECT_EQ(out.find("MV"), std::string::npos) << out;
  EXPECT_NE(out.find("8 * j"), std::string::npos) << out;
}

TEST(SimplifierTest, ConcatOfLiteralsMerges) {
  const std::string out = optimised(
      "int[*] f(int[*] v) { o = with { ([0] <= [i] < [4]) : v[[1] ++ [i]]; } "
      ": genarray([4]); return (o); }",
      "f", {ArgSpec::array(ElemType::Int, Shape{2, 4})});
  EXPECT_NE(out.find("v[[1,i]]"), std::string::npos) << out;
}

TEST(SimplifierTest, NestedSelectCollapses) {
  const std::string out = optimised(
      "int[*] f(int[*] m) { o = with { ([0] <= [i] < [3]) : m[[i]][[1]]; } "
      ": genarray([3]); return (o); }",
      "f", {ArgSpec::array(ElemType::Int, Shape{3, 2})});
  EXPECT_NE(out.find("m[[i,1]]"), std::string::npos) << out;
}

TEST(SimplifierTest, AlgebraicIdentities) {
  const std::string out = optimised(
      "int[*] f(int[*] v) { o = with { ([0] <= [i] < [4]) : "
      "(v[[i]] + 0) * 1 - 0 + (0 + i) / 1; } : genarray([4]); return (o); }",
      "f", {ArgSpec::array(ElemType::Int, Shape{4})});
  EXPECT_NE(out.find("v[[i]] + i"), std::string::npos) << out;
}

TEST(SimplifierTest, RowWrapModDisappears) {
  // (i % 4) over i in [0,4) is provably redundant.
  const std::string out = optimised(
      "int[*] f(int[*] v) { o = with { ([0] <= [i] < [4]) : v[[i % 4]]; } "
      ": genarray([4]); return (o); }",
      "f", {ArgSpec::array(ElemType::Int, Shape{4})});
  EXPECT_EQ(out.find('%'), std::string::npos) << out;
}

TEST(SimplifierTest, BoundaryModSplitsGenerator) {
  // i+2 wraps for the last two indices: the generator splits, the
  // interior loses its %.
  const std::string src =
      "int[*] f(int[*] v) { o = with { ([0] <= [i] < [8]) : v[[(i + 2) % 8]]; } "
      ": genarray([8]); return (o); }";
  const Module m = parse(src);
  CompiledFunction cf = compile(m, "f", {ArgSpec::array(ElemType::Int, Shape{8})});
  ASSERT_GE(cf.stats.generator_splits, 1);
  // Correctness of the split.
  Module wrapped;
  wrapped.functions.push_back(
      FunDef{cf.fn.name, cf.fn.return_type, cf.fn.params, clone_block(cf.fn.body), 0});
  const IntArray v = IntArray::generate(Shape{8}, [](const Index& i) { return 10 * i[0]; });
  EXPECT_EQ(run_function(wrapped, "f", {Value(v)}), run_function(m, "f", {Value(v)}));
}

TEST(SimplifierTest, TileElementForwarding) {
  // tile[k] writes forward into selections; the tile array disappears.
  const std::string out = optimised(R"(
int[*] f(int[*] v) {
  o = with {
    ([0] <= [i] < [4]) {
      tile = with { ([0] <= [p] < [2]) : 0; } : genarray([2], 0);
      tile[0] = v[[i]] * 2;
      tile[1] = v[[i]] + 5;
    } : tile[0] + tile[1];
  } : genarray([4]);
  return (o);
}
)",
                                    "f", {ArgSpec::array(ElemType::Int, Shape{4})});
  EXPECT_EQ(out.find("tile"), std::string::npos) << out;
  EXPECT_NE(out.find("v[[i]] * 2 + (v[[i]] + 5)"), std::string::npos) << out;
}

TEST(SimplifierTest, LoopBodyStrengthReduction) {
  // MV/CAT in a for-loop body (the generic tiler shape) reduce to plain
  // index arithmetic.
  const std::string out = optimised(R"(
int[*] f(int[*] v) {
  o = with { ([0,0] <= iv < [4,6]) : 0; } : genarray([4,6]);
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 6; j++) {
      off = MV(CAT([[1,0],[0,1]], [[0],[0]]), [i,j,0]);
      o[off] = v[[i, j]];
    }
  }
  return (o);
}
)",
                                    "f", {ArgSpec::array(ElemType::Int, Shape{4, 6})});
  EXPECT_EQ(out.find("MV"), std::string::npos) << out;
  EXPECT_EQ(out.find("CAT"), std::string::npos) << out;
}

TEST(SimplifierTest, DeadStatementsEliminated) {
  const std::string out = optimised(R"(
int f(int a) {
  unused1 = a * 1000;
  unused2 = with { ([0] <= [i] < [100]) : i; } : genarray([100]);
  r = a + 1;
  return (r);
}
)",
                                    "f", {ArgSpec::array(ElemType::Int, Shape{})});
  EXPECT_EQ(out.find("unused1"), std::string::npos) << out;
  EXPECT_EQ(out.find("unused2"), std::string::npos) << out;
}

TEST(SimplifierTest, AliasChainsCollapse) {
  const std::string out = optimised(R"(
int[*] f(int[*] v) {
  a = with { (. <= [i] <= .) : v[[i]] * 2; } : genarray(shape(v));
  b = a;
  c = b;
  d = with { (. <= [i] <= .) : c[[i]] + 1; } : genarray(shape(v));
  return (d);
}
)",
                                    "f", {ArgSpec::array(ElemType::Int, Shape{6})});
  // The alias chain must not block fusion: one with-loop remains.
  int withs = 0;
  for (std::size_t pos = out.find("with {"); pos != std::string::npos;
       pos = out.find("with {", pos + 1)) {
    ++withs;
  }
  EXPECT_EQ(withs, 1) << out;
}

}  // namespace
}  // namespace saclo::sac
