#include "sac/stdlib.hpp"

#include <gtest/gtest.h>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/typecheck.hpp"
#include "sac_cuda/program.hpp"

namespace saclo::sac {
namespace {

struct PreludeFixture : public ::testing::Test {
  Module mod;
  void SetUp() override {
    mod = parse(prelude_source());
    typecheck(mod);
  }
  Value call(const std::string& fn, std::vector<Value> args) {
    return run_function(mod, fn, std::move(args));
  }
  static Value vec(std::vector<std::int64_t> v) {
    const auto n = static_cast<std::int64_t>(v.size());
    return Value(IntArray(Shape{n}, std::move(v)));
  }
};

TEST_F(PreludeFixture, Iota) {
  const Value v = call("iota", {Value::from_int(5)});
  EXPECT_EQ(v, vec({0, 1, 2, 3, 4}));
}

TEST_F(PreludeFixture, ReverseAndRotate) {
  EXPECT_EQ(call("vreverse", {vec({1, 2, 3, 4})}), vec({4, 3, 2, 1}));
  EXPECT_EQ(call("rotate", {vec({1, 2, 3, 4, 5}), Value::from_int(2)}), vec({3, 4, 5, 1, 2}));
  EXPECT_EQ(call("rotate", {vec({1, 2, 3}), Value::from_int(0)}), vec({1, 2, 3}));
}

TEST_F(PreludeFixture, TakeAndDrop) {
  EXPECT_EQ(call("take", {vec({7, 8, 9, 10}), Value::from_int(2)}), vec({7, 8}));
  EXPECT_EQ(call("drop", {vec({7, 8, 9, 10}), Value::from_int(3)}), vec({10}));
  EXPECT_EQ(call("drop", {vec({7}), Value::from_int(0)}), vec({7}));
}

TEST_F(PreludeFixture, Reductions) {
  EXPECT_EQ(call("vsum", {vec({1, 2, 3, 4})}).as_int(), 10);
  EXPECT_EQ(call("vprod", {vec({2, 3, 4})}).as_int(), 24);
  EXPECT_EQ(call("vmin", {vec({5, -2, 9})}).as_int(), -2);
  EXPECT_EQ(call("vmax", {vec({5, -2, 9})}).as_int(), 9);
  EXPECT_EQ(call("dot", {vec({1, 2, 3}), vec({4, 5, 6})}).as_int(), 32);
}

TEST_F(PreludeFixture, TransposeRoundTrips) {
  const Value m(IntArray::generate(Shape{3, 5}, [](const Index& i) { return i[0] * 5 + i[1]; }));
  const Value t = call("transpose", {m});
  EXPECT_EQ(t.shape(), (Shape{5, 3}));
  EXPECT_EQ(call("transpose", {t}), m);
}

TEST_F(PreludeFixture, MatmulAgainstNative) {
  const IntArray a =
      IntArray::generate(Shape{4, 3}, [](const Index& i) { return i[0] + 2 * i[1]; });
  const IntArray b =
      IntArray::generate(Shape{3, 5}, [](const Index& i) { return 3 * i[0] - i[1]; });
  const Value c = call("matmul", {Value(a), Value(b)});
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < 3; ++p) acc += a.at({i, p}) * b.at({p, j});
      EXPECT_EQ(c.ints().at({i, j}), acc);
    }
  }
}

TEST_F(PreludeFixture, OuterProduct) {
  const Value o = call("outer", {vec({1, 2}), vec({10, 20, 30})});
  EXPECT_EQ(o.shape(), (Shape{2, 3}));
  EXPECT_EQ(o.ints().at({1, 2}), 60);
}

TEST_F(PreludeFixture, ClampAndConvolve) {
  EXPECT_EQ(call("clampv", {vec({-5, 0, 5, 500}), Value::from_int(0), Value::from_int(255)}),
            vec({0, 0, 5, 255}));
  // convolve1d([1,2,3,4], [1,1]) = [3,5,7]
  EXPECT_EQ(call("convolve1d", {vec({1, 2, 3, 4}), vec({1, 1})}), vec({3, 5, 7}));
}

TEST_F(PreludeFixture, Histogram) {
  EXPECT_EQ(call("histogram", {vec({0, 1, 1, 2, 1, 0}), Value::from_int(4)}),
            vec({2, 3, 1, 0}));
}

TEST_F(PreludeFixture, LinkPreludeIntoUserModule) {
  Module user = parse("int f(int[*] v) { return (vsum(v) + vmax(v)); }");
  const std::size_t added = link_prelude(user);
  EXPECT_GT(added, 10u);
  typecheck(user);
  EXPECT_EQ(run_function(user, "f", {vec({1, 2, 3})}).as_int(), 9);
  // Name collisions are rejected.
  Module clash = parse("int iota(int n) { return (n); }");
  EXPECT_THROW(link_prelude(clash), ParseError);
}

TEST_F(PreludeFixture, PreludeFunctionsCompileToKernels) {
  // Every shape-generic prelude function specialises and (where the
  // backend supports it) becomes device kernels; all must compute the
  // interpreter's result on the simulator.
  struct Case {
    const char* fn;
    std::vector<ArgSpec> args;
    std::vector<Value> values;
  };
  const Value v = vec({3, 1, 4, 1, 5, 9, 2, 6});
  const std::vector<Case> cases = {
      {"vreverse", {ArgSpec::array(ElemType::Int, Shape{8})}, {v}},
      {"rotate",
       {ArgSpec::array(ElemType::Int, Shape{8}), ArgSpec::value(Value::from_int(3))},
       {v, Value::from_int(3)}},
      {"clampv",
       {ArgSpec::array(ElemType::Int, Shape{8}), ArgSpec::value(Value::from_int(2)),
        ArgSpec::value(Value::from_int(5))},
       {v, Value::from_int(2), Value::from_int(5)}},
      {"convolve1d",
       {ArgSpec::array(ElemType::Int, Shape{8}), ArgSpec::value(vec({1, 2, 1}))},
       {v, vec({1, 2, 1})}},
  };
  for (const Case& c : cases) {
    CompiledFunction cf = compile(mod, c.fn, c.args);
    auto prog = sac_cuda::CudaProgram::plan(cf);
    EXPECT_GE(prog.kernel_count(), 1) << c.fn;
    gpu::VirtualGpu gpu(gpu::gtx480(), 1);
    gpu::cuda::Runtime rt(gpu);
    gpu::Profiler host_profiler;
    const Value expected = run_function(mod, c.fn, c.values);
    const Value actual = prog.run(rt, c.values, gpu::i7_930(), host_profiler, true);
    EXPECT_EQ(expected, actual) << c.fn;
  }
}

}  // namespace
}  // namespace saclo::sac
