#include "sac/specialize.hpp"

#include <gtest/gtest.h>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/printer.hpp"

namespace saclo::sac {
namespace {

Module wrap(const FunDef& fn) {
  Module m;
  m.functions.push_back(FunDef{fn.name, fn.return_type, fn.params, clone_block(fn.body), fn.line});
  return m;
}

TEST(LiteralTest, RoundTripValueExpr) {
  const Value v(IntArray::generate(Shape{2, 3}, [](const Index& i) { return i[0] * 3 + i[1]; }));
  const ExprPtr e = literal_expr(v);
  const auto back = literal_value(*e);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

TEST(SpecializeTest, FoldsConstantArithmetic) {
  const Module m = parse("int main(int a) { x = 2 + 3 * 4; return (x + a); }");
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{})});
  // x = 14 should appear as a literal.
  const std::string text = print(fn);
  EXPECT_NE(text.find("x = 14"), std::string::npos);
}

TEST(SpecializeTest, ShapeFoldsFromStaticShapes) {
  // shape(frame) folds even though frame's contents are unknown.
  const Module m = parse("int[*] main(int[*] frame) { s = shape(frame); return (s); }");
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{1080, 1920})});
  const std::string text = print(fn);
  EXPECT_NE(text.find("[1080,1920]"), std::string::npos);
}

TEST(SpecializeTest, InlinesUserFunctions) {
  const Module m = parse(
      "int sq(int x) { y = x * x; return (y); }"
      "int main(int a) { return (sq(a) + sq(2)); }");
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{})});
  const std::string text = print(fn);
  EXPECT_EQ(text.find("sq("), std::string::npos) << text;  // no calls remain
  // sq(2) folds to 4 entirely.
  EXPECT_NE(text.find("4"), std::string::npos);
}

TEST(SpecializeTest, RecursiveFunctionRejected) {
  const Module m = parse("int f(int n) { return (f(n - 1)); } int main() { return (f(3)); }");
  EXPECT_THROW(specialize(m, "main", {}), SpecializeError);
}

TEST(SpecializeTest, SpecializedProgramBehavesIdentically) {
  const std::string src = R"(
int helper(int[*] v, int k) { return (v[k] * 2); }
int[*] main(int[*] frame) {
  n = shape(frame)[0];
  out = with { ([0] <= [i] < [6]) : helper(frame, i) + n; } : genarray([6]);
  return (out);
}
)";
  const Module m = parse(src);
  const IntArray frame = IntArray::generate(Shape{6}, [](const Index& i) { return i[0] + 1; });
  const Value expected = run_function(m, "main", {Value(frame)});

  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{6})});
  const Module m2 = wrap(fn);
  const Value actual = run_function(m2, "main", {Value(frame)});
  EXPECT_EQ(expected, actual);
}

TEST(SpecializeTest, ConstantArgumentsAreBakedIn) {
  const std::string src = R"(
int[*] main(int[*] frame, int[.,.] paving) {
  out = with { ([0,0] <= rep < [2,2]) : frame[MV(paving, rep)]; } : genarray([2,2]);
  return (out);
}
)";
  const Module m = parse(src);
  const Value paving(IntArray(Shape{2, 2}, std::vector<std::int64_t>{1, 0, 0, 2}));
  const FunDef fn = specialize(
      m, "main", {ArgSpec::array(ElemType::Int, Shape{4, 4}), ArgSpec::value(paving)});
  const std::string text = print(fn.body);
  EXPECT_EQ(text.find("paving"), std::string::npos) << text;  // matrix literal substituted
  EXPECT_NE(text.find("[[1,0],[0,2]]"), std::string::npos) << text;
  // Behaviour check.
  const IntArray frame =
      IntArray::generate(Shape{4, 4}, [](const Index& i) { return i[0] * 10 + i[1]; });
  const Value expected = run_function(m, "main", {Value(frame), paving});
  const Value actual = run_function(wrap(fn), "main", {Value(frame), paving});
  EXPECT_EQ(expected, actual);
}

TEST(SpecializeTest, DotBoundsBecomeConcrete) {
  const std::string src = R"(
int[*] main(int[*] frame) {
  out = with { (. <= iv <= .) : frame[iv] + 1; } : genarray(shape(frame));
  return (out);
}
)";
  const Module m = parse(src);
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{3, 5})});
  const std::string text = print(fn);
  EXPECT_NE(text.find("[0,0] <= iv < [3,5]"), std::string::npos) << text;
}

TEST(SpecializeTest, ConstantConditionSplicesBranch) {
  const Module m = parse(
      "int main(int a) { if (1 < 2) { r = a + 1; } else { r = a - 1; } return (r); }");
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{})});
  const std::string text = print(fn);
  EXPECT_EQ(text.find("if"), std::string::npos);
  EXPECT_NE(text.find("a + 1"), std::string::npos);
}

TEST(SpecializeTest, ForLoopBoundsFold) {
  const std::string src = R"(
int[*] main(int[*] v, int[.] repetition) {
  s = v;
  for (i = 0; i < repetition[[0]]; i++) { s[i] = i; }
  return (s);
}
)";
  const Module m = parse(src);
  const FunDef fn = specialize(m, "main",
                               {ArgSpec::array(ElemType::Int, Shape{4}),
                                ArgSpec::value(Value(IntArray(Shape{1}, {4})))});
  const std::string text = print(fn);
  EXPECT_NE(text.find("i < 4"), std::string::npos) << text;
  const IntArray v(Shape{4}, 9);
  const Value out = run_function(wrap(fn), "main",
                                 {Value(v), Value(IntArray(Shape{1}, {4}))});
  EXPECT_EQ(out.ints()[3], 3);
}

TEST(SpecializeTest, NestedInliningWithRenaming) {
  // Two call sites of the same function must not collide.
  const std::string src = R"(
int addc(int x) { c = x + 1; return (c); }
int main(int a) { p = addc(a); q = addc(p); return (q); }
)";
  const Module m = parse(src);
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{})});
  const Value out = run_function(wrap(fn), "main", {Value::from_int(10)});
  EXPECT_EQ(out.as_int(), 12);
}

TEST(SpecializeTest, WithLoopCellShapeFromGeneratorValue) {
  const std::string src = R"(
int[*] main(int[*] frame) {
  out = with { ([0] <= [r] < [4]) { t = [frame[r], frame[r]]; } : t; } : genarray([4]);
  inner = out[[1,1]];
  return (shape(out) ++ [inner]);
}
)";
  const Module m = parse(src);
  const FunDef fn = specialize(m, "main", {ArgSpec::array(ElemType::Int, Shape{8})});
  // shape(out) folded implies cell shape [2] was derived: result [4,2,<v>].
  const std::string text = print(fn);
  EXPECT_NE(text.find("[4,2]"), std::string::npos) << text;
}

}  // namespace
}  // namespace saclo::sac
