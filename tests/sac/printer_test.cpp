#include "sac/printer.hpp"

#include <gtest/gtest.h>

#include "sac/parser.hpp"

namespace saclo::sac {
namespace {

std::string norm(const std::string& src) { return print(parse(src)); }

TEST(PrinterTest, FunctionLayout) {
  EXPECT_EQ(norm("int add(int a,int b){return(a+b);}"),
            "int add(int a, int b)\n{\n  return (a + b);\n}\n\n");
}

TEST(PrinterTest, PrecedenceParenthesisation) {
  // Parentheses appear only where required.
  EXPECT_NE(norm("int f(int a,int b,int c){return((a+b)*c);}").find("(a + b) * c"),
            std::string::npos);
  EXPECT_NE(norm("int f(int a,int b,int c){return(a+b*c);}").find("a + b * c"),
            std::string::npos);
  EXPECT_NE(norm("int f(int a,int b){return(a-(b-1));}").find("a - (b - 1)"),
            std::string::npos);
}

TEST(PrinterTest, WithLoopLayout) {
  const std::string out = norm(
      "int[*] f(int[*] v){o=with{([0]<=[i]<[4] step [2]):v[[i]];}:genarray([4],0);return(o);}");
  EXPECT_NE(out.find("with {\n"), std::string::npos);
  EXPECT_NE(out.find("([0] <= [i] < [4] step [2]) : v[[i]];"), std::string::npos);
  EXPECT_NE(out.find("} : genarray([4], 0)"), std::string::npos);
}

TEST(PrinterTest, DotBoundsPrintAsDots) {
  const std::string out =
      norm("int[*] f(int[*] v){o=with{(.<=iv<=.):v[iv];}:genarray(shape(v));return(o);}");
  EXPECT_NE(out.find("(. <= iv <= .)"), std::string::npos);
}

TEST(PrinterTest, GeneratorBodiesIndent) {
  const std::string out = norm(
      "int[*] f(int[*] v){o=with{([0]<=[i]<[4]){t=v[[i]]*2;}:t;}:genarray([4]);return(o);}");
  EXPECT_NE(out.find(") {\n      t = v[[i]] * 2;\n    } : t;"), std::string::npos) << out;
}

TEST(PrinterTest, ForAndIfLayout) {
  const std::string out = norm(
      "int f(int n){s=0;for(i=0;i<n;i=i+2){if(i>3){s=s+i;}else{s=s-1;}}return(s);}");
  EXPECT_NE(out.find("for (i = 0; i < n; i = i + 2) {"), std::string::npos);
  EXPECT_NE(out.find("if (i > 3) {"), std::string::npos);
  EXPECT_NE(out.find("} else {"), std::string::npos);
}

TEST(PrinterTest, ModarrayAndFoldOps) {
  EXPECT_NE(norm("int[*] f(int[*] o){r=with{([0]<=[i]<[2]):0;}:modarray(o);return(r);}")
                .find("} : modarray(o)"),
            std::string::npos);
  EXPECT_NE(norm("int f(){s=with{([0]<=[i]<[2]):i;}:fold(+,0);return(s);}")
                .find("} : fold(+, 0)"),
            std::string::npos);
  EXPECT_NE(norm("int f(){s=with{([0]<=[i]<[2]):i;}:fold(max,0);return(s);}")
                .find("} : fold(max, 0)"),
            std::string::npos);
}

TEST(PrinterTest, ElemAssignChains) {
  EXPECT_NE(norm("int[*] f(int[*] a){a[0][1]=5;return(a);}").find("  a[0][1] = 5;\n"),
            std::string::npos);
}

TEST(PrinterTest, TypeSpecsRoundTrip) {
  const std::string out =
      norm("float[*] f(float[1080,1920] a, int[.,.] b, bool c){return(a);}");
  EXPECT_NE(out.find("float[*] f(float[1080,1920] a, int[.,.] b, bool c)"), std::string::npos);
}

}  // namespace
}  // namespace saclo::sac
