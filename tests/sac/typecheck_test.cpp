#include "sac/typecheck.hpp"

#include <gtest/gtest.h>

#include "sac/parser.hpp"

namespace saclo::sac {
namespace {

void expect_ok(const std::string& src) {
  EXPECT_NO_THROW(typecheck(parse(src))) << src;
}

void expect_error(const std::string& src, const std::string& fragment) {
  try {
    typecheck(parse(src));
    FAIL() << "expected TypeError for: " << src;
  } catch (const TypeError& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual: " << e.what();
  }
}

TEST(TypecheckTest, AcceptsSimplePrograms) {
  expect_ok("int f(int a) { return (a + 1); }");
  expect_ok("int[*] g(int[*] a) { b = a; return (b); }");
  expect_ok("float h(float x) { return (x * 2.0); }");
}

TEST(TypecheckTest, UnknownVariable) {
  expect_error("int f() { return (y); }", "unknown variable 'y'");
}

TEST(TypecheckTest, UnknownFunction) {
  expect_error("int f() { return (g(1)); }", "unknown function 'g'");
}

TEST(TypecheckTest, ArityMismatch) {
  expect_error("int g(int a) { return (a); } int f() { return (g(1, 2)); }", "expects 1");
}

TEST(TypecheckTest, MissingReturn) {
  expect_error("int f(int a) { b = a; }", "no return");
}

TEST(TypecheckTest, UnreachableAfterReturn) {
  expect_error("int f(int a) { return (a); b = 1; }", "unreachable");
}

TEST(TypecheckTest, MixedOperandTypes) {
  expect_error("int f(int a, float b) { return (a + b); }", "mixed element types");
}

TEST(TypecheckTest, ModOnFloats) {
  expect_error("float f(float a) { return (a % 2.0); }", "'%' on float");
}

TEST(TypecheckTest, ReturnTypeMismatch) {
  expect_error("int f(float x) { return (x); }", "returns float");
}

TEST(TypecheckTest, ElementAssignToScalar) {
  expect_error("int f(int a) { a[0] = 1; return (a); }", "into scalar");
}

TEST(TypecheckTest, ElemTypeChangeRejected) {
  expect_error("int f(int a) { x = 1; x = 2.0; return (a); }", "changes element type");
}

TEST(TypecheckTest, FloatLoopVariableRejected) {
  expect_error("int f() { s = 0; for (i = 0.5; i < 2.0; i++) { s = s + 1; } return (s); }",
               "must be integral");
}

TEST(TypecheckTest, WidthWithoutStepRejected) {
  expect_error(
      "int[*] f() { return (with { ([0] <= iv < [4] width [2]) : 0; } : genarray([4])); }",
      "'width' without 'step'");
}

TEST(TypecheckTest, GeneratorCellTypeConflict) {
  expect_error(
      "int[*] f() { return (with { ([0] <= iv < [2]) : 1; ([2] <= iv < [4]) : 2.0; }"
      " : genarray([4], 0)); }",
      "conflicts");
}

TEST(TypecheckTest, SelectionFromScalarRejected) {
  expect_error("int f(int a) { return (a[0]); }", "selection from a scalar");
}

TEST(TypecheckTest, GeneratorVariablesAreScoped) {
  // iv must not leak out of the with-loop.
  expect_error(
      "int f() { x = with { ([0] <= iv < [3]) : 0; } : genarray([3]); return (iv[0]); }",
      "unknown variable 'iv'");
}

TEST(TypecheckTest, PaperProgramsCheck) {
  expect_ok(R"(
int[*] task(int[*] input, int[.] out_pattern, int[.] repetition)
{
  output = with {
    (. <= rep <= .) {
      tile = with { (. <= pv <= .) : 0; } : genarray(out_pattern, 0);
      tmp0 = input[rep][0] + input[rep][1] + input[rep][2] +
             input[rep][3] + input[rep][4] + input[rep][5];
      tile[0] = tmp0 / 6 - tmp0 % 6;
    } : tile;
  } : genarray( repetition);
  return( output);
}
)");
}

TEST(TypecheckTest, ReturnsFunctionCount) {
  EXPECT_EQ(typecheck(parse("int f() { return (1); } int g() { return (2); }")), 2u);
}

}  // namespace
}  // namespace saclo::sac
