#include "sac/parser.hpp"

#include <gtest/gtest.h>

#include "sac/printer.hpp"

namespace saclo::sac {
namespace {

TEST(ParserTest, SimpleFunction) {
  const Module m = parse("int add(int a, int b) { return (a + b); }");
  ASSERT_EQ(m.functions.size(), 1u);
  const FunDef& f = m.functions[0];
  EXPECT_EQ(f.name, "add");
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_EQ(f.params[0].second, "a");
  ASSERT_EQ(f.body.size(), 1u);
  EXPECT_EQ(f.body[0]->kind, StmtKind::Return);
}

TEST(ParserTest, TypeSpecs) {
  const Module m = parse(
      "int[*] f(int[*] a, int[.] b, int[.,.] c, int[1080,1920] d, float x) { return (a); }");
  const auto& ps = m.functions[0].params;
  EXPECT_EQ(ps[0].first.kind, TypeSpec::Dims::AnyRank);
  EXPECT_EQ(ps[1].first.dims, (std::vector<std::int64_t>{-1}));
  EXPECT_EQ(ps[2].first.dims, (std::vector<std::int64_t>{-1, -1}));
  EXPECT_EQ(ps[3].first.dims, (std::vector<std::int64_t>{1080, 1920}));
  EXPECT_EQ(ps[4].first.kind, TypeSpec::Dims::Scalar);
  EXPECT_EQ(ps[4].first.elem, ElemType::Float);
}

TEST(ParserTest, PrecedenceOfArithmetic) {
  const ExprPtr e = parse_expression("1 + 2 * 3 - 4 / 2");
  // (1 + (2*3)) - (4/2)
  EXPECT_EQ(print(*e), "1 + 2 * 3 - 4 / 2");
  ASSERT_EQ(e->kind, ExprKind::BinOp);
  EXPECT_EQ(e->bin_op, BinOpKind::Sub);
}

TEST(ParserTest, ConcatBindsLooserThanAdd) {
  const ExprPtr e = parse_expression("a + b ++ c");
  ASSERT_EQ(e->kind, ExprKind::BinOp);
  EXPECT_EQ(e->bin_op, BinOpKind::Concat);
}

TEST(ParserTest, DoubleBracketSelection) {
  // input[[i,j,k]] is selection with an array-literal index.
  const ExprPtr e = parse_expression("input[[i,j/3,0]]");
  ASSERT_EQ(e->kind, ExprKind::Select);
  EXPECT_EQ(e->args[1]->kind, ExprKind::ArrayLit);
  EXPECT_EQ(e->args[1]->args.size(), 3u);
}

TEST(ParserTest, ChainedSelection) {
  const ExprPtr e = parse_expression("input[rep][0]");
  ASSERT_EQ(e->kind, ExprKind::Select);
  EXPECT_EQ(e->args[0]->kind, ExprKind::Select);
}

TEST(ParserTest, WithLoopGenarray) {
  const ExprPtr e = parse_expression(
      "with { (. <= rep <= .) { x = 1; } : x; } : genarray( repetition, 0)");
  ASSERT_EQ(e->kind, ExprKind::With);
  ASSERT_EQ(e->generators.size(), 1u);
  const Generator& g = e->generators[0];
  EXPECT_EQ(g.lower, nullptr);
  EXPECT_EQ(g.upper, nullptr);
  EXPECT_TRUE(g.lower_inclusive);
  EXPECT_TRUE(g.upper_inclusive);
  EXPECT_TRUE(g.vector_var);
  EXPECT_EQ(g.vars[0], "rep");
  EXPECT_EQ(g.body.size(), 1u);
  EXPECT_EQ(e->op.kind, WithOpKind::Genarray);
  ASSERT_NE(e->op.default_value, nullptr);
}

TEST(ParserTest, WithLoopModarrayWithStepGenerators) {
  // The paper's non-generic output tiler (Figure 7).
  const ExprPtr e = parse_expression(
      "with {"
      "  ([0,0]<=[i,j]<=. step [1,3]):input[[i,j/3,0]];"
      "  ([0,1]<=[i,j]<=. step [1,3]):input[[i,j/3,1]];"
      "  ([0,2]<=[i,j]<=. step [1,3]):input[[i,j/3,2]];"
      "} : modarray( output)");
  ASSERT_EQ(e->kind, ExprKind::With);
  EXPECT_EQ(e->op.kind, WithOpKind::Modarray);
  ASSERT_EQ(e->generators.size(), 3u);
  const Generator& g = e->generators[0];
  EXPECT_FALSE(g.vector_var);
  EXPECT_EQ(g.vars, (std::vector<std::string>{"i", "j"}));
  ASSERT_NE(g.step, nullptr);
  EXPECT_EQ(g.step->kind, ExprKind::ArrayLit);
}

TEST(ParserTest, GeneratorWithStepAndWidth) {
  const ExprPtr e = parse_expression(
      "with { ([0,0] <= iv < [1080,720] step [1,3] width [1,1]) : 0; } : genarray([1080,720])");
  const Generator& g = e->generators[0];
  ASSERT_NE(g.width, nullptr);
  EXPECT_FALSE(g.upper_inclusive);
}

TEST(ParserTest, ForLoopIncrementForms) {
  const Module m = parse(
      "int f(int n) {"
      "  s = 0;"
      "  for (i = 0; i < n; i++) { s = s + i; }"
      "  for (j = 0; j < n; j = j + 2) { s = s + j; }"
      "  return (s);"
      "}");
  const auto& body = m.functions[0].body;
  ASSERT_EQ(body.size(), 4u);
  EXPECT_EQ(body[1]->kind, StmtKind::For);
  EXPECT_EQ(body[1]->for_step->int_val, 1);
  EXPECT_EQ(body[2]->for_step->int_val, 2);
}

TEST(ParserTest, ElemAssignWithMultipleBrackets) {
  const Module m = parse("int f(int[*] a) { a[0][1] = 5; a[[2,3]] = 6; return (a[0]); }");
  const auto& body = m.functions[0].body;
  EXPECT_EQ(body[0]->kind, StmtKind::ElemAssign);
  EXPECT_EQ(body[0]->indices.size(), 2u);
  EXPECT_EQ(body[1]->indices.size(), 1u);
  EXPECT_EQ(body[1]->indices[0]->kind, ExprKind::ArrayLit);
}

TEST(ParserTest, DeclarationWithoutInitialiser) {
  const Module m = parse("int f() { int[4,4] frame; return (frame[[0,0]]); }");
  const Stmt& s = *m.functions[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::Assign);
  EXPECT_EQ(s.value, nullptr);
  ASSERT_TRUE(s.decl_type.has_value());
  EXPECT_EQ(s.decl_type->dims, (std::vector<std::int64_t>{4, 4}));
}

TEST(ParserTest, IfElseChains) {
  const Module m = parse(
      "int f(int a) { if (a > 0) { return (1); } else if (a < 0) { return (2); }"
      " else { return (0); } }");
  const Stmt& s = *m.functions[0].body[0];
  EXPECT_EQ(s.kind, StmtKind::If);
  ASSERT_EQ(s.else_body.size(), 1u);
  EXPECT_EQ(s.else_body[0]->kind, StmtKind::If);
}

TEST(ParserTest, ErrorsCarryLocation) {
  try {
    parse("int f() { return (1; }");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(ParserTest, MissingSemicolonThrows) {
  EXPECT_THROW(parse("int f() { x = 1 return (x); }"), ParseError);
}

TEST(ParserTest, PaperInputTilerParses) {
  // Figure 4 of the paper, modulo syntax normalisation of `(. <= x <= .)`.
  const std::string src = R"(
int[*] input_tiler(int[*] in_frame, int[.] in_pattern, int[.] repetition,
                   int[.] origin, int[.,.] fitting, int[.,.] paving)
{
  output = with {
    (. <= rep <= .) {
      tile = with {
        (. <= pat <= .) {
          off = origin + MV( CAT( paving, fitting), rep++pat);
          iv = off % shape(in_frame);
          elem = in_frame[iv];
        } : elem;
      } : genarray( in_pattern, 0);
    } : tile;
  } : genarray( repetition);
  return( output);
}
)";
  const Module m = parse(src);
  ASSERT_EQ(m.functions.size(), 1u);
  // Round-trip through the printer and re-parse.
  const Module m2 = parse(print(m));
  EXPECT_EQ(m2.functions[0].name, "input_tiler");
}

}  // namespace
}  // namespace saclo::sac
