#include "sac/value.hpp"

#include <gtest/gtest.h>

namespace saclo::sac {
namespace {

TEST(ValueTest, DefaultIsIntScalarZero) {
  Value v;
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_scalar());
  EXPECT_EQ(v.as_int(), 0);
}

TEST(ValueTest, ScalarFactories) {
  EXPECT_EQ(Value::from_int(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value::from_double(2.5).as_double(), 2.5);
  EXPECT_TRUE(Value::from_bool(true).as_bool());
  EXPECT_FALSE(Value::from_bool(false).as_bool());
}

TEST(ValueTest, AsIntRejectsNonScalars) {
  Value v(IntArray(Shape{3}, 1));
  EXPECT_THROW(v.as_int(), Error);
}

TEST(ValueTest, AsIntRejectsFloats) {
  EXPECT_THROW(Value::from_double(1.0).as_int(), Error);
}

TEST(ValueTest, AsDoubleWidensInts) {
  EXPECT_DOUBLE_EQ(Value::from_int(7).as_double(), 7.0);
}

TEST(ValueTest, IndexVectorConversion) {
  Value v(IntArray(Shape{2}, std::vector<std::int64_t>{1080, 1920}));
  EXPECT_EQ(v.as_index_vector(), (Index{1080, 1920}));
  // Scalars become singleton vectors.
  EXPECT_EQ(Value::from_int(5).as_index_vector(), (Index{5}));
  // Matrices are rejected.
  Value m(IntArray(Shape{2, 2}, 0));
  EXPECT_THROW(m.as_index_vector(), Error);
}

TEST(ValueTest, EqualityIsDeepAndTypeAware) {
  Value a(IntArray(Shape{2}, 3));
  Value b(IntArray(Shape{2}, 3));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Value(IntArray(Shape{2}, 4)));
  EXPECT_NE(Value::from_int(1), Value::from_double(1.0));
}

TEST(ValueTest, FloatArrayAccessors) {
  Value v(FloatArray(Shape{2, 2}, 1.5));
  EXPECT_TRUE(v.is_float());
  EXPECT_EQ(v.shape(), (Shape{2, 2}));
  EXPECT_DOUBLE_EQ(v.floats()[3], 1.5);
  EXPECT_THROW(v.ints(), std::bad_variant_access);
}

}  // namespace
}  // namespace saclo::sac
