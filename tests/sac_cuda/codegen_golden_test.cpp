#include <gtest/gtest.h>

#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac_cuda/codegen_text.hpp"
#include "sac_cuda/program.hpp"

namespace saclo::sac_cuda {
namespace {

/// Golden test: the exact CUDA C emitted for a fixed small program.
/// Pins the kernel signature convention, the global-id decode (the
/// dimension-0-fastest mapping shared with the paper's Figure 11), the
/// pointer-arithmetic selection lowering, and the host driver shape.
TEST(CodegenGoldenTest, ScaleAddKernel) {
  const sac::Module m = sac::parse(R"(
int[*] scaleadd(int[*] v) {
  a = with { (. <= iv <= .) : v[iv] * 2; } : genarray(shape(v));
  b = with { (. <= iv <= .) : a[iv] + 1; } : genarray(shape(v));
  return (b);
}
)");
  auto cf = sac::compile(m, "scaleadd", {sac::ArgSpec::array(sac::ElemType::Int, Shape{4, 8})});
  CudaProgram p = CudaProgram::plan(cf);
  const std::string src = p.cuda_source();
  const char* expected_kernel = R"(__global__ void scaleadd_w0_g0(const int* v, int* b)
{
  int iGID = blockIdx.x * blockDim.x + threadIdx.x;
  if (iGID >= 32) return;
  int t0 = iGID % 4;
  int r0 = iGID / 4;
  int iv_w2 = 0 + 1 * t0;
  int t1 = r0 % 8;
  int iv_w3 = 0 + 1 * t1;
  b[(iv_w2) * 8 + iv_w3] = v[(iv_w2) * 8 + iv_w3] * 2 + 1;
}
)";
  EXPECT_NE(src.find(expected_kernel), std::string::npos) << src;
  const char* expected_driver = R"(void scaleadd_host(const int* v_h, int* result_h)
{
  cudaMalloc(&v, sizeof(int) * N_v);
  cudaMemcpyAsync(v, v_h, sizeof(int) * N_v, cudaMemcpyHostToDevice);
  cudaMalloc(&b, sizeof(int) * 32);
  scaleadd_w0_g0<<<1, 256>>>(v, b);
  cudaMemcpyAsync(result_h, b, sizeof(int) * N_b, cudaMemcpyDeviceToHost);
}
)";
  EXPECT_NE(src.find(expected_driver), std::string::npos) << src;
}

TEST(CodegenGoldenTest, SteppedGeneratorDecode) {
  // A step-3 generator must decode iv = lb + 3*t and compute strided
  // offsets — the shape of the paper's post-WLF output tiler kernels.
  const sac::Module m = sac::parse(R"(
int[*] pick(int[*] v) {
  base = with { ([0] <= [i] < [12]) : 0; } : genarray([12]);
  o = with { ([1] <= [i] < [12] step [3]) : v[[i]] * 10; } : modarray(base);
  return (o);
}
)");
  auto cf = sac::compile(m, "pick", {sac::ArgSpec::array(sac::ElemType::Int, Shape{12})});
  CudaProgram p = CudaProgram::plan(cf);
  const std::string src = p.cuda_source();
  EXPECT_NE(src.find("int i = 1 + 3 * t0;"), std::string::npos) << src;
  EXPECT_NE(src.find("if (iGID >= 4) return;"), std::string::npos) << src;
  // The modarray with-loop contributes a generator kernel on top of the
  // device copy of its target.
  EXPECT_GE(p.kernel_count(), 2);
}

TEST(CodegenGoldenTest, HostBlockCommentForForLoops) {
  const sac::Module m = sac::parse(R"(
int[*] host_scatter(int[*] v) {
  a = with { (. <= [i] <= .) : v[[i]] * 2; } : genarray(shape(v));
  out = with { (. <= [i] <= .) : 0; } : genarray(shape(v));
  for (i = 0; i < 8; i++) { out[[i]] = a[[7 - i]]; }
  return (out);
}
)");
  auto cf = sac::compile(m, "host_scatter", {sac::ArgSpec::array(sac::ElemType::Int, Shape{8})});
  CudaProgram p = CudaProgram::plan(cf);
  const std::string src = p.cuda_source();
  EXPECT_NE(src.find("host-executed statements"), std::string::npos) << src;
  EXPECT_NE(src.find("cudaMemcpyDeviceToHost);  // host-executed statements follow"),
            std::string::npos)
      << src;
}

}  // namespace
}  // namespace saclo::sac_cuda
