#include "sac_cuda/program.hpp"

#include <gtest/gtest.h>

#include "../support/mini_downscaler.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac_cuda/codegen_text.hpp"

namespace saclo::sac_cuda {
namespace {

using sac::ArgSpec;
using sac::ElemType;
using sac::Value;

struct Fixture {
  sac::Module mod = sac::parse(kMiniDownscalerSrc);
  gpu::VirtualGpu gpu{gpu::gtx480(), 2};
  gpu::cuda::Runtime rt{gpu};
  gpu::Profiler host_profiler;
  gpu::HostSpec host = gpu::i7_930();

  CudaProgram plan_fn(const std::string& fn, bool wlf = true) {
    sac::CompileOptions opts;
    opts.enable_wlf = wlf;
    auto cf = sac::compile(mod, fn, {ArgSpec::array(ElemType::Int, Shape{8, 16})}, opts);
    return CudaProgram::plan(std::move(cf));
  }
};

IntArray test_frame() {
  return IntArray::generate(Shape{8, 16},
                            [](const Index& i) { return i[0] * 37 + i[1] * 11 + 5; });
}

TEST(CudaProgramTest, NonGenericPipelineIsAllKernels) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric");
  EXPECT_EQ(p.host_block_count(), 0);
  // Paper Section VII/VIII: after WLF, one kernel per generator of the
  // single fused with-loop (3 residue generators + boundary splits).
  EXPECT_GE(p.kernel_count(), 3);
}

TEST(CudaProgramTest, NonGenericResultMatchesInterpreter) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric");
  const IntArray frame = test_frame();
  const Value expected = sac::run_function(f.mod, "hfilter_nongeneric", {Value(frame)});
  const Value actual = p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, true);
  EXPECT_EQ(expected, actual);
}

TEST(CudaProgramTest, GenericPipelineFallsBackToHostTiler) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_generic");
  // The fused gather+task runs as kernels, the for-nest scatter on the
  // host — the paper's Figure 9 explanation.
  EXPECT_GE(p.kernel_count(), 1);
  EXPECT_GE(p.host_block_count(), 1);
  const IntArray frame = test_frame();
  const Value expected = sac::run_function(f.mod, "hfilter_generic", {Value(frame)});
  const Value actual = p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, true);
  EXPECT_EQ(expected, actual);
  // The intermediate array had to come back to the host before the
  // generic output tiler could run: a device-to-host transfer beyond
  // the final result copy must be present.
  EXPECT_GE(f.gpu.profiler().us_for(gpu::cuda::Runtime::kDtoHOp), 0.0);
  const auto rows = f.gpu.profiler().rows();
  std::int64_t d2h_calls = 0;
  for (const auto& r : rows) {
    if (r.kind == gpu::OpKind::MemcpyDtoH) d2h_calls += r.calls;
  }
  EXPECT_GE(d2h_calls, 1);
  // Host time was accounted.
  EXPECT_GT(f.host_profiler.total_us(gpu::OpKind::Host), 0.0);
}

TEST(CudaProgramTest, TimingOnlyRunsAccrueSameTime) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric");
  const IntArray frame = test_frame();
  p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, true);
  const double first = f.gpu.clock_us() + f.host_profiler.total_us();
  p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, false);
  const double second = f.gpu.clock_us() + f.host_profiler.total_us() - first;
  EXPECT_NEAR(second, first, first * 1e-9);
}

TEST(CudaProgramTest, TimingOnlyRunsWorkForGenericAfterOneExecution) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_generic");
  const IntArray frame = test_frame();
  p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, true);
  const double first = f.gpu.clock_us() + f.host_profiler.total_us();
  p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, false);
  const double second = f.gpu.clock_us() + f.host_profiler.total_us() - first;
  EXPECT_NEAR(second, first, first * 0.05);
}

TEST(CudaProgramTest, NoWlfPlanHasKernelPerStage) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric", /*wlf=*/false);
  // Without WLF: input tiler, task, zeros and output tiler each keep
  // their own with-loops — more kernel groups, intermediate arrays on
  // the device.
  int kernel_groups = 0;
  for (const Step& s : p.steps()) {
    if (s.kind == Step::Kind::Kernels) ++kernel_groups;
  }
  EXPECT_GE(kernel_groups, 3);
  const IntArray frame = test_frame();
  const Value expected = sac::run_function(f.mod, "hfilter_nongeneric", {Value(frame)});
  const Value actual = p.run(f.rt, {Value(frame)}, f.host, f.host_profiler, true);
  EXPECT_EQ(expected, actual);
}

TEST(CudaProgramTest, KernelCostsAreDerivedFromIr) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric");
  for (const Step& s : p.steps()) {
    if (s.kind != Step::Kind::Kernels) continue;
    for (const GenKernel& k : s.group.kernels) {
      EXPECT_GT(k.cost.flops_per_thread, 0.0) << k.name;
      EXPECT_GT(k.cost.global_loads_per_thread, 0.0) << k.name;
      EXPECT_GE(k.cost.global_stores_per_thread, 1.0) << k.name;
      EXPECT_GE(k.cost.warp_access_stride, 1) << k.name;
      EXPECT_GT(k.threads, 0) << k.name;
    }
  }
}

TEST(CudaProgramTest, SequentialLoweringMatchesInterpreter) {
  Fixture f;
  auto cf = sac::compile(f.mod, "hfilter_nongeneric",
                         {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  const IntArray frame = test_frame();
  const Value expected = sac::run_function(f.mod, "hfilter_nongeneric", {Value(frame)});
  HostRunResult r = run_sequential(cf, {Value(frame)}, f.host, true);
  EXPECT_EQ(expected, r.result);
  EXPECT_GT(r.ops, 0.0);
  EXPECT_GT(r.time_us, 0.0);
  // Timing-only runs use the same static estimate.
  HostRunResult r2 = run_sequential(cf, {Value(frame)}, f.host, false);
  EXPECT_DOUBLE_EQ(r.time_us, r2.time_us);
}

TEST(CudaProgramTest, SequentialGenericAndNonGenericClose) {
  // Paper Figure 9: sequential runtimes do not vary significantly
  // between the generic and non-generic implementations.
  Fixture f;
  auto cf_g =
      sac::compile(f.mod, "hfilter_generic", {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  auto cf_n = sac::compile(f.mod, "hfilter_nongeneric",
                           {ArgSpec::array(ElemType::Int, Shape{8, 16})});
  HostRunResult a = run_sequential(cf_g, {}, f.host, false);
  HostRunResult b = run_sequential(cf_n, {}, f.host, false);
  EXPECT_LT(std::abs(a.time_us - b.time_us) / std::max(a.time_us, b.time_us), 0.6);
}

TEST(CudaCodegenTest, EmitsKernelsAndDriver) {
  Fixture f;
  CudaProgram p = f.plan_fn("hfilter_nongeneric");
  const std::string src = p.cuda_source();
  EXPECT_NE(src.find("__global__ void"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x * blockDim.x + threadIdx.x"), std::string::npos);
  EXPECT_NE(src.find("cudaMemcpyAsync"), std::string::npos);
  EXPECT_NE(src.find("cudaMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(src.find("cudaMemcpyDeviceToHost"), std::string::npos);
  EXPECT_NE(src.find("<<<"), std::string::npos);
  // One __global__ per generator kernel.
  std::size_t count = 0;
  for (std::size_t pos = src.find("__global__"); pos != std::string::npos;
       pos = src.find("__global__", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(p.kernel_count()));
}

TEST(CudaProgramTest, PartialModarrayRunsAsCopyPlusGenKernels) {
  // A modarray whose generators cover only part of the frame: the
  // backend emits a device-to-device copy of the target plus one kernel
  // per generator, and the result matches the interpreter.
  const char* src = R"(
int[*] main(int[*] v) {
  base = with { (. <= [i] <= .) : v[[i]] * 2; } : genarray(shape(v));
  o = with { ([1] <= [i] < [16] step [4]) : v[[i]] + 100; } : modarray(base);
  return (o);
}
)";
  const sac::Module m = sac::parse(src);
  auto cf = sac::compile(m, "main", {ArgSpec::array(ElemType::Int, Shape{16})});
  CudaProgram p = CudaProgram::plan(cf);
  EXPECT_EQ(p.host_block_count(), 0);
  bool has_modarray_group = false;
  for (const Step& s : p.steps()) {
    if (s.kind == Step::Kind::Kernels && s.group.is_modarray) has_modarray_group = true;
  }
  EXPECT_TRUE(has_modarray_group);
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  gpu::cuda::Runtime rt(gpu);
  gpu::Profiler host_profiler;
  const IntArray v = IntArray::generate(Shape{16}, [](const Index& i) { return i[0] + 1; });
  const Value expected = sac::run_function(m, "main", {Value(v)});
  const Value actual = p.run(rt, {Value(v)}, gpu::i7_930(), host_profiler, true);
  EXPECT_EQ(expected, actual);
}

TEST(CudaProgramTest, EstimateOpsCountsLoops) {
  const sac::Module m = sac::parse(
      "int main() { s = 0; for (i = 0; i < 100; i++) { s = s + i; } return (s); }");
  auto ops = estimate_ops(m.functions[0].body);
  ASSERT_TRUE(ops.has_value());
  EXPECT_GT(*ops, 100.0);
  EXPECT_LT(*ops, 5000.0);
}

TEST(CudaProgramTest, EstimateOpsRejectsDynamicLoops) {
  const sac::Module m = sac::parse(
      "int main(int n) { s = 0; for (i = 0; i < n; i++) { s = s + i; } return (s); }");
  EXPECT_FALSE(estimate_ops(m.functions[0].body).has_value());
}

}  // namespace
}  // namespace saclo::sac_cuda
