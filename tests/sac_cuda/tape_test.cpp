#include "sac_cuda/tape.hpp"

#include <gtest/gtest.h>

#include "sac/parser.hpp"

namespace saclo::sac_cuda {
namespace {

Tape compile_or_die(const std::string& fn_src, const std::vector<std::string>& index_vars,
                    const std::map<std::string, Index>& arrays) {
  const sac::Module m = sac::parse(fn_src);
  const auto& body = m.functions[0].body;
  std::vector<const sac::Expr*> results;
  results.push_back(body.back()->value.get());  // the return expression
  std::vector<sac::StmtPtr> stmts;
  for (std::size_t i = 0; i + 1 < body.size(); ++i) stmts.push_back(body[i]->clone());
  auto tape = compile_tape(stmts, results, index_vars, arrays);
  EXPECT_TRUE(tape.has_value());
  return tape ? std::move(*tape) : Tape{};
}

TEST(TapeTest, ScalarArithmetic) {
  Tape t = compile_or_die("int f(int i) { a = i * 3 + 1; return (a - 2); }", {"i"}, {});
  std::vector<std::int64_t> slots(static_cast<std::size_t>(t.slot_count), 0);
  slots[static_cast<std::size_t>(t.index_slots[0])] = 5;
  t.run(slots, {});
  EXPECT_EQ(slots[static_cast<std::size_t>(t.result_slots[0])], 14);
}

TEST(TapeTest, ArrayLoads) {
  std::map<std::string, Index> arrays{{"frame", {4, 8}}};
  Tape t = compile_or_die("int f(int i, int j) { return (frame[[i, j + 1]]); }", {"i", "j"},
                          arrays);
  std::vector<std::int32_t> data(32);
  for (int k = 0; k < 32; ++k) data[static_cast<std::size_t>(k)] = 100 + k;
  TapeArray ta{std::span<const std::int32_t>(data), {4, 8}, Shape({4, 8}).strides()};
  std::vector<std::int64_t> slots(static_cast<std::size_t>(t.slot_count), 0);
  slots[static_cast<std::size_t>(t.index_slots[0])] = 2;
  slots[static_cast<std::size_t>(t.index_slots[1])] = 3;
  t.run(slots, {&ta, 1});
  EXPECT_EQ(slots[static_cast<std::size_t>(t.result_slots[0])], 100 + 2 * 8 + 4);
  EXPECT_EQ(t.array_loads(), 1);
}

TEST(TapeTest, OutOfBoundsLoadThrows) {
  std::map<std::string, Index> arrays{{"v", {4}}};
  Tape t = compile_or_die("int f(int i) { return (v[i]); }", {"i"}, arrays);
  std::vector<std::int32_t> data(4);
  TapeArray ta{std::span<const std::int32_t>(data), {4}, {1}};
  std::vector<std::int64_t> slots(static_cast<std::size_t>(t.slot_count), 0);
  slots[static_cast<std::size_t>(t.index_slots[0])] = 4;
  EXPECT_THROW(t.run(slots, {&ta, 1}), Error);
}

TEST(TapeTest, MinMaxAbs) {
  Tape t = compile_or_die("int f(int i) { return (min(max(i, 0), 10) + abs(0 - i)); }", {"i"},
                          {});
  std::vector<std::int64_t> slots(static_cast<std::size_t>(t.slot_count), 0);
  slots[static_cast<std::size_t>(t.index_slots[0])] = -3;
  t.run(slots, {});
  EXPECT_EQ(slots[static_cast<std::size_t>(t.result_slots[0])], 0 + 3);
}

TEST(TapeTest, DivisionByZeroThrows) {
  Tape t = compile_or_die("int f(int i) { return (10 / i); }", {"i"}, {});
  std::vector<std::int64_t> slots(static_cast<std::size_t>(t.slot_count), 0);
  EXPECT_THROW(t.run(slots, {}), Error);
}

TEST(TapeTest, RejectsFloats) {
  const sac::Module m = sac::parse("float f(int i) { return (1.5); }");
  std::vector<const sac::Expr*> results{m.functions[0].body[0]->value.get()};
  EXPECT_FALSE(compile_tape({}, results, {"i"}, {}).has_value());
}

TEST(TapeTest, RejectsUnknownArrays) {
  const sac::Module m = sac::parse("int f(int i) { return (mystery[i]); }");
  std::vector<const sac::Expr*> results{m.functions[0].body[0]->value.get()};
  EXPECT_FALSE(compile_tape({}, results, {"i"}, {}).has_value());
}

TEST(TapeTest, ArithOpCountsForCostModel) {
  Tape t = compile_or_die("int f(int i) { a = i + 1; b = a * 2; return (b - a); }", {"i"}, {});
  EXPECT_EQ(t.arith_ops(), 3);
  EXPECT_EQ(t.array_loads(), 0);
}

TEST(TapeTest, MultipleResults) {
  const sac::Module m = sac::parse("int f(int i) { a = i + 1; return (a); }");
  std::vector<sac::StmtPtr> stmts;
  stmts.push_back(m.functions[0].body[0]->clone());
  const sac::ExprPtr r0 = sac::parse_expression("a * 10");
  const sac::ExprPtr r1 = sac::parse_expression("a * 100");
  auto tape = compile_tape(stmts, {r0.get(), r1.get()}, {"i"}, {});
  ASSERT_TRUE(tape.has_value());
  std::vector<std::int64_t> slots(static_cast<std::size_t>(tape->slot_count), 0);
  slots[static_cast<std::size_t>(tape->index_slots[0])] = 4;
  tape->run(slots, {});
  EXPECT_EQ(slots[static_cast<std::size_t>(tape->result_slots[0])], 50);
  EXPECT_EQ(slots[static_cast<std::size_t>(tape->result_slots[1])], 500);
}

}  // namespace
}  // namespace saclo::sac_cuda
