#include "gpu/stream.hpp"

#include <gtest/gtest.h>

#include <array>

#include "gpu/device.hpp"
#include "gpu/sim_gpu.hpp"

namespace saclo::gpu {
namespace {

BufferHandle buf(std::uint64_t id) { return BufferHandle{id, 64}; }

TEST(TimelineTest, DefaultStreamSerializes) {
  Timeline t;
  auto a = t.schedule(kDefaultStream, 10.0);
  auto b = t.schedule(kDefaultStream, 5.0);
  EXPECT_DOUBLE_EQ(a.start_us, 0.0);
  EXPECT_DOUBLE_EQ(a.end_us, 10.0);
  EXPECT_DOUBLE_EQ(b.start_us, 10.0);
  EXPECT_DOUBLE_EQ(b.end_us, 15.0);
  EXPECT_DOUBLE_EQ(t.makespan_us(), 15.0);
}

TEST(TimelineTest, IndependentStreamsOverlap) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  auto a = t.schedule(s1, 10.0);
  auto b = t.schedule(s2, 7.0);
  EXPECT_DOUBLE_EQ(a.start_us, 0.0);
  EXPECT_DOUBLE_EQ(b.start_us, 0.0);  // concurrent with a
  EXPECT_DOUBLE_EQ(t.makespan_us(), 10.0);  // max, not 17
}

TEST(TimelineTest, EventOrdersStreams) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  t.schedule(s1, 10.0);
  const EventId e = t.record_event(s1);
  EXPECT_DOUBLE_EQ(t.event_us(e), 10.0);
  t.wait_event(s2, e);
  auto op = t.schedule(s2, 5.0);
  EXPECT_DOUBLE_EQ(op.start_us, 10.0);
  EXPECT_DOUBLE_EQ(t.makespan_us(), 15.0);
}

TEST(TimelineTest, ReadAfterWriteHazard) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  const std::array<BufferHandle, 1> b = {buf(7)};
  t.schedule(s1, 10.0, {}, b);          // write on s1
  auto r = t.schedule(s2, 4.0, b, {});  // read on s2 must wait
  EXPECT_DOUBLE_EQ(r.start_us, 10.0);
  EXPECT_DOUBLE_EQ(r.end_us, 14.0);
}

TEST(TimelineTest, WriteAfterReadHazard) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  const std::array<BufferHandle, 1> b = {buf(3)};
  t.schedule(s1, 8.0, b, {});           // read on s1
  auto w = t.schedule(s2, 2.0, {}, b);  // overwrite must wait for the read
  EXPECT_DOUBLE_EQ(w.start_us, 8.0);
}

TEST(TimelineTest, WriteAfterWriteHazard) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  const std::array<BufferHandle, 1> b = {buf(9)};
  t.schedule(s1, 6.0, {}, b);
  auto w = t.schedule(s2, 6.0, {}, b);
  EXPECT_DOUBLE_EQ(w.start_us, 6.0);
}

TEST(TimelineTest, DisjointBuffersDoNotConstrain) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  const std::array<BufferHandle, 1> a = {buf(1)};
  const std::array<BufferHandle, 1> b = {buf(2)};
  t.schedule(s1, 10.0, {}, a);
  auto op = t.schedule(s2, 10.0, {}, b);
  EXPECT_DOUBLE_EQ(op.start_us, 0.0);
}

TEST(TimelineTest, WaitUntilPushesTail) {
  Timeline t;
  const StreamId s = t.create_stream();
  t.wait_until(s, 42.0);
  auto op = t.schedule(s, 1.0);
  EXPECT_DOUBLE_EQ(op.start_us, 42.0);
  // wait_until never moves a tail backwards.
  t.wait_until(s, 10.0);
  EXPECT_DOUBLE_EQ(t.tail_us(s), 43.0);
}

TEST(TimelineTest, SynchronizeAlignsAllStreams) {
  Timeline t;
  const StreamId s1 = t.create_stream();
  const StreamId s2 = t.create_stream();
  t.schedule(s1, 25.0);
  t.schedule(s2, 5.0);
  t.synchronize();
  EXPECT_DOUBLE_EQ(t.tail_us(kDefaultStream), 25.0);
  EXPECT_DOUBLE_EQ(t.tail_us(s2), 25.0);
  auto op = t.schedule(s2, 1.0);
  EXPECT_DOUBLE_EQ(op.start_us, 25.0);
}

TEST(TimelineTest, InvalidStreamOrEventThrows) {
  Timeline t;
  EXPECT_THROW(t.schedule(5, 1.0), StreamError);
  EXPECT_THROW(t.tail_us(-1), StreamError);
  EXPECT_THROW(t.wait_event(kDefaultStream, 0), StreamError);
  EXPECT_THROW(t.event_us(3), StreamError);
}

TEST(TimelineTest, DoubleBufferThrottle) {
  // The canonical double-buffered pipeline: upload i waits on the
  // compute-done event of iteration i-2, so at most two iterations of
  // upload run ahead of compute.
  Timeline t;
  const StreamId up = t.create_stream();
  const StreamId comp = t.create_stream();
  std::vector<EventId> done;
  std::vector<Timeline::Interval> uploads;
  for (int i = 0; i < 6; ++i) {
    if (i >= 2) t.wait_event(up, done[static_cast<std::size_t>(i - 2)]);
    uploads.push_back(t.schedule(up, 1.0));
    const EventId e = t.record_event(up);
    t.wait_event(comp, e);
    t.schedule(comp, 10.0);
    done.push_back(t.record_event(comp));
  }
  // Iteration 0 and 1 upload immediately; iteration 2's upload waits
  // for compute 0 (ends at 11), iteration 3's for compute 1 (ends 21).
  EXPECT_DOUBLE_EQ(uploads[0].start_us, 0.0);
  EXPECT_DOUBLE_EQ(uploads[1].start_us, 1.0);
  EXPECT_DOUBLE_EQ(uploads[2].start_us, 11.0);
  EXPECT_DOUBLE_EQ(uploads[3].start_us, 21.0);
}

// --- VirtualGpu stream integration --------------------------------------------------

KernelLaunch noop_kernel(const std::string& name, std::int64_t threads) {
  KernelLaunch k;
  k.name = name;
  k.threads = threads;
  k.cost.flops_per_thread = 100;
  k.cost.global_loads_per_thread = 2;
  k.cost.global_stores_per_thread = 1;
  k.body = [](std::int64_t) {};
  return k;
}

TEST(VirtualGpuStreamTest, SingleStreamClockEqualsSerializedSum) {
  VirtualGpu gpu(gtx480());
  const double k1 = gpu.launch(noop_kernel("a", 1 << 16), false);
  const double k2 = gpu.launch(noop_kernel("b", 1 << 16), false);
  EXPECT_DOUBLE_EQ(gpu.clock_us(), k1 + k2);
  EXPECT_DOUBLE_EQ(gpu.clock_us(), gpu.profiler().total_us());
}

TEST(VirtualGpuStreamTest, KernelsOnDistinctStreamsOverlap) {
  VirtualGpu gpu(gtx480());
  const StreamId s1 = gpu.create_stream();
  const StreamId s2 = gpu.create_stream();
  const double k1 = gpu.launch(noop_kernel("a", 1 << 16), false, s1);
  const double k2 = gpu.launch(noop_kernel("b", 1 << 16), false, s2);
  EXPECT_DOUBLE_EQ(gpu.clock_us(), std::max(k1, k2));
  EXPECT_LT(gpu.clock_us(), k1 + k2);
}

TEST(VirtualGpuStreamTest, BufferHazardOrdersTransferAndKernel) {
  VirtualGpu gpu(gtx480());
  const StreamId h2d = gpu.create_stream();
  const StreamId comp = gpu.create_stream();
  BufferHandle b = gpu.alloc(1 << 20);
  std::vector<std::byte> host(1 << 20);
  gpu.copy_h2d(b, host, "h2d", true, true, h2d);
  const double upload_end = gpu.stream_tail_us(h2d);
  KernelLaunch k = noop_kernel("consume", 1 << 10);
  k.reads.push_back(b);
  gpu.launch(k, false, comp);
  // The kernel reads the uploaded buffer: it cannot start before the
  // upload ends even though it sits on another stream.
  EXPECT_GE(gpu.stream_tail_us(comp), upload_end);
  const auto& iv = gpu.profiler().intervals().back();
  EXPECT_DOUBLE_EQ(iv.start_us, upload_end);
}

TEST(VirtualGpuStreamTest, ExecutionIsImmediateRegardlessOfStream) {
  // Functional results are bit-exact for any stream assignment because
  // execution happens in issue order; only the clock overlaps.
  VirtualGpu gpu(gtx480());
  const StreamId s = gpu.create_stream();
  BufferHandle b = gpu.alloc(4 * sizeof(std::int32_t));
  std::vector<std::int32_t> host = {1, 2, 3, 4};
  gpu.copy_h2d(b, std::as_bytes(std::span<const std::int32_t>(host)), "h2d", true, true, s);
  KernelLaunch k = noop_kernel("incr", 4);
  auto view = gpu.memory().view<std::int32_t>(b);
  k.body = [view](std::int64_t i) { view[static_cast<std::size_t>(i)] += 10; };
  k.reads.push_back(b);
  k.writes.push_back(b);
  gpu.launch(k, true, gpu.create_stream());
  std::vector<std::int32_t> out(4);
  gpu.copy_d2h(std::as_writable_bytes(std::span<std::int32_t>(out)), b, "d2h", true, true, s);
  EXPECT_EQ(out, (std::vector<std::int32_t>{11, 12, 13, 14}));
}

TEST(VirtualGpuStreamTest, HostWorkJoinsTheMakespan) {
  VirtualGpu gpu(gtx480());
  const StreamId host = gpu.create_stream();
  gpu.wait_until(host, 5.0);
  const double end = gpu.run_host("tiler", 20.0, host);
  EXPECT_DOUBLE_EQ(end, 25.0);
  EXPECT_DOUBLE_EQ(gpu.clock_us(), 25.0);
  EXPECT_DOUBLE_EQ(gpu.profiler().total_us(OpKind::Host), 20.0);
}

}  // namespace
}  // namespace saclo::gpu
