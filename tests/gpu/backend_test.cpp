// Backend-conformance suite: every ExecutionBackend this build can
// construct must honour the contract of gpu/backend.hpp — boundary
// callbacks exactly once per op, before any work, fail-stop on an
// observer throw, bit-exact functional execution, and (via VirtualGpu)
// fault injection firing at identical op boundaries on every backend.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "gpu/backend.hpp"
#include "gpu/executor.hpp"
#include "gpu/sim_gpu.hpp"

namespace saclo::gpu {
namespace {

/// Records every boundary notification in order.
class RecordingObserver : public OpBoundaryObserver {
 public:
  struct Boundary {
    bool is_kernel = false;
    std::string kernel;       // kernel boundaries
    Dir dir = Dir::HostToDevice;  // transfer boundaries
    std::int64_t bytes = 0;
  };

  void on_kernel_boundary(const KernelLaunch& kernel) override {
    boundaries.push_back({true, kernel.name, Dir::HostToDevice, 0});
  }
  void on_transfer_boundary(Dir dir, std::int64_t bytes) override {
    boundaries.push_back({false, "", dir, bytes});
  }

  std::vector<Boundary> boundaries;
};

/// A fixed op sequence driven straight at a backend: two kernels (one
/// executed, one accounting-only) around two transfers. Returns the
/// output the executed kernel produced.
std::vector<std::int32_t> drive_sequence(ExecutionBackend& backend, RecordingObserver& observer) {
  backend.set_boundary_observer(&observer);

  std::vector<std::int32_t> data(64);
  std::iota(data.begin(), data.end(), 1);
  std::vector<std::int32_t> device(64);

  auto bytes_of = [](std::vector<std::int32_t>& v) {
    return std::span<std::byte>(reinterpret_cast<std::byte*>(v.data()), v.size() * 4);
  };
  backend.transfer(Dir::HostToDevice, bytes_of(device),
                   std::span<const std::byte>(bytes_of(data)), 64 * 4, /*execute=*/true);

  KernelLaunch scale;
  scale.name = "scale2";
  scale.threads = 64;
  std::span<std::int32_t> dev(device);
  scale.body = [dev](std::int64_t i) { dev[static_cast<std::size_t>(i)] *= 2; };
  backend.launch_kernel(scale, /*execute=*/true);

  KernelLaunch accounted;
  accounted.name = "accounted";
  accounted.threads = 64;
  accounted.body = [](std::int64_t) { FAIL() << "execute=false must not run the body"; };
  backend.launch_kernel(accounted, /*execute=*/false);

  std::vector<std::int32_t> back(64);
  backend.transfer(Dir::DeviceToHost, bytes_of(back), std::span<const std::byte>(bytes_of(device)),
                   64 * 4, /*execute=*/true);
  return back;
}

TEST(BackendTest, AvailableBackendsAlwaysHasSimAndHost) {
  const std::vector<BackendKind> kinds = available_backends();
  EXPECT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], BackendKind::Sim);
  EXPECT_EQ(kinds[1], BackendKind::Host);
}

TEST(BackendTest, KindNamesRoundTrip) {
  for (BackendKind kind : available_backends()) {
    EXPECT_EQ(parse_backend_kind(backend_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_backend_kind("cuda"), BackendError);
}

#if !defined(SACLO_BACKEND_OPENCL)
TEST(BackendTest, UncompiledBackendThrowsAtConstruction) {
  ThreadPool pool(1);
  EXPECT_THROW(make_backend(BackendKind::OpenCl, gtx480(), pool), BackendError);
}
#endif

// The conformance core: every available backend reports the exact same
// boundary sequence for the same op sequence, and produces bit-exact
// results. This is the invariant that makes fault injection and the
// differential suites backend-agnostic.
TEST(BackendTest, AllBackendsReportIdenticalOpBoundaries) {
  ThreadPool pool(2);
  std::vector<RecordingObserver::Boundary> reference;
  std::vector<std::int32_t> reference_out;
  for (BackendKind kind : available_backends()) {
    auto backend = make_backend(kind, gtx480(), pool);
    EXPECT_EQ(backend->kind(), kind);
    EXPECT_STREQ(backend->name(), backend_kind_name(kind));
    RecordingObserver observer;
    const std::vector<std::int32_t> out = drive_sequence(*backend, observer);

    ASSERT_EQ(observer.boundaries.size(), 4u) << backend->name();
    EXPECT_FALSE(observer.boundaries[0].is_kernel);
    EXPECT_TRUE(observer.boundaries[1].is_kernel);
    EXPECT_TRUE(observer.boundaries[2].is_kernel)
        << "accounting-only ops still cross the boundary";
    EXPECT_FALSE(observer.boundaries[3].is_kernel);

    if (reference.empty()) {
      reference = observer.boundaries;
      reference_out = out;
      continue;
    }
    ASSERT_EQ(observer.boundaries.size(), reference.size()) << backend->name();
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(observer.boundaries[i].is_kernel, reference[i].is_kernel) << backend->name();
      EXPECT_EQ(observer.boundaries[i].kernel, reference[i].kernel) << backend->name();
      EXPECT_EQ(observer.boundaries[i].dir, reference[i].dir) << backend->name();
      EXPECT_EQ(observer.boundaries[i].bytes, reference[i].bytes) << backend->name();
    }
    EXPECT_EQ(out, reference_out) << backend->name() << " diverged functionally";
  }
}

// Fail-stop: an observer that throws (the fault injector's behaviour)
// must abort the op before any work happened, on every backend.
TEST(BackendTest, ObserverThrowAbortsTheOpBeforeAnyWork) {
  class ThrowingObserver : public OpBoundaryObserver {
   public:
    void on_kernel_boundary(const KernelLaunch&) override {
      throw fault::DeviceFault("injected");
    }
    void on_transfer_boundary(Dir, std::int64_t) override {
      throw fault::DeviceFault("injected");
    }
  };

  ThreadPool pool(1);
  for (BackendKind kind : available_backends()) {
    auto backend = make_backend(kind, gtx480(), pool);
    ThrowingObserver observer;
    backend->set_boundary_observer(&observer);

    bool ran = false;
    KernelLaunch k;
    k.name = "never";
    k.threads = 4;
    k.body = [&ran](std::int64_t) { ran = true; };
    EXPECT_THROW(backend->launch_kernel(k, true), fault::DeviceFault) << backend->name();
    EXPECT_FALSE(ran) << backend->name() << " ran the body past a faulted boundary";

    std::vector<std::int32_t> src(8, 7);
    std::vector<std::int32_t> dst(8, 0);
    EXPECT_THROW(
        backend->transfer(Dir::HostToDevice,
                          std::span<std::byte>(reinterpret_cast<std::byte*>(dst.data()), 32),
                          std::span<const std::byte>(
                              reinterpret_cast<const std::byte*>(src.data()), 32),
                          32, true),
        fault::DeviceFault)
        << backend->name();
    EXPECT_EQ(dst, std::vector<std::int32_t>(8, 0))
        << backend->name() << " moved data past a faulted boundary";
  }
}

// range_body and body must be interchangeable: a kernel carrying both
// produces the same output whichever the backend picks (host prefers
// range_body, sim runs body).
TEST(BackendTest, RangeBodyMatchesPerIdBody) {
  ThreadPool pool(3);
  std::vector<std::int32_t> expected(1000);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<std::int32_t>(3 * i + 1);
  }
  for (BackendKind kind : available_backends()) {
    auto backend = make_backend(kind, gtx480(), pool);
    std::vector<std::int32_t> out(1000, 0);
    std::span<std::int32_t> view(out);
    KernelLaunch k;
    k.name = "affine";
    k.threads = 1000;
    k.body = [view](std::int64_t i) {
      view[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(3 * i + 1);
    };
    k.range_body = [view](std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        view[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(3 * i + 1);
      }
    };
    backend->launch_kernel(k, true);
    EXPECT_EQ(out, expected) << backend->name();
  }
}

// Durations: the sim backend charges the analytic model for executed
// and accounting-only launches alike; the host backend measures the
// wall clock for executed ops and falls back to the model otherwise.
TEST(BackendTest, DurationsArePositiveAndModelExactForSim) {
  ThreadPool pool(1);
  KernelLaunch k;
  k.name = "noop";
  k.threads = 256;
  k.cost.flops_per_thread = 8;
  k.body = [](std::int64_t) {};
  const DeviceSpec spec = gtx480();
  const double modeled = kernel_time_us(spec, k.threads, k.cost);

  auto sim = make_backend(BackendKind::Sim, spec, pool);
  EXPECT_DOUBLE_EQ(sim->launch_kernel(k, true), modeled);
  EXPECT_DOUBLE_EQ(sim->launch_kernel(k, false), modeled);

  auto host = make_backend(BackendKind::Host, spec, pool);
  EXPECT_GT(host->launch_kernel(k, true), 0.0);
  EXPECT_DOUBLE_EQ(host->launch_kernel(k, false), modeled)
      << "accounting-only ops have nothing to measure: model time";
}

// Fault-boundary parity through the full VirtualGpu stack: the same
// fault plan interrupts the same op, at the same count, on both
// backends — the injector never sees which backend is underneath.
TEST(BackendTest, FaultInjectionFiresAtTheSameBoundaryOnEveryBackend) {
  const auto ops_before_fault = [](BackendKind kind) {
    fault::FaultSpec spec;
    spec.device = 0;
    spec.after_kernels = 2;
    spec.kind = fault::FaultKind::Kernel;
    fault::FaultInjector injector({spec});
    VirtualGpu gpu(gtx480(), 1, kind);
    gpu.set_fault_injector(&injector);

    const BufferHandle buf = gpu.alloc(64 * 4);
    std::vector<std::int32_t> host_data(64, 5);
    gpu.copy_h2d(buf, std::as_bytes(std::span<const std::int32_t>(host_data)), "h2d", true);

    KernelLaunch k;
    k.name = "count";
    k.threads = 64;
    k.body = [](std::int64_t) {};
    int completed = 0;
    try {
      for (int i = 0; i < 5; ++i) {
        gpu.launch(k, true);
        ++completed;
      }
    } catch (const fault::DeviceFault&) {
    }
    return completed;
  };

  const int sim_ops = ops_before_fault(BackendKind::Sim);
  EXPECT_EQ(sim_ops, 2) << "after_kernels=2: two launches succeed, the third faults";
  for (BackendKind kind : available_backends()) {
    EXPECT_EQ(ops_before_fault(kind), sim_ops) << backend_kind_name(kind);
  }
}

// VirtualGpu surface: the backend is queryable and stamps the profiler,
// so traces produced by a host-backed device say so.
TEST(BackendTest, VirtualGpuExposesItsBackend) {
  VirtualGpu sim(gtx480(), 1);
  EXPECT_EQ(sim.backend_kind(), BackendKind::Sim);
  EXPECT_STREQ(sim.backend_name(), "sim");
  EXPECT_EQ(sim.profiler().backend_name(), "sim");

  VirtualGpu host(gtx480(), 1, BackendKind::Host);
  EXPECT_EQ(host.backend_kind(), BackendKind::Host);
  EXPECT_STREQ(host.backend_name(), "host");
  EXPECT_EQ(host.profiler().backend_name(), "host");
}

// End-to-end device parity: the same staged computation on a sim and a
// host VirtualGpu produces byte-identical downloads.
TEST(BackendTest, VirtualGpuResultsAreBitExactAcrossBackends) {
  const auto run = [](BackendKind kind) {
    VirtualGpu gpu(gtx480(), 2, kind);
    const BufferHandle buf = gpu.alloc(256 * 4);
    std::vector<std::int32_t> input(256);
    std::iota(input.begin(), input.end(), -100);
    gpu.copy_h2d(buf, std::as_bytes(std::span<const std::int32_t>(input)), "h2d", true);

    auto view = gpu.memory().view<std::int32_t>(buf);
    KernelLaunch k;
    k.name = "mix";
    k.threads = 256;
    k.body = [view](std::int64_t i) {
      auto& x = view[static_cast<std::size_t>(i)];
      x = x * 3 - static_cast<std::int32_t>(i % 7);
    };
    gpu.launch(k, true);

    std::vector<std::int32_t> out(256);
    gpu.copy_d2h(std::as_writable_bytes(std::span<std::int32_t>(out)), buf, "d2h", true);
    return out;
  };

  const std::vector<std::int32_t> reference = run(BackendKind::Sim);
  for (BackendKind kind : available_backends()) {
    EXPECT_EQ(run(kind), reference) << backend_kind_name(kind);
  }
}

}  // namespace
}  // namespace saclo::gpu
