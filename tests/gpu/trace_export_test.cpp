#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/profiler.hpp"
#include "gpu/sim_gpu.hpp"
#include "support/mini_json.hpp"

namespace saclo::gpu {
namespace {

using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

// The Chrome trace export is a stable machine-readable interface
// (chrome://tracing, Perfetto, the serve runtime's device dumps) —
// lock its exact shape down with a golden string.
TEST(ChromeTraceExportTest, GoldenTraceForAHandAssembledSchedule) {
  Profiler p;
  p.record_interval("hfilter_k0", OpKind::Kernel, /*stream=*/1, 0.0, 10.0);
  p.record_interval("memcpyHtoDasync", OpKind::MemcpyHtoD, /*stream=*/0, 0.0, 5.0);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
      "\"args\":{\"name\":\"stream 0\"}},"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"stream 1\"}},"
      "{\"name\":\"hfilter_k0\",\"cat\":\"kernel\",\"ph\":\"X\",\"pid\":0,\"tid\":1,"
      "\"ts\":0.000,\"dur\":10.000},"
      "{\"name\":\"memcpyHtoDasync\",\"cat\":\"memcpy_h2d\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
      "\"ts\":0.000,\"dur\":5.000}"
      "]}";
  EXPECT_EQ(p.chrome_trace_json(), expected);
}

TEST(ChromeTraceExportTest, EmptyProfilerStillEmitsValidJson) {
  Profiler p;
  const Json root = parse_json(p.chrome_trace_json());
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  EXPECT_EQ(root.at("traceEvents").array.size(), 0u);
}

TEST(ChromeTraceExportTest, EscapesQuotesAndBackslashesInNames) {
  Profiler p;
  p.record_interval("weird \"kernel\" \\ name", OpKind::Kernel, 0, 0.0, 1.0);
  const Json root = parse_json(p.chrome_trace_json());
  bool found = false;
  for (const Json& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string == "X") {
      EXPECT_EQ(ev.at("name").string, "weird \"kernel\" \\ name");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Collects the "X" (complete) events of a parsed trace grouped by tid,
// in array order — which is the profiler's issue order.
std::map<int, std::vector<const Json*>> events_by_stream(const Json& root) {
  std::map<int, std::vector<const Json*>> by_tid;
  for (const Json& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string == "X") {
      by_tid[static_cast<int>(ev.at("tid").number)].push_back(&ev);
    }
  }
  return by_tid;
}

TEST(ChromeTraceExportTest, RealScheduleYieldsMonotoneNonOverlappingStreams) {
  // Drive a real multi-stream schedule through the simulator: three
  // streams doing upload / compute / download per "frame", the PR 1
  // overlap pattern.
  VirtualGpu gpu(gtx480());
  const StreamId h2d = gpu.create_stream();
  const StreamId compute = gpu.create_stream();
  const StreamId d2h = gpu.create_stream();

  const BufferHandle buf = gpu.alloc(4096);
  KernelLaunch kernel;
  kernel.name = "trace_test_kernel";
  kernel.threads = 1024;
  kernel.cost.flops_per_thread = 8.0;
  kernel.cost.global_loads_per_thread = 1.0;
  kernel.cost.global_stores_per_thread = 1.0;
  kernel.body = [](std::int64_t) {};
  kernel.reads = {buf};
  kernel.writes = {buf};

  for (int frame = 0; frame < 3; ++frame) {
    gpu.account_transfer(4096, Dir::HostToDevice, "memcpyHtoDasync", h2d, buf);
    gpu.launch(kernel, /*execute=*/false, compute);
    gpu.account_transfer(4096, Dir::DeviceToHost, "memcpyDtoHasync", d2h, buf);
  }
  gpu.synchronize();

  const Json root = parse_json(gpu.profiler().chrome_trace_json());
  const auto by_tid = events_by_stream(root);
  ASSERT_EQ(by_tid.size(), 3u);  // the three created streams

  for (const auto& [tid, events] : by_tid) {
    ASSERT_EQ(events.size(), 3u) << "stream " << tid;
    double tail = 0.0;
    for (const Json* ev : events) {
      const double ts = ev->at("ts").number;
      const double dur = ev->at("dur").number;
      EXPECT_GE(dur, 0.0);
      // In-order streams: each op starts at or after the previous
      // op's end — intervals on one stream never overlap.
      EXPECT_GE(ts, tail) << "stream " << tid;
      tail = ts + dur;
    }
  }
}

TEST(ChromeTraceExportTest, EventNamesAndCategoriesAreTheStableOnes) {
  VirtualGpu gpu(gtx480());
  const BufferHandle buf = gpu.alloc(1024);
  gpu.account_transfer(1024, Dir::HostToDevice, "memcpyHtoDasync", kDefaultStream, buf);
  KernelLaunch kernel;
  kernel.name = "hfilter_k0";
  kernel.threads = 32;
  kernel.cost.flops_per_thread = 1.0;
  kernel.body = [](std::int64_t) {};
  gpu.launch(kernel, /*execute=*/false);
  gpu.account_transfer(1024, Dir::DeviceToHost, "memcpyDtoHasync", kDefaultStream, buf);
  gpu.run_host("host_tiler", 2.0, kDefaultStream);

  const Json root = parse_json(gpu.profiler().chrome_trace_json());
  std::map<std::string, std::string> cat_of;  // name -> category
  for (const Json& ev : root.at("traceEvents").array) {
    if (ev.at("ph").string == "X") cat_of[ev.at("name").string] = ev.at("cat").string;
  }
  // The golden vocabulary downstream tooling keys on.
  ASSERT_TRUE(cat_of.count("memcpyHtoDasync"));
  EXPECT_EQ(cat_of["memcpyHtoDasync"], "memcpy_h2d");
  ASSERT_TRUE(cat_of.count("memcpyDtoHasync"));
  EXPECT_EQ(cat_of["memcpyDtoHasync"], "memcpy_d2h");
  ASSERT_TRUE(cat_of.count("hfilter_k0"));
  EXPECT_EQ(cat_of["hfilter_k0"], "kernel");
  ASSERT_TRUE(cat_of.count("host_tiler"));
  EXPECT_EQ(cat_of["host_tiler"], "host");
}

}  // namespace
}  // namespace saclo::gpu
