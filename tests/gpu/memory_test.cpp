#include "gpu/memory.hpp"

#include <gtest/gtest.h>

namespace saclo::gpu {
namespace {

TEST(DeviceMemoryPoolTest, AllocatesAndTracksUsage) {
  DeviceMemoryPool pool(1024);
  const BufferHandle a = pool.allocate(100);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(pool.used_bytes(), 100);
  const BufferHandle b = pool.allocate(924);
  EXPECT_EQ(pool.used_bytes(), 1024);
  pool.free(a);
  EXPECT_EQ(pool.used_bytes(), 924);
  pool.free(b);
  EXPECT_EQ(pool.used_bytes(), 0);
}

TEST(DeviceMemoryPoolTest, OutOfMemoryThrows) {
  DeviceMemoryPool pool(100);
  (void)pool.allocate(60);
  EXPECT_THROW(pool.allocate(50), DeviceMemoryError);
}

TEST(DeviceMemoryPoolTest, DoubleFreeThrows) {
  DeviceMemoryPool pool(100);
  const BufferHandle a = pool.allocate(10);
  pool.free(a);
  EXPECT_THROW(pool.free(a), DeviceMemoryError);
}

TEST(DeviceMemoryPoolTest, StaleHandleAccessThrows) {
  DeviceMemoryPool pool(100);
  const BufferHandle a = pool.allocate(10);
  pool.free(a);
  EXPECT_THROW(pool.bytes(a), DeviceMemoryError);
}

TEST(DeviceMemoryPoolTest, TypedViewChecksElementSize) {
  DeviceMemoryPool pool(100);
  const BufferHandle a = pool.allocate(10);  // not a multiple of 8
  EXPECT_THROW(pool.view<std::int64_t>(a), DeviceMemoryError);
  const BufferHandle b = pool.allocate(16);
  auto v = pool.view<std::int64_t>(b);
  EXPECT_EQ(v.size(), 2u);
}

TEST(DeviceMemoryPoolTest, BuffersAreZeroInitialised) {
  DeviceMemoryPool pool(64);
  auto v = pool.view<std::int64_t>(pool.allocate(64));
  for (std::int64_t x : v) EXPECT_EQ(x, 0);
}

TEST(DeviceBufferTest, RaiiFreesOnDestruction) {
  DeviceMemoryPool pool(100);
  {
    DeviceBuffer buf(pool, 40);
    EXPECT_EQ(pool.used_bytes(), 40);
  }
  EXPECT_EQ(pool.used_bytes(), 0);
  EXPECT_EQ(pool.live_allocations(), 0u);
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  DeviceMemoryPool pool(100);
  DeviceBuffer a(pool, 40);
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.used_bytes(), 40);
  DeviceBuffer c(pool, 20);
  c = std::move(b);
  EXPECT_EQ(pool.used_bytes(), 40);  // the 20-byte buffer was released
}

}  // namespace
}  // namespace saclo::gpu
