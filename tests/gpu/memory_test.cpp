#include "gpu/memory.hpp"

#include <gtest/gtest.h>

namespace saclo::gpu {
namespace {

TEST(DeviceMemoryPoolTest, AllocatesAndTracksUsage) {
  DeviceMemoryPool pool(4096);
  const BufferHandle a = pool.allocate(100);
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.bytes, 100);
  // Capacity accounting rounds to cudaMalloc's 256-byte alignment.
  EXPECT_EQ(pool.used_bytes(), 256);
  const BufferHandle b = pool.allocate(3840);
  EXPECT_EQ(pool.used_bytes(), 4096);
  pool.free(a);
  EXPECT_EQ(pool.used_bytes(), 3840);
  pool.free(b);
  EXPECT_EQ(pool.used_bytes(), 0);
}

TEST(DeviceMemoryPoolTest, AlignsReservationsTo256Bytes) {
  DeviceMemoryPool pool(1 << 20);
  (void)pool.allocate(1);
  EXPECT_EQ(pool.used_bytes(), 256);
  (void)pool.allocate(256);
  EXPECT_EQ(pool.used_bytes(), 512);
  (void)pool.allocate(257);
  EXPECT_EQ(pool.used_bytes(), 1024);
}

TEST(DeviceMemoryPoolTest, TracksPeakBytes) {
  DeviceMemoryPool pool(4096);
  const BufferHandle a = pool.allocate(256);
  const BufferHandle b = pool.allocate(512);
  EXPECT_EQ(pool.peak_bytes(), 768);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.used_bytes(), 0);
  EXPECT_EQ(pool.peak_bytes(), 768);  // high-water mark survives frees
  (void)pool.allocate(1024);
  EXPECT_EQ(pool.peak_bytes(), 1024);
}

TEST(DeviceMemoryPoolTest, OutOfMemoryThrows) {
  DeviceMemoryPool pool(512);
  (void)pool.allocate(256);
  EXPECT_THROW(pool.allocate(300), DeviceMemoryError);
  // Alignment padding counts against capacity: 260 reserves 512.
  EXPECT_THROW(pool.allocate(260), DeviceMemoryError);
  (void)pool.allocate(256);
}

TEST(DeviceMemoryPoolTest, DoubleFreeThrows) {
  DeviceMemoryPool pool(1024);
  const BufferHandle a = pool.allocate(10);
  pool.free(a);
  EXPECT_THROW(pool.free(a), DeviceMemoryError);
}

TEST(DeviceMemoryPoolTest, DoubleFreeMessageNamesTheRecycledHandle) {
  DeviceMemoryPool pool(1024);
  const BufferHandle a = pool.allocate(10);
  pool.free(a);
  try {
    pool.free(a);
    FAIL() << "double free did not throw";
  } catch (const DeviceMemoryError& e) {
    EXPECT_NE(std::string(e.what()).find("double free"), std::string::npos) << e.what();
  }
  // A handle that was never allocated gets the distinct message.
  try {
    pool.free(BufferHandle{999, 10});
    FAIL() << "foreign free did not throw";
  } catch (const DeviceMemoryError& e) {
    EXPECT_NE(std::string(e.what()).find("never allocated"), std::string::npos) << e.what();
  }
}

TEST(DeviceMemoryPoolTest, StaleHandleAccessThrows) {
  DeviceMemoryPool pool(1024);
  const BufferHandle a = pool.allocate(10);
  pool.free(a);
  EXPECT_THROW(pool.bytes(a), DeviceMemoryError);
}

TEST(DeviceMemoryPoolTest, TypedViewChecksElementSize) {
  DeviceMemoryPool pool(1024);
  const BufferHandle a = pool.allocate(10);  // not a multiple of 8
  EXPECT_THROW(pool.view<std::int64_t>(a), DeviceMemoryError);
  const BufferHandle b = pool.allocate(16);
  auto v = pool.view<std::int64_t>(b);
  EXPECT_EQ(v.size(), 2u);
}

TEST(DeviceMemoryPoolTest, BuffersAreZeroInitialised) {
  DeviceMemoryPool pool(1024);
  auto v = pool.view<std::int64_t>(pool.allocate(64));
  for (std::int64_t x : v) EXPECT_EQ(x, 0);
}

TEST(DeviceBufferTest, RaiiFreesOnDestruction) {
  DeviceMemoryPool pool(1024);
  {
    DeviceBuffer buf(pool, 40);
    EXPECT_EQ(pool.used_bytes(), 256);
  }
  EXPECT_EQ(pool.used_bytes(), 0);
  EXPECT_EQ(pool.live_allocations(), 0u);
}

TEST(DeviceBufferTest, MoveTransfersOwnership) {
  DeviceMemoryPool pool(1024);
  DeviceBuffer a(pool, 40);
  DeviceBuffer b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(pool.used_bytes(), 256);
  DeviceBuffer c(pool, 20);
  c = std::move(b);
  EXPECT_EQ(pool.used_bytes(), 256);  // the 20-byte buffer was released
}

}  // namespace
}  // namespace saclo::gpu
