#include "gpu/sim_gpu.hpp"

#include <gtest/gtest.h>

#include "gpu/runtime_cuda.hpp"
#include "gpu/runtime_opencl.hpp"

namespace saclo::gpu {
namespace {

TEST(VirtualGpuTest, CopiesMoveDataAndAccrueTime) {
  VirtualGpu gpu(gtx480(), 1);
  const std::vector<std::int64_t> host{1, 2, 3, 4};
  const BufferHandle buf = gpu.alloc(32);
  gpu.copy_h2d(buf, std::as_bytes(std::span(host)), "memcpyHtoDasync", true);
  auto dev = gpu.memory().view<std::int64_t>(buf);
  EXPECT_EQ(dev[3], 4);
  std::vector<std::int64_t> back(4);
  gpu.copy_d2h(std::as_writable_bytes(std::span(back)), buf, "memcpyDtoHasync", true);
  EXPECT_EQ(back, host);
  EXPECT_GT(gpu.clock_us(), 0.0);
  EXPECT_EQ(gpu.profiler().rows().size(), 2u);
}

TEST(VirtualGpuTest, NonExecutingCopyAccruesTimeOnly) {
  VirtualGpu gpu(gtx480(), 1);
  const std::vector<std::int64_t> host{7, 7};
  const BufferHandle buf = gpu.alloc(16);
  gpu.copy_h2d(buf, std::as_bytes(std::span(host)), "memcpyHtoDasync", false);
  auto dev = gpu.memory().view<std::int64_t>(buf);
  EXPECT_EQ(dev[0], 0);  // data untouched
  EXPECT_GT(gpu.clock_us(), 0.0);
}

TEST(VirtualGpuTest, KernelExecutesFunctionally) {
  VirtualGpu gpu(gtx480(), 2);
  const BufferHandle buf = gpu.alloc(1000 * 8);
  auto out = gpu.memory().view<std::int64_t>(buf);
  KernelLaunch k;
  k.name = "square";
  k.threads = 1000;
  k.cost.flops_per_thread = 1;
  k.cost.global_stores_per_thread = 1;
  k.body = [out](std::int64_t tid) { out[static_cast<std::size_t>(tid)] = tid * tid; };
  const double us = gpu.launch(k, true);
  EXPECT_GT(us, 0.0);
  EXPECT_EQ(out[31], 31 * 31);
  EXPECT_EQ(out[999], 999 * 999);
}

TEST(VirtualGpuTest, AccountLaunchMatchesExecutedLaunchTime) {
  VirtualGpu gpu(gtx480(), 1);
  KernelLaunch k;
  k.name = "noop";
  k.threads = 50'000;
  k.cost.flops_per_thread = 10;
  k.cost.global_loads_per_thread = 2;
  k.body = [](std::int64_t) {};
  const double executed = gpu.launch(k, true);
  const double accounted = gpu.account_launch(k);
  EXPECT_DOUBLE_EQ(executed, accounted);
  EXPECT_EQ(gpu.profiler().rows()[0].calls, 2);
}

TEST(VirtualGpuTest, CopyOverflowThrows) {
  VirtualGpu gpu(gtx480(), 1);
  const std::vector<std::int64_t> host{1, 2, 3, 4};
  const BufferHandle buf = gpu.alloc(16);
  EXPECT_THROW(gpu.copy_h2d(buf, std::as_bytes(std::span(host)), "x", true), DeviceMemoryError);
}

TEST(CudaRuntimeTest, RoundTripsArrays) {
  VirtualGpu gpu(gtx480(), 1);
  cuda::Runtime rt(gpu);
  const IntArray host = IntArray::generate(Shape{4, 4}, [](const Index& i) { return i[0] - i[1]; });
  auto dev = rt.device_alloc<std::int64_t>(host.shape());
  rt.host2device(dev, host);
  const IntArray back = rt.device2host(dev);
  EXPECT_EQ(back, host);
  EXPECT_GT(gpu.profiler().us_for(cuda::Runtime::kHtoDOp), 0.0);
  EXPECT_GT(gpu.profiler().us_for(cuda::Runtime::kDtoHOp), 0.0);
}

TEST(OpenClRuntimeTest, EnqueuesBuffersAndKernels) {
  VirtualGpu gpu(gtx480(), 1);
  opencl::CommandQueue q(gpu);
  const IntArray host = IntArray::generate(Shape{8}, [](const Index& i) { return 2 * i[0]; });
  opencl::Buffer in = q.create_buffer_for<std::int64_t>(host.shape());
  opencl::Buffer out = q.create_buffer_for<std::int64_t>(host.shape());
  q.enqueue_write_buffer(in, host);
  auto in_v = in.view<std::int64_t>();
  auto out_v = out.view<std::int64_t>();
  KernelLaunch k;
  k.name = "copy_scale";
  k.threads = 8;
  k.body = [in_v, out_v](std::int64_t tid) {
    out_v[static_cast<std::size_t>(tid)] = 3 * in_v[static_cast<std::size_t>(tid)];
  };
  q.enqueue_ndrange(k);
  IntArray back(host.shape());
  q.enqueue_read_buffer(back, out);
  for (std::int64_t i = 0; i < 8; ++i) EXPECT_EQ(back[i], 6 * i);
}

TEST(VirtualGpuTest, DeviceMemoryCapacityEnforced) {
  DeviceSpec small = gtx480();
  small.global_mem_bytes = 1024;
  VirtualGpu gpu(small, 1);
  (void)gpu.alloc(768);
  EXPECT_THROW(gpu.alloc(300), DeviceMemoryError);
}

}  // namespace
}  // namespace saclo::gpu
