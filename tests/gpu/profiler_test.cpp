#include "gpu/profiler.hpp"

#include <gtest/gtest.h>

namespace saclo::gpu {
namespace {

TEST(ProfilerTest, AccumulatesCallsAndTime) {
  Profiler p;
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 1, 938.0);
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 1, 938.0);
  p.record("memcpyHtoDasync", OpKind::MemcpyHtoD, 1, 1546.0);
  const auto rows = p.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "H. Filter (3 kernels)");
  EXPECT_EQ(rows[0].calls, 2);
  EXPECT_DOUBLE_EQ(rows[0].total_us, 1876.0);
  EXPECT_DOUBLE_EQ(p.total_us(), 1876.0 + 1546.0);
}

TEST(ProfilerTest, TotalsByKind) {
  Profiler p;
  p.record("k", OpKind::Kernel, 1, 100.0);
  p.record("h2d", OpKind::MemcpyHtoD, 1, 50.0);
  p.record("d2h", OpKind::MemcpyDtoH, 1, 25.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::Kernel), 100.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::MemcpyHtoD), 50.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::MemcpyDtoH), 25.0);
}

TEST(ProfilerTest, RowsKeepFirstRecordedOrder) {
  Profiler p;
  p.record("b", OpKind::Kernel, 1, 1.0);
  p.record("a", OpKind::Kernel, 1, 1.0);
  p.record("b", OpKind::Kernel, 1, 1.0);
  const auto rows = p.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "b");
  EXPECT_EQ(rows[1].name, "a");
}

TEST(ProfilerTest, TableHasPaperLayout) {
  Profiler p;
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 300, 844185.0);
  p.record("memcpyHtoDasync", OpKind::MemcpyHtoD, 900, 1391670.0);
  const std::string table = p.table();
  EXPECT_NE(table.find("Operation"), std::string::npos);
  EXPECT_NE(table.find("#calls"), std::string::npos);
  EXPECT_NE(table.find("GPU time(usec)"), std::string::npos);
  EXPECT_NE(table.find("GPU time (%)"), std::string::npos);
  EXPECT_NE(table.find("844185"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
  // 2.24sec total
  EXPECT_NE(table.find("2.24sec"), std::string::npos);
}

TEST(ProfilerTest, UsForUnknownNameIsZero) {
  Profiler p;
  EXPECT_DOUBLE_EQ(p.us_for("nothing"), 0.0);
}

TEST(ProfilerTest, ClearResets) {
  Profiler p;
  p.record("k", OpKind::Kernel, 1, 10.0);
  p.clear();
  EXPECT_TRUE(p.rows().empty());
  EXPECT_DOUBLE_EQ(p.total_us(), 0.0);
}

}  // namespace
}  // namespace saclo::gpu
