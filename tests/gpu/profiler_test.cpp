#include "gpu/profiler.hpp"

#include <gtest/gtest.h>

namespace saclo::gpu {
namespace {

TEST(ProfilerTest, AccumulatesCallsAndTime) {
  Profiler p;
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 1, 938.0);
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 1, 938.0);
  p.record("memcpyHtoDasync", OpKind::MemcpyHtoD, 1, 1546.0);
  const auto rows = p.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "H. Filter (3 kernels)");
  EXPECT_EQ(rows[0].calls, 2);
  EXPECT_DOUBLE_EQ(rows[0].total_us, 1876.0);
  EXPECT_DOUBLE_EQ(p.total_us(), 1876.0 + 1546.0);
}

TEST(ProfilerTest, TotalsByKind) {
  Profiler p;
  p.record("k", OpKind::Kernel, 1, 100.0);
  p.record("h2d", OpKind::MemcpyHtoD, 1, 50.0);
  p.record("d2h", OpKind::MemcpyDtoH, 1, 25.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::Kernel), 100.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::MemcpyHtoD), 50.0);
  EXPECT_DOUBLE_EQ(p.total_us(OpKind::MemcpyDtoH), 25.0);
}

TEST(ProfilerTest, RowsKeepFirstRecordedOrder) {
  Profiler p;
  p.record("b", OpKind::Kernel, 1, 1.0);
  p.record("a", OpKind::Kernel, 1, 1.0);
  p.record("b", OpKind::Kernel, 1, 1.0);
  const auto rows = p.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "b");
  EXPECT_EQ(rows[1].name, "a");
}

TEST(ProfilerTest, TableHasPaperLayout) {
  Profiler p;
  p.record("H. Filter (3 kernels)", OpKind::Kernel, 300, 844185.0);
  p.record("memcpyHtoDasync", OpKind::MemcpyHtoD, 900, 1391670.0);
  const std::string table = p.table();
  EXPECT_NE(table.find("Operation"), std::string::npos);
  EXPECT_NE(table.find("#calls"), std::string::npos);
  EXPECT_NE(table.find("GPU time(usec)"), std::string::npos);
  EXPECT_NE(table.find("GPU time (%)"), std::string::npos);
  EXPECT_NE(table.find("844185"), std::string::npos);
  EXPECT_NE(table.find("Total"), std::string::npos);
  // 2.24sec total
  EXPECT_NE(table.find("2.24sec"), std::string::npos);
}

TEST(ProfilerTest, UsForUnknownNameIsZero) {
  Profiler p;
  EXPECT_DOUBLE_EQ(p.us_for("nothing"), 0.0);
}

TEST(ProfilerTest, ClearResets) {
  Profiler p;
  p.record("k", OpKind::Kernel, 1, 10.0);
  p.record_interval("k", OpKind::Kernel, kDefaultStream, 0.0, 10.0);
  p.clear();
  EXPECT_TRUE(p.rows().empty());
  EXPECT_TRUE(p.intervals().empty());
  EXPECT_DOUBLE_EQ(p.total_us(), 0.0);
}

TEST(ProfilerTest, IntervalsFeedAggregateRows) {
  Profiler p;
  p.record_interval("k", OpKind::Kernel, 1, 0.0, 10.0);
  p.record_interval("k", OpKind::Kernel, 1, 10.0, 30.0);
  const auto rows = p.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].calls, 2);
  EXPECT_DOUBLE_EQ(rows[0].total_us, 30.0);
  EXPECT_DOUBLE_EQ(p.makespan_us(), 30.0);
  EXPECT_DOUBLE_EQ(p.stream_busy_us(1), 30.0);
  EXPECT_DOUBLE_EQ(p.stream_busy_us(2), 0.0);
}

TEST(ProfilerTest, OverlapStatsCountHiddenTransfers) {
  Profiler p;
  // Kernel on stream 1 covers [0, 100); transfers on stream 2:
  // [0, 40) fully hidden, [90, 120) partially hidden (10 of 30).
  p.record_interval("k", OpKind::Kernel, 1, 0.0, 100.0);
  p.record_interval("up", OpKind::MemcpyHtoD, 2, 0.0, 40.0);
  p.record_interval("down", OpKind::MemcpyDtoH, 2, 90.0, 120.0);
  const auto stats = p.overlap_stats();
  EXPECT_DOUBLE_EQ(stats.serialized_us, 170.0);
  EXPECT_DOUBLE_EQ(stats.makespan_us, 120.0);
  EXPECT_DOUBLE_EQ(stats.saved_us(), 50.0);
  EXPECT_DOUBLE_EQ(stats.transfer_us, 70.0);
  EXPECT_DOUBLE_EQ(stats.hidden_transfer_us, 50.0);
  EXPECT_NEAR(stats.hidden_fraction(), 50.0 / 70.0, 1e-12);
}

TEST(ProfilerTest, TimelineReportListsStreams) {
  Profiler p;
  p.record_interval("k", OpKind::Kernel, 1, 0.0, 100.0);
  p.record_interval("up", OpKind::MemcpyHtoD, 2, 0.0, 40.0);
  const std::string report = p.timeline();
  EXPECT_NE(report.find("stream"), std::string::npos);
  EXPECT_NE(report.find("makespan"), std::string::npos);
  EXPECT_NE(report.find("hidden behind kernels"), std::string::npos);
}

TEST(ProfilerTest, ChromeTraceIsWellFormed) {
  Profiler p;
  p.record_interval("kern\"el", OpKind::Kernel, 1, 0.0, 10.0);
  p.record_interval("up", OpKind::MemcpyHtoD, 2, 0.0, 4.0);
  const std::string json = p.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("memcpy_h2d"), std::string::npos);
  // Quotes in op names are escaped.
  EXPECT_NE(json.find("kern\\\"el"), std::string::npos);
}

}  // namespace
}  // namespace saclo::gpu
