#include "gpu/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace saclo::gpu {
namespace {

TEST(ThreadPoolTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++count; });
  pool.parallel_for(-5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPoolTest, SingleWorkerIsSerial) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<std::int64_t> order;
  pool.parallel_for(10, [&](std::int64_t i) { order.push_back(i); });
  std::vector<std::int64_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ExceptionsPropagate) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must remain usable afterwards.
  std::atomic<int> done{0};
  pool.parallel_for(50, [&](std::int64_t) { done++; });
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, ReusableAcrossManyCalls) {
  ThreadPool pool(2);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    pool.parallel_for(100, [&](std::int64_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 20 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, FewerIterationsThanWorkers) {
  ThreadPool pool(8);
  for (std::int64_t n = 1; n < 8; ++n) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ExceptionDoesNotLoseOtherIterations) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  try {
    pool.parallel_for(256, [&](std::int64_t i) {
      ran++;
      if (i % 64 == 0) throw std::runtime_error("several bodies throw");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // Every iteration either ran or was abandoned after the throw; the
  // pool itself stays consistent and reusable.
  EXPECT_GE(ran.load(), 1);
  std::atomic<int> done{0};
  pool.parallel_for(64, [&](std::int64_t) { done++; });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ConcurrentStress) {
  ThreadPool pool(4);
  constexpr std::int64_t kIterations = 200'000;
  std::atomic<std::int64_t> sum{0};
  std::vector<std::atomic<std::uint8_t>> hits(kIterations);
  pool.parallel_for(kIterations, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kIterations * (kIterations - 1) / 2);
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace saclo::gpu
