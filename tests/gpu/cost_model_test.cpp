#include "gpu/cost_model.hpp"

#include <gtest/gtest.h>

namespace saclo::gpu {
namespace {

KernelCost gaspard_hfilter_cost() {
  // One GASPARD2 horizontal-filter kernel (per colour channel): each
  // work item gathers 11 pixels, computes 3 outputs, with a
  // column-major global-id mapping (stride = one full row).
  KernelCost c;
  c.flops_per_thread = 40;
  c.global_loads_per_thread = 11;
  c.global_stores_per_thread = 3;
  c.warp_access_stride = 1920;
  return c;
}

TEST(CostModelTest, LaunchOverheadIsFloor) {
  const DeviceSpec dev = gtx480();
  KernelCost c;
  EXPECT_GE(kernel_time_us(dev, 0, c), dev.kernel_launch_overhead_us);
  EXPECT_GE(kernel_time_us(dev, 1, c), dev.kernel_launch_overhead_us);
}

TEST(CostModelTest, TimeGrowsWithThreads) {
  const DeviceSpec dev = gtx480();
  const KernelCost c = gaspard_hfilter_cost();
  const double t1 = kernel_time_us(dev, 100'000, c);
  const double t2 = kernel_time_us(dev, 200'000, c);
  EXPECT_GT(t2, t1);
  // Large launches scale roughly linearly.
  EXPECT_NEAR(t2 - dev.kernel_launch_overhead_us, 2.0 * (t1 - dev.kernel_launch_overhead_us),
              0.05 * t2);
}

TEST(CostModelTest, StridePenaltySaturates) {
  const DeviceSpec dev = gtx480();
  KernelCost c = gaspard_hfilter_cost();
  c.warp_access_stride = 1;
  const double coalesced = kernel_time_us(dev, 259'200, c);
  c.warp_access_stride = 8;
  const double stride8 = kernel_time_us(dev, 259'200, c);
  c.warp_access_stride = 1920;
  const double stride1920 = kernel_time_us(dev, 259'200, c);
  c.warp_access_stride = 100'000;
  const double huge = kernel_time_us(dev, 259'200, c);
  EXPECT_LT(coalesced, stride8);
  EXPECT_LT(stride8, stride1920);
  EXPECT_DOUBLE_EQ(stride1920, huge);  // clamped at max_stride_penalty
}

TEST(CostModelTest, CalibratedGaspardHFilterKernelNearPaper) {
  // Paper Table I: 844185 us over 900 launches => ~938 us per launch.
  const DeviceSpec dev = gtx480();
  const double us = kernel_time_us(dev, 1080 * 240, gaspard_hfilter_cost());
  EXPECT_GT(us, 938.0 * 0.7);
  EXPECT_LT(us, 938.0 * 1.3);
}

TEST(CostModelTest, TransferTimesMatchPaperRates) {
  const DeviceSpec dev = gtx480();
  // Paper Table I: 900 HtoD copies of a 1080x1920 int frame take
  // 1391670 us => ~1546 us each.
  const double h2d = transfer_time_us(dev, 1080 * 1920 * 4, Dir::HostToDevice);
  EXPECT_NEAR(h2d, 1546.0, 160.0);
  // 900 DtoH copies of a 480x720 int frame take 197057 us => ~219 us.
  const double d2h = transfer_time_us(dev, 480 * 720 * 4, Dir::DeviceToHost);
  EXPECT_NEAR(d2h, 219.0, 40.0);
}

TEST(CostModelTest, ComputeBoundKernelUsesFlopTime) {
  const DeviceSpec dev = gtx480();
  KernelCost c;
  c.flops_per_thread = 100'000;  // heavy arithmetic, no memory
  c.global_loads_per_thread = 0;
  c.global_stores_per_thread = 0;
  const double us = kernel_time_us(dev, 1'000'000, c);
  const double expected = 1e6 * 1e5 / (dev.peak_gflops() * 1e3) + dev.kernel_launch_overhead_us;
  EXPECT_NEAR(us, expected, expected * 0.01);
}

TEST(CostModelTest, HostModelScalesWithOps) {
  const HostSpec host = i7_930();
  EXPECT_NEAR(host.time_us(2.8e6), 1e3 * host.cycles_per_op, 1.0);
  EXPECT_GT(host.time_us(2e6), host.time_us(1e6));
}

TEST(DeviceSpecTest, Gtx480MatchesPaperTestbed) {
  const DeviceSpec dev = gtx480();
  EXPECT_EQ(dev.sm_count, 15);
  EXPECT_EQ(dev.cores_per_sm, 32);
  EXPECT_DOUBLE_EQ(dev.clock_ghz, 1.4);
  EXPECT_DOUBLE_EQ(dev.global_mem_bytes, 1.5e9);
}

}  // namespace
}  // namespace saclo::gpu
