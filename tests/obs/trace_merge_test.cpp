#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/mini_json.hpp"

namespace saclo::obs {
namespace {

using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

gpu::Profiler::Interval interval(const std::string& name, gpu::OpKind kind, int stream,
                                 double start, double end, std::uint64_t job = 0,
                                 std::uint32_t attempt = 0) {
  gpu::Profiler::Interval iv;
  iv.name = name;
  iv.kind = kind;
  iv.stream = stream;
  iv.start_us = start;
  iv.end_us = end;
  iv.trace_id = job;
  iv.attempt = attempt;
  return iv;
}

Event runtime_event(EventType type, std::uint64_t job, int device, int attempt,
                    std::int64_t arg, double t_sim) {
  Event e;
  e.type = type;
  e.job = job;
  e.device = device;
  e.attempt = attempt;
  e.arg = arg;
  e.t_sim_us = t_sim;
  return e;
}

/// The staged failover: job 9 ran on device 0 (attempt 0), died, and
/// completed on device 1 (attempt 1). An untraced warmup interval sits
/// on device 0 to prove untraced spans carry no job args.
std::vector<DeviceTrace> staged_fleet() {
  DeviceTrace dev0;
  dev0.device = 0;
  dev0.intervals.push_back(interval("warmup", gpu::OpKind::Kernel, 0, 0.0, 5.0));
  dev0.intervals.push_back(
      interval("memcpyHtoDasync", gpu::OpKind::MemcpyHtoD, 1, 10.0, 20.0, 9, 0));
  dev0.intervals.push_back(interval("hfilter", gpu::OpKind::Kernel, 2, 20.0, 80.0, 9, 0));
  DeviceTrace dev1;
  dev1.device = 1;
  dev1.intervals.push_back(
      interval("memcpyHtoDasync", gpu::OpKind::MemcpyHtoD, 1, 300.0, 310.0, 9, 1));
  dev1.intervals.push_back(interval("hfilter", gpu::OpKind::Kernel, 2, 310.0, 400.0, 9, 1));
  return {dev0, dev1};
}

std::vector<Event> staged_events() {
  return {
      runtime_event(EventType::DeviceFault, 9, 0, 0, /*arg=*/2, /*t_sim=*/80.0),
      runtime_event(EventType::Failover, 9, 0, 1, /*arg(to)=*/1, /*t_sim=*/80.0),
  };
}

const Json& find_event(const Json& events, const std::string& ph, const std::string& name) {
  for (const Json& e : events.array) {
    if (e.at("ph").string == ph && e.at("name").string == name) return e;
  }
  throw std::runtime_error("no event with ph=" + ph + " name=" + name);
}

TEST(MergedTraceTest, ProducesValidJsonWithDeviceAndStreamTopology) {
  const Json root = parse_json(merged_chrome_trace(staged_fleet(), staged_events()));
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("displayTimeUnit").string, "ms");
  const Json& events = root.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  // Both devices announce themselves as processes...
  std::vector<std::string> process_names;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "M" && e.at("name").string == "process_name") {
      process_names.push_back(e.at("args").at("name").string);
    }
  }
  EXPECT_EQ(process_names, (std::vector<std::string>{"gpu0", "gpu1"}));

  // ...and every interval became a complete event on pid=device,
  // tid=stream.
  int complete = 0;
  for (const Json& e : events.array) {
    if (e.at("ph").string != "X") continue;
    ++complete;
    EXPECT_TRUE(e.at("pid").number == 0.0 || e.at("pid").number == 1.0);
  }
  EXPECT_EQ(complete, 5);
}

TEST(MergedTraceTest, TracedSpansCarryJobArgsAndUntracedDoNot) {
  const Json root = parse_json(merged_chrome_trace(staged_fleet(), staged_events()));
  const Json& events = root.at("traceEvents");
  const Json& warmup = find_event(events, "X", "warmup");
  EXPECT_FALSE(warmup.has("args"));
  for (const Json& e : events.array) {
    if (e.at("ph").string != "X" || e.at("name").string == "warmup") continue;
    ASSERT_TRUE(e.has("args")) << e.at("name").string;
    EXPECT_DOUBLE_EQ(e.at("args").at("job").number, 9.0);
  }
}

TEST(MergedTraceTest, FlowPairLinksFailoverHopAcrossDevices) {
  const Json root = parse_json(merged_chrome_trace(staged_fleet(), staged_events()));
  const Json& events = root.at("traceEvents");

  const Json& start = find_event(events, "s", "failover");
  const Json& finish = find_event(events, "f", "failover");
  // Same flow id on both halves: job * 256 + attempt.
  EXPECT_DOUBLE_EQ(start.at("id").number, 9.0 * 256 + 1);
  EXPECT_DOUBLE_EQ(finish.at("id").number, 9.0 * 256 + 1);
  // The arrow leaves the last attempt-0 span on device 0 and lands on
  // the first attempt-1 span on device 1.
  EXPECT_DOUBLE_EQ(start.at("pid").number, 0.0);
  EXPECT_DOUBLE_EQ(start.at("ts").number, 80.0);
  EXPECT_DOUBLE_EQ(finish.at("pid").number, 1.0);
  EXPECT_DOUBLE_EQ(finish.at("ts").number, 300.0);
}

TEST(MergedTraceTest, RuntimeInstantEventsLandOnTheRuntimeTrack) {
  const Json root = parse_json(merged_chrome_trace(staged_fleet(), staged_events()));
  const Json& events = root.at("traceEvents");

  const Json& fault = find_event(events, "i", "device_fault");
  EXPECT_DOUBLE_EQ(fault.at("pid").number, 0.0);
  EXPECT_DOUBLE_EQ(fault.at("tid").number, kRuntimeEventsTid);
  EXPECT_DOUBLE_EQ(fault.at("ts").number, 80.0);
  EXPECT_DOUBLE_EQ(fault.at("args").at("job").number, 9.0);

  // The runtime track is named, but only on devices that host instants.
  bool named_runtime_tid = false;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "M" && e.at("name").string == "thread_name" &&
        e.at("tid").number == kRuntimeEventsTid) {
      EXPECT_EQ(e.at("args").at("name").string, "runtime");
      EXPECT_DOUBLE_EQ(e.at("pid").number, 0.0);  // only device 0 has instants
      named_runtime_tid = true;
    }
  }
  EXPECT_TRUE(named_runtime_tid);
}

TEST(MergedTraceTest, BackendTagAnnotatesProcessNamesAndTracedSpans) {
  // A fleet that reports its execution backend gets it into the merged
  // trace twice: the process name reads "gpuN (backend)" and every
  // traced span's args carry it. Untagged traces (the goldens above)
  // keep the bare "gpuN" form.
  std::vector<DeviceTrace> fleet = staged_fleet();
  for (DeviceTrace& dev : fleet) dev.backend = "host";
  const Json root = parse_json(merged_chrome_trace(fleet, staged_events()));
  const Json& events = root.at("traceEvents");

  std::vector<std::string> process_names;
  for (const Json& e : events.array) {
    if (e.at("ph").string == "M" && e.at("name").string == "process_name") {
      process_names.push_back(e.at("args").at("name").string);
    }
  }
  EXPECT_EQ(process_names, (std::vector<std::string>{"gpu0 (host)", "gpu1 (host)"}));

  for (const Json& e : events.array) {
    if (e.at("ph").string != "X" || e.at("name").string == "warmup") continue;
    ASSERT_TRUE(e.has("args")) << e.at("name").string;
    EXPECT_EQ(e.at("args").at("backend").string, "host") << e.at("name").string;
  }
}

TEST(MergedTraceTest, EmptyFleetStillRendersValidJson) {
  const Json root = parse_json(merged_chrome_trace({}, {}));
  ASSERT_TRUE(root.is_object());
  EXPECT_TRUE(root.at("traceEvents").is_array());
  EXPECT_TRUE(root.at("traceEvents").array.empty());
}

}  // namespace
}  // namespace saclo::obs
