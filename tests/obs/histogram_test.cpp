#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace saclo::obs {
namespace {

// Exact interpolated percentile of a sample — the reference the
// histogram's approximation is held against (same fractional-rank
// convention as serve::percentile).
double exact_percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (values[hi] - values[lo]) * (pos - static_cast<double>(lo));
}

double bucket_width_at(double value) {
  const std::size_t b = LogHistogram::bucket_index(value);
  return LogHistogram::upper_bound(b) - LogHistogram::lower_bound(b);
}

TEST(LogHistogramTest, BucketBoundsPartitionTheAxis) {
  // Bucket upper bounds are strictly increasing and every value maps to
  // the bucket whose (lower, upper] range contains it.
  for (std::size_t b = 1; b + 1 < LogHistogram::kBuckets; ++b) {
    EXPECT_GT(LogHistogram::upper_bound(b), LogHistogram::lower_bound(b));
    EXPECT_DOUBLE_EQ(LogHistogram::lower_bound(b + 1), LogHistogram::upper_bound(b));
  }
  for (double v : {0.0, 0.5, 1.0, 1.5, 7.0, 100.0, 12345.6, 1e9}) {
    const std::size_t b = LogHistogram::bucket_index(v);
    EXPECT_LE(v, LogHistogram::upper_bound(b)) << "value " << v;
    if (b > 0) EXPECT_GT(v, LogHistogram::lower_bound(b)) << "value " << v;
  }
  // An upper bound lands in its own bucket; just past it, in the next.
  const double ub = LogHistogram::upper_bound(17);
  EXPECT_EQ(LogHistogram::bucket_index(ub), 17u);
  EXPECT_EQ(LogHistogram::bucket_index(ub * 1.0001), 18u);
}

TEST(LogHistogramTest, TracksExactScalarStats) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  for (double v : {300.0, 100.0, 200.0}) h.record(v);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 600.0);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
  EXPECT_DOUBLE_EQ(h.min(), 100.0);
  EXPECT_DOUBLE_EQ(h.max(), 300.0);
}

TEST(LogHistogramTest, SingleSampleClampsPercentilesExactly) {
  LogHistogram h;
  h.record(470.0);
  for (double q : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(q), 470.0) << "q=" << q;
  }
}

TEST(LogHistogramTest, PercentilesStayWithinOneBucketWidthOfExact) {
  // The bound the metrics registry relies on: across seeded heavy-tailed
  // samples, every reported percentile sits within one bucket width of
  // the exact sample percentile.
  std::mt19937_64 rng(19937);
  std::lognormal_distribution<double> dist(/*m=*/8.0, /*s=*/1.2);  // ~3ms median
  LogHistogram h;
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double v = dist(rng);
    samples.push_back(v);
    h.record(v);
  }
  for (double q : {0.50, 0.95, 0.99}) {
    const double exact = exact_percentile(samples, q);
    EXPECT_NEAR(h.percentile(q), exact, bucket_width_at(exact)) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.min(), *std::min_element(samples.begin(), samples.end()));
  EXPECT_DOUBLE_EQ(h.max(), *std::max_element(samples.begin(), samples.end()));
}

TEST(LogHistogramTest, PercentileIsClampedToObservedRange) {
  LogHistogram h;
  h.record(1000.0);
  h.record(1001.0);
  EXPECT_GE(h.percentile(0.0), 1000.0);
  EXPECT_LE(h.percentile(1.0), 1001.0);
}

TEST(LogHistogramTest, MergeFoldsCountsAndExtrema) {
  LogHistogram a;
  LogHistogram b;
  a.record(10.0);
  a.record(20.0);
  b.record(5.0);
  b.record(40.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.sum(), 75.0);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 40.0);
}

TEST(LogHistogramTest, PrometheusExpositionIsCumulativeAndComplete) {
  LogHistogram h;
  for (double v : {3.0, 50.0, 50.0, 7000.0}) h.record(v);
  std::string out;
  append_prometheus_histogram(out, "test_us", "A test histogram.", h);

  EXPECT_NE(out.find("# HELP test_us A test histogram.\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE test_us histogram\n"), std::string::npos);
  EXPECT_NE(out.find("test_us_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("test_us_sum 7103"), std::string::npos);
  EXPECT_NE(out.find("test_us_count 4\n"), std::string::npos);

  // Cumulative counts never decrease down the bucket lines.
  std::int64_t prev = 0;
  std::size_t pos = 0;
  int bucket_lines = 0;
  while ((pos = out.find("test_us_bucket{", pos)) != std::string::npos) {
    const std::size_t count_at = out.find("} ", pos) + 2;
    const std::int64_t cum = std::stoll(out.substr(count_at));
    EXPECT_GE(cum, prev);
    prev = cum;
    ++bucket_lines;
    ++pos;
  }
  EXPECT_GE(bucket_lines, 2);
  EXPECT_EQ(prev, 4);  // the +Inf line covers every observation
}

TEST(LogHistogramTest, PrometheusExpositionCarriesExtraLabels) {
  // The per-class latency series rides on this: caller-provided labels
  // join the le label on every bucket line and stand alone on sum and
  // count — and an empty label string stays byte-identical to the
  // unlabeled form (no stray commas or empty braces).
  LogHistogram h;
  h.record(10.0);
  std::string labeled;
  append_prometheus_histogram(labeled, "test_us", "A test histogram.", h, "class=\"high\"");
  EXPECT_NE(labeled.find("test_us_bucket{class=\"high\",le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(labeled.find("test_us_sum{class=\"high\"} 10"), std::string::npos);
  EXPECT_NE(labeled.find("test_us_count{class=\"high\"} 1\n"), std::string::npos);

  std::string plain;
  append_prometheus_histogram(plain, "test_us", "A test histogram.", h, "");
  EXPECT_NE(plain.find("test_us_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(plain.find("test_us_count 1\n"), std::string::npos);
  EXPECT_EQ(plain.find("{}"), std::string::npos);
}

}  // namespace
}  // namespace saclo::obs
