// The embedded telemetry endpoint: request parsing, routing, and the
// full socket lifecycle against a live server on an ephemeral port —
// including the paths a scraper will actually exercise (unknown
// routes, non-GET methods, HEAD, handlers mounted after start()).

#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>

namespace saclo::obs {
namespace {

/// A blunt test-only HTTP client: one request, reads to EOF (the
/// server closes per request), returns the raw response text.
std::string http_request(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port << " failed: " << std::strerror(errno);
  std::size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(int port, const std::string& path) {
  return http_request(port, "GET " + path + " HTTP/1.1\r\nHost: test\r\n\r\n");
}

TEST(HttpParseTest, RequestLineAndQuery) {
  HttpRequest req;
  ASSERT_TRUE(parse_http_request("GET /debug/events?n=32&full=1 HTTP/1.1\r\n\r\n", req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/debug/events");
  EXPECT_EQ(req.query.at("n"), "32");
  EXPECT_EQ(req.query.at("full"), "1");
}

TEST(HttpParseTest, PercentAndPlusDecoding) {
  HttpRequest req;
  ASSERT_TRUE(parse_http_request("GET /x?name=a%2Fb+c%20d HTTP/1.1\r\n\r\n", req));
  EXPECT_EQ(req.query.at("name"), "a/b c d");
}

TEST(HttpParseTest, MalformedRequestLineRejected) {
  HttpRequest req;
  EXPECT_FALSE(parse_http_request("", req));
  EXPECT_FALSE(parse_http_request("GET\r\n\r\n", req));
  EXPECT_FALSE(parse_http_request("nonsense\r\n\r\n", req));
}

TEST(HttpParseTest, QueryLongBoundsAndFallback) {
  HttpRequest req;
  ASSERT_TRUE(parse_http_request("GET /e?n=42&bad=xyz HTTP/1.1\r\n\r\n", req));
  EXPECT_EQ(req.query_long("n", 7), 42);
  EXPECT_EQ(req.query_long("bad", 7), 7);
  EXPECT_EQ(req.query_long("absent", 7), 7);
}

TEST(TelemetryServerTest, ServesRegisteredHandlerOnEphemeralPort) {
  TelemetryServer server(0);
  server.handle("/ping", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "pong\n"};
  });
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0) << "ephemeral port must resolve after start()";
  const std::string response = http_get(server.port(), "/ping");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("pong"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_GE(server.requests_served(), 1u);
}

TEST(TelemetryServerTest, HandlerSeesQueryParameters) {
  TelemetryServer server(0);
  server.handle("/echo", [](const HttpRequest& req) {
    return HttpResponse{200, "text/plain; charset=utf-8",
                        std::to_string(req.query_long("n", -1))};
  });
  server.start();
  EXPECT_NE(http_get(server.port(), "/echo?n=99").find("99"), std::string::npos);
}

TEST(TelemetryServerTest, UnknownPathIs404ListingEndpoints) {
  TelemetryServer server(0);
  server.handle("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  server.start();
  const std::string response = http_get(server.port(), "/nope");
  EXPECT_NE(response.find("HTTP/1.1 404"), std::string::npos);
  EXPECT_NE(response.find("/metrics"), std::string::npos)
      << "404 body should list what IS mounted: " << response;
}

TEST(TelemetryServerTest, NonGetMethodIs405) {
  TelemetryServer server(0);
  server.handle("/metrics", [](const HttpRequest&) { return HttpResponse{}; });
  server.start();
  const std::string response =
      http_request(server.port(), "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
}

TEST(TelemetryServerTest, HeadOmitsTheBody) {
  TelemetryServer server(0);
  server.handle("/metrics", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "SECRET_BODY"};
  });
  server.start();
  const std::string response =
      http_request(server.port(), "HEAD /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 11"), std::string::npos) << response;
  EXPECT_EQ(response.find("SECRET_BODY"), std::string::npos);
}

TEST(TelemetryServerTest, MalformedRequestIs400) {
  TelemetryServer server(0);
  server.start();
  const std::string response = http_request(server.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
}

TEST(TelemetryServerTest, ThrowingHandlerIs503NotACrash) {
  TelemetryServer server(0);
  server.handle("/boom", [](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("handler exploded");
  });
  server.start();
  const std::string response = http_get(server.port(), "/boom");
  EXPECT_NE(response.find("HTTP/1.1 503"), std::string::npos) << response;
  // The server survives; the next request still answers.
  EXPECT_NE(http_get(server.port(), "/boom").find("503"), std::string::npos);
}

TEST(TelemetryServerTest, HandlersMountAndReplaceWhileRunning) {
  TelemetryServer server(0);
  server.start();
  EXPECT_NE(http_get(server.port(), "/late").find("404"), std::string::npos);
  server.handle("/late", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "v1"};
  });
  EXPECT_NE(http_get(server.port(), "/late").find("v1"), std::string::npos);
  server.handle("/late", [](const HttpRequest&) {
    return HttpResponse{200, "text/plain; charset=utf-8", "v2"};
  });
  EXPECT_NE(http_get(server.port(), "/late").find("v2"), std::string::npos);
}

TEST(TelemetryServerTest, StopIsIdempotentAndJoinsCleanly) {
  TelemetryServer server(0);
  server.start();
  const int port = server.port();
  EXPECT_NE(http_get(port, "/x").find("404"), std::string::npos);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // second stop is a no-op
  // The port is released: a fresh server can bind it again right away
  // (SO_REUSEADDR also covers TIME_WAIT).
  TelemetryServer again(port);
  ASSERT_NO_THROW(again.start());
  EXPECT_EQ(again.port(), port);
}

TEST(TelemetryServerTest, PortInUseThrowsTelemetryError) {
  TelemetryServer first(0);
  first.start();
  TelemetryServer second(first.port());
  EXPECT_THROW(second.start(), TelemetryError);
}

}  // namespace
}  // namespace saclo::obs
