// Asserts the observability additions cost zero heap allocations on the
// dispatch hot path: recording a histogram sample, emitting a ring
// event, folding a completed job into the metrics registry, and the
// trace bracketing around a job are all allocation-free. This file
// replaces the global operator new with a counting wrapper, so it links
// into its own test binary (obs_alloc_tests) and nothing else.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <thread>

#include "gpu/profiler.hpp"
#include "obs/events.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "serve/metrics.hpp"

namespace {
thread_local std::uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace saclo {
namespace {

/// Allocations performed by `fn` on this thread.
template <typename Fn>
std::uint64_t allocations_of(Fn&& fn) {
  const std::uint64_t before = g_allocations;
  fn();
  return g_allocations - before;
}

TEST(ZeroAllocTest, HistogramRecordDoesNotAllocate) {
  obs::LogHistogram hist;
  hist.record(1.0);  // warm nothing — the histogram is a flat array
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 1000; ++i) hist.record(static_cast<double>(i) * 3.7);
            }),
            0u);
}

TEST(ZeroAllocTest, EventLogEmitDoesNotAllocate) {
  obs::EventLog log(1024);  // the ring preallocates here, before counting
  obs::Event e;
  e.type = obs::EventType::FrameDone;
  e.job = 1;
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 512; ++i) {
                e.arg = i;
                log.emit(e);
              }
            }),
            0u);
  // Overflow drops are free too — the whole point of the bounded ring.
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 1024; ++i) log.emit(e);
            }),
            0u);
}

TEST(ZeroAllocTest, MetricsRecordingDoesNotAllocate) {
  // The former per-job latency vectors re-allocated as they grew; the
  // histogram-backed registry must not allocate per completed job.
  serve::FleetMetrics metrics(2);
  serve::JobResult result;
  result.frames = 4;
  result.sim_wall_us = 1000.0;
  result.latency_us = 2000.0;
  metrics.on_submit(0);
  metrics.on_dispatch(0);
  metrics.on_complete(0, result, 1000.0);  // warm any lazy lock state
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 200; ++i) {
                metrics.on_submit(0);
                metrics.on_dispatch(0);
                metrics.on_complete(0, result, 1000.0 * i);
              }
            }),
            0u);
}

TEST(ZeroAllocTest, RecordingStaysFreeWhileTelemetryIsScraped) {
  // The tentpole guarantee of the live plane: a concurrent /metrics
  // scraper must not add a single allocation to the recording path.
  // The allocation counter is thread_local, so this measures exactly
  // the hot path's own cost — the accept thread renders snapshots on
  // its own dime.
  serve::FleetMetrics metrics(1);
  obs::EventLog log(1024);
  obs::TelemetryServer server(0);
  server.handle("/metrics", [&](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                             metrics.prometheus()};
  });
  server.start();

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) continue;
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(server.port()));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        const char req[] = "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n";
        (void)::send(fd, req, sizeof(req) - 1, 0);
        char buf[4096];
        while (::recv(fd, buf, sizeof(buf), 0) > 0) {
        }
      }
      ::close(fd);
    }
  });

  serve::JobResult result;
  result.frames = 4;
  result.sim_wall_us = 1000.0;
  result.latency_us = 2000.0;
  obs::Event e;
  e.type = obs::EventType::FrameDone;
  metrics.on_submit(0);
  metrics.on_dispatch(0);
  metrics.on_complete(0, result, 1000.0);  // warm lazy state before counting
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 500; ++i) {
                metrics.on_submit(0);
                metrics.on_dispatch(0);
                metrics.on_complete(0, result, 1000.0 * i);
                log.emit(e);
              }
            }),
            0u);
  // Let at least one scrape land before shutting down, so the loop
  // above provably overlapped a live scraper.
  while (server.requests_served() == 0) std::this_thread::yield();

  done.store(true, std::memory_order_release);
  scraper.join();
  server.stop();
}

TEST(ZeroAllocTest, TraceBracketingDoesNotAllocate) {
  // What the dispatcher adds around every job when tracing is on — and
  // the entirety of the observability cost when the event log is off.
  gpu::Profiler profiler;
  EXPECT_EQ(allocations_of([&] {
              for (int i = 0; i < 1000; ++i) {
                profiler.set_trace(static_cast<std::uint64_t>(i + 1), 0);
                profiler.clear_trace();
              }
            }),
            0u);
}

}  // namespace
}  // namespace saclo
