#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpu/backend_kind.hpp"
#include "support/mini_json.hpp"

namespace saclo::obs {
namespace {

using saclo::testsupport::Json;
using saclo::testsupport::parse_json;

Event make_event(EventType type, std::uint64_t job, int device, int attempt,
                 std::int64_t arg) {
  Event e;
  e.type = type;
  e.job = job;
  e.device = device;
  e.attempt = attempt;
  e.arg = arg;
  e.t_real_us = 12.5;
  e.t_sim_us = 340.75;
  return e;
}

TEST(EventLogTest, WireNamesAreStable) {
  // The JSONL schema names tools grep for; renaming one is a breaking
  // change to every downstream consumer.
  EXPECT_STREQ(event_type_name(EventType::JobAdmitted), "job_admitted");
  EXPECT_STREQ(event_type_name(EventType::JobPlaced), "job_placed");
  EXPECT_STREQ(event_type_name(EventType::JobDispatched), "job_dispatched");
  EXPECT_STREQ(event_type_name(EventType::FrameDone), "frame_done");
  EXPECT_STREQ(event_type_name(EventType::JobCompleted), "job_completed");
  EXPECT_STREQ(event_type_name(EventType::DeviceFault), "device_fault");
  EXPECT_STREQ(event_type_name(EventType::Failover), "failover");
  EXPECT_STREQ(event_type_name(EventType::RetryExhausted), "retry_exhausted");
  EXPECT_STREQ(event_type_name(EventType::DeviceDegraded), "device_degraded");
  EXPECT_STREQ(event_type_name(EventType::DeviceHealed), "device_healed");
  EXPECT_STREQ(event_type_name(EventType::JobShed), "job_shed");
  EXPECT_STREQ(event_type_name(EventType::JobPreempted), "job_preempted");
  EXPECT_STREQ(event_type_name(EventType::JobStolen), "job_stolen");
  EXPECT_STREQ(event_type_name(EventType::DeadlineMiss), "deadline_miss");
  EXPECT_STREQ(event_type_name(EventType::ScaleUp), "scale_up");
  EXPECT_STREQ(event_type_name(EventType::ScaleDown), "scale_down");
  EXPECT_STREQ(event_type_name(EventType::DrainStarted), "drain_started");
  EXPECT_STREQ(event_type_name(EventType::DrainComplete), "drain_complete");
  EXPECT_STREQ(event_type_name(EventType::AlertRaised), "alert_raised");
  EXPECT_STREQ(event_type_name(EventType::AlertCleared), "alert_cleared");
}

TEST(EventLogTest, EventJsonRoundTripsEveryField) {
  const Event e = make_event(EventType::Failover, 7, 1, 2, 3);
  const Json root = parse_json(event_json(e));
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("event").string, "failover");
  EXPECT_EQ(root.at("backend").string, "sim") << "default backend tag";
  EXPECT_DOUBLE_EQ(root.at("job").number, 7.0);
  EXPECT_DOUBLE_EQ(root.at("device").number, 1.0);
  EXPECT_DOUBLE_EQ(root.at("attempt").number, 2.0);
  EXPECT_DOUBLE_EQ(root.at("arg").number, 3.0);
  EXPECT_NEAR(root.at("t_real_us").number, 12.5, 0.1);
  EXPECT_NEAR(root.at("t_sim_us").number, 340.75, 0.01);
}

TEST(EventLogTest, EventJsonCarriesTheFleetBackend) {
  // Events from a host-backed fleet say so: offline analysis of an
  // events JSONL must be able to tell which backend produced it.
  Event e = make_event(EventType::JobCompleted, 1, 0, 0, 2);
  e.backend = static_cast<std::uint8_t>(gpu::BackendKind::Host);
  const Json root = parse_json(event_json(e));
  EXPECT_EQ(root.at("backend").string, "host");
}

TEST(EventLogTest, RecordsInOrderUpToCapacity) {
  EventLog log(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(log.emit(make_event(EventType::FrameDone, 1, 0, 0, i)));
  }
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(events[static_cast<std::size_t>(i)].arg, i);
  EXPECT_EQ(log.recorded(), 4u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLogTest, KeepsEarliestEventsAndCountsDrops) {
  EventLog log(3);
  for (int i = 0; i < 10; ++i) {
    const bool accepted = log.emit(make_event(EventType::FrameDone, 1, 0, 0, i));
    EXPECT_EQ(accepted, i < 3);
  }
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.dropped(), 7u);
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].arg, 0);
  EXPECT_EQ(events[2].arg, 2);
}

TEST(EventLogTest, JsonlLinesParseAndEndWithAnHonestSummary) {
  EventLog log(2);
  log.emit(make_event(EventType::JobAdmitted, 1, -1, 0, 4));
  log.emit(make_event(EventType::JobCompleted, 1, 0, 0, 4));
  log.emit(make_event(EventType::FrameDone, 2, 0, 0, 0));  // dropped

  const std::string jsonl = log.jsonl();
  std::istringstream lines(jsonl);
  std::string line;
  std::vector<Json> parsed;
  while (std::getline(lines, line)) {
    if (!line.empty()) parsed.push_back(parse_json(line));
  }
  ASSERT_EQ(parsed.size(), 3u);  // 2 events + the log_summary trailer
  EXPECT_EQ(parsed[0].at("event").string, "job_admitted");
  EXPECT_EQ(parsed[1].at("event").string, "job_completed");
  const Json& summary = parsed[2];
  EXPECT_EQ(summary.at("event").string, "log_summary");
  EXPECT_DOUBLE_EQ(summary.at("recorded").number, 2.0);
  EXPECT_DOUBLE_EQ(summary.at("dropped").number, 1.0);
  EXPECT_DOUBLE_EQ(summary.at("capacity").number, 2.0);
}

TEST(EventLogTest, ConcurrentEmittersNeverLoseAccounting) {
  // Writers race for slots with one fetch_add each; whatever interleaving
  // the scheduler produces, recorded + dropped must equal the number of
  // emit() calls and every recorded slot must be a complete event (this
  // test also runs under ThreadSanitizer in CI).
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  EventLog log(256);
  std::atomic<int> accepted{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, &accepted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (log.emit(make_event(EventType::FrameDone, static_cast<std::uint64_t>(t + 1), t,
                                0, i))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : writers) w.join();

  EXPECT_EQ(log.recorded(), 256u);
  EXPECT_EQ(accepted.load(), 256);
  EXPECT_EQ(log.dropped(), static_cast<std::uint64_t>(kThreads * kPerThread - 256));
  const std::vector<Event> events = log.snapshot();
  ASSERT_EQ(events.size(), 256u);
  for (const Event& e : events) {
    EXPECT_GE(e.job, 1u);
    EXPECT_LE(e.job, static_cast<std::uint64_t>(kThreads));
  }
}

}  // namespace
}  // namespace saclo::obs
