// The SLO burn-rate alert engine, driven tick by tick with a fake
// clock: a fault storm must raise the alert deterministically, healing
// must clear it only after the hold, and the burn-rate arithmetic must
// match the SRE definition (windowed error rate / error budget).

#include "obs/alerts.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace saclo::obs {
namespace {

/// A sample carrying one tenant's cumulative SLO counters.
AlertSample tenant_sample(double now_ms, std::int64_t slo_jobs, std::int64_t slo_met) {
  AlertSample s;
  s.now_ms = now_ms;
  s.queue_capacity = 64;
  s.active_devices = 2;
  s.tenants.push_back(TenantCounters{"gold", slo_jobs, slo_met});
  return s;
}

TEST(AlertPolicyTest, ValidatesEveryField) {
  EXPECT_NO_THROW(AlertPolicy{}.validate());
  auto expect_invalid = [](auto mutate) {
    AlertPolicy p;
    mutate(p);
    EXPECT_THROW(p.validate(), AlertError);
  };
  expect_invalid([](AlertPolicy& p) { p.slo_objective = 0.0; });
  expect_invalid([](AlertPolicy& p) { p.slo_objective = 1.0; });
  expect_invalid([](AlertPolicy& p) { p.fast_window_ms = 0; });
  expect_invalid([](AlertPolicy& p) { p.slow_window_ms = p.fast_window_ms - 1; });
  expect_invalid([](AlertPolicy& p) { p.fast_burn = 0; });
  expect_invalid([](AlertPolicy& p) { p.slow_burn = -1; });
  expect_invalid([](AlertPolicy& p) { p.queue_saturation = 0.0; });
  expect_invalid([](AlertPolicy& p) { p.queue_saturation = 1.5; });
  expect_invalid([](AlertPolicy& p) { p.clear_hold_ms = -1; });
}

TEST(AlertPolicyTest, DefaultBurnThresholdsAreReachable) {
  // Burn rate is capped at 1 / (1 - objective) — every job missing.
  // A default threshold above that cap could never fire.
  const AlertPolicy p;
  const double max_burn = 1.0 / (1.0 - p.slo_objective);
  EXPECT_LT(p.fast_burn, max_burn);
  EXPECT_LT(p.slow_burn, max_burn);
}

TEST(AlertEngineTest, BurnRateMatchesTheSreDefinition) {
  AlertPolicy policy;
  policy.slo_objective = 0.9;  // error budget 0.1
  AlertEngine engine(policy);
  engine.step(tenant_sample(0, 0, 0));
  engine.step(tenant_sample(100, 10, 5));  // 50% errors in the window
  // burn = 0.5 / 0.1 = 5 over any window that reaches the baseline.
  EXPECT_DOUBLE_EQ(engine.burn_rate("gold", 200), 5.0);
  EXPECT_DOUBLE_EQ(engine.burn_rate("gold", 1000), 5.0);
  EXPECT_DOUBLE_EQ(engine.burn_rate("unknown-tenant", 200), 0.0);
}

TEST(AlertEngineTest, NoCompletionsInWindowBurnsNothing) {
  AlertEngine engine(AlertPolicy{});
  engine.step(tenant_sample(0, 10, 2));
  engine.step(tenant_sample(100, 10, 2));  // no new jobs
  // The deltas are zero: an idle tenant is not an erroring tenant.
  EXPECT_DOUBLE_EQ(engine.burn_rate("gold", 50), 0.0);
}

TEST(AlertEngineTest, FaultStormRaisesAndHealingClearsDeterministically) {
  AlertPolicy policy;  // 200/1000 ms windows, 6x/3x, clear hold 400 ms
  AlertEngine engine(policy);

  // Healthy warm-up: every SLO job meets its deadline.
  std::int64_t jobs = 0, met = 0;
  std::vector<AlertTransition> fired;
  for (double t = 0; t <= 500; t += 100) {
    jobs += 10;
    met += 10;
    fired = engine.step(tenant_sample(t, jobs, met));
    EXPECT_TRUE(fired.empty()) << "healthy traffic raised at t=" << t;
  }

  // Fault storm: every job misses. Error rate hits 1.0 in the fast
  // window (burn 10 >= 6); the slow window confirms once enough of its
  // span is storm (>= 30% errors -> burn >= 3).
  double raised_at = -1;
  for (double t = 600; t <= 1500; t += 100) {
    jobs += 10;  // all missed: met stays put
    fired = engine.step(tenant_sample(t, jobs, met));
    for (const AlertTransition& tr : fired) {
      if (tr.kind == AlertKind::SloBurnRate && tr.raised) raised_at = tr.at_ms;
    }
    if (raised_at >= 0) break;
  }
  ASSERT_GE(raised_at, 0) << "storm never raised the burn-rate alert";
  ASSERT_EQ(engine.active_count(), 1u);
  EXPECT_EQ(engine.active()[0].subject, "gold");

  // Healing: jobs meet their deadlines again. The alert must hold
  // through clear_hold_ms of health, then clear exactly once.
  double cleared_at = -1;
  double first_healthy = -1;
  for (double t = raised_at + 100; t <= raised_at + 3000; t += 100) {
    jobs += 10;
    met += 10;
    fired = engine.step(tenant_sample(t, jobs, met));
    const double fast = engine.burn_rate("gold", policy.fast_window_ms);
    const double slow = engine.burn_rate("gold", policy.slow_window_ms);
    const bool healthy = fast < policy.fast_burn || slow < policy.slow_burn;
    if (healthy && first_healthy < 0) first_healthy = t;
    for (const AlertTransition& tr : fired) {
      if (tr.kind == AlertKind::SloBurnRate && !tr.raised) cleared_at = tr.at_ms;
    }
    if (cleared_at >= 0) break;
  }
  ASSERT_GE(cleared_at, 0) << "healing never cleared the alert";
  EXPECT_GE(cleared_at - first_healthy, policy.clear_hold_ms)
      << "alert cleared before the hold elapsed";
  EXPECT_EQ(engine.active_count(), 0u);
}

TEST(AlertEngineTest, BriefBlipDoesNotClearEarly) {
  AlertPolicy policy;
  policy.clear_hold_ms = 400;
  AlertEngine engine(policy);
  AlertSample s;
  s.now_ms = 0;
  s.queue_capacity = 10;
  s.queued = 10;  // saturated
  ASSERT_EQ(engine.step(s).size(), 1u);
  // Healthy for 300 ms — inside the hold — then hot again.
  s.queued = 0;
  s.now_ms = 100;
  EXPECT_TRUE(engine.step(s).empty());
  s.now_ms = 300;
  EXPECT_TRUE(engine.step(s).empty());
  s.queued = 10;
  s.now_ms = 400;
  EXPECT_TRUE(engine.step(s).empty()) << "still firing: no re-raise transition";
  EXPECT_EQ(engine.active_count(), 1u);
}

TEST(AlertEngineTest, QueueSaturationRaisesAtThreshold) {
  AlertPolicy policy;
  policy.queue_saturation = 0.9;
  policy.clear_hold_ms = 0;  // clear on the first healthy sample
  AlertEngine engine(policy);
  AlertSample s;
  s.queue_capacity = 10;
  s.queued = 8;
  s.now_ms = 0;
  EXPECT_TRUE(engine.step(s).empty());
  s.queued = 9;  // exactly at threshold
  s.now_ms = 1;
  std::vector<AlertTransition> fired = engine.step(s);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::QueueSaturation);
  EXPECT_TRUE(fired[0].raised);
  EXPECT_DOUBLE_EQ(fired[0].value, 0.9);
  s.queued = 0;
  s.now_ms = 2;
  fired = engine.step(s);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(fired[0].raised);
}

TEST(AlertEngineTest, ZeroCapacityQueueNeverSaturates) {
  AlertEngine engine(AlertPolicy{});
  AlertSample s;
  s.queue_capacity = 0;  // unbounded queue
  s.queued = 1000;
  EXPECT_TRUE(engine.step(s).empty());
}

TEST(AlertEngineTest, DegradedDeviceRaisesAndHealingClears) {
  AlertPolicy policy;
  policy.clear_hold_ms = 200;
  AlertEngine engine(policy);
  AlertSample s;
  s.queue_capacity = 10;
  s.degraded_devices = 1;
  s.active_devices = 2;
  s.now_ms = 0;
  std::vector<AlertTransition> fired = engine.step(s);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].kind, AlertKind::DeviceDegraded);
  EXPECT_DOUBLE_EQ(fired[0].value, 1.0);
  s.degraded_devices = 0;
  s.now_ms = 100;
  EXPECT_TRUE(engine.step(s).empty());  // hold not elapsed
  s.now_ms = 300;
  fired = engine.step(s);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(fired[0].raised);
}

TEST(AlertEngineTest, OutOfOrderSampleThrows) {
  AlertEngine engine(AlertPolicy{});
  AlertSample s;
  s.now_ms = 100;
  engine.step(s);
  s.now_ms = 50;
  EXPECT_THROW(engine.step(s), AlertError);
}

TEST(AlertEngineTest, HistoryTrimKeepsOneBaselineBeyondSlowWindow) {
  // Long runs must not accumulate unbounded history, but the slow
  // window always needs a baseline at or before its start — burn rates
  // stay correct across the trim.
  AlertPolicy policy;
  AlertEngine engine(policy);
  std::int64_t jobs = 0;
  for (double t = 0; t <= 10000; t += 100) {
    jobs += 10;
    engine.step(tenant_sample(t, jobs, jobs / 2));  // steady 50% errors
  }
  EXPECT_DOUBLE_EQ(engine.burn_rate("gold", policy.slow_window_ms), 5.0);
}

TEST(AlertTransitionJsonTest, GoldenLineAndEscaping) {
  AlertTransition t{AlertKind::SloBurnRate, true, "gold", 1234.5, 7.5};
  EXPECT_EQ(alert_transition_json(t),
            "{\"type\":\"alert_raised\",\"kind\":\"slo_burn_rate\","
            "\"subject\":\"gold\",\"t_ms\":1234.500,\"value\":7.5000}");
  AlertTransition hostile{AlertKind::QueueSaturation, false, "a\"b\\c\nd", 1, 0.5};
  const std::string line = alert_transition_json(hostile);
  EXPECT_NE(line.find("a\\\"b\\\\c\\nd"), std::string::npos)
      << "tenant-controlled subject must be JSON-escaped: " << line;
}

TEST(AlertKindTest, WireNamesAreStable) {
  EXPECT_STREQ(alert_kind_name(AlertKind::SloBurnRate), "slo_burn_rate");
  EXPECT_STREQ(alert_kind_name(AlertKind::QueueSaturation), "queue_saturation");
  EXPECT_STREQ(alert_kind_name(AlertKind::DeviceDegraded), "device_degraded");
}

}  // namespace
}  // namespace saclo::obs
