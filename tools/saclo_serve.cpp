// saclo-serve — drive the multi-GPU serving runtime from the command
// line: submit a batch of downscale jobs to a simulated device fleet
// and print the fleet report (or its JSON / a device's Chrome trace).
//
// Usage:
//   saclo-serve [--devices N] [--jobs M] [--route sacng|sacg|gaspard|mixed]
//               [--backend sim|host|opencl|hc]
//               [--frames F] [--exec-frames E] [--height H] [--width W]
//               [--queue-capacity Q] [--no-cache] [--sync-streams]
//               [--opt-level L] [--batch-max N] [--batch-wait-ms T]
//               [--policy fifo|priority|edf] [--no-preemption]
//               [--work-stealing] [--shed-on-full]
//               [--tenant NAME]... [--priority high|normal|low]...
//               [--deadline-ms D]... [--rate-limit R] [--rate-burst B]
//               [--fault SPEC] [--max-retries R]
//               [--json] [--trace DEVICE] [--checksum]
//               [--trace-out FILE] [--events-out FILE] [--metrics-out FILE]
//               [--events-capacity N]
//
// --policy selects the queue-draining order of the dispatchers (fifo is
// the pre-SLO behavior); --tenant / --priority / --deadline-ms repeat
// and round-robin across the submitted jobs, so one invocation builds a
// multi-class mix:
//   saclo-serve --jobs 32 --policy edf \
//     --tenant gold --tenant free --priority high --priority low \
//     --deadline-ms 50 --deadline-ms 0
// submits alternating gold/high/50ms and free/low/no-deadline jobs.
// Scheduling is bit-exact: the checksum line must not change across
// --policy values (only latencies and SLO attainment do).
//
// --rate-limit installs per-tenant token-bucket admission; over-limit
// submissions (and, with --shed-on-full, submissions into a full
// backlog) are shed with a typed error — counted, reported on stderr,
// never a hang and never a nonzero exit on their own.
//
// --opt-level runs the Array-OL transformation optimizer on the gaspard
// route's model before code generation (0 = the paper's unfused chain,
// 1 = fusion, 2 = fusion + channel merge); --batch-max lets a
// dispatcher coalesce queued same-(route, geometry, opt-level, channels)
// jobs into one fused frame loop. Both are bit-exact: the checksum line
// must not change with either flag.
//
// --backend selects the execution backend of every fleet device; job
// results are bit-exact across backends, so
//   saclo-serve ... --backend sim --checksum
//   saclo-serve ... --backend host --checksum
// must print the same checksum line (the backend-differential CI job
// gates on exactly this, including under injected faults).
//
// --autoscale runs the closed-loop fleet controller: the runtime starts
// at --min-devices, may grow to --max-devices under queue/SLO pressure,
// and drains devices gracefully when load subsides (running frames stop
// at the next frame boundary and re-home bit-exactly). --trace-replay
// replays a committed traffic trace (see --trace-gen / --trace-save to
// produce one) through the normal admission path instead of the --jobs
// batch, so the load the controller reacts to is reproducible:
//   saclo-serve --trace-gen "seed=7,duration_ms=2000" --trace-save t.json
//   saclo-serve --autoscale --min-devices 1 --max-devices 4 \
//     --trace-replay t.json --checksum
// The checksum line is bit-identical to the same replay on any static
// fleet size — elasticity never changes results, only device-seconds.
//
// --fault installs an injected failure, e.g.
//   saclo-serve --devices 2 --fault "dev=0,after_ms=50,kind=kernel"
// The flag repeats, and one SPEC may hold several ';'-separated specs;
// faulted jobs fail over per the runtime's retry policy and the report
// gains a health section.
//
// The observability sinks write after drain():
//   --trace-out    fleet-merged Chrome trace (pid = device, tid = stream,
//                  flow arrows across failover hops)
//   --events-out   structured JSONL event log (job_admitted, frame_done,
//                  device_fault, failover, ...)
//   --metrics-out  Prometheus text exposition of the fleet metrics
//
// --telemetry-port mounts the live observability plane on 127.0.0.1: an
// embedded HTTP endpoint serving /metrics (the same Prometheus
// exposition, from a live snapshot), /healthz, /readyz, /debug/events,
// /debug/trace, /debug/fleet — and /alerts with --alerts. Port 0 picks
// an ephemeral port (printed on stderr). A scrape taken after the run
// drained is counter-identical to --metrics-out (only the wall-clock
// gauge saclo_device_seconds_total keeps accruing);
// --telemetry-linger-ms keeps the endpoint up that long after the
// sinks are written so an external scraper can take that final scrape.
//
// --alerts runs the SLO burn-rate alert engine against periodic metric
// samples (fast/slow dual-window burn rate per tenant, queue
// saturation, degraded devices); transitions emit alert_raised/
// alert_cleared wire events and --alerts-out writes the JSONL alert
// log. --analyze prints the trace critical-path attribution (compute
// vs transfer vs queue wait vs preemption/drain stalls, per device and
// per route) after the run.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "gpu/backend_kind.hpp"
#include "obs/critpath.hpp"
#include "serve/alerting.hpp"
#include "serve/autoscale.hpp"
#include "serve/scheduler.hpp"
#include "serve/traffic.hpp"

using namespace saclo;
using namespace saclo::serve;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: saclo-serve [--devices N] [--jobs M]\n"
               "                   [--route sacng|sacg|gaspard|mixed] [--frames F]\n"
               "                   [--backend sim|host|opencl|hc]\n"
               "                   [--exec-frames E] [--height H] [--width W]\n"
               "                   [--queue-capacity Q] [--no-cache] [--sync-streams]\n"
               "                   [--opt-level L] [--batch-max N] [--batch-wait-ms T]\n"
               "                   [--policy fifo|priority|edf] [--no-preemption]\n"
               "                   [--work-stealing] [--shed-on-full]\n"
               "                   [--tenant NAME]... [--priority P]... [--deadline-ms D]...\n"
               "                   [--rate-limit R] [--rate-burst B] [--stagger-ms T]\n"
               "                   [--fault SPEC] [--max-retries R]\n"
               "                   [--autoscale] [--min-devices N] [--max-devices N]\n"
               "                   [--scale-interval-ms T] [--alloc-class-cap-kb K]\n"
               "                   [--trace-replay FILE] [--replay-speed X]\n"
               "                   [--trace-gen SPEC] [--trace-save FILE]\n"
               "                   [--json] [--trace DEVICE] [--checksum]\n"
               "\n"
               "  --policy P     dispatcher queue order: fifo (default, the\n"
               "                 pre-SLO behavior), priority (class order), edf\n"
               "                 (class order, earliest deadline first within it)\n"
               "  --no-preemption  keep a queued higher-class job from displacing\n"
               "                 the running one at the next frame boundary\n"
               "  --work-stealing  idle dispatchers pull the policy-worst tail of\n"
               "                 the busiest peer queue (default off)\n"
               "  --tenant NAME / --priority high|normal|low / --deadline-ms D\n"
               "                 repeatable; round-robin over the submitted jobs\n"
               "                 (deadline 0 = no SLO)\n"
               "  --rate-limit R  per-tenant token-bucket admission, R jobs/s\n"
               "                 sustained (default 0 = off); over-limit\n"
               "                 submissions are shed with a typed error\n"
               "  --rate-burst B  bucket depth of the limiter (default 4)\n"
               "  --shed-on-full  shed instead of blocking when the backlog is at\n"
               "                 queue-capacity\n"
               "  --stagger-ms T  pause T real ms between submissions (default 0):\n"
               "                 later high-priority jobs then arrive while earlier\n"
               "                 ones run, which is what exercises preemption\n"
               "  --opt-level L  Array-OL optimizer level for gaspard jobs:\n"
               "                 0 unfused (default), 1 fusion, 2 fusion+merge;\n"
               "                 bit-exact across levels, fewer kernels per frame\n"
               "  --batch-max N  coalesce up to N queued same-key jobs into one\n"
               "                 fused frame loop per dispatch (default 1 = off)\n"
               "  --batch-wait-ms T  hold an underfull batch open up to T ms\n"
               "                 waiting for more same-key arrivals (default 0)\n"
               "  --backend B    execution backend of every fleet device\n"
               "                 (default sim; results are bit-exact across backends)\n"
               "  --checksum     print \"checksum <hex>\" over every job's output\n"
               "                 (submission order) -- for cross-backend comparison\n"
               "  --fault SPEC   inject a device failure; repeatable. SPEC is\n"
               "                 ';'-separated specs of comma-separated fields:\n"
               "                   dev=D            target fleet device (default 0)\n"
               "                   after_ms=T       fail once D's sim clock reaches T ms\n"
               "                   after_kernels=K  fail D's (K+1)-th kernel launch\n"
               "                   after_transfers=M  fail D's (M+1)-th PCIe transfer\n"
               "                   kind=kernel|transfer|any  boundary for after_ms\n"
               "                   recurring        keep failing (default: one-shot)\n"
               "                 e.g. --fault \"dev=2,after_ms=50,kind=kernel\"\n"
               "  --max-retries R  per-job failover budget (default 3)\n"
               "  --autoscale    run the closed-loop fleet controller; the fleet\n"
               "                 starts at --min-devices and may grow to\n"
               "                 --max-devices (conflicts with --devices)\n"
               "  --min-devices N  autoscaler floor (default 1; needs --autoscale)\n"
               "  --max-devices N  fleet ceiling (default 4 with --autoscale);\n"
               "                 without --autoscale just pre-builds elastic slots\n"
               "  --scale-interval-ms T  autoscaler control period (default 25)\n"
               "  --alloc-class-cap-kb K  per-size-class allocator cache cap in\n"
               "                 KiB (default 0 = uncapped); LRU-trims on overflow\n"
               "  --trace-replay FILE  replay a committed traffic trace through\n"
               "                 the admission path instead of the --jobs batch\n"
               "  --replay-speed X  compress the replay timeline by X (default 1)\n"
               "  --trace-gen SPEC  traffic-spec overrides for --trace-save, e.g.\n"
               "                 \"seed=7,duration_ms=2000,base_rate_hz=80\"\n"
               "  --trace-save FILE  generate the trace and write it, then exit\n"
               "  --trace-out FILE    write the fleet-merged Chrome trace\n"
               "  --events-out FILE   write the structured JSONL event log\n"
               "  --metrics-out FILE  write the Prometheus metrics exposition\n"
               "  --events-capacity N bound of the event ring (default 65536)\n"
               "  --telemetry-port P  serve live telemetry on 127.0.0.1:P\n"
               "                 (/metrics, /healthz, /readyz, /debug/events,\n"
               "                 /debug/trace, /debug/fleet; 0 = ephemeral port,\n"
               "                 printed on stderr)\n"
               "  --telemetry-linger-ms T  keep the telemetry endpoint up T ms\n"
               "                 after the sinks are written (final scrapes)\n"
               "  --alerts       run the SLO burn-rate alert engine (adds /alerts\n"
               "                 with --telemetry-port)\n"
               "  --alert-interval-ms T  alert sampling period (default 25)\n"
               "  --alerts-out FILE  write the JSONL alert log (implies --alerts)\n"
               "  --analyze      print the trace critical-path attribution after\n"
               "                 the run (compute/transfer/queue-wait/stalls per\n"
               "                 device and per route)\n");
  return 2;
}

/// FNV-1a over a job's identity and full output pixels — deterministic
/// for a given job mix, independent of which devices ran what or how
/// many failover hops occurred.
void fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
}

bool write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "saclo-serve: cannot write %s\n", path.c_str());
    return false;
  }
  out << contents;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  ServeRuntime::Options opts;
  apps::DownscalerConfig cfg = apps::DownscalerConfig::paper();
  std::string route = "mixed";
  int jobs = 8;
  int frames = 16;
  int exec_frames = 1;
  int opt_level = 0;
  std::vector<std::string> tenants;
  std::vector<Priority> priorities;
  std::vector<double> deadlines_ms;
  double stagger_ms = 0;
  bool autoscale = false;
  bool devices_set = false;
  bool min_devices_set = false;
  bool interval_set = false;
  int min_devices = 1;
  int max_devices = 0;
  double scale_interval_ms = 25.0;
  std::string trace_replay;
  std::string trace_gen;
  std::string trace_save;
  double replay_speed = 1.0;
  bool emit_json = false;
  bool emit_checksum = false;
  int trace_device = -1;
  std::string trace_out;
  std::string events_out;
  std::string metrics_out;
  std::size_t events_capacity = 65536;
  double telemetry_linger_ms = 0;
  bool alerts = false;
  double alert_interval_ms = 25.0;
  bool alert_interval_set = false;
  std::string alerts_out;
  bool analyze = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--devices" && i + 1 < argc) {
      opts.devices = std::stoi(argv[++i]);
      devices_set = true;
    } else if (arg == "--autoscale") {
      autoscale = true;
    } else if (arg == "--min-devices" && i + 1 < argc) {
      min_devices = std::stoi(argv[++i]);
      min_devices_set = true;
    } else if (arg == "--max-devices" && i + 1 < argc) {
      max_devices = std::stoi(argv[++i]);
    } else if (arg == "--scale-interval-ms" && i + 1 < argc) {
      scale_interval_ms = std::stod(argv[++i]);
      interval_set = true;
    } else if (arg == "--alloc-class-cap-kb" && i + 1 < argc) {
      opts.alloc_class_cap_bytes = std::stoll(argv[++i]) * 1024;
    } else if (arg == "--trace-replay" && i + 1 < argc) {
      trace_replay = argv[++i];
    } else if (arg == "--replay-speed" && i + 1 < argc) {
      replay_speed = std::stod(argv[++i]);
    } else if (arg == "--trace-gen" && i + 1 < argc) {
      trace_gen = argv[++i];
    } else if (arg == "--trace-save" && i + 1 < argc) {
      trace_save = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::stoi(argv[++i]);
    } else if (arg == "--route" && i + 1 < argc) {
      route = argv[++i];
    } else if (arg == "--backend" && i + 1 < argc) {
      try {
        opts.backend = gpu::parse_backend_kind(argv[++i]);
      } catch (const gpu::BackendError& e) {
        std::fprintf(stderr, "saclo-serve: %s\n", e.what());
        return usage();
      }
    } else if (arg == "--frames" && i + 1 < argc) {
      frames = std::stoi(argv[++i]);
    } else if (arg == "--exec-frames" && i + 1 < argc) {
      exec_frames = std::stoi(argv[++i]);
    } else if (arg == "--height" && i + 1 < argc) {
      cfg.height = std::stoll(argv[++i]);
    } else if (arg == "--width" && i + 1 < argc) {
      cfg.width = std::stoll(argv[++i]);
    } else if (arg == "--queue-capacity" && i + 1 < argc) {
      opts.queue_capacity = static_cast<std::size_t>(std::stoi(argv[++i]));
    } else if (arg == "--no-cache") {
      opts.cache_buffers = false;
    } else if (arg == "--sync-streams") {
      opts.async_streams = false;
    } else if (arg == "--opt-level" && i + 1 < argc) {
      opt_level = std::stoi(argv[++i]);
    } else if (arg == "--batch-max" && i + 1 < argc) {
      opts.batch_max = std::stoi(argv[++i]);
    } else if (arg == "--batch-wait-ms" && i + 1 < argc) {
      opts.batch_wait_ms = std::stod(argv[++i]);
    } else if (arg == "--policy" && i + 1 < argc) {
      try {
        opts.policy = parse_sched_policy(argv[++i]);
      } catch (const ServeError& e) {
        std::fprintf(stderr, "saclo-serve: %s\n", e.what());
        return usage();
      }
    } else if (arg == "--no-preemption") {
      opts.preemption = false;
    } else if (arg == "--work-stealing") {
      opts.work_stealing = true;
    } else if (arg == "--shed-on-full") {
      opts.shed_on_full = true;
    } else if (arg == "--tenant" && i + 1 < argc) {
      tenants.emplace_back(argv[++i]);
    } else if (arg == "--priority" && i + 1 < argc) {
      try {
        priorities.push_back(parse_priority(argv[++i]));
      } catch (const ServeError& e) {
        std::fprintf(stderr, "saclo-serve: %s\n", e.what());
        return usage();
      }
    } else if (arg == "--deadline-ms" && i + 1 < argc) {
      deadlines_ms.push_back(std::stod(argv[++i]));
    } else if (arg == "--rate-limit" && i + 1 < argc) {
      opts.tenant_rate_limit = std::stod(argv[++i]);
    } else if (arg == "--rate-burst" && i + 1 < argc) {
      opts.tenant_rate_burst = std::stod(argv[++i]);
    } else if (arg == "--stagger-ms" && i + 1 < argc) {
      stagger_ms = std::stod(argv[++i]);
    } else if (arg == "--fault" && i + 1 < argc) {
      try {
        const fault::FaultPlan parsed = fault::FaultPlan::parse(argv[++i]);
        for (const fault::FaultSpec& spec : parsed.specs()) opts.fault_plan.add(spec);
      } catch (const fault::FaultPlanError& e) {
        std::fprintf(stderr, "saclo-serve: %s\n", e.what());
        return usage();
      }
    } else if (arg == "--max-retries" && i + 1 < argc) {
      opts.max_retries = std::stoi(argv[++i]);
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg == "--checksum") {
      emit_checksum = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_device = std::stoi(argv[++i]);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--events-out" && i + 1 < argc) {
      events_out = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--events-capacity" && i + 1 < argc) {
      events_capacity = static_cast<std::size_t>(std::stoll(argv[++i]));
    } else if (arg == "--telemetry-port" && i + 1 < argc) {
      opts.telemetry_port = std::stoi(argv[++i]);
    } else if (arg == "--telemetry-linger-ms" && i + 1 < argc) {
      telemetry_linger_ms = std::stod(argv[++i]);
    } else if (arg == "--alerts") {
      alerts = true;
    } else if (arg == "--alert-interval-ms" && i + 1 < argc) {
      alert_interval_ms = std::stod(argv[++i]);
      alert_interval_set = true;
    } else if (arg == "--alerts-out" && i + 1 < argc) {
      alerts_out = argv[++i];
      alerts = true;
    } else if (arg == "--analyze") {
      analyze = true;
    } else {
      return usage();
    }
  }
  // Any observability sink implies the structured event log (the merged
  // trace wants its instant events too); plain runs keep it off so the
  // dispatch hot path stays allocation-free.
  if (!events_out.empty() || !trace_out.empty() || analyze) {
    opts.event_log_capacity = events_capacity;
  }

  if (telemetry_linger_ms > 0 && opts.telemetry_port < 0) {
    std::fprintf(stderr, "saclo-serve: --telemetry-linger-ms requires --telemetry-port\n");
    return usage();
  }
  if (alert_interval_set && !alerts) {
    std::fprintf(stderr, "saclo-serve: --alert-interval-ms requires --alerts\n");
    return usage();
  }
  if (alerts && alert_interval_ms <= 0) {
    std::fprintf(stderr, "saclo-serve: --alert-interval-ms must be positive, got %g\n",
                 alert_interval_ms);
    return usage();
  }

  // Up-front validation of the elastic-fleet flag combos: every invalid
  // mix dies here with a one-line explanation, before any device spins
  // up.
  if (autoscale && devices_set) {
    std::fprintf(stderr,
                 "saclo-serve: --autoscale sizes the fleet from --min-devices/"
                 "--max-devices; drop --devices\n");
    return usage();
  }
  if (!autoscale && (min_devices_set || interval_set)) {
    std::fprintf(stderr, "saclo-serve: %s requires --autoscale\n",
                 min_devices_set ? "--min-devices" : "--scale-interval-ms");
    return usage();
  }
  if (replay_speed <= 0) {
    std::fprintf(stderr, "saclo-serve: --replay-speed must be positive, got %g\n",
                 replay_speed);
    return usage();
  }
  if (!trace_save.empty() && !trace_replay.empty()) {
    std::fprintf(stderr,
                 "saclo-serve: --trace-save generates a trace and exits; it cannot "
                 "be combined with --trace-replay\n");
    return usage();
  }
  if (!trace_gen.empty() && trace_save.empty()) {
    std::fprintf(stderr, "saclo-serve: --trace-gen needs --trace-save FILE\n");
    return usage();
  }
  AutoscalePolicy autoscale_policy;
  if (autoscale) {
    autoscale_policy.min_devices = min_devices;
    autoscale_policy.max_devices = max_devices > 0 ? max_devices : 4;
    autoscale_policy.interval_ms = scale_interval_ms;
    try {
      autoscale_policy.validate();
    } catch (const ServeError& e) {
      std::fprintf(stderr, "saclo-serve: %s\n", e.what());
      return usage();
    }
    opts.devices = autoscale_policy.min_devices;
    opts.max_devices = autoscale_policy.max_devices;
  } else if (max_devices > 0) {
    opts.max_devices = max_devices;
  }

  if (!trace_save.empty()) {
    try {
      const TrafficTrace trace = generate_trace(TrafficSpec::parse(trace_gen));
      if (!write_file(trace_save, trace.to_json())) return 1;
      std::printf("trace %s: %zu arrival(s) over %.0f ms (seed %llu)\n",
                  trace_save.c_str(), trace.arrivals.size(), trace.spec.duration_ms,
                  static_cast<unsigned long long>(trace.spec.seed));
      return 0;
    } catch (const ServeError& e) {
      std::fprintf(stderr, "saclo-serve: %s\n", e.what());
      return 1;
    }
  }
  TrafficTrace replay;
  if (!trace_replay.empty()) {
    std::ifstream in(trace_replay, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "saclo-serve: cannot read trace file %s\n",
                   trace_replay.c_str());
      return usage();
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    try {
      replay = TrafficTrace::from_json(text);
    } catch (const ServeError& e) {
      std::fprintf(stderr, "saclo-serve: %s: %s\n", trace_replay.c_str(), e.what());
      return 1;
    }
  }

  try {
    const Route mix[] = {Route::SacNongeneric, Route::SacGeneric, Route::Gaspard};
    ServeRuntime runtime(opts);
    if (runtime.telemetry() != nullptr) {
      // Printed to stderr so CI (and humans using port 0) learn the
      // actual bound port without parsing the report.
      std::fprintf(stderr, "saclo-serve: telemetry listening on http://127.0.0.1:%d\n",
                   runtime.telemetry()->port());
    }
    std::unique_ptr<Autoscaler> scaler;
    if (autoscale) scaler = std::make_unique<Autoscaler>(runtime, autoscale_policy);
    std::unique_ptr<AlertMonitor> monitor;
    if (alerts) {
      AlertMonitorOptions monitor_options;
      monitor_options.interval_ms = alert_interval_ms;
      monitor = std::make_unique<AlertMonitor>(runtime, monitor_options);
    }

    int failed = 0;
    int shed = 0;
    std::uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
    if (!trace_replay.empty()) {
      const ReplayStats stats = replay_trace(runtime, replay, replay_speed);
      failed = static_cast<int>(stats.failed);
      shed = static_cast<int>(stats.shed);
      checksum = stats.checksum;
      std::fprintf(stderr,
                   "saclo-serve: replayed %lld arrival(s) in %.0f ms "
                   "(%lld completed, %lld shed, %lld failed)\n",
                   static_cast<long long>(stats.submitted), stats.elapsed_ms,
                   static_cast<long long>(stats.completed),
                   static_cast<long long>(stats.shed),
                   static_cast<long long>(stats.failed));
    } else {
      std::vector<std::future<JobResult>> futures;
      futures.reserve(static_cast<std::size_t>(jobs));
      for (int i = 0; i < jobs; ++i) {
        JobSpec spec;
        spec.route = route == "mixed" ? mix[i % 3] : parse_route(route);
        spec.config = cfg;
        spec.frames = frames;
        spec.exec_frames = exec_frames;
        spec.opt_level = opt_level;
        const std::size_t u = static_cast<std::size_t>(i);
        if (!tenants.empty()) spec.tenant = tenants[u % tenants.size()];
        if (!priorities.empty()) spec.priority = priorities[u % priorities.size()];
        if (!deadlines_ms.empty()) spec.deadline_ms = deadlines_ms[u % deadlines_ms.size()];
        futures.push_back(runtime.submit(spec));
        if (stagger_ms > 0 && i + 1 < jobs) {
          std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(stagger_ms));
        }
      }
      for (auto& f : futures) {
        try {
          JobResult r = f.get();
          if (emit_checksum) {
            // Submission order, not completion order: the digest is a
            // function of the job mix alone, so two runs of the same mix
            // on different backends (or fault plans) must agree.
            fnv1a(checksum, static_cast<std::uint64_t>(r.route));
            fnv1a(checksum, static_cast<std::uint64_t>(r.frames));
            fnv1a(checksum, static_cast<std::uint64_t>(r.last_output.elements()));
            for (std::int64_t i = 0; i < r.last_output.elements(); ++i) {
              fnv1a(checksum, static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(r.last_output[i])));
            }
          }
        } catch (const ShedError& e) {
          // Admission shed the job before it ran: expected under a rate
          // limit or --shed-on-full, not a failure of the fleet.
          ++shed;
          std::fprintf(stderr, "saclo-serve: job shed: %s\n", e.what());
        } catch (const fault::DeviceFault& e) {
          // Retry budget exhausted on an injected fault: report it and
          // keep going — a degraded fleet still renders its report.
          ++failed;
          std::fprintf(stderr, "saclo-serve: job failed: %s\n", e.what());
        }
      }
    }
    // Stop the controller before drain(): a scale-down racing the final
    // queue drain is legal but makes the printed report nondeterministic.
    if (scaler) {
      scaler->stop();
      const Autoscaler::Stats s = scaler->stats();
      std::fprintf(stderr,
                   "saclo-serve: autoscaler: %lld period(s), %lld up(s), %lld down(s)\n",
                   static_cast<long long>(s.periods), static_cast<long long>(s.ups),
                   static_cast<long long>(s.downs));
    }
    runtime.drain();
    if (monitor) {
      // One last evaluation over the drained fleet so the log ends on
      // the settled state, then stop the sampling thread.
      monitor->sample_now();
      monitor->stop();
      const std::size_t transitions = monitor->transitions().size();
      const std::size_t firing = monitor->active().size();
      std::fprintf(stderr, "saclo-serve: alerts: %zu transition(s), %zu still firing\n",
                   transitions, firing);
    }
    if (emit_checksum) std::printf("checksum %016llx\n", static_cast<unsigned long long>(checksum));

    if (trace_device >= 0) {
      std::printf("%s\n", runtime.device_trace_json(trace_device).c_str());
    } else if (emit_json) {
      std::printf("%s\n", runtime.metrics_json().c_str());
    } else {
      std::printf("%s", runtime.report().c_str());
    }
    if (analyze) {
      const obs::CriticalPath path =
          obs::analyze_critical_path(runtime.device_traces(), runtime.events());
      std::printf("%s", obs::critical_path_report(path).c_str());
    }
    bool sink_error = false;
    if (!trace_out.empty() && !write_file(trace_out, runtime.merged_trace_json())) {
      sink_error = true;
    }
    if (!events_out.empty() && !write_file(events_out, runtime.events_jsonl())) {
      sink_error = true;
    }
    if (!metrics_out.empty() && !write_file(metrics_out, runtime.metrics_prometheus())) {
      sink_error = true;
    }
    if (!alerts_out.empty() && monitor &&
        !write_file(alerts_out, monitor->transitions_jsonl())) {
      sink_error = true;
    }
    if (sink_error) return 1;
    if (telemetry_linger_ms > 0 && runtime.telemetry() != nullptr) {
      // Keep the endpoint scrapeable after the run settles — the window
      // CI uses to compare a live scrape against --metrics-out.
      std::fprintf(stderr, "saclo-serve: telemetry lingering %.0f ms\n",
                   telemetry_linger_ms);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(telemetry_linger_ms));
    }
    if (shed > 0) {
      std::fprintf(stderr, "saclo-serve: %d job(s) shed by admission\n", shed);
    }
    if (failed > 0) {
      std::fprintf(stderr, "saclo-serve: %d job(s) failed permanently\n", failed);
      return 1;
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "saclo-serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
