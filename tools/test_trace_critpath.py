#!/usr/bin/env python3
"""Tests for trace_critpath.py — the offline makespan attributor.

Plain unittest (no pytest in the image), registered with ctest. The
fixtures are tiny hand-built Chrome traces, so every number in the
attribution is checkable by eye: interval-union busy time (overlapping
streams counted once), route classification (KRN_* -> gaspard), queue
wait from the event log, and the typed error paths.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import trace_critpath  # noqa: E402


def span(pid, name, cat, ts, dur):
    return {"name": name, "cat": cat, "ph": "X", "pid": pid, "tid": 1,
            "ts": ts, "dur": dur, "args": {}}


class UnionTest(unittest.TestCase):
    def test_disjoint(self):
        self.assertEqual(trace_critpath.union_us([(0, 10), (20, 30)]), 20)

    def test_overlap_counted_once(self):
        self.assertEqual(trace_critpath.union_us([(0, 10), (5, 15)]), 15)

    def test_nested(self):
        self.assertEqual(trace_critpath.union_us([(0, 100), (10, 20)]), 100)

    def test_empty(self):
        self.assertEqual(trace_critpath.union_us([]), 0.0)


class RouteTest(unittest.TestCase):
    def test_gaspard_kernels_are_krn_prefixed(self):
        self.assertEqual(trace_critpath.route_of_kernel("KRN_hfilter"), "gaspard")
        self.assertEqual(trace_critpath.route_of_kernel("hfilter_generic_w0_g0"), "sac")


class AnalyzeTest(unittest.TestCase):
    def test_attribution_numbers(self):
        spans = [
            span(0, "k0", "kernel", 0, 100),
            span(0, "memcpyHtoDasync", "memcpy_h2d", 100, 50),
            # Overlapping stream on the same device: busy union, not sum.
            span(0, "k0", "kernel", 50, 100),
            span(1, "KRN_stage", "kernel", 0, 200),
        ]
        parsed = [{"device": s["pid"], "name": s["name"], "cat": s["cat"],
                   "start": s["ts"], "end": s["ts"] + s["dur"]} for s in spans]
        result = trace_critpath.analyze(parsed, [])
        self.assertEqual(result["makespan_us"], 200)
        dev0 = result["devices"][0]
        self.assertEqual(dev0["busy"], 150)        # [0,150) union
        self.assertEqual(dev0["kernel"], 200)      # overlap double in sum
        self.assertEqual(dev0["memcpy_h2d"], 50)
        routes = {r["route"]: r for r in result["routes"]}
        self.assertEqual(routes["sac"]["us"], 200)
        self.assertEqual(routes["gaspard"]["us"], 200)

    def test_queue_wait_and_stalls_from_events(self):
        parsed = [{"device": 0, "name": "k", "cat": "kernel", "start": 0, "end": 10}]
        events = [
            {"event": "job_admitted", "job": 1, "t_real_us": 100.0},
            {"event": "job_dispatched", "job": 1, "t_real_us": 400.0},
            # Redispatch after failover: only the FIRST dispatch counts.
            {"event": "job_dispatched", "job": 1, "t_real_us": 900.0},
            {"event": "job_preempted", "job": 1, "device": 0},
            {"event": "device_fault", "job": 1, "device": 0},
            {"event": "drain_started", "job": 0, "device": 0},
            # Dispatched with no admission record: ignored, not a crash.
            {"event": "job_dispatched", "job": 7, "t_real_us": 5.0},
        ]
        result = trace_critpath.analyze(parsed, events)
        self.assertEqual(result["waits"], [300.0])
        self.assertEqual(result["stalls"]["preempt"], 1)
        self.assertEqual(result["stalls"]["fault"], 1)
        self.assertEqual(result["stalls"]["drain"], 1)
        self.assertEqual(result["devices"][0]["stalls"]["preempt"], 1)

    def test_report_renders(self):
        parsed = [{"device": 0, "name": "KRN_a", "cat": "kernel", "start": 0, "end": 10}]
        text = trace_critpath.report(trace_critpath.analyze(parsed, []), top=5)
        self.assertIn("critical path", text)
        self.assertIn("gpu0", text)
        self.assertIn("gaspard", text)


class LoadTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def test_loads_x_events_only(self):
        trace = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 0, "args": {}},
            span(0, "k", "kernel", 1.5, 2.5),
        ]}
        with open(self.path("t.json"), "w") as f:
            json.dump(trace, f)
        spans = trace_critpath.load_spans(self.path("t.json"))
        self.assertEqual(len(spans), 1)
        self.assertEqual(spans[0]["start"], 1.5)
        self.assertEqual(spans[0]["end"], 4.0)

    def test_missing_trace_is_typed_error(self):
        with self.assertRaises(trace_critpath.CritPathError):
            trace_critpath.load_spans(self.path("absent.json"))

    def test_not_a_trace_is_typed_error(self):
        with open(self.path("t.json"), "w") as f:
            json.dump({"foo": 1}, f)
        with self.assertRaises(trace_critpath.CritPathError):
            trace_critpath.load_spans(self.path("t.json"))

    def test_trace_with_no_spans_is_typed_error(self):
        with open(self.path("t.json"), "w") as f:
            json.dump({"traceEvents": []}, f)
        with self.assertRaises(trace_critpath.CritPathError):
            trace_critpath.load_spans(self.path("t.json"))

    def test_malformed_event_line_is_typed_error(self):
        with open(self.path("e.jsonl"), "w") as f:
            f.write('{"event":"job_admitted","job":1}\n{broken\n')
        with self.assertRaises(trace_critpath.CritPathError) as ctx:
            trace_critpath.load_events(self.path("e.jsonl"))
        self.assertIn(":2:", str(ctx.exception))

    def test_blank_lines_in_event_log_are_skipped(self):
        with open(self.path("e.jsonl"), "w") as f:
            f.write('{"event":"job_admitted","job":1}\n\n')
        self.assertEqual(len(trace_critpath.load_events(self.path("e.jsonl"))), 1)


if __name__ == "__main__":
    unittest.main()
