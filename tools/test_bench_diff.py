#!/usr/bin/env python3
"""Tests for bench_diff.py — the CI perf gate.

Plain unittest (the toolchain image carries no pytest), registered with
ctest from tools/CMakeLists.txt so the gate's own behavior is part of
tier-1: pair mode, directory mode pairing rules, per-bench --tolerance
overrides, and every typed error path exiting with a one-line message
instead of a traceback.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_diff  # noqa: E402


def write_bench(path, bench, variants):
    with open(path, "w") as f:
        json.dump({"bench": bench,
                   "variants": [{"name": n, "us": us} for n, us in variants]}, f)


def run_main(argv):
    """Runs bench_diff.main() with argv, returning (exit_code, stdout)."""
    out = io.StringIO()
    old_argv = sys.argv
    sys.argv = ["bench_diff.py"] + argv
    try:
        with contextlib.redirect_stdout(out):
            try:
                code = bench_diff.main()
            except SystemExit as e:  # parser.error paths
                code = e.code if isinstance(e.code, int) else 2
            except bench_diff.BenchDiffError:
                code = 1  # what the __main__ guard exits with
    finally:
        sys.argv = old_argv
    return code, out.getvalue()


class PairModeTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def test_identical_artifacts_pass(self):
        write_bench(self.path("a.json"), "conv", [("v0", 100.0), ("v1", 200.0)])
        code, out = run_main([self.path("a.json"), self.path("a.json")])
        self.assertEqual(code, 0)
        self.assertIn("no regressions", out)

    def test_slowdown_beyond_threshold_fails(self):
        write_bench(self.path("base.json"), "conv", [("v0", 100.0)])
        write_bench(self.path("cand.json"), "conv", [("v0", 125.0)])
        code, out = run_main([self.path("base.json"), self.path("cand.json")])
        self.assertEqual(code, 1)
        self.assertIn("REGRESSION", out)
        self.assertIn("conv/v0", out)

    def test_slowdown_within_custom_threshold_passes(self):
        write_bench(self.path("base.json"), "conv", [("v0", 100.0)])
        write_bench(self.path("cand.json"), "conv", [("v0", 125.0)])
        code, _ = run_main([self.path("base.json"), self.path("cand.json"),
                            "--threshold", "0.30"])
        self.assertEqual(code, 0)

    def test_variant_missing_from_candidate_fails(self):
        write_bench(self.path("base.json"), "conv", [("v0", 100.0), ("v1", 50.0)])
        write_bench(self.path("cand.json"), "conv", [("v0", 100.0)])
        code, out = run_main([self.path("base.json"), self.path("cand.json")])
        self.assertEqual(code, 1)
        self.assertIn("MISSING from candidate", out)

    def test_new_variant_in_candidate_is_not_a_failure(self):
        write_bench(self.path("base.json"), "conv", [("v0", 100.0)])
        write_bench(self.path("cand.json"), "conv", [("v0", 100.0), ("v9", 1.0)])
        code, out = run_main([self.path("base.json"), self.path("cand.json")])
        self.assertEqual(code, 0)
        self.assertIn("new variant, no baseline", out)

    def test_pair_mode_wants_exactly_two_files(self):
        code, _ = run_main([self.path("one.json")])
        self.assertNotEqual(code, 0)


class DirModeTest(unittest.TestCase):
    def setUp(self):
        self.base = tempfile.TemporaryDirectory()
        self.cand = tempfile.TemporaryDirectory()
        self.addCleanup(self.base.cleanup)
        self.addCleanup(self.cand.cleanup)

    def test_pairs_by_name_and_passes(self):
        for d in (self.base.name, self.cand.name):
            write_bench(os.path.join(d, "BENCH_a.json"), "a", [("v", 10.0)])
            write_bench(os.path.join(d, "BENCH_b.json"), "b", [("v", 20.0)])
        code, out = run_main(["--baseline-dir", self.base.name,
                              "--candidate-dir", self.cand.name])
        self.assertEqual(code, 0)
        self.assertIn("== a", out)
        self.assertIn("== b", out)

    def test_baseline_without_candidate_fails(self):
        write_bench(os.path.join(self.base.name, "BENCH_a.json"), "a", [("v", 10.0)])
        code, out = run_main(["--baseline-dir", self.base.name,
                              "--candidate-dir", self.cand.name])
        self.assertEqual(code, 1)
        self.assertIn("no candidate artifact", out)

    def test_candidate_without_baseline_is_noted_not_failed(self):
        write_bench(os.path.join(self.base.name, "BENCH_a.json"), "a", [("v", 10.0)])
        write_bench(os.path.join(self.cand.name, "BENCH_a.json"), "a", [("v", 10.0)])
        write_bench(os.path.join(self.cand.name, "BENCH_new.json"), "new", [("v", 1.0)])
        code, out = run_main(["--baseline-dir", self.base.name,
                              "--candidate-dir", self.cand.name])
        self.assertEqual(code, 0)
        self.assertIn("no committed baseline", out)

    def test_mixing_dir_and_positional_files_is_rejected(self):
        code, _ = run_main(["--baseline-dir", self.base.name,
                            "--candidate-dir", self.cand.name, "stray.json"])
        self.assertNotEqual(code, 0)


class ToleranceTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)
        self.base = os.path.join(self.dir.name, "BENCH_serve.json")
        self.cand = os.path.join(self.dir.name, "BENCH_serve_cand.json")
        write_bench(self.base, "serve", [("v0", 100.0)])
        write_bench(self.cand, "serve", [("v0", 130.0)])  # +30%

    def test_tolerance_by_bench_field_widens_one_gate(self):
        code, _ = run_main([self.base, self.cand])
        self.assertEqual(code, 1)
        code, out = run_main([self.base, self.cand, "--tolerance", "serve=0.35"])
        self.assertEqual(code, 0)
        self.assertIn("[tolerance 35%]", out)

    def test_tolerance_by_file_stem(self):
        # BENCH_serve.json -> stem "serve" matches even if the bench
        # field were spelled differently.
        self.assertEqual(bench_diff.bench_stem("BENCH_serve.json"), "serve")
        self.assertEqual(bench_diff.bench_stem("/x/y/BENCH_a_b.json"), "a_b")
        self.assertEqual(bench_diff.bench_stem("other.json"), "other.json")

    def test_tolerance_for_other_bench_does_not_apply(self):
        code, _ = run_main([self.base, self.cand, "--tolerance", "unrelated=0.99"])
        self.assertEqual(code, 1)

    def test_parse_tolerances(self):
        self.assertEqual(bench_diff.parse_tolerances(["a=0.5", "b=0"]),
                         {"a": 0.5, "b": 0.0})
        for bad in ["noequals", "=0.5", "a=notanumber", "a=-0.1"]:
            with self.assertRaises(bench_diff.BenchDiffError):
                bench_diff.parse_tolerances([bad])


class ErrorPathTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name):
        return os.path.join(self.dir.name, name)

    def test_missing_file_is_typed_error(self):
        with self.assertRaises(bench_diff.BenchDiffError) as ctx:
            bench_diff.load_bench(self.path("absent.json"))
        self.assertIn("cannot read", str(ctx.exception))

    def test_malformed_json_is_typed_error(self):
        with open(self.path("bad.json"), "w") as f:
            f.write("{not json")
        with self.assertRaises(bench_diff.BenchDiffError) as ctx:
            bench_diff.load_bench(self.path("bad.json"))
        self.assertIn("malformed JSON", str(ctx.exception))

    def test_wrong_shape_is_typed_error(self):
        with open(self.path("shape.json"), "w") as f:
            json.dump({"bench": "x"}, f)
        with self.assertRaises(bench_diff.BenchDiffError) as ctx:
            bench_diff.load_bench(self.path("shape.json"))
        self.assertIn("no 'variants' list", str(ctx.exception))

    def test_not_a_directory_is_typed_error(self):
        code, _ = run_main(["--baseline-dir", self.path("nope"),
                            "--candidate-dir", self.path("nope")])
        # Raised as BenchDiffError inside main(); surfaces via the
        # __main__ guard in CLI use — here it propagates.
        self.assertNotEqual(code, 0)

    def test_zero_baseline_time_does_not_divide_by_zero(self):
        write_bench(self.path("b.json"), "z", [("v", 0.0)])
        write_bench(self.path("c.json"), "z", [("v", 1.0)])
        code, _ = run_main([self.path("b.json"), self.path("c.json")])
        self.assertEqual(code, 1)  # 0 -> 1us is an infinite-ratio regression


if __name__ == "__main__":
    unittest.main()
