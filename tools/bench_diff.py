#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag slowdowns.

The repo's benches emit deterministic simulated timings into
BENCH_<name>.json files ({"bench": ..., "variants": [{"name", "us",
...}]}); the committed copies at the repo root are the baselines. This
tool diffs a candidate run against them and exits non-zero when any
variant slowed down by more than the threshold — the CI perf gate.

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]
  bench_diff.py --baseline-dir DIR --candidate-dir DIR [--threshold 0.10]

Directory mode pairs files by name (BENCH_foo.json <-> BENCH_foo.json).
A candidate with no matching baseline is reported but does not fail the
gate (new benches land with their first baseline); a baseline with no
candidate fails it (a bench silently stopped producing its artifact).

A missing or malformed artifact is a clean one-line error and exit 1,
never a traceback. --tolerance NAME=RATIO (repeatable) widens the gate
for one bench without loosening the rest — e.g. the autoscale sweep
runs real threads and needs a wider band than the simulated-clock
benches:
  bench_diff.py --baseline-dir . --candidate-dir out \\
      --tolerance serve_autoscale=0.35
NAME matches the artifact's "bench" field or its BENCH_<NAME>.json stem.
"""

import argparse
import json
import os
import sys


class BenchDiffError(Exception):
    """A diagnosable input problem: reported as one line, exit 1."""


def load_bench(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise BenchDiffError(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise BenchDiffError(
            f"{path}: malformed JSON ({e.msg} at line {e.lineno} column {e.colno})")
    if not isinstance(data, dict) or not isinstance(data.get("variants"), list):
        raise BenchDiffError(f"{path}: not a BENCH artifact (no 'variants' list)")
    return data


def parse_tolerances(entries):
    tolerances = {}
    for entry in entries:
        name, sep, value = entry.partition("=")
        if not sep or not name:
            raise BenchDiffError(f"--tolerance wants NAME=RATIO, got '{entry}'")
        try:
            ratio = float(value)
        except ValueError:
            raise BenchDiffError(f"--tolerance {name}: '{value}' is not a number")
        if ratio < 0:
            raise BenchDiffError(f"--tolerance {name}: ratio must be >= 0, got {ratio}")
        tolerances[name] = ratio
    return tolerances


def variant_times(data):
    times = {}
    for v in data["variants"]:
        name = v.get("name")
        us = v.get("us")
        if name is None or not isinstance(us, (int, float)):
            continue
        times[name] = float(us)
    return times


def bench_stem(path):
    """BENCH_foo.json -> foo (the --tolerance key alongside 'bench')."""
    name = os.path.basename(path)
    if name.startswith("BENCH_") and name.endswith(".json"):
        return name[len("BENCH_"):-len(".json")]
    return name


def diff_pair(baseline_path, candidate_path, threshold, tolerances=None):
    """Returns (lines, regressions) for one baseline/candidate pair."""
    base = load_bench(baseline_path)
    cand = load_bench(candidate_path)
    base_times = variant_times(base)
    cand_times = variant_times(cand)
    bench = base.get("bench", os.path.basename(baseline_path))
    tolerances = tolerances or {}
    header_note = ""
    for key in (bench, bench_stem(baseline_path)):
        if key in tolerances:
            threshold = tolerances[key]
            header_note = f" [tolerance {100 * threshold:.0f}%]"
            break

    lines = [f"== {bench} ({os.path.basename(candidate_path)} vs "
             f"{os.path.basename(baseline_path)}){header_note}"]
    regressions = []
    width = max((len(n) for n in base_times), default=4)
    for name in sorted(set(base_times) | set(cand_times)):
        if name not in base_times:
            lines.append(f"  {name:<{width}}  (new variant, no baseline)")
            continue
        if name not in cand_times:
            lines.append(f"  {name:<{width}}  MISSING from candidate")
            regressions.append(f"{bench}/{name}: missing from candidate")
            continue
        b, c = base_times[name], cand_times[name]
        ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
        delta = 100.0 * (ratio - 1.0)
        flag = ""
        if ratio > 1.0 + threshold:
            flag = f"  REGRESSION (> {100 * threshold:.0f}%)"
            regressions.append(f"{bench}/{name}: {b:.1f}us -> {c:.1f}us "
                               f"({delta:+.1f}%)")
        elif ratio < 1.0 - threshold:
            flag = "  improvement"
        lines.append(f"  {name:<{width}}  {b:>14.1f}us -> {c:>14.1f}us "
                     f"{delta:+7.1f}%{flag}")
    return lines, regressions


def bench_files(directory):
    return {
        name: os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.startswith("BENCH_") and name.endswith(".json")
    }


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json artifacts; non-zero exit on slowdowns.")
    parser.add_argument("files", nargs="*", metavar="JSON",
                        help="BASELINE CANDIDATE (pair mode)")
    parser.add_argument("--baseline-dir", help="directory of baseline BENCH_*.json")
    parser.add_argument("--candidate-dir", help="directory of candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="slowdown ratio that fails the gate (default 0.10)")
    parser.add_argument("--tolerance", action="append", default=[],
                        metavar="NAME=RATIO",
                        help="per-bench threshold override, repeatable "
                             "(e.g. serve_autoscale=0.35)")
    args = parser.parse_args()
    tolerances = parse_tolerances(args.tolerance)

    pairs = []
    if args.baseline_dir or args.candidate_dir:
        if not (args.baseline_dir and args.candidate_dir) or args.files:
            parser.error("directory mode takes --baseline-dir and --candidate-dir, "
                         "no positional files")
        for directory in (args.baseline_dir, args.candidate_dir):
            if not os.path.isdir(directory):
                raise BenchDiffError(f"not a directory: {directory}")
        baselines = bench_files(args.baseline_dir)
        candidates = bench_files(args.candidate_dir)
        if not baselines:
            parser.error(f"no BENCH_*.json in {args.baseline_dir}")
        missing = sorted(set(baselines) - set(candidates))
        for name in sorted(set(baselines) & set(candidates)):
            pairs.append((baselines[name], candidates[name]))
        for name in sorted(set(candidates) - set(baselines)):
            print(f"note: {name} has no committed baseline (new bench?)")
        if missing:
            for name in missing:
                print(f"error: baseline {name} has no candidate artifact")
            return 1
    else:
        if len(args.files) != 2:
            parser.error("pair mode takes exactly BASELINE and CANDIDATE")
        pairs.append((args.files[0], args.files[1]))

    all_regressions = []
    for baseline, candidate in pairs:
        lines, regressions = diff_pair(baseline, candidate, args.threshold,
                                       tolerances)
        print("\n".join(lines))
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%:")
        for r in all_regressions:
            print(f"  {r}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BenchDiffError as e:
        print(f"bench_diff: error: {e}", file=sys.stderr)
        sys.exit(1)
