#!/usr/bin/env python3
"""Compare two BENCH_*.json artifacts and flag slowdowns.

The repo's benches emit deterministic simulated timings into
BENCH_<name>.json files ({"bench": ..., "variants": [{"name", "us",
...}]}); the committed copies at the repo root are the baselines. This
tool diffs a candidate run against them and exits non-zero when any
variant slowed down by more than the threshold — the CI perf gate.

Usage:
  bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]
  bench_diff.py --baseline-dir DIR --candidate-dir DIR [--threshold 0.10]

Directory mode pairs files by name (BENCH_foo.json <-> BENCH_foo.json).
A candidate with no matching baseline is reported but does not fail the
gate (new benches land with their first baseline); a baseline with no
candidate fails it (a bench silently stopped producing its artifact).
"""

import argparse
import json
import os
import sys


def load_bench(path):
    with open(path) as f:
        data = json.load(f)
    if "variants" not in data or not isinstance(data["variants"], list):
        raise ValueError(f"{path}: not a BENCH artifact (no 'variants' list)")
    return data


def variant_times(data):
    times = {}
    for v in data["variants"]:
        name = v.get("name")
        us = v.get("us")
        if name is None or not isinstance(us, (int, float)):
            continue
        times[name] = float(us)
    return times


def diff_pair(baseline_path, candidate_path, threshold):
    """Returns (lines, regressions) for one baseline/candidate pair."""
    base = load_bench(baseline_path)
    cand = load_bench(candidate_path)
    base_times = variant_times(base)
    cand_times = variant_times(cand)
    bench = base.get("bench", os.path.basename(baseline_path))

    lines = [f"== {bench} ({os.path.basename(candidate_path)} vs "
             f"{os.path.basename(baseline_path)})"]
    regressions = []
    width = max((len(n) for n in base_times), default=4)
    for name in sorted(set(base_times) | set(cand_times)):
        if name not in base_times:
            lines.append(f"  {name:<{width}}  (new variant, no baseline)")
            continue
        if name not in cand_times:
            lines.append(f"  {name:<{width}}  MISSING from candidate")
            regressions.append(f"{bench}/{name}: missing from candidate")
            continue
        b, c = base_times[name], cand_times[name]
        ratio = c / b if b > 0 else float("inf") if c > 0 else 1.0
        delta = 100.0 * (ratio - 1.0)
        flag = ""
        if ratio > 1.0 + threshold:
            flag = f"  REGRESSION (> {100 * threshold:.0f}%)"
            regressions.append(f"{bench}/{name}: {b:.1f}us -> {c:.1f}us "
                               f"({delta:+.1f}%)")
        elif ratio < 1.0 - threshold:
            flag = "  improvement"
        lines.append(f"  {name:<{width}}  {b:>14.1f}us -> {c:>14.1f}us "
                     f"{delta:+7.1f}%{flag}")
    return lines, regressions


def bench_files(directory):
    return {
        name: os.path.join(directory, name)
        for name in sorted(os.listdir(directory))
        if name.startswith("BENCH_") and name.endswith(".json")
    }


def main():
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json artifacts; non-zero exit on slowdowns.")
    parser.add_argument("files", nargs="*", metavar="JSON",
                        help="BASELINE CANDIDATE (pair mode)")
    parser.add_argument("--baseline-dir", help="directory of baseline BENCH_*.json")
    parser.add_argument("--candidate-dir", help="directory of candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="slowdown ratio that fails the gate (default 0.10)")
    args = parser.parse_args()

    pairs = []
    if args.baseline_dir or args.candidate_dir:
        if not (args.baseline_dir and args.candidate_dir) or args.files:
            parser.error("directory mode takes --baseline-dir and --candidate-dir, "
                         "no positional files")
        baselines = bench_files(args.baseline_dir)
        candidates = bench_files(args.candidate_dir)
        if not baselines:
            parser.error(f"no BENCH_*.json in {args.baseline_dir}")
        missing = sorted(set(baselines) - set(candidates))
        for name in sorted(set(baselines) & set(candidates)):
            pairs.append((baselines[name], candidates[name]))
        for name in sorted(set(candidates) - set(baselines)):
            print(f"note: {name} has no committed baseline (new bench?)")
        if missing:
            for name in missing:
                print(f"error: baseline {name} has no candidate artifact")
            return 1
    else:
        if len(args.files) != 2:
            parser.error("pair mode takes exactly BASELINE and CANDIDATE")
        pairs.append((args.files[0], args.files[1]))

    all_regressions = []
    for baseline, candidate in pairs:
        lines, regressions = diff_pair(baseline, candidate, args.threshold)
        print("\n".join(lines))
        all_regressions.extend(regressions)

    if all_regressions:
        print(f"\n{len(all_regressions)} regression(s) beyond "
              f"{100 * args.threshold:.0f}%:")
        for r in all_regressions:
            print(f"  {r}")
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
