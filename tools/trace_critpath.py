#!/usr/bin/env python3
"""Attribute fleet makespan from saclo-serve trace artifacts, offline.

`saclo-serve --analyze` prints this attribution live; this tool produces
the same breakdown from the archived artifacts (`--trace-out` /
`--events-out`), so a CI run or a colleague's tarball can be analyzed
without replaying anything:

  trace_critpath.py trace.json [--events events.jsonl] [--top N]

From the merged Chrome trace (pid = device, complete "X" events with
cat kernel / memcpy_h2d / memcpy_d2h / host) it reports, per device,
the busy interval-union (overlapping streams counted once), the split
across categories, and idle time against the fleet makespan. Kernel
spans are classified by route the same way the runtime does: GASPARD's
chain names its kernels KRN_*, everything else is SaC. The event log
adds what the trace alone cannot show: queue wait (job_admitted ->
first job_dispatched, real time) and preemption / failover / drain
stalls.

A missing or malformed artifact is a one-line error and exit 1, never
a traceback.
"""

import argparse
import json
import sys
from collections import defaultdict


class CritPathError(Exception):
    """A diagnosable input problem: reported as one line, exit 1."""


SPAN_CATEGORIES = ("kernel", "memcpy_h2d", "memcpy_d2h", "host")


def route_of_kernel(name):
    """GASPARD's chain names every kernel KRN_*; all else is SaC."""
    return "gaspard" if name.startswith("KRN_") else "sac"


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        raise CritPathError(f"cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        raise CritPathError(
            f"{path}: malformed {what} ({e.msg} at line {e.lineno} column {e.colno})")


def load_spans(path):
    """The X events of a merged Chrome trace, grouped by device (pid)."""
    data = load_json(path, "trace JSON")
    events = data.get("traceEvents") if isinstance(data, dict) else None
    if not isinstance(events, list):
        raise CritPathError(f"{path}: not a Chrome trace (no 'traceEvents' list)")
    spans = []
    for e in events:
        if not isinstance(e, dict) or e.get("ph") != "X":
            continue
        try:
            spans.append({
                "device": int(e.get("pid", 0)),
                "name": str(e.get("name", "?")),
                "cat": str(e.get("cat", "?")),
                "start": float(e["ts"]),
                "end": float(e["ts"]) + float(e["dur"]),
            })
        except (KeyError, TypeError, ValueError):
            raise CritPathError(f"{path}: X event without numeric ts/dur: {e}")
    if not spans:
        raise CritPathError(f"{path}: trace has no complete (ph=X) spans to attribute")
    return spans


def load_events(path):
    """events.jsonl records, skipping blank lines."""
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise CritPathError(f"cannot read {path}: {e.strerror or e}")
    records = []
    for i, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as e:
            raise CritPathError(f"{path}:{i}: malformed event line ({e.msg})")
    return records


def union_us(intervals):
    """Total covered time of possibly-overlapping [start, end) intervals."""
    total = 0.0
    end_max = None
    for start, end in sorted(intervals):
        if end_max is None or start > end_max:
            total += end - start
            end_max = end
        elif end > end_max:
            total += end - end_max
            end_max = end
    return total


def analyze(spans, events):
    devices = sorted(set(s["device"] for s in spans))
    t0 = min(s["start"] for s in spans)
    t1 = max(s["end"] for s in spans)
    makespan = t1 - t0

    per_device = {}
    stages = defaultdict(lambda: [0, 0.0])   # name -> [calls, us]
    routes = defaultdict(lambda: [0, 0.0])   # route -> [spans, us]
    for dev in devices:
        dev_spans = [s for s in spans if s["device"] == dev]
        row = {"device": dev, "busy": union_us([(s["start"], s["end"]) for s in dev_spans]),
               "stalls": defaultdict(int)}
        for cat in SPAN_CATEGORIES:
            row[cat] = sum(s["end"] - s["start"] for s in dev_spans if s["cat"] == cat)
        per_device[dev] = row
    for s in spans:
        entry = stages[(s["name"], s["cat"])]
        entry[0] += 1
        entry[1] += s["end"] - s["start"]
        if s["cat"] == "kernel":
            r = routes[route_of_kernel(s["name"])]
            r[0] += 1
            r[1] += s["end"] - s["start"]

    # Queue wait and stall counters come from the event log: admitted ->
    # first dispatch is real time the job spent waiting for a device.
    admitted, dispatched = {}, {}
    stall_names = {"job_preempted": "preempt", "device_fault": "fault",
                   "drain_started": "drain", "job_failover": "failover"}
    fleet_stalls = defaultdict(int)
    for e in events:
        kind = e.get("event")
        job = e.get("job")
        if kind == "job_admitted" and job is not None:
            admitted.setdefault(job, float(e.get("t_real_us", 0.0)))
        elif kind == "job_dispatched" and job is not None:
            dispatched.setdefault(job, float(e.get("t_real_us", 0.0)))
        elif kind in stall_names:
            fleet_stalls[stall_names[kind]] += 1
            dev = e.get("device", -1)
            if dev in per_device:
                per_device[dev]["stalls"][stall_names[kind]] += 1
    waits = [dispatched[j] - admitted[j] for j in admitted
             if j in dispatched and dispatched[j] >= admitted[j]]

    return {
        "makespan_us": makespan,
        "devices": [per_device[d] for d in devices],
        "stages": sorted(
            ({"name": n, "cat": c, "calls": v[0], "us": v[1]}
             for (n, c), v in stages.items()),
            key=lambda s: -s["us"]),
        "routes": sorted(
            ({"route": r, "spans": v[0], "us": v[1]} for r, v in routes.items()),
            key=lambda r: -r["us"]),
        "waits": waits,
        "stalls": fleet_stalls,
    }


def pct(part, whole):
    return f"{100.0 * part / whole:.1f}%" if whole > 0 else "-"


def report(result, top):
    out = [f"critical path — fleet makespan {result['makespan_us']:.1f} us", ""]
    header = ["device", "busy", "kernel", "h2d", "d2h", "host", "idle",
              "stalls (preempt/fault/drain)"]
    rows = [header]
    for d in result["devices"]:
        span = result["makespan_us"]
        idle = max(0.0, span - d["busy"])
        st = d["stalls"]
        rows.append([f"gpu{d['device']}", pct(d["busy"], span),
                     pct(d["kernel"], span), pct(d["memcpy_h2d"], span),
                     pct(d["memcpy_d2h"], span), pct(d["host"], span),
                     pct(idle, span),
                     f"{st['preempt']}/{st['fault']}/{st['drain']}"])
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    for r in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())

    waits = result["waits"]
    out.append("")
    if waits:
        out.append(f"queue wait (real): {len(waits)} jobs, "
                   f"total {sum(waits):.1f} us, "
                   f"mean {sum(waits) / len(waits):.1f} us, "
                   f"max {max(waits):.1f} us")
    else:
        out.append("queue wait: no admitted->dispatched pairs "
                   "(run with --events-out and pass --events)")
    st = result["stalls"]
    out.append(f"stalls: {st['preempt']} preemptions, {st['failover']} failovers, "
               f"{st['drain']} drains")

    if result["routes"]:
        out.append("")
        out.append("routes (kernel time):")
        for r in result["routes"]:
            out.append(f"  {r['route']:<9} {r['us']:.1f} us over {r['spans']} spans")

    out.append("")
    out.append(f"top stages (of {len(result['stages'])}):")
    total_busy = sum(d["busy"] for d in result["devices"])
    srows = [["stage", "cat", "calls", "total us", "% busy"]]
    for s in result["stages"][:top]:
        srows.append([s["name"], s["cat"], str(s["calls"]), f"{s['us']:.1f}",
                      pct(s["us"], total_busy)])
    widths = [max(len(r[i]) for r in srows) for i in range(5)]
    for r in srows:
        out.append("  " + "  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
    return "\n".join(out) + "\n"


def main():
    parser = argparse.ArgumentParser(
        description="Attribute fleet makespan from saclo-serve trace artifacts.")
    parser.add_argument("trace", help="merged Chrome trace (saclo-serve --trace-out)")
    parser.add_argument("--events", help="event log (saclo-serve --events-out) for "
                                         "queue-wait and stall attribution")
    parser.add_argument("--top", type=int, default=10,
                        help="stages to list (default 10)")
    parser.add_argument("--json", action="store_true",
                        help="emit the attribution as JSON instead of the table")
    args = parser.parse_args()
    if args.top < 1:
        raise CritPathError(f"--top must be >= 1, got {args.top}")

    spans = load_spans(args.trace)
    events = load_events(args.events) if args.events else []
    result = analyze(spans, events)
    if args.json:
        result["stalls"] = dict(result["stalls"])
        for d in result["devices"]:
            d["stalls"] = dict(d["stalls"])
        print(json.dumps(result, indent=2))
    else:
        print(report(result, args.top), end="")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except CritPathError as e:
        print(f"trace_critpath: error: {e}", file=sys.stderr)
        sys.exit(1)
