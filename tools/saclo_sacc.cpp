// saclo-sacc — the mini-SaC compiler driver.
//
// Usage:
//   saclo-sacc <file.sac> <function> [--shape d0xd1x...]... [options]
//
// One --shape per (integer array) parameter of <function>, in order.
// Options:
//   --no-wlf        disable With-Loop Folding
//   --emit=sac      print the optimised mini-SaC (default)
//   --emit=cuda     print the generated CUDA C
//   --emit=plan     print the kernel/host step plan
//   --run           run on the simulated GTX480 with a deterministic
//                   input and print a checksum plus the profile
//
// Example:
//   saclo-sacc downscaler.sac hfilter_nongeneric --shape 1080x1920 --emit=cuda --run

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"
#include "sac/typecheck.hpp"
#include "sac_cuda/codegen_text.hpp"
#include "sac_cuda/program.hpp"

using namespace saclo;

namespace {

Shape parse_shape(const std::string& text) {
  Index dims;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, 'x')) {
    dims.push_back(std::stoll(part));
  }
  return Shape(dims);
}

int usage() {
  std::fprintf(stderr,
               "usage: saclo-sacc <file.sac> <function> [--shape d0xd1]... "
               "[--no-wlf] [--emit=sac|cuda|plan] [--run]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string path = argv[1];
  const std::string fn = argv[2];
  std::vector<Shape> shapes;
  bool wlf = true;
  bool run = false;
  std::string emit = "sac";
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shape" && i + 1 < argc) {
      shapes.push_back(parse_shape(argv[++i]));
    } else if (arg.rfind("--shape=", 0) == 0) {
      shapes.push_back(parse_shape(arg.substr(8)));
    } else if (arg == "--no-wlf") {
      wlf = false;
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg == "--run") {
      run = true;
    } else {
      return usage();
    }
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "saclo-sacc: cannot open '%s'\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  try {
    const sac::Module module = sac::parse(buf.str());
    sac::typecheck(module);
    const sac::FunDef* def = module.find(fn);
    if (def == nullptr) {
      std::fprintf(stderr, "saclo-sacc: no function '%s' in %s\n", fn.c_str(), path.c_str());
      return 1;
    }
    if (shapes.size() != def->params.size()) {
      std::fprintf(stderr, "saclo-sacc: '%s' has %zu parameter(s); pass one --shape each\n",
                   fn.c_str(), def->params.size());
      return 1;
    }
    std::vector<sac::ArgSpec> args;
    for (const Shape& s : shapes) args.push_back(sac::ArgSpec::array(sac::ElemType::Int, s));

    sac::CompileOptions opts;
    opts.enable_wlf = wlf;
    sac::CompiledFunction compiled = sac::compile(module, fn, args, opts);
    std::fprintf(stderr, "[saclo-sacc] %d folds, %d splits, %d mods removed, %d dead stmts\n",
                 compiled.stats.folds, compiled.stats.generator_splits,
                 compiled.stats.mods_removed, compiled.stats.stmts_removed);

    sac_cuda::CudaProgram program = sac_cuda::CudaProgram::plan(compiled);
    if (emit == "sac") {
      std::printf("%s", sac::print(compiled.fn).c_str());
    } else if (emit == "cuda") {
      std::printf("%s", program.cuda_source().c_str());
    } else if (emit == "plan") {
      std::printf("function %s: %d kernel(s), %d host block(s)\n", fn.c_str(),
                  program.kernel_count(), program.host_block_count());
      for (const sac_cuda::Step& step : program.steps()) {
        if (step.kind == sac_cuda::Step::Kind::Kernels) {
          std::printf("  kernels -> %s  (frame %s)\n", step.group.target.c_str(),
                      step.group.frame.to_string().c_str());
          for (const sac_cuda::GenKernel& k : step.group.kernels) {
            std::printf("    %-24s threads=%-10lld stride=%lld\n", k.name.c_str(),
                        static_cast<long long>(k.threads),
                        static_cast<long long>(k.cost.warp_access_stride));
          }
        } else {
          std::printf("  host block (%zu stmt(s))\n", step.host.stmt_indices.size());
        }
      }
    } else {
      return usage();
    }

    if (run) {
      gpu::VirtualGpu device(gpu::gtx480());
      gpu::cuda::Runtime runtime(device);
      gpu::Profiler host_profiler;
      std::vector<sac::Value> values;
      for (const Shape& s : shapes) {
        values.push_back(sac::Value(IntArray::generate(
            s, [](const Index& i) { return (i[0] * 31 + (i.size() > 1 ? i[1] : 0) * 7) % 256; })));
      }
      const sac::Value result =
          program.run(runtime, values, gpu::i7_930(), host_profiler, true);
      std::int64_t checksum = 0;
      for (std::int64_t i = 0; i < result.ints().elements(); ++i) checksum += result.ints()[i];
      std::printf("\n[run] result shape %s, checksum %lld\n",
                  result.shape().to_string().c_str(), static_cast<long long>(checksum));
      std::printf("%s", device.profiler().table().c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "saclo-sacc: %s\n", e.what());
    return 1;
  }
  return 0;
}
