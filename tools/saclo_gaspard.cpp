// saclo-gaspard — the GASPARD2-style chain driver for the built-in
// downscaler model.
//
// Usage:
//   saclo-gaspard [--height H] [--width W] [--emit=opencl|schedule|buffers] [--run FRAMES]
//
// Builds the paper's hierarchical Downscaler model for the given frame
// geometry, flattens it, runs the transformation chain and prints the
// requested artefact.

#include <cstdio>
#include <string>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/pipelines.hpp"

using namespace saclo;
using namespace saclo::apps;

int main(int argc, char** argv) {
  DownscalerConfig cfg = DownscalerConfig::paper();
  std::string emit = "schedule";
  int run_frames = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--height" && i + 1 < argc) {
      cfg.height = std::stoll(argv[++i]);
    } else if (arg == "--width" && i + 1 < argc) {
      cfg.width = std::stoll(argv[++i]);
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg == "--run" && i + 1 < argc) {
      run_frames = std::stoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: saclo-gaspard [--height H] [--width W] "
                   "[--emit=opencl|schedule|buffers] [--run FRAMES]\n");
      return 2;
    }
  }

  try {
    cfg.validate();
    aol::Model model = build_hierarchical_downscaler(cfg).flatten();
    gaspard::OpenClApplication app = gaspard::OpenClApplication::build(model);

    if (emit == "opencl") {
      std::printf("%s", app.opencl_source().c_str());
    } else if (emit == "buffers") {
      for (const gaspard::BufferPlan& b : app.buffers()) {
        std::printf("%-16s %-14s %8lld bytes%s%s\n", b.array.c_str(),
                    b.shape.to_string().c_str(),
                    static_cast<long long>(b.shape.elements() * 4),
                    b.is_input ? "  [input]" : "", b.is_output ? "  [output]" : "");
      }
    } else if (emit == "schedule") {
      std::printf("model '%s': %zu arrays, %zu tasks\n", model.name().c_str(),
                  model.arrays().size(), model.tasks().size());
      for (aol::TaskId t : app.schedule()) {
        const aol::RepetitiveTask& task = model.tasks()[t];
        std::printf("  %-10s repetition %-14s IP %s\n", task.name.c_str(),
                    task.repetition.to_string().c_str(), task.op.name.c_str());
      }
    } else {
      std::fprintf(stderr, "unknown --emit '%s'\n", emit.c_str());
      return 2;
    }

    if (run_frames > 0) {
      gpu::VirtualGpu device(gpu::gtx480());
      gpu::opencl::CommandQueue queue(device);
      for (int f = 0; f < run_frames; ++f) {
        std::map<std::string, IntArray> inputs;
        int ch = 0;
        for (const std::string& in : model.inputs()) {
          inputs.emplace(in, synthetic_channel(cfg.frame_shape(), f, ch++));
        }
        app.run(queue, inputs, /*execute=*/f == 0);
      }
      std::printf("\n[run] %d frame(s), simulated profile:\n%s", run_frames,
                  device.profiler().table().c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "saclo-gaspard: %s\n", e.what());
    return 1;
  }
  return 0;
}
