// The paper's running example on the SaC route: H.263 downscaling of
// synthetic RGB video, compiled from the generated mini-SaC module and
// executed on the simulated GPU in all four Figure 9 variants.
//
//   $ ./example_downscaler_sac [out.ppm]
//
// Writes the downscaled first frame as a PPM image (the
// FrameConstructor stand-in), prints per-variant timings at a reduced
// frame size, and the full Table II reproduction is in
// bench_table2_sac.

#include <cstdio>

#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/pipelines.hpp"

using namespace saclo;
using namespace saclo::apps;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "downscaled_sac.ppm";
  const DownscalerConfig cfg = DownscalerConfig::small();
  std::printf("downscaler: %lldx%lld -> %lldx%lld (H: %lld->%lld per %lld, V: %lld->%lld)\n\n",
              static_cast<long long>(cfg.height), static_cast<long long>(cfg.width),
              static_cast<long long>(cfg.out_height()), static_cast<long long>(cfg.mid_width()),
              static_cast<long long>(cfg.h.in_pattern), static_cast<long long>(cfg.h.tile()),
              static_cast<long long>(cfg.h.paving), static_cast<long long>(cfg.v.in_pattern),
              static_cast<long long>(cfg.v.tile()));

  SacDownscaler::Options ng_opts;
  SacDownscaler::Options g_opts;
  g_opts.generic = true;
  SacDownscaler nongeneric(cfg, ng_opts);
  SacDownscaler generic(cfg, g_opts);

  std::printf("kernels per filter invocation (non-generic): H=%d V=%d\n",
              nongeneric.h_kernels(), nongeneric.v_kernels());
  std::printf("host-executed blocks (generic H filter): %d — the for-loop output tiler\n\n",
              generic.h_program().host_block_count());

  const int frames = 30;
  auto seq_ng = nongeneric.run_seq(frames, 1);
  auto seq_g = generic.run_seq(frames, 0);
  auto cuda_ng_h = nongeneric.run_cuda_filter(true, frames, 1);
  auto cuda_ng_v = nongeneric.run_cuda_filter(false, frames, 1);
  auto cuda_g_h = generic.run_cuda_filter(true, frames, 1);
  auto cuda_g_v = generic.run_cuda_filter(false, frames, 1);

  std::printf("simulated filter times, %d iterations (H / V):\n", frames);
  std::printf("  SAC-Seq  Non-Generic : %8.1f ms / %8.1f ms\n", seq_ng.h_us / 1e3,
              seq_ng.v_us / 1e3);
  std::printf("  SAC-Seq  Generic     : %8.1f ms / %8.1f ms\n", seq_g.h_us / 1e3,
              seq_g.v_us / 1e3);
  std::printf("  SAC-CUDA Non-Generic : %8.1f ms / %8.1f ms\n",
              cuda_ng_h.ops.total_us() / 1e3, cuda_ng_v.ops.total_us() / 1e3);
  std::printf("  SAC-CUDA Generic     : %8.1f ms / %8.1f ms  (d2h %.1f ms + host tiler %.1f ms)\n",
              cuda_g_h.ops.total_us() / 1e3, cuda_g_v.ops.total_us() / 1e3,
              cuda_g_h.ops.d2h_us / 1e3, cuda_g_h.ops.host_us / 1e3);

  // Full RGB chain for one frame, writing the result image.
  auto chain = nongeneric.run_cuda_chain(1, 3, 1);
  std::printf("\nper-frame RGB chain profile:\n%s\n", chain.nvprof_table.c_str());

  // Reassemble the channels for the PPM (re-run per channel).
  gpu::VirtualGpu device(gpu::gtx480());
  gpu::cuda::Runtime rt(device);
  gpu::Profiler host_profiler;
  RgbFrame out;
  IntArray* channels[3] = {&out.r, &out.g, &out.b};
  for (int ch = 0; ch < 3; ++ch) {
    sac::Value frame(synthetic_channel(cfg.frame_shape(), 0, ch));
    sac::Value mid = const_cast<sac_cuda::CudaProgram&>(nongeneric.h_program())
                         .run(rt, {frame}, gpu::i7_930(), host_profiler, true);
    sac::Value res = const_cast<sac_cuda::CudaProgram&>(nongeneric.v_program())
                         .run(rt, {mid}, gpu::i7_930(), host_profiler, true);
    *channels[ch] = res.ints();
  }
  write_ppm(out_path, out);
  std::printf("wrote %s (%lldx%lld)\n", out_path.c_str(),
              static_cast<long long>(out.r.shape()[1]),
              static_cast<long long>(out.r.shape()[0]));
  return 0;
}
