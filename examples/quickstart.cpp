// Quickstart: compile a small mini-SaC program to (simulated) CUDA,
// inspect the generated kernel source, run it, and read the profiler.
//
//   $ ./example_quickstart
//
// This walks the whole public API surface in ~100 lines:
//   parse -> typecheck -> compile (specialise + WLF) -> plan CUDA
//   program -> run on the simulated GTX480.

#include <cstdio>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"
#include "sac/typecheck.hpp"
#include "sac_cuda/codegen_text.hpp"
#include "sac_cuda/program.hpp"

using namespace saclo;

int main() {
  // A tiny data-parallel program: a 1-D blur followed by a threshold.
  // The two with-loops fuse under With-Loop Folding.
  const char* source = R"(
int[*] blur_threshold(int[*] v) {
  n = shape(v)[0];
  blurred = with {
    ([1] <= [i] < [1023]) : (v[[i - 1]] + v[[i]] + v[[i + 1]]) / 3;
  } : genarray([1024], 0);
  out = with {
    (. <= [i] <= .) : min(blurred[[i]], 200);
  } : genarray([1024]);
  return (out);
}
)";

  std::printf("=== 1. Parse and typecheck ===\n");
  const sac::Module module = sac::parse(source);
  sac::typecheck(module);
  std::printf("parsed %zu function(s)\n\n", module.functions.size());

  std::printf("=== 2. Compile (specialise for int[1024], run WLF) ===\n");
  sac::CompiledFunction compiled = sac::compile(
      module, "blur_threshold", {sac::ArgSpec::array(sac::ElemType::Int, Shape{1024})});
  std::printf("WLF folds: %d, generator splits: %d\n\n", compiled.stats.folds,
              compiled.stats.generator_splits);
  std::printf("--- optimised mini-SaC ---\n%s\n", sac::print(compiled.fn).c_str());

  std::printf("=== 3. Plan the CUDA program ===\n");
  sac_cuda::CudaProgram program = sac_cuda::CudaProgram::plan(compiled);
  std::printf("kernels: %d, host blocks: %d\n\n", program.kernel_count(),
              program.host_block_count());
  std::printf("--- generated CUDA C ---\n%s\n", program.cuda_source().c_str());

  std::printf("=== 4. Run on the simulated GTX480 ===\n");
  gpu::VirtualGpu device(gpu::gtx480());
  gpu::cuda::Runtime runtime(device);
  gpu::Profiler host_profiler;

  const IntArray input =
      IntArray::generate(Shape{1024}, [](const Index& i) { return (i[0] * 7) % 256; });
  const sac::Value result =
      program.run(runtime, {sac::Value(input)}, gpu::i7_930(), host_profiler, true);

  std::printf("result shape: %s; result[500..504] =", result.shape().to_string().c_str());
  for (std::int64_t i = 500; i < 505; ++i) {
    std::printf(" %lld", static_cast<long long>(result.ints()[i]));
  }
  std::printf("\n\n--- simulated GPU profile ---\n%s\n", device.profiler().table().c_str());

  // Cross-check against the reference interpreter.
  const sac::Value expected = sac::run_function(module, "blur_threshold", {sac::Value(input)});
  std::printf("matches the reference interpreter: %s\n",
              expected == result ? "yes" : "NO (bug!)");
  return expected == result ? 0 : 1;
}
