// Tiler playground: visualises ArrayOL tiler specifications — how
// origin/fitting/paving cover an array with patterns — as ASCII maps.
//
//   $ ./example_tiler_playground
//
// Useful for building intuition for the paper's Section IV formulas:
//   e(r, i) = (o + P.r + F.i) mod s_array

#include <cstdio>

#include "core/tiler.hpp"

using namespace saclo;

namespace {

void show(const char* title, const TilerSpec& spec, const Shape& array_shape,
          const Shape& pattern, const Shape& repetition) {
  std::printf("--- %s ---\n", title);
  std::printf("%s\n", spec.to_string().c_str());
  std::printf("array %s, pattern %s, repetition %s\n", array_shape.to_string().c_str(),
              pattern.to_string().c_str(), repetition.to_string().c_str());
  const IntArray cover = coverage_map(spec, array_shape, pattern, repetition);
  std::printf("coverage map ('.'=0 reads, digits=read count):\n");
  for (std::int64_t r = 0; r < array_shape[0]; ++r) {
    for (std::int64_t c = 0; c < array_shape[1]; ++c) {
      const std::int64_t n = cover.at({r, c});
      std::printf("%c", n == 0 ? '.' : static_cast<char>('0' + (n > 9 ? 9 : n)));
    }
    std::printf("\n");
  }
  std::printf("exact partition: %s\n\n",
              is_exact_partition(spec, array_shape, pattern, repetition) ? "yes" : "no");
}

}  // namespace

int main() {
  // 1. The downscaler's horizontal INPUT tiler (overlapping patterns,
  //    wrap-around at the right edge): 11-wide patterns every 8 columns.
  {
    TilerSpec t;
    t.origin = {0, 0};
    t.fitting = IntMat{{0}, {1}};
    t.paving = IntMat{{1, 0}, {0, 8}};
    show("downscaler horizontal input tiler (overlap + wrap)", t, Shape{4, 32}, Shape{11},
         Shape{4, 4});
  }

  // 2. The matching OUTPUT tiler: an exact partition into tiles of 3.
  {
    TilerSpec t;
    t.origin = {0, 0};
    t.fitting = IntMat{{0}, {1}};
    t.paving = IntMat{{1, 0}, {0, 3}};
    show("downscaler horizontal output tiler (partition)", t, Shape{4, 12}, Shape{3},
         Shape{4, 4});
  }

  // 3. 2-D block tiling: fitting = identity, paving = diag(block).
  {
    TilerSpec t;
    t.origin = {0, 0};
    t.fitting = IntMat{{1, 0}, {0, 1}};
    t.paving = IntMat{{4, 0}, {0, 4}};
    show("4x4 block tiler", t, Shape{8, 16}, Shape{4, 4}, Shape{2, 4});
  }

  // 4. A diagonal (skewed) tiler: paving mixes both dimensions.
  {
    TilerSpec t;
    t.origin = {0, 0};
    t.fitting = IntMat{{0}, {1}};
    t.paving = IntMat{{1, 1}, {0, 4}};
    show("skewed tiler (paving mixes dimensions, wraps modulo the array)", t, Shape{6, 16},
         Shape{4}, Shape{6, 4});
  }

  // 5. Strided sampling: fitting stride 2 spreads the pattern.
  {
    TilerSpec t;
    t.origin = {1, 0};
    t.fitting = IntMat{{0}, {2}};
    t.paving = IntMat{{2, 0}, {0, 8}};
    show("strided sampling tiler (origin offset + fitting stride 2)", t, Shape{8, 16},
         Shape{4}, Shape{4, 2});
  }
  return 0;
}
