// WLF explorer: shows the paper's central compiler transformation —
// With-Loop Folding — on the downscaler pipeline, before and after.
//
//   $ ./example_wlf_explorer
//
// Reproduces the Figure 4 -> Figure 8 journey: the three-stage
// gather/compute/scatter pipeline collapses into one multi-generator
// with-loop, the `% shape` wrap-arounds split off boundary generators,
// and the generic (for-loop) output tiler demonstrably blocks it all.

#include <cstdio>

#include "apps/downscaler/config.hpp"
#include "apps/downscaler/sac_source.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"

using namespace saclo;
using namespace saclo::apps;

namespace {

void show(const char* title, const sac::CompiledFunction& cf) {
  std::printf("=== %s ===\n", title);
  std::printf("stats: %d folds, %d splits, %d mods removed, %d modarrays converted, "
              "%d stmts removed\n\n",
              cf.stats.folds, cf.stats.generator_splits, cf.stats.mods_removed,
              cf.stats.modarrays_converted, cf.stats.stmts_removed);
  std::printf("%s\n", sac::print(cf.fn).c_str());
}

}  // namespace

int main() {
  // A readable size: 18x32 frames.
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  const sac::Module module = sac::parse(downscaler_sac_source(cfg));

  std::printf("### The source program (paper Figures 4-7) ###\n\n%s\n",
              downscaler_sac_source(cfg).c_str());

  sac::CompileOptions no_wlf;
  no_wlf.enable_wlf = false;
  show("hfilter_nongeneric, WLF disabled (three separate with-loops)",
       sac::compile(module, "hfilter_nongeneric",
                    {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())}, no_wlf));

  show("hfilter_nongeneric, WLF enabled (one fused with-loop, boundary splits — Figure 8)",
       sac::compile(module, "hfilter_nongeneric",
                    {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())}));

  show("hfilter_generic, WLF enabled (the for-loop tiler survives on the host)",
       sac::compile(module, "hfilter_generic",
                    {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())}));
  return 0;
}
