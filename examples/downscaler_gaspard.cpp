// The paper's running example on the GASPARD2 route: the ArrayOL
// downscaler model (Figure 3/10) pushed through the transformation
// chain to OpenCL and executed on the simulated GPU.
//
//   $ ./example_downscaler_gaspard [out.ppm]

#include <cstdio>

#include "apps/downscaler/arrayol_model.hpp"
#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/pipelines.hpp"

using namespace saclo;
using namespace saclo::apps;

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "downscaled_gaspard.ppm";
  const DownscalerConfig cfg = DownscalerConfig::small();

  std::printf("=== 1. The ArrayOL model (MARTE RSM equivalent) ===\n");
  aol::Model model = build_downscaler_model(cfg);
  std::printf("model '%s': %zu arrays, %zu repetitive tasks\n", model.name().c_str(),
              model.arrays().size(), model.tasks().size());
  for (const aol::RepetitiveTask& t : model.tasks()) {
    std::printf("  task %-4s repetition %-12s in pattern %-6s out pattern %s\n",
                t.name.c_str(), t.repetition.to_string().c_str(),
                t.inputs[0].pattern.to_string().c_str(),
                t.outputs[0].pattern.to_string().c_str());
  }
  std::printf("\ntiler of task '%s' input: %s\n", model.tasks()[0].name.c_str(),
              model.tasks()[0].inputs[0].tiler.to_string().c_str());

  std::printf("\n=== 2. The transformation chain: validate -> schedule -> codegen ===\n");
  gaspard::OpenClApplication app = gaspard::OpenClApplication::build(model);
  std::printf("generated %zu OpenCL kernels, %zu device buffers\n\n", app.kernels().size(),
              app.buffers().size());
  std::printf("--- first generated kernel (Figure 11 style) ---\n%s\n",
              app.kernels()[0].opencl_source.c_str());

  std::printf("=== 3. Execute on the simulated GTX480 ===\n");
  GaspardDownscaler::Options opts;
  GaspardDownscaler pipeline(cfg, opts);
  auto result = pipeline.run(/*frames=*/30, /*exec_frames=*/1);
  std::printf("%s\n", result.nvprof_table.c_str());

  // Write the first executed frame.
  gpu::VirtualGpu device(gpu::gtx480());
  gpu::opencl::CommandQueue queue(device);
  std::map<std::string, IntArray> inputs;
  inputs.emplace("frame_r", synthetic_channel(cfg.frame_shape(), 0, 0));
  inputs.emplace("frame_g", synthetic_channel(cfg.frame_shape(), 0, 1));
  inputs.emplace("frame_b", synthetic_channel(cfg.frame_shape(), 0, 2));
  auto outputs = app.run(queue, inputs, true);
  RgbFrame out{outputs.at("out_r"), outputs.at("out_g"), outputs.at("out_b")};
  write_ppm(out_path, out);
  std::printf("wrote %s (%lldx%lld)\n", out_path.c_str(),
              static_cast<long long>(out.r.shape()[1]),
              static_cast<long long>(out.r.shape()[0]));
  return 0;
}
