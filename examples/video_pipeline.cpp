// End-to-end video pipeline: the paper's 25 fps scenario in miniature.
// Generates a synthetic clip, downscales every frame through the SaC
// route on the simulated GPU, computes per-frame statistics with the
// prelude's fold-based reductions, and writes the first/last frames as
// PPM images.
//
//   $ ./example_video_pipeline [frames] [outdir]

#include <cstdio>
#include <string>

#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/pipelines.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/stdlib.hpp"
#include "sac/typecheck.hpp"

using namespace saclo;
using namespace saclo::apps;

int main(int argc, char** argv) {
  const int frames = argc > 1 ? std::atoi(argv[1]) : 24;
  const std::string outdir = argc > 2 ? argv[2] : "/tmp";
  const DownscalerConfig cfg = DownscalerConfig::small();

  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);

  // Per-frame statistics in mini-SaC, using the prelude.
  sac::Module stats_mod = sac::parse(R"(
int[*] frame_stats(int[*] frame) {
  h = shape(frame)[0];
  w = shape(frame)[1];
  flat = with { ([0] <= [i] < [h * w]) : frame[[i / w, i % w]]; } : genarray([h * w]);
  s = [vmin(flat), vmax(flat), vsum(flat) / (h * w)];
  return (s);
}
)");
  sac::link_prelude(stats_mod);
  sac::typecheck(stats_mod);

  gpu::VirtualGpu device(gpu::gtx480());
  gpu::cuda::Runtime rt(device);
  gpu::Profiler host_profiler;

  std::printf("downscaling %d frames %lldx%lld -> %lldx%lld...\n", frames,
              static_cast<long long>(cfg.height), static_cast<long long>(cfg.width),
              static_cast<long long>(cfg.out_height()), static_cast<long long>(cfg.mid_width()));
  RgbFrame first_out;
  RgbFrame last_out;
  for (int f = 0; f < frames; ++f) {
    RgbFrame out;
    IntArray* channels[3] = {&out.r, &out.g, &out.b};
    for (int ch = 0; ch < 3; ++ch) {
      sac::Value frame(synthetic_channel(cfg.frame_shape(), f, ch));
      sac::Value mid = const_cast<sac_cuda::CudaProgram&>(sac.h_program())
                           .run(rt, {frame}, gpu::i7_930(), host_profiler, true);
      sac::Value res = const_cast<sac_cuda::CudaProgram&>(sac.v_program())
                           .run(rt, {mid}, gpu::i7_930(), host_profiler, true);
      *channels[ch] = res.ints();
    }
    const sac::Value stats =
        sac::run_function(stats_mod, "frame_stats", {sac::Value(out.g)});
    if (f % 6 == 0 || f == frames - 1) {
      std::printf("  frame %3d: green channel min=%lld max=%lld mean=%lld\n", f,
                  static_cast<long long>(stats.ints()[0]),
                  static_cast<long long>(stats.ints()[1]),
                  static_cast<long long>(stats.ints()[2]));
    }
    if (f == 0) first_out = out;
    if (f == frames - 1) last_out = out;
  }

  write_ppm(outdir + "/clip_first.ppm", first_out);
  write_ppm(outdir + "/clip_last.ppm", last_out);
  std::printf("\nwrote %s/clip_first.ppm and %s/clip_last.ppm\n", outdir.c_str(),
              outdir.c_str());
  std::printf("\nsimulated GPU profile over the whole clip:\n%s",
              device.profiler().table().c_str());
  const double total_s = device.clock_us() / 1e6;
  std::printf("\nsimulated GPU time per frame: %.2f ms (%0.1f fps equivalent)\n",
              1e3 * total_s / frames, frames / total_s);
  return 0;
}
