// Beyond the paper's domain: dense matrix multiplication in mini-SaC,
// compiled to simulated CUDA. Shows that the general-purpose route
// handles workloads the signal-processing DSL was never meant for —
// the "albeit being general purpose" argument of the paper's abstract.
//
//   $ ./example_matmul
//
// The inner dot product is a fold with-loop; the backend unrolls it
// inside the generated kernel (one thread per output element).

#include <cstdio>

#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/typecheck.hpp"
#include "sac_cuda/codegen_text.hpp"
#include "sac_cuda/program.hpp"

using namespace saclo;

namespace {

constexpr std::int64_t kN = 96;
constexpr std::int64_t kK = 64;
constexpr std::int64_t kM = 80;

const char* kSource = R"(
int[*] matmul(int[*] a, int[*] b) {
  n = shape(a)[0];
  k = shape(a)[1];
  m = shape(b)[1];
  c = with {
    ([0,0] <= [i,j] < [n,m] ) {
      acc = with { ([0] <= [p] < [k]) : a[[i,p]] * b[[p,j]]; } : fold(+, 0);
    } : acc;
  } : genarray([n,m]);
  return (c);
}

int[*] matmul_transposed_sum(int[*] a, int[*] b) {
  c = matmul(a, b);
  t = with { (. <= [i,j] <= .) : c[[j,i]] + c[[i,j]]; } : genarray(shape(c));
  return (t);
}
)";

}  // namespace

int main() {
  const sac::Module module = sac::parse(kSource);
  sac::typecheck(module);

  sac::CompiledFunction compiled = sac::compile(
      module, "matmul",
      {sac::ArgSpec::array(sac::ElemType::Int, Shape{kN, kK}),
       sac::ArgSpec::array(sac::ElemType::Int, Shape{kK, kM})});
  sac_cuda::CudaProgram program = sac_cuda::CudaProgram::plan(compiled);
  std::printf("matmul %lldx%lld * %lldx%lld: %d kernel(s), %d host block(s)\n",
              static_cast<long long>(kN), static_cast<long long>(kK),
              static_cast<long long>(kK), static_cast<long long>(kM), program.kernel_count(),
              program.host_block_count());
  for (const sac_cuda::Step& step : program.steps()) {
    if (step.kind != sac_cuda::Step::Kind::Kernels) continue;
    for (const sac_cuda::GenKernel& k : step.group.kernels) {
      std::printf("  kernel %-18s threads=%-8lld flops/thread=%.0f loads/thread=%.0f\n",
                  k.name.c_str(), static_cast<long long>(k.threads), k.cost.flops_per_thread,
                  k.cost.global_loads_per_thread);
    }
  }

  gpu::VirtualGpu device(gpu::gtx480());
  gpu::cuda::Runtime runtime(device);
  gpu::Profiler host_profiler;

  const IntArray a =
      IntArray::generate(Shape{kN, kK}, [](const Index& i) { return (i[0] + 2 * i[1]) % 17; });
  const IntArray b =
      IntArray::generate(Shape{kK, kM}, [](const Index& i) { return (3 * i[0] + i[1]) % 13; });

  const sac::Value result =
      program.run(runtime, {sac::Value(a), sac::Value(b)}, gpu::i7_930(), host_profiler, true);

  // Verify against a straight C++ triple loop.
  IntArray expected(Shape{kN, kM});
  for (std::int64_t i = 0; i < kN; ++i) {
    for (std::int64_t j = 0; j < kM; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < kK; ++p) acc += a.at({i, p}) * b.at({p, j});
      expected.at({i, j}) = acc;
    }
  }
  std::printf("\nsimulated GPU result matches native C++ matmul: %s\n",
              result.ints() == expected ? "yes" : "NO (bug!)");
  std::printf("\n%s\n", device.profiler().table().c_str());

  // The composed variant exercises function inlining + a second kernel.
  sac::CompiledFunction composed = sac::compile(
      module, "matmul_transposed_sum",
      {sac::ArgSpec::array(sac::ElemType::Int, Shape{kN, kK}),
       sac::ArgSpec::array(sac::ElemType::Int, Shape{kK, kN})});
  sac_cuda::CudaProgram program2 = sac_cuda::CudaProgram::plan(composed);
  const IntArray b2 =
      IntArray::generate(Shape{kK, kN}, [](const Index& i) { return (i[0] * i[1]) % 7; });
  const sac::Value r2 = program2.run(runtime, {sac::Value(a), sac::Value(b2)}, gpu::i7_930(),
                                     host_profiler, true);
  const sac::Value r2_ref =
      sac::run_function(module, "matmul_transposed_sum", {sac::Value(a), sac::Value(b2)});
  std::printf("composed matmul+transpose matches the interpreter: %s\n",
              r2 == r2_ref ? "yes" : "NO (bug!)");
  return (result.ints() == expected && r2 == r2_ref) ? 0 : 1;
}
