// Ablation of asynchronous multi-stream issue: the double-buffered
// frame loop overlaps frame k+1's upload and frame k-1's download with
// frame k's kernels, on both the SaC route (CUDA streams) and the
// GASPARD2 route (OpenCL command queues). Since transfers are ~50% of
// the synchronous totals (Tables I/II), hiding them roughly halves the
// wall clock — but it cannot hide the generic output tiler, whose
// device<->host round trip sits in the compute-critical path. The
// generic-vs-non-generic penalty therefore shrinks in absolute terms
// and *grows* in relative terms under overlap.

#include <benchmark/benchmark.h>

#include <fstream>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

struct RouteTotals {
  double sync_us = 0;
  double async_us = 0;
  std::string timeline;
  std::string trace_json;
};

RouteTotals sac_route(bool generic) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options opts;
  opts.generic = generic;
  SacDownscaler sync_ds(cfg, opts);
  opts.async_streams = true;
  opts.capture_trace = true;
  SacDownscaler async_ds(cfg, opts);
  RouteTotals t;
  t.sync_us = sync_ds.run_cuda_chain(kFrames, kChannels, 0).wall_us;
  auto r = async_ds.run_cuda_chain(kFrames, kChannels, 0);
  t.async_us = r.wall_us;
  t.timeline = r.timeline;
  t.trace_json = r.trace_json;
  return t;
}

RouteTotals gaspard_route() {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  GaspardDownscaler::Options opts;
  GaspardDownscaler sync_ds(cfg, opts);
  opts.async_streams = true;
  GaspardDownscaler async_ds(cfg, opts);
  RouteTotals t;
  t.sync_us = sync_ds.run(kFrames, 0).wall_us;
  auto r = async_ds.run(kFrames, 0);
  t.async_us = r.wall_us;
  t.timeline = r.timeline;
  return t;
}

void overlap_comparison() {
  print_header("Streams ablation — synchronous vs double-buffered async (300 RGB frames)");
  const RouteTotals sac_ng = sac_route(/*generic=*/false);
  const RouteTotals sac_g = sac_route(/*generic=*/true);
  const RouteTotals gaspard = gaspard_route();

  std::printf("%-28s %12s %12s %10s\n", "route", "sync(s)", "async(s)", "speedup");
  auto row = [](const char* label, const RouteTotals& t) {
    std::printf("%-28s %9.2f s  %9.2f s  %8.2fx\n", label, t.sync_us / 1e6, t.async_us / 1e6,
                t.sync_us / t.async_us);
  };
  row("SAC-CUDA non-generic", sac_ng);
  row("SAC-CUDA generic", sac_g);
  row("GASPARD2 OpenCL", gaspard);

  const double sync_penalty = sac_g.sync_us / sac_ng.sync_us;
  const double async_penalty = sac_g.async_us / sac_ng.async_us;
  std::printf("\ngeneric/non-generic penalty: sync %.2fx -> async %.2fx\n", sync_penalty,
              async_penalty);
  std::printf("Overlap hides the frame transfers but not the generic tiler's\n"
              "device->host->device round trip, which stays on the critical path:\n"
              "the absolute gap shrinks, the relative penalty grows.\n");

  print_header("Per-stream timeline — SAC-CUDA non-generic, async");
  std::printf("%s", sac_ng.timeline.c_str());
  print_header("Per-stream timeline — SAC-CUDA generic, async");
  std::printf("%s", sac_g.timeline.c_str());
  print_header("Per-stream timeline — GASPARD2, async");
  std::printf("%s", gaspard.timeline.c_str());

  std::ofstream("streams_trace_sac.json") << sac_ng.trace_json;
  std::printf("\nwrote streams_trace_sac.json (open in chrome://tracing or Perfetto)\n");

  BenchJson out("ablation_streams");
  out.variant("sac_nongeneric_sync", sac_ng.sync_us);
  out.variant("sac_nongeneric_async", sac_ng.async_us);
  out.variant("sac_generic_sync", sac_g.sync_us);
  out.variant("sac_generic_async", sac_g.async_us);
  out.variant("gaspard_sync", gaspard.sync_us);
  out.variant("gaspard_async", gaspard.async_us);
  out.scalar("generic_penalty_sync", sync_penalty);
  out.scalar("generic_penalty_async", async_penalty);
  out.write();
}

void BM_SacChainSync(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  SacDownscaler::Options opts;
  opts.workers = 1;
  SacDownscaler ds(cfg, opts);
  for (auto _ : state) {
    auto r = ds.run_cuda_chain(4, kChannels, 0);
    benchmark::DoNotOptimize(r.wall_us);
  }
}
BENCHMARK(BM_SacChainSync);

void BM_SacChainAsync(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  SacDownscaler::Options opts;
  opts.workers = 1;
  opts.async_streams = true;
  SacDownscaler ds(cfg, opts);
  for (auto _ : state) {
    auto r = ds.run_cuda_chain(4, kChannels, 0);
    benchmark::DoNotOptimize(r.wall_us);
  }
}
BENCHMARK(BM_SacChainAsync);

void BM_GaspardChainAsync(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  GaspardDownscaler::Options opts;
  opts.workers = 1;
  opts.async_streams = true;
  GaspardDownscaler ds(cfg, opts);
  for (auto _ : state) {
    auto r = ds.run(4, 0);
    benchmark::DoNotOptimize(r.wall_us);
  }
}
BENCHMARK(BM_GaspardChainAsync);

}  // namespace

int main(int argc, char** argv) {
  overlap_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
