// Micro-benchmarks (real wall time) of the library components that do
// run natively on this machine: tiler gather/scatter, the mini-SaC
// frontend and optimiser, the kernel tape VM, the functional executor
// and the ArrayOL reference evaluator.

#include <benchmark/benchmark.h>

#include "apps/downscaler/arrayol_model.hpp"
#include "bench_support.hpp"
#include "apps/downscaler/frames.hpp"
#include "apps/downscaler/sac_source.hpp"
#include "core/tiler.hpp"
#include "gpu/executor.hpp"
#include "gpu/sim_gpu.hpp"
#include "sac/interp.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/typecheck.hpp"

using namespace saclo;
using namespace saclo::apps;

namespace {

void BM_TilerGather(benchmark::State& state) {
  const std::int64_t h = state.range(0);
  const IntArray frame =
      IntArray::generate(Shape{h, 1920}, [](const Index& i) { return i[0] + i[1]; });
  TilerSpec t;
  t.origin = {0, 0};
  t.fitting = IntMat{{0}, {1}};
  t.paving = IntMat{{1, 0}, {0, 8}};
  for (auto _ : state) {
    IntArray tiles = gather(frame, t, Shape{11}, Shape{h, 240});
    benchmark::DoNotOptimize(tiles.elements());
  }
  state.SetItemsProcessed(state.iterations() * h * 240 * 11);
}
BENCHMARK(BM_TilerGather)->Arg(16)->Arg(64)->Arg(270);

void BM_TilerScatter(benchmark::State& state) {
  const std::int64_t h = state.range(0);
  TilerSpec t;
  t.origin = {0, 0};
  t.fitting = IntMat{{0}, {1}};
  t.paving = IntMat{{1, 0}, {0, 3}};
  const IntArray tiles(Shape{h, 240, 3}, 7);
  IntArray out(Shape{h, 720});
  for (auto _ : state) {
    scatter(out, tiles, t, Shape{3}, Shape{h, 240});
    benchmark::DoNotOptimize(out.elements());
  }
  state.SetItemsProcessed(state.iterations() * h * 720);
}
BENCHMARK(BM_TilerScatter)->Arg(16)->Arg(270);

void BM_LexParseDownscaler(benchmark::State& state) {
  const std::string src = downscaler_sac_source(DownscalerConfig::paper());
  for (auto _ : state) {
    sac::Module m = sac::parse(src);
    benchmark::DoNotOptimize(m.functions.size());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(src.size()));
}
BENCHMARK(BM_LexParseDownscaler);

void BM_Typecheck(benchmark::State& state) {
  const sac::Module m = sac::parse(downscaler_sac_source(DownscalerConfig::paper()));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sac::typecheck(m));
  }
}
BENCHMARK(BM_Typecheck);

void BM_CompileWithWlf(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  const sac::Module m = sac::parse(downscaler_sac_source(cfg));
  for (auto _ : state) {
    auto cf = sac::compile(m, "hfilter_nongeneric",
                           {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())});
    benchmark::DoNotOptimize(cf.stats.folds);
  }
}
BENCHMARK(BM_CompileWithWlf);

void BM_InterpTinyFilter(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  const sac::Module m = sac::parse(downscaler_sac_source(cfg));
  const IntArray frame = synthetic_channel(cfg.frame_shape(), 0, 0);
  for (auto _ : state) {
    sac::Value v = sac::run_function(m, "hfilter_nongeneric", {sac::Value(frame)});
    benchmark::DoNotOptimize(v.shape().elements());
  }
}
BENCHMARK(BM_InterpTinyFilter);

void BM_ThreadPoolParallelFor(benchmark::State& state) {
  gpu::ThreadPool pool(static_cast<unsigned>(state.range(0)));
  std::vector<std::int64_t> out(100000);
  for (auto _ : state) {
    pool.parallel_for(100000, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = i * i;
    });
    benchmark::DoNotOptimize(out[99999]);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_ThreadPoolParallelFor)->Arg(1)->Arg(2)->Arg(4);

void BM_SimKernelFunctionalExec(benchmark::State& state) {
  gpu::VirtualGpu gpu(gpu::gtx480(), 1);
  const gpu::BufferHandle buf = gpu.alloc(100000 * 8);
  auto out = gpu.memory().view<std::int64_t>(buf);
  gpu::KernelLaunch k;
  k.name = "bench";
  k.threads = 100000;
  k.cost.flops_per_thread = 2;
  k.body = [out](std::int64_t tid) { out[static_cast<std::size_t>(tid)] = 3 * tid + 1; };
  for (auto _ : state) {
    gpu.launch(k, true);
    benchmark::DoNotOptimize(out[9]);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimKernelFunctionalExec);

void BM_ArrayOlEvaluateTiny(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  aol::Model model = build_single_channel_model(cfg);
  std::map<std::string, IntArray> inputs{
      {"frame_y", synthetic_channel(cfg.frame_shape(), 0, 0)}};
  for (auto _ : state) {
    auto env = aol::evaluate(model, inputs);
    benchmark::DoNotOptimize(env.size());
  }
}
BENCHMARK(BM_ArrayOlEvaluateTiny);

void BM_CoverageMap(benchmark::State& state) {
  TilerSpec t;
  t.origin = {0, 0};
  t.fitting = IntMat{{0}, {1}};
  t.paving = IntMat{{1, 0}, {0, 8}};
  for (auto _ : state) {
    IntArray cover = coverage_map(t, Shape{64, 512}, Shape{11}, Shape{64, 64});
    benchmark::DoNotOptimize(cover.elements());
  }
}
BENCHMARK(BM_CoverageMap);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  // These are real wall-clock micro-benchmarks, so the JSON's "us" is
  // host time per iteration (not simulated device time).
  saclo::bench::BenchJson out("micro_components");
  saclo::bench::JsonCapturingReporter reporter(out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  out.write();
  return 0;
}
