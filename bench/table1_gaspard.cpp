// Reproduces the paper's Table I: kernel execution and data transfer
// times of the GASPARD2 (ArrayOL -> OpenCL) downscaler, 300 RGB frames
// of 1080x1920 on the simulated GTX480.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void reproduce_table1() {
  print_header("Table I — GASPARD2 kernel execution and data transfer times");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  GaspardDownscaler::Options opts;
  GaspardDownscaler gd(cfg, opts);
  auto r = gd.run(kFrames, /*exec_frames=*/0);

  std::printf("%s\n", r.nvprof_table.c_str());
  std::printf("Paper reference rows:\n");
  compare_row("H. Filter (3 kernels)", 844185, r.h.kernel_us);
  compare_row("V. Filter (3 kernels)", 424223, r.v.kernel_us);
  compare_row("memcpyHtoDasync", 1391670, r.h.h2d_us + r.v.h2d_us);
  compare_row("memcpyDtoHasync", 197057, r.h.d2h_us + r.v.d2h_us);
  compare_row("Total", 2.86e6, r.total_us());
  const double transfer_share =
      (r.h.h2d_us + r.v.h2d_us + r.h.d2h_us + r.v.d2h_us) / r.total_us();
  std::printf("\nTransfer share of total: %.1f%% (paper: ~55%%)\n", 100 * transfer_share);

  BenchJson out("table1_gaspard");
  out.variant("h_filter_kernels", r.h.kernel_us, {{"paper_us", 844185}});
  out.variant("v_filter_kernels", r.v.kernel_us, {{"paper_us", 424223}});
  out.variant("memcpyHtoDasync", r.h.h2d_us + r.v.h2d_us, {{"paper_us", 1391670}});
  out.variant("memcpyDtoHasync", r.h.d2h_us + r.v.d2h_us, {{"paper_us", 197057}});
  out.variant("total", r.total_us(), {{"paper_us", 2.86e6}});
  out.scalar("transfer_share", transfer_share);
  out.write();
}

void BM_GaspardChainBuild(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  for (auto _ : state) {
    auto app = gaspard::OpenClApplication::build(build_downscaler_model(cfg));
    benchmark::DoNotOptimize(app.kernels().size());
  }
}
BENCHMARK(BM_GaspardChainBuild);

void BM_GaspardSimulatedFrame(benchmark::State& state) {
  // Wall-clock cost of simulating one timing-only frame (the harness
  // overhead of the reproduction itself).
  const DownscalerConfig cfg = DownscalerConfig::paper();
  GaspardDownscaler::Options opts;
  GaspardDownscaler gd(cfg, opts);
  for (auto _ : state) {
    auto r = gd.run(1, 0);
    benchmark::DoNotOptimize(r.total_us());
  }
}
BENCHMARK(BM_GaspardSimulatedFrame);

void BM_GaspardFunctionalFrame(benchmark::State& state) {
  // Wall-clock cost of one functionally executed tiny frame.
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  GaspardDownscaler::Options opts;
  GaspardDownscaler gd(cfg, opts);
  for (auto _ : state) {
    auto r = gd.run(1, 1);
    benchmark::DoNotOptimize(r.last_output.elements());
  }
}
BENCHMARK(BM_GaspardFunctionalFrame);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
