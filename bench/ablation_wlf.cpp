// Ablation of With-Loop Folding (the paper's Section VII optimisation
// and its Figure 8 output): prints the fused with-loop the optimiser
// produces for the horizontal filter, and compares WLF-on vs WLF-off
// GPU time at paper scale.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"
#include "sac/parser.hpp"
#include "sac/pipeline.hpp"
#include "sac/printer.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void reproduce_fig8() {
  print_header("Figure 8 — the horizontal filter after With-Loop Folding (1080x1920)");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  const sac::Module mod = sac::parse(downscaler_sac_source(cfg));
  auto cf = sac::compile(mod, "hfilter_nongeneric",
                         {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())});
  std::printf("WLF statistics: %d folds, %d generator splits, %d mods removed, %d dead stmts\n\n",
              cf.stats.folds, cf.stats.generator_splits, cf.stats.mods_removed,
              cf.stats.stmts_removed);
  // Print generator headers only (the bodies are long); this is the
  // structure of the paper's Figure 8.
  for (const sac::StmtPtr& s : cf.fn.body) {
    if (s->kind != sac::StmtKind::Assign || !s->value ||
        s->value->kind != sac::ExprKind::With) {
      continue;
    }
    std::printf("output = with {\n");
    for (const sac::Generator& g : s->value->generators) {
      std::string header = "(" + (g.lower ? sac::print(*g.lower) : ".") + " <= [" +
                           join(g.vars, ",") + "] < " +
                           (g.upper ? sac::print(*g.upper) : ".");
      if (g.step) header += " step " + sac::print(*g.step);
      header += ")";
      std::printf("  %s { ... } : ...;\n", header.c_str());
    }
    std::printf("} : genarray( [1080,720]);\n");
  }
}

void wlf_on_off_comparison() {
  print_header("WLF ablation — GPU time with and without With-Loop Folding");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options on_opts;
  SacDownscaler::Options off_opts;
  off_opts.enable_wlf = false;
  SacDownscaler on(cfg, on_opts);
  SacDownscaler off(cfg, off_opts);
  auto r_on = on.run_cuda_chain(kFrames, kChannels, 0);
  auto r_off = off.run_cuda_chain(kFrames, kChannels, 0);
  seconds_row("WLF on:  kernels", r_on.h.kernel_us + r_on.v.kernel_us);
  seconds_row("WLF on:  total", r_on.total_us());
  seconds_row("WLF off: kernels", r_off.h.kernel_us + r_off.v.kernel_us);
  seconds_row("WLF off: total", r_off.total_us());
  std::printf("WLF off / on kernel-time ratio: %.2fx (intermediate arrays cost real traffic)\n",
              (r_off.h.kernel_us + r_off.v.kernel_us) /
                  (r_on.h.kernel_us + r_on.v.kernel_us));
  std::printf("kernels per H invocation: %d (WLF) vs %d (no WLF, one per pipeline stage gen)\n",
              on.h_kernels(), off.h_kernels());

  BenchJson out("ablation_wlf");
  out.variant("wlf_on_kernels", r_on.h.kernel_us + r_on.v.kernel_us);
  out.variant("wlf_on_total", r_on.total_us());
  out.variant("wlf_off_kernels", r_off.h.kernel_us + r_off.v.kernel_us);
  out.variant("wlf_off_total", r_off.total_us());
  out.scalar("kernel_ratio_off_over_on", (r_off.h.kernel_us + r_off.v.kernel_us) /
                                             (r_on.h.kernel_us + r_on.v.kernel_us));
  out.scalar("h_kernels_wlf", on.h_kernels());
  out.scalar("h_kernels_no_wlf", off.h_kernels());
  out.write();
}

void BM_WlfPassPaperScale(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  const sac::Module mod = sac::parse(downscaler_sac_source(cfg));
  for (auto _ : state) {
    auto cf = sac::compile(mod, "hfilter_nongeneric",
                           {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())});
    benchmark::DoNotOptimize(cf.stats.folds);
  }
}
BENCHMARK(BM_WlfPassPaperScale);

void BM_SpecializeOnly(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  const sac::Module mod = sac::parse(downscaler_sac_source(cfg));
  for (auto _ : state) {
    sac::CompileOptions opts;
    opts.enable_wlf = false;
    auto cf = sac::compile(mod, "hfilter_nongeneric",
                           {sac::ArgSpec::array(sac::ElemType::Int, cfg.frame_shape())}, opts);
    benchmark::DoNotOptimize(cf.fn.body.size());
  }
}
BENCHMARK(BM_SpecializeOnly);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig8();
  wlf_on_off_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
