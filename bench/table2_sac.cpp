// Reproduces the paper's Table II: kernel execution and data transfer
// times of the SaC -> CUDA downscaler (non-generic tilers, WLF on),
// 300 RGB frames of 1080x1920 on the simulated GTX480.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void reproduce_table2() {
  print_header("Table II — SaC kernel execution and data transfer times");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);
  std::printf("Post-WLF kernels per filter: H=%d (paper: 5), V=%d (paper: 7)\n",
              sac.h_kernels(), sac.v_kernels());
  std::printf("(split counts depend on how many filter windows cross the frame edge;\n");
  std::printf(" see EXPERIMENTS.md)\n\n");
  auto r = sac.run_cuda_chain(kFrames, kChannels, /*exec_frames=*/0);

  std::printf("%s\n", r.nvprof_table.c_str());
  std::printf("Paper reference rows:\n");
  compare_row("H. Filter (5 kernels)", 1015137, r.h.kernel_us);
  compare_row("V. Filter (7 kernels)", 762270, r.v.kernel_us);
  compare_row("memcpyHtoDasync", 1454400, r.h.h2d_us + r.v.h2d_us);
  compare_row("memcpyDtoHasync", 198000, r.h.d2h_us + r.v.d2h_us);
  compare_row("Total", 3.43e6, r.total_us());
  const double transfer_share =
      (r.h.h2d_us + r.v.h2d_us + r.h.d2h_us + r.v.d2h_us) / r.total_us();
  std::printf("\nTransfer share of total: %.1f%% (paper: ~48%%)\n", 100 * transfer_share);

  BenchJson out("table2_sac");
  out.variant("h_filter_kernels", r.h.kernel_us, {{"paper_us", 1015137}});
  out.variant("v_filter_kernels", r.v.kernel_us, {{"paper_us", 762270}});
  out.variant("memcpyHtoDasync", r.h.h2d_us + r.v.h2d_us, {{"paper_us", 1454400}});
  out.variant("memcpyDtoHasync", r.h.d2h_us + r.v.d2h_us, {{"paper_us", 198000}});
  out.variant("total", r.total_us(), {{"paper_us", 3.43e6}});
  out.scalar("transfer_share", transfer_share);
  out.scalar("h_kernels", sac.h_kernels());
  out.scalar("v_kernels", sac.v_kernels());
  out.write();
}

void BM_SacCompileNonGeneric(benchmark::State& state) {
  // Frontend cost: parse + typecheck + specialise + WLF of the whole
  // downscaler module for the paper geometry.
  const DownscalerConfig cfg = DownscalerConfig::paper();
  for (auto _ : state) {
    SacDownscaler::Options opts;
    SacDownscaler sac(cfg, opts);
    benchmark::DoNotOptimize(sac.h_kernels());
  }
}
BENCHMARK(BM_SacCompileNonGeneric);

void BM_SacSimulatedFrame(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);
  for (auto _ : state) {
    auto r = sac.run_cuda_chain(1, 3, 0);
    benchmark::DoNotOptimize(r.total_us());
  }
}
BENCHMARK(BM_SacSimulatedFrame);

void BM_SacFunctionalFrameTiny(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::tiny();
  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);
  for (auto _ : state) {
    auto r = sac.run_cuda_chain(1, 1, 1);
    benchmark::DoNotOptimize(r.last_output.elements());
  }
}
BENCHMARK(BM_SacFunctionalFrameTiny);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
