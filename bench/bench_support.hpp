#pragma once

#include <cstdio>
#include <string>

#include "apps/downscaler/pipelines.hpp"
#include "core/fmt.hpp"

namespace saclo::bench {

/// Number of frames of the paper's evaluation runs.
inline constexpr int kFrames = 300;
inline constexpr int kChannels = 3;

inline void print_header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

/// One "paper vs simulated" comparison line.
inline void compare_row(const std::string& label, double paper_us, double sim_us) {
  std::printf("%-34s paper %10.0f us   simulated %10.0f us   ratio %.2f\n", label.c_str(),
              paper_us, sim_us, paper_us > 0 ? sim_us / paper_us : 0.0);
}

inline void seconds_row(const std::string& label, double us) {
  std::printf("%-44s %8.2f s\n", label.c_str(), us / 1e6);
}

}  // namespace saclo::bench
