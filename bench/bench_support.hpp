#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "apps/downscaler/pipelines.hpp"
#include "core/fmt.hpp"
#include "gpu/device.hpp"

// Git revision baked in by bench/CMakeLists.txt (git rev-parse at
// configure time); "unknown" when building outside a checkout.
#ifndef SACLO_GIT_SHA
#define SACLO_GIT_SHA "unknown"
#endif

namespace saclo::bench {

/// Number of frames of the paper's evaluation runs.
inline constexpr int kFrames = 300;
inline constexpr int kChannels = 3;

inline void print_header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

/// One "paper vs simulated" comparison line.
inline void compare_row(const std::string& label, double paper_us, double sim_us) {
  std::printf("%-34s paper %10.0f us   simulated %10.0f us   ratio %.2f\n", label.c_str(),
              paper_us, sim_us, paper_us > 0 ? sim_us / paper_us : 0.0);
}

inline void seconds_row(const std::string& label, double us) {
  std::printf("%-44s %8.2f s\n", label.c_str(), us / 1e6);
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) out += c;
  }
  return out;
}

/// Machine-readable result writer: every bench emits a standardized
/// `BENCH_<name>.json` next to its stdout report so CI can archive runs
/// and diff them across commits. Schema:
///
///   {"bench": "<name>", "git_sha": "<rev>",
///    "device": {"name", "peak_gflops", "mem_bandwidth_gbs", ...},
///    "scalars": {...},              // bench-specific totals/ratios
///    "variants": [{"name", "us", ...extra numbers}, ...]}
///
/// `us` is simulated microseconds unless the bench says otherwise.
class BenchJson {
 public:
  explicit BenchJson(std::string name, const gpu::DeviceSpec& device = gpu::gtx480())
      : name_(std::move(name)), device_(device) {}

  void scalar(const std::string& key, double value) { scalars_.emplace_back(key, value); }

  /// One measured variant, with optional extra numeric fields.
  void variant(const std::string& variant_name, double us,
               std::vector<std::pair<std::string, double>> extra = {}) {
    variants_.push_back({variant_name, us, std::move(extra)});
  }

  std::string json() const {
    std::string out = cat("{\"bench\":\"", json_escape(name_), "\",\"git_sha\":\"",
                          json_escape(git_sha()), "\",\"device\":{\"name\":\"",
                          json_escape(device_.name), "\",\"sm_count\":", device_.sm_count,
                          ",\"clock_ghz\":", fixed(device_.clock_ghz, 3),
                          ",\"peak_gflops\":", fixed(device_.peak_gflops(), 1),
                          ",\"mem_bandwidth_gbs\":", fixed(device_.mem_bandwidth_gbs, 1),
                          ",\"pcie_h2d_gbs\":", fixed(device_.pcie_h2d_gbs, 2),
                          ",\"pcie_d2h_gbs\":", fixed(device_.pcie_d2h_gbs, 2), "}");
    out += ",\"scalars\":{";
    for (std::size_t i = 0; i < scalars_.size(); ++i) {
      if (i > 0) out += ",";
      out += cat("\"", json_escape(scalars_[i].first), "\":", fixed(scalars_[i].second, 3));
    }
    out += "},\"variants\":[";
    for (std::size_t i = 0; i < variants_.size(); ++i) {
      const Variant& v = variants_[i];
      if (i > 0) out += ",";
      out += cat("{\"name\":\"", json_escape(v.name), "\",\"us\":", fixed(v.us, 3));
      for (const auto& [key, value] : v.extra) {
        out += cat(",\"", json_escape(key), "\":", fixed(value, 3));
      }
      out += "}";
    }
    return out + "]}";
  }

  /// Writes BENCH_<name>.json into the working directory (CI archives
  /// the BENCH_*.json glob as the run's artifact).
  void write() const {
    const std::string path = cat("BENCH_", name_, ".json");
    std::ofstream(path) << json() << "\n";
    std::printf("\nwrote %s (git %s)\n", path.c_str(), git_sha().c_str());
  }

  static std::string git_sha() {
    std::string sha = SACLO_GIT_SHA;
    if (sha == "unknown") {
      if (const char* env = std::getenv("GITHUB_SHA")) sha = env;
    }
    return sha;
  }

 private:
  struct Variant {
    std::string name;
    double us = 0;
    std::vector<std::pair<std::string, double>> extra;
  };

  std::string name_;
  gpu::DeviceSpec device_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<Variant> variants_;
};

/// Console reporter that also records every micro-benchmark run into a
/// BenchJson (as real-wall-clock variants), so BM_*-only benches get
/// the standardized BENCH_<name>.json for free:
///
///   benchmark::Initialize(&argc, argv);
///   BenchJson out("my_bench");
///   JsonCapturingReporter reporter(out);
///   benchmark::RunSpecifiedBenchmarks(&reporter);
///   out.write();
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchJson& out) : out_(&out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred || run.iterations <= 0) {
        continue;
      }
      const double iters = static_cast<double>(run.iterations);
      out_->variant(run.benchmark_name(), run.real_accumulated_time / iters * 1e6,
                    {{"cpu_us", run.cpu_accumulated_time / iters * 1e6},
                     {"iterations", iters}});
    }
  }

 private:
  BenchJson* out_;
};

}  // namespace saclo::bench
