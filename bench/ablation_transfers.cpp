// Ablation of the transfer share: both the paper's implementations
// spend ~50% of their time on PCIe copies. Sweeps the frame size to
// show how the transfer share scales, and sweeps the PCIe bandwidth to
// show when the downscaler becomes compute-bound.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

DownscalerConfig sized(std::int64_t height, std::int64_t width) {
  DownscalerConfig cfg = DownscalerConfig::paper();
  cfg.height = height;
  cfg.width = width;
  cfg.validate();
  return cfg;
}

void frame_size_sweep(BenchJson& out) {
  print_header("Transfer-share ablation — frame size sweep (SaC non-generic, 300 RGB frames)");
  std::printf("%-16s %12s %12s %12s %14s\n", "frame", "kernels(s)", "copies(s)", "total(s)",
              "copy share");
  struct Case {
    std::int64_t h;
    std::int64_t w;
  };
  for (const Case c : {Case{144, 256}, Case{288, 512}, Case{576, 1024}, Case{1080, 1920},
                       Case{2160, 3840}}) {
    const DownscalerConfig cfg = sized(c.h, c.w);
    SacDownscaler::Options opts;
    SacDownscaler sac(cfg, opts);
    auto r = sac.run_cuda_chain(kFrames, kChannels, 0);
    const double copies = r.h.h2d_us + r.v.h2d_us + r.h.d2h_us + r.v.d2h_us;
    const double kernels = r.h.kernel_us + r.v.kernel_us;
    std::printf("%6lldx%-8lld %9.2f s  %9.2f s  %9.2f s  %12.1f%%\n",
                static_cast<long long>(c.h), static_cast<long long>(c.w), kernels / 1e6,
                copies / 1e6, r.total_us() / 1e6, 100.0 * copies / r.total_us());
    out.variant(cat("frame_", c.h, "x", c.w), r.total_us(),
                {{"kernel_us", kernels},
                 {"copy_us", copies},
                 {"copy_share", copies / r.total_us()}});
  }
  std::printf("\nThe copy share is nearly scale-invariant: both kernels and copies grow\n"
              "linearly in the pixel count — the paper's ~50%% is a property of the\n"
              "algorithm:PCIe ratio, not of the frame size.\n");
}

void pcie_sweep(BenchJson& out) {
  print_header("PCIe bandwidth sweep (SaC non-generic, paper frames)");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  std::printf("%-18s %12s %14s\n", "PCIe (GB/s)", "total(s)", "copy share");
  for (double gbs : {1.5, 3.0, 5.36, 8.0, 16.0, 32.0}) {
    gpu::DeviceSpec dev = gpu::gtx480();
    dev.pcie_h2d_gbs = gbs;
    dev.pcie_d2h_gbs = gbs * (6.30 / 5.36);
    SacDownscaler::Options opts;
    opts.device = dev;
    SacDownscaler sac(cfg, opts);
    auto r = sac.run_cuda_chain(kFrames, kChannels, 0);
    const double copies = r.h.h2d_us + r.v.h2d_us + r.h.d2h_us + r.v.d2h_us;
    std::printf("%14.2f %11.2f s %12.1f%%\n", gbs, r.total_us() / 1e6,
                100.0 * copies / r.total_us());
    out.variant(cat("pcie_", fixed(gbs, 2), "gbs"), r.total_us(),
                {{"copy_share", copies / r.total_us()}});
  }
}

void BM_TransferModel(benchmark::State& state) {
  const gpu::DeviceSpec dev = gpu::gtx480();
  const std::int64_t bytes = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu::transfer_time_us(dev, bytes, gpu::Dir::HostToDevice));
  }
}
BENCHMARK(BM_TransferModel)->Arg(1 << 12)->Arg(1 << 20)->Arg(8294400);

}  // namespace

int main(int argc, char** argv) {
  BenchJson out("ablation_transfers");
  frame_size_sweep(out);
  pcie_sweep(out);
  out.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
