// Reproduces the paper's Figure 9: execution times of the horizontal
// and vertical filters, 300 iterations each, for the four SaC
// implementations — SAC-Seq Generic, SAC-Seq Non-Generic,
// SAC-CUDA Generic, SAC-CUDA Non-Generic.
//
// The CUDA bars follow the paper's benchmark-loop methodology: the
// input is uploaded once and the filter iterates over device-resident
// data. The generic variants pay a device->host copy of the
// intermediate array plus a host-side for-loop scatter on EVERY
// iteration — the 4.5x / 3x slowdowns the paper reports.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void reproduce_fig9() {
  print_header("Figure 9 — filter execution times of the SaC implementations (300 iterations)");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options ng_opts;
  SacDownscaler::Options g_opts;
  g_opts.generic = true;
  SacDownscaler ng(cfg, ng_opts);
  SacDownscaler g(cfg, g_opts);

  auto seq_ng = ng.run_seq(kFrames, 0);
  auto seq_g = g.run_seq(kFrames, 0);
  auto cuda_ng_h = ng.run_cuda_filter(true, kFrames, 0);
  auto cuda_ng_v = ng.run_cuda_filter(false, kFrames, 0);
  auto cuda_g_h = g.run_cuda_filter(true, kFrames, 0);
  auto cuda_g_v = g.run_cuda_filter(false, kFrames, 0);

  std::printf("%-26s %16s %16s\n", "", "Horizontal", "Vertical");
  auto bar = [](const char* label, double h_us, double v_us) {
    std::printf("%-26s %13.2f s  %13.2f s\n", label, h_us / 1e6, v_us / 1e6);
  };
  bar("SAC-Seq Generic", seq_g.h_us, seq_g.v_us);
  bar("SAC-Seq Non-Generic", seq_ng.h_us, seq_ng.v_us);
  bar("SAC-CUDA Generic", cuda_g_h.ops.total_us(), cuda_g_v.ops.total_us());
  bar("SAC-CUDA Non-Generic", cuda_ng_h.ops.total_us(), cuda_ng_v.ops.total_us());

  std::printf("\nHeadline shape checks:\n");
  std::printf("  generic/non-generic on GPU (H): %.2fx   (paper: 4.5x)\n",
              cuda_g_h.ops.total_us() / cuda_ng_h.ops.total_us());
  std::printf("  generic/non-generic on GPU (V): %.2fx   (paper: 3x)\n",
              cuda_g_v.ops.total_us() / cuda_ng_v.ops.total_us());
  std::printf("  seq / CUDA non-generic (H):     %.2fx   (paper conclusion: up to ~11x)\n",
              seq_ng.h_us / cuda_ng_h.ops.total_us());
  std::printf("  seq / CUDA non-generic (V):     %.2fx\n",
              seq_ng.v_us / cuda_ng_v.ops.total_us());
  std::printf("  seq generic vs non-generic (H): %.2fx   (paper: ~1x, see EXPERIMENTS.md)\n",
              seq_g.h_us / seq_ng.h_us);
  std::printf("\nGeneric CUDA breakdown (H): kernels %.2fs, d2h %.2fs, host tiler %.2fs\n",
              cuda_g_h.ops.kernel_us / 1e6, cuda_g_h.ops.d2h_us / 1e6,
              cuda_g_h.ops.host_us / 1e6);

  BenchJson out("fig9_sac_filters");
  out.variant("seq_generic_h", seq_g.h_us);
  out.variant("seq_generic_v", seq_g.v_us);
  out.variant("seq_nongeneric_h", seq_ng.h_us);
  out.variant("seq_nongeneric_v", seq_ng.v_us);
  out.variant("cuda_generic_h", cuda_g_h.ops.total_us());
  out.variant("cuda_generic_v", cuda_g_v.ops.total_us());
  out.variant("cuda_nongeneric_h", cuda_ng_h.ops.total_us());
  out.variant("cuda_nongeneric_v", cuda_ng_v.ops.total_us());
  out.scalar("gpu_generic_penalty_h", cuda_g_h.ops.total_us() / cuda_ng_h.ops.total_us());
  out.scalar("gpu_generic_penalty_v", cuda_g_v.ops.total_us() / cuda_ng_v.ops.total_us());
  out.scalar("seq_over_cuda_h", seq_ng.h_us / cuda_ng_h.ops.total_us());
  out.scalar("seq_over_cuda_v", seq_ng.v_us / cuda_ng_v.ops.total_us());
  out.write();
}

void BM_Fig9SimulatedIterationNonGeneric(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);
  for (auto _ : state) {
    auto r = sac.run_cuda_filter(true, 1, 0);
    benchmark::DoNotOptimize(r.ops.total_us());
  }
}
BENCHMARK(BM_Fig9SimulatedIterationNonGeneric);

void BM_Fig9SequentialEstimate(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options opts;
  SacDownscaler sac(cfg, opts);
  for (auto _ : state) {
    auto r = sac.run_seq(1, 0);
    benchmark::DoNotOptimize(r.total_us());
  }
}
BENCHMARK(BM_Fig9SequentialEstimate);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
