// Ablation of the paper's Section VIII-C explanation: the SaC
// implementation is slower than GASPARD2 because it launches more
// (smaller) kernels. Sweeps the simulated kernel-launch overhead and
// several device models to show where the gap comes from and when it
// would vanish.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void launch_overhead_sweep(BenchJson& out) {
  print_header("Kernel-count ablation — launch-overhead sweep (300 RGB frames)");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  std::printf("%-22s %14s %14s %12s\n", "launch overhead", "SaC kernels(s)",
              "Gaspard krn(s)", "SaC/Gaspard");
  for (double overhead : {0.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    gpu::DeviceSpec dev = gpu::gtx480();
    dev.kernel_launch_overhead_us = overhead;

    SacDownscaler::Options sopts;
    sopts.device = dev;
    SacDownscaler sac(cfg, sopts);
    auto s = sac.run_cuda_chain(kFrames, kChannels, 0);

    GaspardDownscaler::Options gopts;
    gopts.device = dev;
    GaspardDownscaler gd(cfg, gopts);
    auto g = gd.run(kFrames, 0);

    const double s_k = s.h.kernel_us + s.v.kernel_us;
    const double g_k = g.h.kernel_us + g.v.kernel_us;
    std::printf("%18.0f us %11.2f s  %11.2f s  %10.2fx\n", overhead, s_k / 1e6, g_k / 1e6,
                s_k / g_k);
    out.variant(cat("overhead_", fixed(overhead, 0), "us_sac"), s_k, {{"gaspard_us", g_k}});
  }
  std::printf("\nAt zero launch overhead the remaining gap is the lost data reuse of the\n"
              "split generators (the paper's second explanation); the overhead term adds\n"
              "the per-launch cost of the extra kernels.\n");
}

void opt_level_sweep(BenchJson& out) {
  print_header("Optimizer ablation — Array-OL fusion levels (300 RGB frames, gaspard)");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  std::printf("%-10s %14s %16s %14s %10s\n", "opt level", "kernels/frame", "launches/frame",
              "makespan(s)", "rewrites");
  double unfused_wall = 0;
  for (int level : {0, 1, 2}) {
    GaspardDownscaler::Options gopts;
    gopts.opt_level = level;
    GaspardDownscaler gd(cfg, gopts);
    auto g = gd.run(kFrames, 0);
    const double launches_per_frame =
        static_cast<double>(g.h.kernel_launches + g.v.kernel_launches) / kFrames;
    if (level == 0) unfused_wall = g.wall_us;
    std::printf("%-10d %14d %16.1f %14.3f %10zu\n", level, gd.kernel_count(),
                launches_per_frame, g.wall_us / 1e6, gd.rewrites().size());
    out.variant(cat("opt", level, "_gaspard"), g.wall_us,
                {{"kernels_per_frame", static_cast<double>(gd.kernel_count())},
                 {"launches_per_frame", launches_per_frame},
                 {"kernel_us", g.h.kernel_us + g.v.kernel_us},
                 {"rewrites", static_cast<double>(gd.rewrites().size())}});
    if (level > 0 && unfused_wall > 0) {
      std::printf("%26s makespan vs unfused: %.2f%%\n", "",
                  100.0 * (g.wall_us / unfused_wall - 1.0));
    }
  }
  std::printf("\nFusion collapses the paper's per-channel H/V chain toward its 3-kernel\n"
              "shape: fewer launches pay less launch overhead and keep the H filter's\n"
              "intermediate rows on chip. Bit-exact at every level.\n");
}

void device_sweep(BenchJson& out) {
  print_header("Device sweep — the same programs on different simulated GPUs");
  const DownscalerConfig cfg = DownscalerConfig::paper();
  for (const gpu::DeviceSpec& dev : {gpu::gtx280(), gpu::gtx480(), gpu::bigger_fermi()}) {
    SacDownscaler::Options sopts;
    sopts.device = dev;
    SacDownscaler sac(cfg, sopts);
    auto s = sac.run_cuda_chain(kFrames, kChannels, 0);
    GaspardDownscaler::Options gopts;
    gopts.device = dev;
    GaspardDownscaler gd(cfg, gopts);
    auto g = gd.run(kFrames, 0);
    std::printf("%-38s SaC %6.2f s   Gaspard2 %6.2f s\n", dev.name.c_str(), s.total_us() / 1e6,
                g.total_us() / 1e6);
    out.variant(cat("device_", dev.name, "_sac"), s.total_us(),
                {{"gaspard_us", g.total_us()}});
  }
}

void BM_KernelTimeModel(benchmark::State& state) {
  const gpu::DeviceSpec dev = gpu::gtx480();
  gpu::KernelCost cost;
  cost.flops_per_thread = 40;
  cost.global_loads_per_thread = 11;
  cost.global_stores_per_thread = 3;
  cost.warp_access_stride = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gpu::kernel_time_us(dev, 259200, cost));
  }
}
BENCHMARK(BM_KernelTimeModel)->Arg(1)->Arg(8)->Arg(1920);

}  // namespace

int main(int argc, char** argv) {
  BenchJson out("ablation_kernels");
  launch_overhead_sweep(out);
  device_sweep(out);
  opt_level_sweep(out);
  out.write();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
