// Fleet scaling sweep for the multi-GPU serving runtime: the same job
// mix pushed through 1..8 devices, once per execution backend. With
// the `sim` backend throughput is measured in frames per second of
// *simulated* fleet time (the makespan over devices), so the curve is
// deterministic: with a balanced mix it scales nearly linearly until
// per-device warmup (driver compilation, allocator cache fill) stops
// amortizing. The `host` backend runs the same sweep with wall-clock
// op timing. CI archives one BENCH_serve_<backend>.json per backend
// and diffs the pair as a variant-parity sanity gate (timings
// legitimately differ across backends; the variant set and job counts
// must not).

#include <benchmark/benchmark.h>

#include <future>
#include <memory>
#include <vector>

#include "bench_support.hpp"
#include "serve/autoscale.hpp"
#include "serve/scheduler.hpp"
#include "serve/traffic.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;
using namespace saclo::serve;

namespace {

constexpr int kJobs = 64;
constexpr int kFramesPerJob = 16;

/// A mixed stream of requests: both SaC tilers plus the GASPARD route,
/// like a front-end fanning heterogeneous traffic into one fleet.
JobSpec job_for(int index) {
  JobSpec spec;
  const Route routes[] = {Route::SacNongeneric, Route::SacNongeneric, Route::SacGeneric,
                          Route::Gaspard};
  spec.route = routes[index % 4];
  spec.frames = kFramesPerJob;
  spec.exec_frames = 1;  // validate one frame functionally, simulate the rest
  return spec;
}

struct SweepPoint {
  int devices = 0;
  double fps_sim = 0;
  double fps_real = 0;
  double makespan_us = 0;
  double latency_p99_us = 0;
  double min_utilization = 1.0;
  double alloc_hit_rate = 0;
};

SweepPoint run_fleet(int devices, gpu::BackendKind backend) {
  ServeRuntime::Options opts;
  opts.devices = devices;
  opts.queue_capacity = kJobs;
  opts.backend = backend;
  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futures.push_back(runtime.submit(job_for(i)));
  for (auto& f : futures) f.get();
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  SweepPoint p;
  p.devices = devices;
  p.fps_sim = s.throughput_fps_sim;
  p.fps_real = s.throughput_fps_real;
  p.makespan_us = s.sim_makespan_us;
  p.latency_p99_us = s.latency_p99_us;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  for (const FleetMetrics::DeviceSnapshot& d : s.devices) {
    if (d.jobs > 0) p.min_utilization = std::min(p.min_utilization, d.utilization);
    hits += d.allocator.hits;
    misses += d.allocator.misses;
  }
  p.alloc_hit_rate = hits + misses > 0
                         ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                         : 0.0;
  return p;
}

/// Dynamic-batching point: a uniform gaspard-only backlog (every job
/// shares one batch_key) accepted while paused, then released at once —
/// the dispatchers coalesce deterministic batches of `batch_max`.
struct BatchPoint {
  double makespan_us = 0;
  std::int64_t batches_formed = 0;
  std::int64_t jobs_batched = 0;
};

BatchPoint run_batched_fleet(int devices, int batch_max, gpu::BackendKind backend) {
  ServeRuntime::Options opts;
  opts.devices = devices;
  opts.queue_capacity = kJobs;
  opts.backend = backend;
  opts.batch_max = batch_max;
  opts.start_paused = true;
  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    JobSpec spec;
    spec.route = Route::Gaspard;
    spec.frames = kFramesPerJob;
    spec.exec_frames = 1;
    futures.push_back(runtime.submit(spec));
  }
  runtime.resume();
  for (auto& f : futures) f.get();
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  return {s.sim_makespan_us, s.batches_formed, s.jobs_batched};
}

/// batch=1 vs batch=N on the same uniform backlog, emitted as paired
/// variants (`batch_1`, `batch_4`) for bench_diff.py's pair mode. The
/// gate this encodes is makespan *parity*: the hazard-driven stream
/// timeline is work-conserving across jobs, so coalescing (which elides
/// the inter-member barrier and amortizes per-job dispatch overhead in
/// real time) must leave the simulated makespan unchanged — a batching
/// bug that delays or reorders device work shows up as a variant
/// regression here.
void batching_sweep(gpu::BackendKind backend, BenchJson& out) {
  print_header(cat("Dynamic batching [", gpu::backend_kind_name(backend), " backend] — ", kJobs,
                   " gaspard jobs x ", kFramesPerJob, " frames, 2 devices"));
  std::printf("%10s %14s %10s %14s\n", "batch max", "makespan(s)", "batches", "jobs batched");
  double unbatched_us = 0;
  double batched_us = 0;
  for (int batch_max : {1, 4}) {
    const BatchPoint p = run_batched_fleet(2, batch_max, backend);
    (batch_max == 1 ? unbatched_us : batched_us) = p.makespan_us;
    std::printf("%10d %14.3f %10lld %14lld\n", batch_max, p.makespan_us / 1e6,
                static_cast<long long>(p.batches_formed),
                static_cast<long long>(p.jobs_batched));
    out.variant(cat("batch_", batch_max), p.makespan_us,
                {{"batches_formed", static_cast<double>(p.batches_formed)},
                 {"jobs_batched", static_cast<double>(p.jobs_batched)}});
  }
  if (unbatched_us > 0) {
    std::printf("\nbatched makespan vs unbatched: %+.2f%% (parity expected: the simulated\n"
                "timeline is work-conserving; batching amortizes real dispatch overhead)\n",
                100.0 * (batched_us / unbatched_us - 1.0));
  }
}

/// SLO policy sweep: the same two-tenant overload burst (a paying
/// "gold" tenant submitting high-priority deadline jobs interleaved
/// with a best-effort "free" tenant at 2x the fleet's capacity) drained
/// under each scheduling policy. The variant metric is the simulated
/// makespan — deterministic, and expected at parity across policies
/// (scheduling reorders work, it must not create or destroy any) — so
/// bench_diff.py can gate it; the SLO attainments ride along as extra
/// fields, and CI asserts priority/edf beat fifo on the gold class.
/// Scheduling must also be bit-exact: the sweep checksums every job
/// output in submission order and fails loudly on any cross-policy
/// divergence.
constexpr int kSloJobs = 32;

void slo_fnv1a(std::uint64_t& h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
}

struct SloPoint {
  double makespan_us = 0;
  double gold_attainment = 1.0;
  double free_attainment = 1.0;
  double gold_p50_ms = 0;
  std::int64_t deadline_misses = 0;
  std::uint64_t checksum = 1469598103934665603ull;  // FNV-1a offset basis
};

SloPoint run_slo_fleet(SchedPolicy policy, double deadline_ms) {
  ServeRuntime::Options opts;
  opts.devices = 2;
  opts.queue_capacity = kSloJobs;
  opts.policy = policy;
  ServeRuntime runtime(opts);
  // Warm every dispatcher's driver cache first (two same-route jobs
  // split across the two devices, for each distinct route): the policy
  // comparison below measures scheduling, not first-job driver
  // compilation — cold drivers would put a constant floor under the
  // gold phase and compress the fifo-vs-priority latency split.
  {
    std::vector<std::future<JobResult>> warm;
    for (Route route : {Route::SacNongeneric, Route::SacGeneric, Route::Gaspard}) {
      for (int d = 0; d < 2; ++d) {
        JobSpec spec;
        spec.route = route;
        spec.frames = 2;
        spec.exec_frames = 1;
        warm.push_back(runtime.submit(spec));
      }
    }
    for (auto& f : warm) f.get();
  }
  // The burst: submitted back to back, orders of magnitude faster than
  // a single job executes, so the queues are effectively staged and the
  // policy picks over the whole backlog.
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kSloJobs);
  for (int i = 0; i < kSloJobs; ++i) {
    JobSpec spec = job_for(i);
    // Groups of four share a route and split 2 gold / 2 free: the
    // classes carry equal work AND the pairwise least-loaded placement
    // lands both classes on both devices (a strict gold/free alternation
    // would tie-break every gold job onto device 0 and every free job
    // onto device 1, leaving each queue single-class and the policy
    // nothing to reorder). The latency split is purely the scheduler's.
    const Route routes[] = {Route::SacNongeneric, Route::SacNongeneric, Route::SacGeneric,
                            Route::Gaspard};
    spec.route = routes[(i / 4) % 4];
    if (i % 4 < 2) {
      spec.tenant = "gold";
      spec.priority = Priority::High;
      spec.deadline_ms = deadline_ms;
    } else {
      spec.tenant = "free";
      spec.priority = Priority::Low;
    }
    futures.push_back(runtime.submit(spec));
  }

  SloPoint p;
  std::vector<double> gold_latencies;
  for (int i = 0; i < kSloJobs; ++i) {
    const JobResult r = futures[static_cast<std::size_t>(i)].get();
    if (i % 4 < 2) gold_latencies.push_back(r.latency_us);
    slo_fnv1a(p.checksum, static_cast<std::uint64_t>(r.route));
    slo_fnv1a(p.checksum, static_cast<std::uint64_t>(r.last_output.elements()));
    for (std::int64_t e = 0; e < r.last_output.elements(); ++e) {
      slo_fnv1a(p.checksum, static_cast<std::uint64_t>(r.last_output[e]));
    }
  }
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  p.makespan_us = s.sim_makespan_us;
  p.deadline_misses = s.deadline_misses;
  for (const FleetMetrics::Snapshot::TenantSnapshot& t : s.tenants) {
    if (t.tenant == "gold") p.gold_attainment = t.slo_attainment();
    if (t.tenant == "free") p.free_attainment = t.slo_attainment();
  }
  p.gold_p50_ms = serve::percentile(std::move(gold_latencies), 0.5) / 1e3;
  return p;
}

bool slo_sweep() {
  print_header(cat("SLO policy sweep — ", kSloJobs,
                   " jobs (gold/high + free/low alternating), 2 devices, staged burst"));
  // Calibrate the deadline off a fifo run with no SLOs: tight enough
  // that fifo misses it for the gold tail stuck behind free jobs, slack
  // enough that a class-ordered drain meets it.
  const SloPoint cal = run_slo_fleet(SchedPolicy::Fifo, 0.0);
  const double deadline_ms = 0.6 * cal.gold_p50_ms;
  std::printf("calibration: gold p50 under fifo %.2f ms -> deadline %.2f ms\n", cal.gold_p50_ms,
              deadline_ms);
  std::printf("%10s %14s %12s %12s %10s\n", "policy", "makespan(s)", "gold slo%", "free slo%",
              "misses");

  BenchJson out("serve_slo");
  out.scalar("jobs", kSloJobs);
  out.scalar("frames_per_job", kFramesPerJob);
  out.scalar("deadline_frac_of_fifo_p50", 0.6);
  bool ok = true;
  for (SchedPolicy policy : {SchedPolicy::Fifo, SchedPolicy::Priority, SchedPolicy::Edf}) {
    const SloPoint p = run_slo_fleet(policy, deadline_ms);
    if (p.checksum != cal.checksum) {
      std::fprintf(stderr,
                   "slo_sweep: policy %s diverged from the fifo reference checksum "
                   "(%016llx != %016llx) — scheduling must be bit-exact\n",
                   sched_policy_name(policy), static_cast<unsigned long long>(p.checksum),
                   static_cast<unsigned long long>(cal.checksum));
      ok = false;
    }
    std::printf("%10s %14.3f %11.1f%% %11.1f%% %10lld\n", sched_policy_name(policy),
                p.makespan_us / 1e6, 100 * p.gold_attainment, 100 * p.free_attainment,
                static_cast<long long>(p.deadline_misses));
    out.variant(sched_policy_name(policy), p.makespan_us,
                {{"gold_slo_attainment", p.gold_attainment},
                 {"free_slo_attainment", p.free_attainment},
                 {"deadline_misses", static_cast<double>(p.deadline_misses)}});
  }
  out.write();
  return ok;
}

/// Elastic fleet sweep: one seeded diurnal+burst traffic trace replayed
/// three ways — pinned at the autoscaler's floor, pinned at its
/// ceiling, and autoscaled between them. The economics the artifact
/// captures: static-max buys its SLO attainment with ceiling-many
/// devices the whole run; the autoscaler should land within 90% of
/// that attainment while burning measurably fewer device-seconds
/// (devices only count while placement-eligible). Elasticity must also
/// be invisible in the outputs: all three replays run shed-free (the
/// backlog holds the whole trace) and must produce the identical
/// submission-order checksum — a drain that loses, duplicates or
/// corrupts a re-homed job diverges here and fails the bench.
constexpr int kScaleMin = 1;
constexpr int kScaleMax = 4;

struct AutoscalePoint {
  double elapsed_us = 0;
  double device_seconds = 0;
  double gold_attainment = 1.0;
  std::int64_t completed = 0;
  std::int64_t shed = 0;
  std::int64_t failed = 0;
  std::int64_t scale_ups = 0;
  std::int64_t scale_downs = 0;
  std::int64_t rehomed = 0;
  std::uint64_t checksum = 0;
};

AutoscalePoint run_traffic_fleet(const TrafficTrace& trace, int devices, bool autoscaled) {
  ServeRuntime::Options opts;
  opts.devices = devices;
  // The whole trace fits in the backlog: no run sheds, so all three
  // variants complete the same job set and the checksums compare.
  opts.queue_capacity = trace.arrivals.size();
  if (autoscaled) {
    opts.max_devices = kScaleMax;
    // A freshly-activated device is cold (driver compile, empty
    // allocator cache): keep it placement-deprioritized briefly so it
    // doesn't absorb deadline jobs on its first dispatch.
    opts.warmup_ms = 100;
  }
  ServeRuntime runtime(opts);
  std::unique_ptr<Autoscaler> scaler;
  if (autoscaled) {
    AutoscalePolicy policy;
    policy.min_devices = kScaleMin;
    policy.max_devices = kScaleMax;
    // CI-scale control: tens-of-ms periods, react to one pressured
    // period (the trace is only a second and a half long), and keep
    // scale-down four times as patient as scale-up.
    policy.interval_ms = 20;
    policy.up_periods = 1;
    policy.down_periods = 4;
    policy.cooldown_ms = 100;
    scaler = std::make_unique<Autoscaler>(runtime, policy);
  }

  const ReplayStats stats = replay_trace(runtime, trace, 1.0);
  if (scaler) scaler->stop();
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  AutoscalePoint p;
  p.elapsed_us = stats.elapsed_ms * 1000.0;
  p.device_seconds = s.device_seconds;
  p.completed = stats.completed;
  p.shed = stats.shed;
  p.failed = stats.failed;
  p.scale_ups = s.scale_ups;
  p.scale_downs = s.scale_downs;
  p.rehomed = s.jobs_rehomed;
  p.checksum = stats.checksum;
  for (const FleetMetrics::Snapshot::TenantSnapshot& t : s.tenants) {
    if (t.tenant == "gold") p.gold_attainment = t.slo_attainment();
  }
  return p;
}

bool autoscale_sweep() {
  TrafficSpec spec = TrafficSpec::ci_default();
  spec.duration_ms = 1500;    // a few diurnal cycles: room to both grow and drain
  spec.base_rate_hz = 80;     // peak load overruns one device, not four:
  spec.burst_rate_hz = 3;     // static_min visibly misses gold deadlines
  const TrafficTrace trace = generate_trace(spec);
  print_header(cat("Elastic autoscale sweep — ", trace.arrivals.size(),
                   " replayed arrivals over ", spec.duration_ms, " ms, fleet ", kScaleMin,
                   "..", kScaleMax, " devices"));
  std::printf("%12s %12s %14s %12s %8s %8s %8s\n", "fleet", "elapsed(s)", "device-sec",
              "gold slo%", "ups", "downs", "rehomed");

  BenchJson out("serve_autoscale");
  out.scalar("arrivals", static_cast<double>(trace.arrivals.size()));
  out.scalar("trace_seed", static_cast<double>(spec.seed));
  out.scalar("trace_duration_ms", spec.duration_ms);
  out.scalar("min_devices", kScaleMin);
  out.scalar("max_devices", kScaleMax);

  struct Variant {
    const char* name;
    int devices;
    bool autoscaled;
  };
  const Variant variants[] = {{"static_min", kScaleMin, false},
                              {"static_max", kScaleMax, false},
                              {"autoscaled", kScaleMin, true}};
  AutoscalePoint points[3];
  bool ok = true;
  for (int i = 0; i < 3; ++i) {
    const Variant& v = variants[i];
    const AutoscalePoint p = run_traffic_fleet(trace, v.devices, v.autoscaled);
    points[i] = p;
    std::printf("%12s %12.3f %14.2f %11.1f%% %8lld %8lld %8lld\n", v.name, p.elapsed_us / 1e6,
                p.device_seconds, 100 * p.gold_attainment, static_cast<long long>(p.scale_ups),
                static_cast<long long>(p.scale_downs), static_cast<long long>(p.rehomed));
    out.variant(v.name, p.elapsed_us,
                {{"device_seconds", p.device_seconds},
                 {"gold_slo_attainment", p.gold_attainment},
                 {"completed", static_cast<double>(p.completed)},
                 {"scale_ups", static_cast<double>(p.scale_ups)},
                 {"scale_downs", static_cast<double>(p.scale_downs)},
                 {"jobs_rehomed", static_cast<double>(p.rehomed)}});
    if (p.shed != 0 || p.failed != 0) {
      std::fprintf(stderr,
                   "autoscale_sweep: %s shed %lld / failed %lld job(s) — the backlog is "
                   "sized for a shed-free replay, so elasticity cannot hide behind drops\n",
                   v.name, static_cast<long long>(p.shed), static_cast<long long>(p.failed));
      ok = false;
    }
    if (p.checksum != points[0].checksum) {
      std::fprintf(stderr,
                   "autoscale_sweep: %s output checksum %016llx diverged from static_min "
                   "%016llx — scaling must be bit-exact\n",
                   v.name, static_cast<unsigned long long>(p.checksum),
                   static_cast<unsigned long long>(points[0].checksum));
      ok = false;
    }
  }
  const AutoscalePoint& maxp = points[1];
  const AutoscalePoint& autop = points[2];
  std::printf("\nautoscaled vs static_max: %.1f%% of gold attainment at %.0f%% of the "
              "device-seconds\n",
              maxp.gold_attainment > 0 ? 100 * autop.gold_attainment / maxp.gold_attainment
                                       : 100.0,
              maxp.device_seconds > 0 ? 100 * autop.device_seconds / maxp.device_seconds : 0.0);
  if (autop.gold_attainment < 0.9 * maxp.gold_attainment) {
    std::fprintf(stderr,
                 "autoscale_sweep: autoscaled gold attainment %.1f%% fell below 90%% of "
                 "static_max's %.1f%%\n",
                 100 * autop.gold_attainment, 100 * maxp.gold_attainment);
    ok = false;
  }
  if (autop.device_seconds >= maxp.device_seconds) {
    std::fprintf(stderr,
                 "autoscale_sweep: autoscaled burned %.2f device-seconds, not fewer than "
                 "static_max's %.2f — elasticity saved nothing\n",
                 autop.device_seconds, maxp.device_seconds);
    ok = false;
  }
  out.write();
  return ok;
}

void device_sweep(gpu::BackendKind backend) {
  const char* name = gpu::backend_kind_name(backend);
  print_header(cat("Serving fleet sweep [", name, " backend] — ", kJobs, " mixed jobs x ",
                   kFramesPerJob, " frames, 1..8 devices"));
  std::printf("%8s %14s %14s %12s %10s %8s\n", "devices", "sim fps", "makespan(s)", "p99(ms)",
              "min util", "hit%");

  BenchJson out(cat("serve_", name));
  std::vector<SweepPoint> points;
  for (int devices = 1; devices <= 8; devices *= 2) {
    const SweepPoint p = run_fleet(devices, backend);
    points.push_back(p);
    std::printf("%8d %14.1f %14.3f %12.2f %9.2f %7.1f\n", p.devices, p.fps_sim,
                p.makespan_us / 1e6, p.latency_p99_us / 1e3, p.min_utilization,
                100 * p.alloc_hit_rate);
    out.variant(cat("devices_", devices), p.makespan_us,
                {{"fps_sim", p.fps_sim},
                 {"fps_real", p.fps_real},
                 {"latency_p99_us", p.latency_p99_us},
                 {"min_utilization", p.min_utilization},
                 {"alloc_hit_rate", p.alloc_hit_rate}});
  }
  const double scaling_4x = points.size() >= 3 ? points[2].fps_sim / points[0].fps_sim : 0.0;
  const double scaling_8x = points.size() >= 4 ? points[3].fps_sim / points[0].fps_sim : 0.0;
  out.scalar("jobs", kJobs);
  out.scalar("frames_per_job", kFramesPerJob);
  out.scalar("speedup_4_devices", scaling_4x);
  out.scalar("speedup_8_devices", scaling_8x);
  std::printf("\nscaling vs 1 device: 4 devices %.2fx, 8 devices %.2fx\n", scaling_4x,
              scaling_8x);
  batching_sweep(backend, out);
  out.write();
}

void BM_FleetSmall(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServeRuntime::Options opts;
    opts.devices = devices;
    ServeRuntime runtime(opts);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 8; ++i) {
      JobSpec spec = job_for(i);
      spec.frames = 2;
      spec.exec_frames = 1;
      futures.push_back(runtime.submit(spec));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().sim_wall_us);
  }
}
BENCHMARK(BM_FleetSmall)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  for (gpu::BackendKind backend : {gpu::BackendKind::Sim, gpu::BackendKind::Host}) {
    device_sweep(backend);
  }
  const bool slo_ok = slo_sweep();
  const bool autoscale_ok = autoscale_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return slo_ok && autoscale_ok ? 0 : 1;
}
