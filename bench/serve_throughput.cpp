// Fleet scaling sweep for the multi-GPU serving runtime: the same job
// mix pushed through 1..8 devices, once per execution backend. With
// the `sim` backend throughput is measured in frames per second of
// *simulated* fleet time (the makespan over devices), so the curve is
// deterministic: with a balanced mix it scales nearly linearly until
// per-device warmup (driver compilation, allocator cache fill) stops
// amortizing. The `host` backend runs the same sweep with wall-clock
// op timing. CI archives one BENCH_serve_<backend>.json per backend
// and diffs the pair as a variant-parity sanity gate (timings
// legitimately differ across backends; the variant set and job counts
// must not).

#include <benchmark/benchmark.h>

#include <future>
#include <vector>

#include "bench_support.hpp"
#include "serve/scheduler.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;
using namespace saclo::serve;

namespace {

constexpr int kJobs = 64;
constexpr int kFramesPerJob = 16;

/// A mixed stream of requests: both SaC tilers plus the GASPARD route,
/// like a front-end fanning heterogeneous traffic into one fleet.
JobSpec job_for(int index) {
  JobSpec spec;
  const Route routes[] = {Route::SacNongeneric, Route::SacNongeneric, Route::SacGeneric,
                          Route::Gaspard};
  spec.route = routes[index % 4];
  spec.frames = kFramesPerJob;
  spec.exec_frames = 1;  // validate one frame functionally, simulate the rest
  return spec;
}

struct SweepPoint {
  int devices = 0;
  double fps_sim = 0;
  double fps_real = 0;
  double makespan_us = 0;
  double latency_p99_us = 0;
  double min_utilization = 1.0;
  double alloc_hit_rate = 0;
};

SweepPoint run_fleet(int devices, gpu::BackendKind backend) {
  ServeRuntime::Options opts;
  opts.devices = devices;
  opts.queue_capacity = kJobs;
  opts.backend = backend;
  ServeRuntime runtime(opts);
  std::vector<std::future<JobResult>> futures;
  futures.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) futures.push_back(runtime.submit(job_for(i)));
  for (auto& f : futures) f.get();
  runtime.drain();

  const FleetMetrics::Snapshot s = runtime.metrics().snapshot();
  SweepPoint p;
  p.devices = devices;
  p.fps_sim = s.throughput_fps_sim;
  p.fps_real = s.throughput_fps_real;
  p.makespan_us = s.sim_makespan_us;
  p.latency_p99_us = s.latency_p99_us;
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  for (const FleetMetrics::DeviceSnapshot& d : s.devices) {
    if (d.jobs > 0) p.min_utilization = std::min(p.min_utilization, d.utilization);
    hits += d.allocator.hits;
    misses += d.allocator.misses;
  }
  p.alloc_hit_rate = hits + misses > 0
                         ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                         : 0.0;
  return p;
}

void device_sweep(gpu::BackendKind backend) {
  const char* name = gpu::backend_kind_name(backend);
  print_header(cat("Serving fleet sweep [", name, " backend] — ", kJobs, " mixed jobs x ",
                   kFramesPerJob, " frames, 1..8 devices"));
  std::printf("%8s %14s %14s %12s %10s %8s\n", "devices", "sim fps", "makespan(s)", "p99(ms)",
              "min util", "hit%");

  BenchJson out(cat("serve_", name));
  std::vector<SweepPoint> points;
  for (int devices = 1; devices <= 8; devices *= 2) {
    const SweepPoint p = run_fleet(devices, backend);
    points.push_back(p);
    std::printf("%8d %14.1f %14.3f %12.2f %9.2f %7.1f\n", p.devices, p.fps_sim,
                p.makespan_us / 1e6, p.latency_p99_us / 1e3, p.min_utilization,
                100 * p.alloc_hit_rate);
    out.variant(cat("devices_", devices), p.makespan_us,
                {{"fps_sim", p.fps_sim},
                 {"fps_real", p.fps_real},
                 {"latency_p99_us", p.latency_p99_us},
                 {"min_utilization", p.min_utilization},
                 {"alloc_hit_rate", p.alloc_hit_rate}});
  }
  const double scaling_4x = points.size() >= 3 ? points[2].fps_sim / points[0].fps_sim : 0.0;
  const double scaling_8x = points.size() >= 4 ? points[3].fps_sim / points[0].fps_sim : 0.0;
  out.scalar("jobs", kJobs);
  out.scalar("frames_per_job", kFramesPerJob);
  out.scalar("speedup_4_devices", scaling_4x);
  out.scalar("speedup_8_devices", scaling_8x);
  std::printf("\nscaling vs 1 device: 4 devices %.2fx, 8 devices %.2fx\n", scaling_4x,
              scaling_8x);
  out.write();
}

void BM_FleetSmall(benchmark::State& state) {
  const int devices = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ServeRuntime::Options opts;
    opts.devices = devices;
    ServeRuntime runtime(opts);
    std::vector<std::future<JobResult>> futures;
    for (int i = 0; i < 8; ++i) {
      JobSpec spec = job_for(i);
      spec.frames = 2;
      spec.exec_frames = 1;
      futures.push_back(runtime.submit(spec));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get().sim_wall_us);
  }
}
BENCHMARK(BM_FleetSmall)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  for (gpu::BackendKind backend : {gpu::BackendKind::Sim, gpu::BackendKind::Host}) {
    device_sweep(backend);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
