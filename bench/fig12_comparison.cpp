// Reproduces the paper's Figure 12: per-operation comparison of the
// SaC and GASPARD2 implementations — horizontal-filter kernels,
// vertical-filter kernels, host-to-device and device-to-host transfer
// time over 300 RGB frames.

#include <benchmark/benchmark.h>

#include "bench_support.hpp"

using namespace saclo;
using namespace saclo::apps;
using namespace saclo::bench;

namespace {

void reproduce_fig12() {
  print_header("Figure 12 — SaC vs GASPARD2 operation times (300 RGB frames)");
  const DownscalerConfig cfg = DownscalerConfig::paper();

  SacDownscaler::Options sopts;
  SacDownscaler sac(cfg, sopts);
  auto s = sac.run_cuda_chain(kFrames, kChannels, 0);

  GaspardDownscaler::Options gopts;
  GaspardDownscaler gd(cfg, gopts);
  auto g = gd.run(kFrames, 0);

  std::printf("%-22s %14s %14s\n", "Operation", "SaC (s)", "Gaspard2 (s)");
  auto row = [](const char* label, double sac_us, double gas_us) {
    std::printf("%-22s %11.2f s  %11.2f s\n", label, sac_us / 1e6, gas_us / 1e6);
  };
  row("Horizontal Filter", s.h.kernel_us, g.h.kernel_us);
  row("Vertical Filter", s.v.kernel_us, g.v.kernel_us);
  row("Host2Device", s.h.h2d_us + s.v.h2d_us, g.h.h2d_us + g.v.h2d_us);
  row("Device2Host", s.h.d2h_us + s.v.d2h_us, g.h.d2h_us + g.v.d2h_us);
  row("Total", s.total_us(), g.total_us());

  std::printf("\nShape checks (paper Section VIII-C):\n");
  std::printf("  GASPARD2 filters faster than SaC: H %s (%.2fx), V %s (%.2fx)\n",
              g.h.kernel_us < s.h.kernel_us ? "yes" : "NO",
              s.h.kernel_us / g.h.kernel_us,
              g.v.kernel_us < s.v.kernel_us ? "yes" : "NO",
              s.v.kernel_us / g.v.kernel_us);
  const double best = std::min(s.total_us(), g.total_us());
  const double worst = std::max(s.total_us(), g.total_us());
  std::printf("  totals comparable, within %.0f%% of the best (paper: within 85%%)\n",
              100.0 * best / worst);
  std::printf("  SaC kernels per filter: H=%d V=%d vs GASPARD2's 1 per task\n",
              sac.h_kernels(), sac.v_kernels());

  BenchJson out("fig12_comparison");
  out.variant("sac_h_kernels", s.h.kernel_us);
  out.variant("sac_v_kernels", s.v.kernel_us);
  out.variant("sac_h2d", s.h.h2d_us + s.v.h2d_us);
  out.variant("sac_d2h", s.h.d2h_us + s.v.d2h_us);
  out.variant("sac_total", s.total_us());
  out.variant("gaspard_h_kernels", g.h.kernel_us);
  out.variant("gaspard_v_kernels", g.v.kernel_us);
  out.variant("gaspard_h2d", g.h.h2d_us + g.v.h2d_us);
  out.variant("gaspard_d2h", g.h.d2h_us + g.v.d2h_us);
  out.variant("gaspard_total", g.total_us());
  out.scalar("total_ratio_best_over_worst", best / worst);
  out.write();
}

void BM_Fig12BothPipelinesOneFrame(benchmark::State& state) {
  const DownscalerConfig cfg = DownscalerConfig::paper();
  SacDownscaler::Options sopts;
  SacDownscaler sac(cfg, sopts);
  GaspardDownscaler::Options gopts;
  GaspardDownscaler gd(cfg, gopts);
  for (auto _ : state) {
    auto a = sac.run_cuda_chain(1, 3, 0);
    auto b = gd.run(1, 0);
    benchmark::DoNotOptimize(a.total_us() + b.total_us());
  }
}
BENCHMARK(BM_Fig12BothPipelinesOneFrame);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig12();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
