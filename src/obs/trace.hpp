#pragma once

#include <chrono>
#include <cstdint>

namespace saclo::obs {

/// Identifies one job's causal record across the fleet. The trace id is
/// the job id the scheduler assigned at admission; every dispatch
/// attempt (the first one and each failover hop) is its own span, so a
/// job that died on device 0 and completed on device 1 shows up as two
/// spans sharing a trace id, linked by a flow arrow in the merged
/// Chrome trace.
struct TraceContext {
  std::uint64_t trace_id = 0;  ///< 0 = untraced (no owning job)
  std::uint32_t attempt = 0;   ///< failover hop: 0 = first dispatch

  bool traced() const { return trace_id != 0; }
  /// Span id unique per (trace, attempt) — the flow-event id of the
  /// hop that *produced* this attempt.
  std::uint64_t span_id() const { return trace_id * 256 + attempt; }
};

/// Monotonic real-time clock anchored at runtime construction, so every
/// structured event carries a comparable real timestamp next to the
/// per-device simulated one (which restarts at 0 on each device).
class TraceClock {
 public:
  TraceClock() : origin_(std::chrono::steady_clock::now()) {}

  /// Real (wall-clock) microseconds since the clock was created.
  double now_us() const {
    return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - origin_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace saclo::obs
