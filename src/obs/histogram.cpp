#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/fmt.hpp"

namespace saclo::obs {

double LogHistogram::upper_bound(std::size_t bucket) {
  if (bucket >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return kBaseUs * std::exp2(static_cast<double>(bucket) / kBucketsPerDoubling);
}

double LogHistogram::lower_bound(std::size_t bucket) {
  return bucket == 0 ? 0.0 : upper_bound(bucket - 1);
}

std::size_t LogHistogram::bucket_index(double value_us) {
  if (!(value_us > kBaseUs)) return 0;  // also catches NaN and negatives
  const double raw = std::ceil(std::log2(value_us / kBaseUs) * kBucketsPerDoubling);
  std::size_t idx = raw < 1.0 ? 1
                    : raw >= static_cast<double>(kBuckets - 1)
                        ? kBuckets - 1
                        : static_cast<std::size_t>(raw);
  // log2/ceil rounding can land one bucket off at exact boundaries;
  // nudge until (lower, upper] really brackets the value.
  while (idx > 1 && value_us <= upper_bound(idx - 1)) --idx;
  while (idx < kBuckets - 1 && value_us > upper_bound(idx)) ++idx;
  return idx;
}

void LogHistogram::record(double value_us) {
  ++buckets_[bucket_index(value_us)];
  if (count_ == 0) {
    min_ = value_us;
    max_ = value_us;
  } else {
    min_ = std::min(min_, value_us);
    max_ = std::max(max_, value_us);
  }
  ++count_;
  sum_ += value_us;
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Fractional rank, matching the exact interpolated percentile the
  // metrics registry used to compute over its raw sample vector.
  const double target = q * static_cast<double>(count_ - 1);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::int64_t c = buckets_[i];
    if (c == 0) continue;
    if (target < static_cast<double>(cum + c)) {
      // Interpolate inside the bucket, assuming its samples spread
      // evenly, and never extrapolate past the exact extrema.
      const double lo = std::max(lower_bound(i), min_);
      const double hi = std::min(upper_bound(i), max_);
      const double frac = (target - static_cast<double>(cum) + 0.5) / static_cast<double>(c);
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_, max_);
    }
    cum += c;
  }
  return max_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void append_prometheus_histogram(std::string& out, const std::string& name,
                                 const std::string& help, const LogHistogram& hist,
                                 const std::string& labels) {
  const std::string prefix = labels.empty() ? std::string() : labels + ",";
  out += cat("# HELP ", name, " ", help, "\n");
  out += cat("# TYPE ", name, " histogram\n");
  // Emit finite bounds up to the last non-empty bucket (a subset of
  // bounds is legal exposition and keeps empty histograms short), then
  // the mandatory +Inf bucket.
  std::size_t last = 0;
  for (std::size_t i = 0; i + 1 < LogHistogram::kBuckets; ++i) {
    if (hist.buckets()[i] != 0) last = i;
  }
  std::int64_t cum = 0;
  for (std::size_t i = 0; i <= last; ++i) {
    cum += hist.buckets()[i];
    out += cat(name, "_bucket{", prefix, "le=\"", fixed(LogHistogram::upper_bound(i), 3),
               "\"} ", cum, "\n");
  }
  out += cat(name, "_bucket{", prefix, "le=\"+Inf\"} ", hist.count(), "\n");
  if (labels.empty()) {
    out += cat(name, "_sum ", fixed(hist.sum(), 3), "\n");
    out += cat(name, "_count ", hist.count(), "\n");
  } else {
    out += cat(name, "_sum{", labels, "} ", fixed(hist.sum(), 3), "\n");
    out += cat(name, "_count{", labels, "} ", hist.count(), "\n");
  }
}

}  // namespace saclo::obs
