#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace saclo::obs {

/// The structured event vocabulary of the serving runtime: one entry
/// per job-lifecycle or fleet-health transition, POD so recording never
/// allocates. `arg` is type-specific (see each enumerator).
enum class EventType : std::uint8_t {
  JobAdmitted,     ///< job accepted by submit(); arg = frames
  JobPlaced,       ///< placement decided; device = target, arg = cost estimate (us)
  JobDispatched,   ///< job left the queue, runs now; device = executor
  FrameDone,       ///< one frame's operations issued; arg = frame index
  JobCompleted,    ///< future fulfilled; arg = frames
  DeviceFault,     ///< injected fault interrupted the job; arg = reclaimed blocks
  Failover,        ///< faulted job re-enqueued; device = from, arg = to
  RetryExhausted,  ///< future carries the failure; arg = attempts used
  DeviceDegraded,  ///< device marked unhealthy (job = 0: fleet-level)
  DeviceHealed,    ///< degraded cooldown elapsed (job = 0: fleet-level)
  BatchFormed,     ///< dispatcher coalesced queued jobs; job = batch id
                   ///< (first member's job id), arg = batch size
  JobShed,         ///< admission refused the job; arg = ShedReason
  JobPreempted,    ///< in-flight job displaced at a frame boundary;
                   ///< device = where it ran, arg = first frame not done
  JobStolen,       ///< idle dispatcher took a queued job; device =
                   ///< thief, arg = victim device
  DeadlineMiss,    ///< job completed past its SLO deadline; arg =
                   ///< overshoot in real microseconds
  ScaleUp,         ///< autoscaler activated a device; device = which,
                   ///< arg = active devices after the action
  ScaleDown,       ///< autoscaler chose a scale-down victim; device =
                   ///< which, arg = active devices after retirement
  DrainStarted,    ///< victim marked draining; arg = queued jobs re-homed
  DrainComplete,   ///< victim retired; arg = buffers reclaim_live() swept
                   ///< (0 = the drain leaked nothing)
  AlertRaised,     ///< alert engine raised an alert; arg = AlertKind
                   ///< (job = 0: the subject lives in the alert log)
  AlertCleared,    ///< active alert cleared after sustained health;
                   ///< arg = AlertKind
};

/// Stable wire name ("job_admitted", "device_fault", ...) used by the
/// JSONL export and the merged Chrome trace's instant events.
const char* event_type_name(EventType type);

/// One structured event. Fixed-size and trivially copyable: recording
/// is a struct copy into a preallocated slot, never an allocation.
struct Event {
  EventType type = EventType::JobAdmitted;
  std::uint8_t backend = 0;   ///< gpu::BackendKind of the fleet's devices
  std::uint64_t job = 0;      ///< trace id (0 = fleet-level event)
  std::int32_t device = -1;   ///< fleet device index (-1 = none yet)
  std::int32_t attempt = 0;   ///< failover hop of the owning job
  std::int64_t arg = 0;       ///< type-specific payload (see EventType)
  double t_real_us = 0;       ///< real time since runtime start (TraceClock)
  double t_sim_us = 0;        ///< device's simulated clock, where meaningful
};

/// Bounded, allocation-free, multi-producer event ring. Writers claim a
/// slot with one atomic fetch_add and publish it with a release store —
/// no lock on the dispatch hot path. The log keeps the *earliest*
/// `capacity` events of the run and counts everything past that in an
/// explicit drop counter (the perf-buffer discipline: a truncated
/// causal record plus an honest account of the truncation beats a
/// silently resampled one).
class EventLog {
 public:
  explicit EventLog(std::size_t capacity);

  /// Records the event; returns false (and bumps dropped()) when the
  /// ring is full. Safe to call from any number of threads.
  bool emit(const Event& event);

  std::size_t capacity() const { return capacity_; }
  /// Events successfully recorded so far (<= capacity).
  std::size_t recorded() const;
  /// Events rejected because the ring was full.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// Recorded events in emission order. Safe concurrently with writers:
  /// slots still being written are skipped.
  std::vector<Event> snapshot() const;

  /// JSONL export: one JSON object per event, in order, terminated by a
  /// `log_summary` line carrying recorded/dropped/capacity so a reader
  /// can tell a complete record from a truncated one.
  std::string jsonl() const;

 private:
  struct Slot {
    Event event;
    std::atomic<bool> ready{false};
  };

  std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Renders one event as its JSONL line (no trailing newline). Exposed
/// for tests that lock the schema down.
std::string event_json(const Event& event);

}  // namespace saclo::obs
