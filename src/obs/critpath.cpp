#include "obs/critpath.hpp"

#include <algorithm>
#include <map>

#include "core/fmt.hpp"

namespace saclo::obs {

namespace {

/// Union length of a set of [start, end) intervals.
double union_us(std::vector<std::pair<double, double>> spans) {
  if (spans.empty()) return 0.0;
  std::sort(spans.begin(), spans.end());
  double total = 0.0;
  double cur_start = spans[0].first;
  double cur_end = spans[0].second;
  for (std::size_t i = 1; i < spans.size(); ++i) {
    if (spans[i].first > cur_end) {
      total += cur_end - cur_start;
      cur_start = spans[i].first;
      cur_end = spans[i].second;
    } else {
      cur_end = std::max(cur_end, spans[i].second);
    }
  }
  total += cur_end - cur_start;
  return total;
}

const char* category_name(gpu::OpKind kind) {
  switch (kind) {
    case gpu::OpKind::Kernel: return "kernel";
    case gpu::OpKind::MemcpyHtoD: return "memcpy_h2d";
    case gpu::OpKind::MemcpyDtoH: return "memcpy_d2h";
    case gpu::OpKind::Host: return "host";
  }
  return "host";
}

std::string pct(double part, double whole) {
  return whole > 0.0 ? cat(fixed(100.0 * part / whole, 1), "%") : "-";
}

}  // namespace

const char* route_of_kernel(const std::string& name) {
  return name.rfind("KRN_", 0) == 0 ? "gaspard" : "sac";
}

CriticalPath analyze_critical_path(const std::vector<DeviceTrace>& devices,
                                   const std::vector<Event>& events) {
  CriticalPath path;
  std::map<std::string, StageAttribution> stages;
  std::map<std::string, RouteAttribution> routes;

  for (const DeviceTrace& dev : devices) {
    DeviceAttribution d;
    d.device = dev.device;
    std::vector<std::pair<double, double>> busy;
    busy.reserve(dev.intervals.size());
    for (const auto& iv : dev.intervals) {
      const double dur = iv.duration_us();
      switch (iv.kind) {
        case gpu::OpKind::Kernel: d.kernel_us += dur; break;
        case gpu::OpKind::MemcpyHtoD: d.h2d_us += dur; break;
        case gpu::OpKind::MemcpyDtoH: d.d2h_us += dur; break;
        case gpu::OpKind::Host: d.host_us += dur; break;
      }
      busy.emplace_back(iv.start_us, iv.end_us);
      d.span_us = std::max(d.span_us, iv.end_us);

      StageAttribution& stage = stages[iv.name];
      if (stage.name.empty()) {
        stage.name = iv.name;
        stage.category = category_name(iv.kind);
      }
      stage.calls += 1;
      stage.total_us += dur;

      if (iv.kind == gpu::OpKind::Kernel) {
        RouteAttribution& route = routes[route_of_kernel(iv.name)];
        if (route.route.empty()) route.route = route_of_kernel(iv.name);
        route.spans += 1;
        route.kernel_us += dur;
      }
    }
    d.busy_us = union_us(std::move(busy));
    path.makespan_us = std::max(path.makespan_us, d.span_us);
    path.devices.push_back(std::move(d));
  }

  // Queue wait and stall counts come from the event log: admitted ->
  // first dispatch is the time the fleet made the job wait.
  std::map<std::uint64_t, double> admitted_at;
  std::map<std::uint64_t, bool> dispatched;
  auto device_row = [&](int device) -> DeviceAttribution* {
    for (DeviceAttribution& d : path.devices) {
      if (d.device == device) return &d;
    }
    return nullptr;
  };
  for (const Event& e : events) {
    switch (e.type) {
      case EventType::JobAdmitted:
        admitted_at[e.job] = e.t_real_us;
        break;
      case EventType::JobDispatched: {
        auto it = admitted_at.find(e.job);
        if (it != admitted_at.end() && !dispatched[e.job]) {
          dispatched[e.job] = true;
          const double wait = e.t_real_us - it->second;
          if (wait >= 0) {
            path.jobs_waited += 1;
            path.queue_wait_total_us += wait;
            path.queue_wait_max_us = std::max(path.queue_wait_max_us, wait);
          }
        }
        break;
      }
      case EventType::JobPreempted: {
        path.preemptions += 1;
        if (DeviceAttribution* d = device_row(e.device)) d->preemptions += 1;
        break;
      }
      case EventType::DeviceFault: {
        if (DeviceAttribution* d = device_row(e.device)) d->faults += 1;
        break;
      }
      case EventType::Failover:
        path.failovers += 1;
        break;
      case EventType::DrainStarted: {
        path.drains += 1;
        if (DeviceAttribution* d = device_row(e.device)) d->drains += 1;
        break;
      }
      default:
        break;
    }
  }

  for (auto& [name, stage] : stages) path.stages.push_back(std::move(stage));
  std::sort(path.stages.begin(), path.stages.end(),
            [](const StageAttribution& a, const StageAttribution& b) {
              return a.total_us != b.total_us ? a.total_us > b.total_us : a.name < b.name;
            });
  for (auto& [name, route] : routes) path.routes.push_back(std::move(route));
  std::sort(path.routes.begin(), path.routes.end(),
            [](const RouteAttribution& a, const RouteAttribution& b) {
              return a.kernel_us != b.kernel_us ? a.kernel_us > b.kernel_us
                                                : a.route < b.route;
            });
  return path;
}

std::string critical_path_report(const CriticalPath& path, std::size_t top_stages) {
  std::string out = cat("critical path — fleet makespan ", fixed(path.makespan_us, 1),
                        " us (simulated)\n\n");
  out += cat(pad_right("device", 8), pad_right("busy", 8), pad_right("kernel", 8), pad_right("h2d", 8), pad_right("d2h", 8),
             pad_right("host", 8), pad_right("idle", 8), pad_right("stalls (preempt/fault/drain)", 30), "\n");
  double fleet_busy = 0.0;
  for (const DeviceAttribution& d : path.devices) {
    fleet_busy += d.busy_us;
    out += cat(pad_right(cat("gpu", d.device), 8), pad_right(pct(d.busy_us, d.span_us), 8),
               pad_right(pct(d.kernel_us, d.span_us), 8), pad_right(pct(d.h2d_us, d.span_us), 8),
               pad_right(pct(d.d2h_us, d.span_us), 8), pad_right(pct(d.host_us, d.span_us), 8),
               pad_right(pct(d.idle_us(), d.span_us), 8),
               pad_right(cat(d.preemptions, "/", d.faults, "/", d.drains), 30), "\n");
  }
  out += cat("\nqueue wait (real): ", path.jobs_waited, " jobs, total ",
             fixed(path.queue_wait_total_us, 1), " us, mean ",
             fixed(path.jobs_waited > 0 ? path.queue_wait_total_us / path.jobs_waited : 0.0, 1),
             " us, max ", fixed(path.queue_wait_max_us, 1), " us\n");
  out += cat("stalls: ", path.preemptions, " preemptions, ", path.failovers, " failovers, ",
             path.drains, " drains\n");

  if (!path.routes.empty()) {
    out += "\nroutes (kernel time):\n";
    for (const RouteAttribution& r : path.routes) {
      out += cat("  ", pad_right(r.route, 10), fixed(r.kernel_us, 1), " us over ", r.spans,
                 " spans\n");
    }
  }

  if (!path.stages.empty()) {
    out += cat("\ntop stages (of ", path.stages.size(), "):\n");
    out += cat("  ", pad_right("stage", 28), pad_right("cat", 12), pad_right("calls", 8), pad_right("total us", 12),
               pad_right("% busy", 8), "\n");
    const std::size_t n = std::min(top_stages, path.stages.size());
    for (std::size_t i = 0; i < n; ++i) {
      const StageAttribution& s = path.stages[i];
      out += cat("  ", pad_right(s.name, 28), pad_right(s.category, 12), pad_right(cat(s.calls), 8),
                 pad_right(fixed(s.total_us, 1), 12), pad_right(pct(s.total_us, fleet_busy), 8), "\n");
    }
  }
  return out;
}

}  // namespace saclo::obs
