#pragma once

#include <string>
#include <vector>

#include "gpu/profiler.hpp"
#include "obs/events.hpp"

namespace saclo::obs {

/// One device's contribution to the fleet-merged Chrome trace: its
/// index and the profiler intervals it recorded (each on the device's
/// own simulated timeline, which starts at 0).
struct DeviceTrace {
  int device = 0;
  std::vector<gpu::Profiler::Interval> intervals;
  /// Execution backend the device ran on ("sim", "host", ...). Empty
  /// (the default) keeps the bare "gpuN" process name; when set, the
  /// process name reads "gpuN (backend)" and traced spans carry a
  /// "backend" arg.
  std::string backend;
};

/// The tid the merged trace parks runtime instant events on (faults,
/// failovers, degrade/heal) — far above any real stream id, named
/// "runtime" via thread_name metadata.
inline constexpr int kRuntimeEventsTid = 999;

/// The pid of the fleet-level "autoscaler" counter track: ScaleUp /
/// ScaleDown events render as Chrome counter ("C") events there, so the
/// active-device count steps visibly against the device spans. Far
/// above any real device index.
inline constexpr int kAutoscalerPid = 9999;

/// Renders the fleet-wide merged Chrome `trace_event` JSON: one file
/// across all devices with pid = device, tid = stream. Emits
/// process/thread-name metadata, one complete ("X") event per interval
/// (with {"job", "attempt"} args when traced), instant ("i") events for
/// faults/failovers/degrade/heal from the structured event log, and a
/// flow-event pair ("s" -> "f") per failover hop linking the faulted
/// attempt's last span on the source device to the retried attempt's
/// first span on the target device. Load in chrome://tracing or
/// Perfetto; timestamps are each device's simulated microseconds.
std::string merged_chrome_trace(const std::vector<DeviceTrace>& devices,
                                const std::vector<Event>& events);

}  // namespace saclo::obs
