#include "obs/export.hpp"

#include <optional>
#include <set>

#include "core/fmt.hpp"

namespace saclo::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

const char* category_of(gpu::OpKind kind) {
  switch (kind) {
    case gpu::OpKind::Kernel:
      return "kernel";
    case gpu::OpKind::MemcpyHtoD:
      return "memcpy_h2d";
    case gpu::OpKind::MemcpyDtoH:
      return "memcpy_d2h";
    case gpu::OpKind::Host:
      return "host";
  }
  return "op";
}

bool is_instant(EventType type) {
  switch (type) {
    case EventType::DeviceFault:
    case EventType::Failover:
    case EventType::RetryExhausted:
    case EventType::DeviceDegraded:
    case EventType::DeviceHealed:
    case EventType::BatchFormed:
    case EventType::JobPreempted:
    case EventType::JobStolen:
    case EventType::DeadlineMiss:
    case EventType::ScaleUp:
    case EventType::ScaleDown:
    case EventType::DrainStarted:
    case EventType::DrainComplete:
      return true;
    default:
      return false;
  }
}

/// Scale events also drive the fleet-level "active devices" counter
/// track: ScaleUp/ScaleDown carry the post-action active count in arg.
bool carries_active_count(EventType type) {
  return type == EventType::ScaleUp || type == EventType::ScaleDown;
}

/// Where a flow arrow attaches: a timestamp on a (pid, tid) track.
struct Anchor {
  double ts = 0.0;
  int tid = kRuntimeEventsTid;
};

const DeviceTrace* find_device(const std::vector<DeviceTrace>& devices, int index) {
  for (const DeviceTrace& d : devices) {
    if (d.device == index) return &d;
  }
  return nullptr;
}

/// End of the last interval a (job, attempt) recorded on a device.
std::optional<Anchor> last_span_end(const DeviceTrace& dev, std::uint64_t job,
                                    std::uint32_t attempt) {
  std::optional<Anchor> best;
  for (const auto& iv : dev.intervals) {
    if (iv.trace_id != job || iv.attempt != attempt) continue;
    if (!best || iv.end_us > best->ts) best = Anchor{iv.end_us, iv.stream};
  }
  return best;
}

/// Start of the first interval a (job, attempt) recorded on a device.
std::optional<Anchor> first_span_start(const DeviceTrace& dev, std::uint64_t job,
                                       std::uint32_t attempt) {
  std::optional<Anchor> best;
  for (const auto& iv : dev.intervals) {
    if (iv.trace_id != job || iv.attempt != attempt) continue;
    if (!best || iv.start_us < best->ts) best = Anchor{iv.start_us, iv.stream};
  }
  return best;
}

}  // namespace

std::string merged_chrome_trace(const std::vector<DeviceTrace>& devices,
                                const std::vector<Event>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += ev;
  };

  // Which devices host runtime instant events (they get the extra
  // "runtime" track).
  std::set<int> instant_pids;
  for (const Event& e : events) {
    if (is_instant(e.type) && e.device >= 0) instant_pids.insert(e.device);
  }

  for (const DeviceTrace& dev : devices) {
    std::string proc = cat("gpu", dev.device);
    if (!dev.backend.empty()) proc += cat(" (", dev.backend, ")");
    emit(cat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":", dev.device,
             ",\"args\":{\"name\":\"", json_escape(proc), "\"}}"));
    std::set<gpu::StreamId> streams;
    for (const auto& iv : dev.intervals) streams.insert(iv.stream);
    for (gpu::StreamId s : streams) {
      emit(cat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":", dev.device, ",\"tid\":", s,
               ",\"args\":{\"name\":\"stream ", s, "\"}}"));
    }
    if (instant_pids.count(dev.device) != 0) {
      emit(cat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":", dev.device,
               ",\"tid\":", kRuntimeEventsTid, ",\"args\":{\"name\":\"runtime\"}}"));
    }
  }

  for (const DeviceTrace& dev : devices) {
    for (const auto& iv : dev.intervals) {
      std::string ev = cat("{\"name\":\"", json_escape(iv.name), "\",\"cat\":\"",
                           category_of(iv.kind), "\",\"ph\":\"X\",\"pid\":", dev.device,
                           ",\"tid\":", iv.stream, ",\"ts\":", fixed(iv.start_us, 3),
                           ",\"dur\":", fixed(iv.duration_us(), 3));
      if (iv.trace_id != 0) {
        ev += cat(",\"args\":{\"job\":", iv.trace_id, ",\"attempt\":", iv.attempt);
        if (iv.batch != 0) ev += cat(",\"batch\":", iv.batch);
        if (!dev.backend.empty()) ev += cat(",\"backend\":\"", json_escape(dev.backend), "\"");
        ev += "}";
      }
      emit(ev + "}");
    }
  }

  for (const Event& e : events) {
    if (!is_instant(e.type) || e.device < 0) continue;
    emit(cat("{\"name\":\"", event_type_name(e.type), "\",\"cat\":\"serve\",\"ph\":\"i\","
             "\"s\":\"t\",\"pid\":", e.device, ",\"tid\":", kRuntimeEventsTid,
             ",\"ts\":", fixed(e.t_sim_us, 3), ",\"args\":{\"job\":", e.job,
             ",\"attempt\":", e.attempt, ",\"arg\":", e.arg, "}}"));
  }

  // The autoscaler gauge track: one Chrome counter event per scale
  // action, so the merged trace shows the active-device count stepping
  // up and down against the spans it reshaped. Counter events live on
  // their own process so Perfetto renders one fleet-level track.
  bool any_scale = false;
  for (const Event& e : events) {
    if (!carries_active_count(e.type)) continue;
    if (!any_scale) {
      any_scale = true;
      emit(cat("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":", kAutoscalerPid,
               ",\"args\":{\"name\":\"autoscaler\"}}"));
    }
    emit(cat("{\"name\":\"active_devices\",\"ph\":\"C\",\"pid\":", kAutoscalerPid,
             ",\"ts\":", fixed(e.t_real_us, 3), ",\"args\":{\"devices\":", e.arg, "}}"));
  }

  // One flow pair per failover hop: Failover events carry device = from
  // and arg = to, stamped with the attempt number the retry runs as.
  for (const Event& e : events) {
    if (e.type != EventType::Failover || e.attempt < 1) continue;
    const std::uint64_t flow_id = e.job * 256 + static_cast<std::uint64_t>(e.attempt);
    const int to = static_cast<int>(e.arg);
    Anchor start{e.t_sim_us, kRuntimeEventsTid};
    if (const DeviceTrace* from_dev = find_device(devices, e.device)) {
      if (auto a = last_span_end(*from_dev, e.job,
                                 static_cast<std::uint32_t>(e.attempt - 1))) {
        start = *a;
      }
    }
    emit(cat("{\"name\":\"failover\",\"cat\":\"failover\",\"ph\":\"s\",\"id\":", flow_id,
             ",\"pid\":", e.device, ",\"tid\":", start.tid, ",\"ts\":", fixed(start.ts, 3),
             "}"));
    if (const DeviceTrace* to_dev = find_device(devices, to)) {
      if (auto a = first_span_start(*to_dev, e.job, static_cast<std::uint32_t>(e.attempt))) {
        emit(cat("{\"name\":\"failover\",\"cat\":\"failover\",\"ph\":\"f\",\"bp\":\"e\","
                 "\"id\":", flow_id, ",\"pid\":", to, ",\"tid\":", a->tid,
                 ",\"ts\":", fixed(a->ts, 3), "}"));
      }
    }
  }

  out += "]}";
  return out;
}

}  // namespace saclo::obs
