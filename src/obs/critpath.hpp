#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace saclo::obs {

/// Where one device's share of the fleet makespan went. Times are
/// simulated microseconds on the device's own timeline; `span_us` is
/// the device's last interval end (its local makespan), `busy_us` the
/// union of its busy intervals (overlapping streams counted once), so
/// `span_us - busy_us` is true idle gap, not double-counted overlap.
struct DeviceAttribution {
  int device = 0;
  double kernel_us = 0;
  double h2d_us = 0;
  double d2h_us = 0;
  double host_us = 0;
  double busy_us = 0;  ///< union of busy intervals across streams
  double span_us = 0;  ///< device-local makespan
  std::int64_t preemptions = 0;  ///< JobPreempted events here
  std::int64_t faults = 0;       ///< DeviceFault events here
  std::int64_t drains = 0;       ///< DrainStarted events here

  double idle_us() const { return span_us > busy_us ? span_us - busy_us : 0.0; }
};

/// One named operation's aggregate across the fleet (the per-stage
/// occupancy table).
struct StageAttribution {
  std::string name;
  std::string category;  ///< "kernel" / "memcpy_h2d" / "memcpy_d2h" / "host"
  std::int64_t calls = 0;
  double total_us = 0;
};

/// Kernel time grouped by compilation route, classified from the span
/// name (the GASPARD chain emits `KRN_*` kernels; everything else is
/// the SaC route).
struct RouteAttribution {
  std::string route;
  std::int64_t spans = 0;
  double kernel_us = 0;
};

/// The full makespan attribution the `--analyze` flag and the offline
/// `tools/trace_critpath.py` both report.
struct CriticalPath {
  double makespan_us = 0;  ///< max device-local makespan
  // Queue wait is real (wall-clock) time between job_admitted and the
  // first job_dispatched, from the event log — the one attribution the
  // simulated spans cannot carry.
  std::int64_t jobs_waited = 0;
  double queue_wait_total_us = 0;
  double queue_wait_max_us = 0;
  std::int64_t preemptions = 0;
  std::int64_t failovers = 0;
  std::int64_t drains = 0;
  std::vector<DeviceAttribution> devices;
  std::vector<StageAttribution> stages;  ///< sorted by total_us, descending
  std::vector<RouteAttribution> routes;  ///< sorted by kernel_us, descending
};

/// Classifies a kernel span name into its compilation route ("gaspard"
/// for the chain's `KRN_*` kernels, "sac" otherwise). Exposed for
/// tests; the Python analyzer mirrors it.
const char* route_of_kernel(const std::string& name);

/// Walks the merged per-device traces and the event log and attributes
/// the fleet makespan to compute vs. transfer vs. queue wait vs.
/// preemption/drain stalls.
CriticalPath analyze_critical_path(const std::vector<DeviceTrace>& devices,
                                   const std::vector<Event>& events);

/// Renders the bottleneck table (the summary `saclo-serve --analyze`
/// prints). `top_stages` caps the per-stage section.
std::string critical_path_report(const CriticalPath& path, std::size_t top_stages = 10);

}  // namespace saclo::obs
