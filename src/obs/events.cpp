#include "obs/events.hpp"

#include <algorithm>

#include "core/fmt.hpp"
#include "gpu/backend_kind.hpp"

namespace saclo::obs {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::JobAdmitted:
      return "job_admitted";
    case EventType::JobPlaced:
      return "job_placed";
    case EventType::JobDispatched:
      return "job_dispatched";
    case EventType::FrameDone:
      return "frame_done";
    case EventType::JobCompleted:
      return "job_completed";
    case EventType::DeviceFault:
      return "device_fault";
    case EventType::Failover:
      return "failover";
    case EventType::RetryExhausted:
      return "retry_exhausted";
    case EventType::DeviceDegraded:
      return "device_degraded";
    case EventType::DeviceHealed:
      return "device_healed";
    case EventType::BatchFormed:
      return "batch_formed";
    case EventType::JobShed:
      return "job_shed";
    case EventType::JobPreempted:
      return "job_preempted";
    case EventType::JobStolen:
      return "job_stolen";
    case EventType::DeadlineMiss:
      return "deadline_miss";
    case EventType::ScaleUp:
      return "scale_up";
    case EventType::ScaleDown:
      return "scale_down";
    case EventType::DrainStarted:
      return "drain_started";
    case EventType::DrainComplete:
      return "drain_complete";
    case EventType::AlertRaised:
      return "alert_raised";
    case EventType::AlertCleared:
      return "alert_cleared";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)), slots_(new Slot[capacity_]) {}

bool EventLog::emit(const Event& event) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Slot& slot = slots_[ticket];
  slot.event = event;
  slot.ready.store(true, std::memory_order_release);
  return true;
}

std::size_t EventLog::recorded() const {
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  std::size_t n = 0;
  const std::size_t upto = std::min<std::uint64_t>(claimed, capacity_);
  for (std::size_t i = 0; i < upto; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<Event> EventLog::snapshot() const {
  std::vector<Event> out;
  const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
  const std::size_t upto = std::min<std::uint64_t>(claimed, capacity_);
  out.reserve(upto);
  for (std::size_t i = 0; i < upto; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire)) out.push_back(slots_[i].event);
  }
  return out;
}

std::string event_json(const Event& event) {
  return cat("{\"event\":\"", event_type_name(event.type), "\",\"backend\":\"",
             gpu::backend_kind_name(static_cast<gpu::BackendKind>(event.backend)),
             "\",\"t_real_us\":", fixed(event.t_real_us, 1),
             ",\"t_sim_us\":", fixed(event.t_sim_us, 3), ",\"job\":", event.job,
             ",\"device\":", event.device, ",\"attempt\":", event.attempt,
             ",\"arg\":", event.arg, "}");
}

std::string EventLog::jsonl() const {
  const std::vector<Event> events = snapshot();
  std::string out;
  for (const Event& e : events) {
    out += event_json(e);
    out += "\n";
  }
  out += cat("{\"event\":\"log_summary\",\"recorded\":", events.size(),
             ",\"dropped\":", dropped(), ",\"capacity\":", capacity_, "}\n");
  return out;
}

}  // namespace saclo::obs
