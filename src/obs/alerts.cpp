#include "obs/alerts.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::obs {

namespace {

std::string escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

/// Finds the tenant's counters in one sample; nullptr when the tenant
/// had not appeared yet.
const TenantCounters* find_tenant(const AlertSample& sample, const std::string& tenant) {
  for (const TenantCounters& t : sample.tenants) {
    if (t.tenant == tenant) return &t;
  }
  return nullptr;
}

}  // namespace

const char* alert_kind_name(AlertKind kind) {
  switch (kind) {
    case AlertKind::SloBurnRate: return "slo_burn_rate";
    case AlertKind::QueueSaturation: return "queue_saturation";
    case AlertKind::DeviceDegraded: return "device_degraded";
  }
  return "unknown";
}

void AlertPolicy::validate() const {
  if (slo_objective <= 0.0 || slo_objective >= 1.0) {
    throw AlertError(cat("alerts: slo_objective must be in (0, 1), got ", slo_objective));
  }
  if (fast_window_ms <= 0.0) {
    throw AlertError(cat("alerts: fast_window_ms must be positive, got ", fast_window_ms));
  }
  if (slow_window_ms < fast_window_ms) {
    throw AlertError(cat("alerts: slow_window_ms (", slow_window_ms,
                         ") must be >= fast_window_ms (", fast_window_ms, ")"));
  }
  if (fast_burn <= 0.0 || slow_burn <= 0.0) {
    throw AlertError("alerts: burn-rate thresholds must be positive");
  }
  if (queue_saturation <= 0.0 || queue_saturation > 1.0) {
    throw AlertError(cat("alerts: queue_saturation must be in (0, 1], got ", queue_saturation));
  }
  if (clear_hold_ms < 0.0) {
    throw AlertError(cat("alerts: clear_hold_ms must be >= 0, got ", clear_hold_ms));
  }
}

AlertEngine::AlertEngine(const AlertPolicy& policy) : policy_(policy) { policy_.validate(); }

double AlertEngine::burn_rate(const std::string& tenant, double window_ms) const {
  if (history_.empty()) return 0.0;
  const AlertSample& latest = history_.back();
  const TenantCounters* now = find_tenant(latest, tenant);
  if (now == nullptr) return 0.0;
  // Baseline: the newest sample at or before the window start. With no
  // sample that old yet (cold start) the earliest one stands in, so a
  // young engine still reacts instead of reporting a zero rate.
  const double window_start = latest.now_ms - window_ms;
  const AlertSample* base = &history_.front();
  for (const AlertSample& s : history_) {
    if (s.now_ms <= window_start) base = &s;
  }
  const TenantCounters* then = find_tenant(*base, tenant);
  const std::int64_t jobs0 = then != nullptr ? then->slo_jobs : 0;
  const std::int64_t met0 = then != nullptr ? then->slo_met : 0;
  const std::int64_t jobs = now->slo_jobs - jobs0;
  const std::int64_t met = now->slo_met - met0;
  if (jobs <= 0) return 0.0;  // no completed SLO jobs in window: nothing burned
  const double error_rate = static_cast<double>(jobs - met) / static_cast<double>(jobs);
  return error_rate / (1.0 - policy_.slo_objective);
}

void AlertEngine::evaluate(AlertKind kind, const std::string& subject, bool hot, double value,
                           double now_ms, std::vector<AlertTransition>& out) {
  const auto key = std::make_pair(static_cast<int>(kind), subject);
  AlertState& state = states_[key];
  if (hot) {
    state.healthy_since_ms = -1;
    if (!state.firing) {
      state.firing = true;
      active_[key] = ActiveAlert{kind, subject, now_ms, value};
      out.push_back(AlertTransition{kind, true, subject, now_ms, value});
    }
    return;
  }
  if (!state.firing) return;
  if (state.healthy_since_ms < 0) {
    state.healthy_since_ms = now_ms;
    if (policy_.clear_hold_ms > 0) return;
  }
  if (now_ms - state.healthy_since_ms >= policy_.clear_hold_ms) {
    state.firing = false;
    state.healthy_since_ms = -1;
    active_.erase(key);
    out.push_back(AlertTransition{kind, false, subject, now_ms, value});
  }
}

std::vector<AlertTransition> AlertEngine::step(const AlertSample& sample) {
  if (!history_.empty() && sample.now_ms < history_.back().now_ms) {
    throw AlertError(cat("alerts: samples must be in clock order (", sample.now_ms, " after ",
                         history_.back().now_ms, ")"));
  }
  history_.push_back(sample);
  // Keep one baseline older than the slow window; drop the rest.
  while (history_.size() >= 2 &&
         history_[1].now_ms <= sample.now_ms - policy_.slow_window_ms) {
    history_.pop_front();
  }

  std::vector<AlertTransition> out;
  for (const TenantCounters& t : sample.tenants) {
    const double fast = burn_rate(t.tenant, policy_.fast_window_ms);
    const double slow = burn_rate(t.tenant, policy_.slow_window_ms);
    const bool hot = fast >= policy_.fast_burn && slow >= policy_.slow_burn;
    evaluate(AlertKind::SloBurnRate, t.tenant, hot, fast, sample.now_ms, out);
  }
  const double saturation =
      sample.queue_capacity > 0
          ? static_cast<double>(sample.queued) / static_cast<double>(sample.queue_capacity)
          : 0.0;
  evaluate(AlertKind::QueueSaturation, "", saturation >= policy_.queue_saturation, saturation,
           sample.now_ms, out);
  evaluate(AlertKind::DeviceDegraded, "", sample.degraded_devices > 0,
           static_cast<double>(sample.degraded_devices), sample.now_ms, out);
  return out;
}

std::vector<ActiveAlert> AlertEngine::active() const {
  std::vector<ActiveAlert> out;
  out.reserve(active_.size());
  for (const auto& [key, alert] : active_) out.push_back(alert);
  return out;
}

std::string alert_transition_json(const AlertTransition& transition) {
  return cat("{\"type\":\"", transition.raised ? "alert_raised" : "alert_cleared",
             "\",\"kind\":\"", alert_kind_name(transition.kind), "\",\"subject\":\"",
             escape(transition.subject), "\",\"t_ms\":", fixed(transition.at_ms, 3),
             ",\"value\":", fixed(transition.value, 4), "}");
}

}  // namespace saclo::obs
