#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "core/error.hpp"

namespace saclo::obs {

/// Raised by TelemetryServer on socket setup failures (port in use,
/// no permission to bind).
class TelemetryError : public Error {
 public:
  using Error::Error;
};

/// One parsed GET request: the path with its query string split into a
/// decoded key/value map (`/debug/events?n=32` -> path "/debug/events",
/// query {"n": "32"}).
struct HttpRequest {
  std::string method;
  std::string path;
  std::map<std::string, std::string> query;

  /// Query parameter as a bounded integer; `fallback` when absent or
  /// malformed.
  long query_long(const std::string& key, long fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// A minimal embedded HTTP/1.1 endpoint for live observability:
/// plain POSIX sockets, one accept thread, GET-only, `Connection:
/// close` per request. It deliberately does nothing clever — every
/// handler runs on the accept thread against a snapshot its owner
/// takes under that owner's own locks, so serving a scrape never
/// touches the dispatch hot path and the zero-allocation guarantee of
/// the recording side is untouched.
///
/// Lifecycle: construct with a port (0 = ephemeral), register handlers
/// with handle() (thread-safe, allowed before or after start()), then
/// start(). stop() (or the destructor) wakes the accept thread through
/// a self-pipe and joins it.
class TelemetryServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `port` 0 asks the kernel for an ephemeral port (tests; read it
  /// back with port()). The server binds 127.0.0.1 only — this is an
  /// operator sidecar endpoint, not an internet-facing service.
  explicit TelemetryServer(int port);
  ~TelemetryServer();

  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Registers (or replaces) the handler for an exact path. Thread-safe
  /// and allowed while the server runs, so late-constructed subsystems
  /// (the alert monitor) can mount endpoints on a live server.
  void handle(const std::string& path, Handler handler);

  /// Binds, listens and starts the accept thread. Throws
  /// TelemetryError when the socket cannot be set up.
  void start();

  /// Stops accepting, closes the listening socket and joins the accept
  /// thread. Idempotent; the destructor calls it.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actual bound port (resolves an ephemeral request after
  /// start(); the configured port before).
  int port() const { return port_; }
  /// Requests answered so far (any status).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void loop();
  void serve_connection(int fd);
  HttpResponse dispatch(const HttpRequest& request) const;

  int configured_port_;
  int port_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  mutable std::mutex routes_mutex_;
  std::map<std::string, Handler> routes_;
  std::thread thread_;
};

/// Parses the request line + query string of one HTTP request header
/// block. Exposed for unit tests. Returns false on a malformed request
/// line.
bool parse_http_request(const std::string& raw, HttpRequest& out);

}  // namespace saclo::obs
