#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"

namespace saclo::obs {

class AlertError : public Error {
 public:
  using Error::Error;
};

/// The alert vocabulary. Values are stable wire ids: they ride the
/// `arg` field of `alert_raised`/`alert_cleared` events.
enum class AlertKind : std::uint8_t {
  SloBurnRate = 0,      ///< a tenant burns SLO error budget too fast
  QueueSaturation = 1,  ///< accepted-but-not-dispatched backlog near capacity
  DeviceDegraded = 2,   ///< degraded devices present in the fleet
};

/// Stable wire name ("slo_burn_rate", ...) used by the alert log and
/// the /alerts endpoint.
const char* alert_kind_name(AlertKind kind);

/// Thresholds and windows for the rule evaluation. Defaults are tuned
/// for CI-scale replays (hundreds of milliseconds of run time), the
/// same convention as AutoscalePolicy; production-shaped runs raise
/// the windows together.
///
/// The SLO rule is the SRE multi-window burn-rate idiom: with
/// objective `slo_objective`, the error budget is `1 - slo_objective`
/// and the burn rate of a window is `windowed_error_rate / budget`.
/// The alert raises only when the fast AND slow windows both burn hot
/// — the fast window makes it react, the slow window keeps one
/// transient blip from paging — and clears after `clear_hold_ms` of
/// sustained health.
/// The burn thresholds scale with the objective: burn rate is capped at
/// `1 / (1 - slo_objective)` (every job missing), so the textbook 14.4x
/// of a 99.9% objective is unreachable at the default 0.9 — the
/// defaults here (6x fast / 3x slow) mean "well over half the fast
/// window missed AND the slow window confirms it".
struct AlertPolicy {
  double slo_objective = 0.9;   ///< target SLO attainment per tenant
  double fast_window_ms = 200;  ///< reactive burn-rate window
  double slow_window_ms = 1000; ///< confirmation burn-rate window
  double fast_burn = 6.0;       ///< fast-window burn-rate threshold
  double slow_burn = 3.0;       ///< slow-window burn-rate threshold
  /// Queue saturation: queued / capacity at or above this raises.
  double queue_saturation = 0.9;
  /// Sustained healthy time before an active alert clears.
  double clear_hold_ms = 400;

  void validate() const;
};

/// Per-tenant cumulative SLO counters at one sample instant. Cumulative
/// on purpose: windowed rates fall out of the difference between two
/// samples, so the engine needs no per-job feed.
struct TenantCounters {
  std::string tenant;
  std::int64_t slo_jobs = 0;  ///< completed jobs that carried a deadline
  std::int64_t slo_met = 0;   ///< of those, completed within it
};

/// One observation of the fleet, stamped with the injected clock.
struct AlertSample {
  double now_ms = 0;
  std::size_t queued = 0;
  std::size_t queue_capacity = 0;
  int degraded_devices = 0;
  int active_devices = 0;
  std::vector<TenantCounters> tenants;
};

/// An alert state transition returned by AlertEngine::step().
struct AlertTransition {
  AlertKind kind = AlertKind::SloBurnRate;
  bool raised = false;   ///< true = raised, false = cleared
  std::string subject;   ///< tenant id for SLO alerts, "" for fleet rules
  double at_ms = 0;      ///< injected clock of the transition
  double value = 0;      ///< fast burn rate / saturation ratio / degraded count
};

/// One alert currently firing.
struct ActiveAlert {
  AlertKind kind = AlertKind::SloBurnRate;
  std::string subject;
  double since_ms = 0;
  double value = 0;  ///< value at raise time
};

/// The pure rule evaluator: samples in, transitions out. No clock, no
/// threads, no runtime — `AlertSample::now_ms` is injected, so raise
/// and clear behavior is unit-testable tick by tick with a fake clock
/// (the AutoscaleController discipline). The engine keeps just enough
/// sample history to cover the slow window.
class AlertEngine {
 public:
  explicit AlertEngine(const AlertPolicy& policy);

  /// Evaluates every rule against the new sample. Samples must arrive
  /// in non-decreasing now_ms order.
  std::vector<AlertTransition> step(const AlertSample& sample);

  const AlertPolicy& policy() const { return policy_; }
  /// Alerts currently firing, stable-ordered by (kind, subject).
  std::vector<ActiveAlert> active() const;
  std::size_t active_count() const { return active_.size(); }

  /// Burn rate of `tenant` over the trailing `window_ms` ending at the
  /// latest sample (0 with no window data). Exposed for tests.
  double burn_rate(const std::string& tenant, double window_ms) const;

 private:
  struct AlertState {
    bool firing = false;
    double healthy_since_ms = -1;  ///< start of the current healthy streak
  };
  void evaluate(AlertKind kind, const std::string& subject, bool hot, double value,
                double now_ms, std::vector<AlertTransition>& out);

  AlertPolicy policy_;
  std::deque<AlertSample> history_;
  // Keyed by (kind, subject); std::map keeps active() stable-ordered.
  std::map<std::pair<int, std::string>, AlertState> states_;
  std::map<std::pair<int, std::string>, ActiveAlert> active_;
};

/// Renders one transition as a JSONL line (no trailing newline) — the
/// alert-log schema `--alerts-out` writes and CI archives.
std::string alert_transition_json(const AlertTransition& transition);

}  // namespace saclo::obs
