#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace saclo::obs {

/// Fixed-memory log-bucketed histogram for latency-style samples in
/// microseconds. Replaces the metrics registry's unbounded per-job
/// sample vectors: memory is a constant 128 counters no matter how many
/// jobs a long-running fleet serves, while percentiles stay within one
/// bucket width (buckets grow by 2^(1/4) ~ 19% per step) of the exact
/// sample percentile.
///
/// Layout: bucket 0 covers (-inf, 1us]; bucket i covers
/// (2^((i-1)/4), 2^(i/4)] microseconds; the last bucket is the +inf
/// overflow. The finite range tops out around 2^31.5 us (~50 minutes),
/// far beyond any job latency this runtime produces. Sum, min and max
/// are tracked exactly. Not thread-safe: callers (FleetMetrics) already
/// serialize recording.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 128;
  /// Upper bound of bucket 0 in microseconds.
  static constexpr double kBaseUs = 1.0;
  /// Buckets per doubling of the value range.
  static constexpr int kBucketsPerDoubling = 4;

  /// Records one sample. No allocation, O(1).
  void record(double value_us);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Exact extrema of the recorded samples (0 when empty).
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }

  /// Interpolated percentile (q in [0, 1]); 0 on an empty histogram.
  /// Within one bucket width of the exact sample percentile, clamped to
  /// the exact [min, max].
  double percentile(double q) const;

  /// Inclusive upper bound of a bucket; +inf for the last one.
  static double upper_bound(std::size_t bucket);
  /// Exclusive lower bound of a bucket (0 for bucket 0).
  static double lower_bound(std::size_t bucket);
  /// The bucket a value lands in.
  static std::size_t bucket_index(double value_us);

  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }

  /// Folds another histogram into this one (extrema and sum included).
  void merge(const LogHistogram& other);

 private:
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Appends one histogram in the Prometheus text exposition format:
/// cumulative `_bucket{le="..."}` lines (finite bounds with any
/// observations below them, then `+Inf`), `_sum` and `_count`. `name`
/// must already carry the unit suffix convention (e.g.
/// "saclo_job_latency_us"). `labels` is an optional pre-rendered label
/// list (e.g. `class="high"`) joined into every sample line — how one
/// metric family exposes per-class series; HELP/TYPE headers are still
/// emitted per call, so group same-family calls or accept repeats.
void append_prometheus_histogram(std::string& out, const std::string& name,
                                 const std::string& help, const LogHistogram& hist,
                                 const std::string& labels = std::string());

}  // namespace saclo::obs
