#include "obs/telemetry.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "core/fmt.hpp"

namespace saclo::obs {

namespace {

/// %XX-decodes one query component ('+' is a space, bad escapes pass
/// through verbatim — a debug endpoint should never 400 over one).
std::string url_decode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size() &&
               std::isxdigit(static_cast<unsigned char>(in[i + 1])) != 0 &&
               std::isxdigit(static_cast<unsigned char>(in[i + 2])) != 0) {
      const char hex[3] = {in[i + 1], in[i + 2], '\0'};
      out += static_cast<char>(std::strtol(hex, nullptr, 16));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone — a scrape client may hang up early
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

long HttpRequest::query_long(const std::string& key, long fallback) const {
  const auto it = query.find(key);
  if (it == query.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return fallback;
  return value;
}

bool parse_http_request(const std::string& raw, HttpRequest& out) {
  const std::size_t line_end = raw.find("\r\n");
  const std::string line = raw.substr(0, line_end == std::string::npos ? raw.size() : line_end);
  const std::size_t m1 = line.find(' ');
  if (m1 == std::string::npos) return false;
  const std::size_t m2 = line.find(' ', m1 + 1);
  if (m2 == std::string::npos) return false;
  out.method = line.substr(0, m1);
  std::string target = line.substr(m1 + 1, m2 - m1 - 1);
  if (out.method.empty() || target.empty() || target[0] != '/') return false;
  const std::size_t q = target.find('?');
  out.path = target.substr(0, q);
  out.query.clear();
  if (q != std::string::npos) {
    std::string qs = target.substr(q + 1);
    std::size_t pos = 0;
    while (pos <= qs.size()) {
      std::size_t amp = qs.find('&', pos);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(pos, amp - pos);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos) {
          out.query[url_decode(pair)] = "";
        } else {
          out.query[url_decode(pair.substr(0, eq))] = url_decode(pair.substr(eq + 1));
        }
      }
      pos = amp + 1;
    }
  }
  return true;
}

TelemetryServer::TelemetryServer(int port) : configured_port_(port), port_(port) {}

TelemetryServer::~TelemetryServer() { stop(); }

void TelemetryServer::handle(const std::string& path, Handler handler) {
  std::lock_guard<std::mutex> lock(routes_mutex_);
  routes_[path] = std::move(handler);
}

void TelemetryServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw TelemetryError(cat("telemetry: socket() failed: ", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(configured_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TelemetryError(cat("telemetry: cannot bind 127.0.0.1:", configured_port_, ": ", why));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TelemetryError(cat("telemetry: listen() failed: ", why));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  if (::pipe(wake_pipe_) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw TelemetryError(cat("telemetry: pipe() failed: ", why));
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void TelemetryServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // One byte through the self-pipe drops the accept thread out of
  // poll() immediately instead of waiting for the next connection.
  const char wake = 'x';
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &wake, 1);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TelemetryServer::loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (!running_.load(std::memory_order_acquire)) return;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    serve_connection(fd);
    ::close(fd);
  }
}

void TelemetryServer::serve_connection(int fd) {
  // A stalled client must not wedge the accept loop: bound the read.
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string raw;
  char buf[2048];
  while (raw.find("\r\n\r\n") == std::string::npos && raw.size() < 16384) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  if (raw.empty()) return;

  HttpRequest request;
  HttpResponse response;
  if (!parse_http_request(raw, request)) {
    response = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (request.method != "GET" && request.method != "HEAD") {
    response = {405, "text/plain; charset=utf-8", "telemetry endpoints are GET-only\n"};
  } else {
    response = dispatch(request);
  }

  std::string wire = cat("HTTP/1.1 ", response.status, " ", status_text(response.status),
                         "\r\nContent-Type: ", response.content_type,
                         "\r\nContent-Length: ", response.body.size(),
                         "\r\nConnection: close\r\n\r\n");
  if (request.method != "HEAD") wire += response.body;
  send_all(fd, wire);
  requests_.fetch_add(1, std::memory_order_relaxed);
}

HttpResponse TelemetryServer::dispatch(const HttpRequest& request) const {
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(request.path);
    if (it != routes_.end()) handler = it->second;
  }
  if (!handler) {
    std::string index = "not found. endpoints:\n";
    std::lock_guard<std::mutex> lock(routes_mutex_);
    for (const auto& [path, unused] : routes_) index += cat("  ", path, "\n");
    return {404, "text/plain; charset=utf-8", index};
  }
  try {
    return handler(request);
  } catch (const std::exception& e) {
    // A handler exception must not kill the accept thread mid-run.
    return {503, "text/plain; charset=utf-8", cat("handler failed: ", e.what(), "\n")};
  }
}

}  // namespace saclo::obs
