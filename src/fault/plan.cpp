#include "fault/plan.hpp"

#include <random>

namespace saclo::fault {

void FaultPlan::add(const FaultSpec& spec) {
  spec.validate();
  specs_.push_back(spec);
}

std::vector<FaultSpec> FaultPlan::specs_for(int device) const {
  std::vector<FaultSpec> out;
  for (const FaultSpec& spec : specs_) {
    if (spec.device == device) out.push_back(spec);
  }
  return out;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t semi = text.find(';', pos);
    if (semi == std::string::npos) semi = text.size();
    const std::string spec = text.substr(pos, semi - pos);
    pos = semi + 1;
    if (spec.empty()) continue;
    plan.add(parse_fault_spec(spec));
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, int devices, int faults, double max_after_ms,
                            std::int64_t max_count) {
  if (devices <= 0) throw FaultPlanError("random fault plan needs at least one device");
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> device_dist(0, devices - 1);
  std::uniform_int_distribution<int> trigger_dist(0, 2);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  std::uniform_int_distribution<int> recurring_dist(0, 3);
  std::uniform_real_distribution<double> ms_dist(0.0, max_after_ms);
  std::uniform_int_distribution<std::int64_t> count_dist(0, max_count);

  FaultPlan plan;
  for (int i = 0; i < faults; ++i) {
    FaultSpec spec;
    spec.device = device_dist(rng);
    switch (trigger_dist(rng)) {
      case 0:
        spec.after_ms = ms_dist(rng);
        spec.kind = static_cast<FaultKind>(kind_dist(rng));
        break;
      case 1:
        spec.after_kernels = count_dist(rng);
        spec.kind = FaultKind::Kernel;
        break;
      default:
        spec.after_transfers = count_dist(rng);
        spec.kind = FaultKind::Transfer;
        break;
    }
    spec.recurring = recurring_dist(rng) == 0;
    plan.add(spec);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const FaultSpec& spec : specs_) {
    out += spec.describe();
    out += "\n";
  }
  return out;
}

}  // namespace saclo::fault
