#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"

namespace saclo::fault {

/// A fleet-wide fault schedule: the collection of FaultSpecs a serving
/// runtime installs on its devices at construction. Value-semantic and
/// cheap to copy, so it travels inside ServeRuntime::Options.
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Validates and appends one spec.
  void add(const FaultSpec& spec);
  bool empty() const { return specs_.empty(); }
  std::size_t size() const { return specs_.size(); }
  const std::vector<FaultSpec>& specs() const { return specs_; }
  /// The specs targeting one fleet device (what its injector arms).
  std::vector<FaultSpec> specs_for(int device) const;

  /// Parses a ';'-separated list of CLI specs, e.g.
  ///   "dev=0,after_kernels=0;dev=2,after_ms=50,kind=kernel"
  static FaultPlan parse(const std::string& text);

  /// Seeded random plan for stress tests: `faults` specs spread over
  /// `devices` devices, triggers drawn uniformly (time faults up to
  /// max_after_ms simulated ms, count faults up to max_count ops),
  /// ~1 in 4 recurring. The same seed always yields the same plan.
  static FaultPlan random(std::uint64_t seed, int devices, int faults,
                          double max_after_ms = 5.0, std::int64_t max_count = 40);

  /// One spec per line, canonical form — stress-test logs and
  /// reproducibility checks.
  std::string describe() const;

 private:
  std::vector<FaultSpec> specs_;
};

}  // namespace saclo::fault
