#include "fault/fault.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::fault {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Kernel:
      return "kernel";
    case FaultKind::Transfer:
      return "transfer";
    case FaultKind::Any:
      return "any";
  }
  return "?";
}

void FaultSpec::validate() const {
  if (device < 0) throw FaultPlanError(cat("fault device must be >= 0, got ", device));
  int triggers = 0;
  if (after_ms >= 0) ++triggers;
  if (after_kernels >= 0) ++triggers;
  if (after_transfers >= 0) ++triggers;
  if (triggers != 1) {
    throw FaultPlanError(
        cat("fault spec needs exactly one trigger (after_ms, after_kernels or "
            "after_transfers), got ",
            triggers, " in '", describe(), "'"));
  }
  if (after_kernels >= 0 && kind == FaultKind::Transfer) {
    throw FaultPlanError("after_kernels fires at a kernel boundary; kind=transfer conflicts");
  }
  if (after_transfers >= 0 && kind == FaultKind::Kernel) {
    throw FaultPlanError("after_transfers fires at a transfer boundary; kind=kernel conflicts");
  }
}

std::string FaultSpec::describe() const {
  std::string out = cat("dev=", device);
  if (after_ms >= 0) out += cat(",after_ms=", fixed(after_ms, 3));
  if (after_kernels >= 0) out += cat(",after_kernels=", after_kernels);
  if (after_transfers >= 0) out += cat(",after_transfers=", after_transfers);
  out += cat(",kind=", fault_kind_name(kind));
  if (recurring) out += ",recurring";
  return out;
}

namespace {
std::string trimmed(const std::string& text) {
  std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}
}  // namespace

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = trimmed(text.substr(pos, comma - pos));
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    const std::string key = field.substr(0, eq);
    const std::string value = eq == std::string::npos ? "" : field.substr(eq + 1);
    try {
      if (key == "dev" || key == "device") {
        spec.device = std::stoi(value);
      } else if (key == "after_ms") {
        spec.after_ms = std::stod(value);
      } else if (key == "after_kernels") {
        spec.after_kernels = std::stoll(value);
      } else if (key == "after_transfers") {
        spec.after_transfers = std::stoll(value);
      } else if (key == "kind") {
        if (value == "kernel") {
          spec.kind = FaultKind::Kernel;
        } else if (value == "transfer") {
          spec.kind = FaultKind::Transfer;
        } else if (value == "any") {
          spec.kind = FaultKind::Any;
        } else {
          throw FaultPlanError(cat("unknown fault kind '", value,
                                   "' (expected kernel, transfer or any)"));
        }
      } else if (key == "recurring" && value.empty()) {
        spec.recurring = true;
      } else if (key == "oneshot" && value.empty()) {
        spec.recurring = false;
      } else {
        throw FaultPlanError(cat("unknown fault-spec field '", field, "' in '", text, "'"));
      }
    } catch (const std::invalid_argument&) {
      throw FaultPlanError(cat("malformed value in fault-spec field '", field, "'"));
    } catch (const std::out_of_range&) {
      throw FaultPlanError(cat("out-of-range value in fault-spec field '", field, "'"));
    }
  }
  spec.validate();
  // Count triggers imply their own boundary; fold that into `kind` so
  // describe() round-trips the canonical form.
  if (spec.after_kernels >= 0) spec.kind = FaultKind::Kernel;
  if (spec.after_transfers >= 0) spec.kind = FaultKind::Transfer;
  return spec;
}

FaultInjector::FaultInjector(const std::vector<FaultSpec>& specs) {
  for (const FaultSpec& spec : specs) add(spec);
}

void FaultInjector::add(const FaultSpec& spec) {
  spec.validate();
  Armed armed;
  armed.spec = spec;
  if (spec.after_kernels >= 0) armed.next_count = spec.after_kernels;
  if (spec.after_transfers >= 0) armed.next_count = spec.after_transfers;
  armed_.push_back(armed);
}

void FaultInjector::on_kernel(double clock_us) {
  check(FaultKind::Kernel, kernels_seen_, clock_us);
  ++kernels_seen_;
}

void FaultInjector::on_transfer(double clock_us) {
  check(FaultKind::Transfer, transfers_seen_, clock_us);
  ++transfers_seen_;
}

void FaultInjector::check(FaultKind boundary, std::int64_t seen, double clock_us) {
  for (Armed& armed : armed_) {
    const FaultSpec& spec = armed.spec;
    if (armed.fired && !spec.recurring) continue;
    bool fires = false;
    if (spec.after_ms >= 0) {
      fires = (spec.kind == FaultKind::Any || spec.kind == boundary) &&
              clock_us >= spec.after_ms * 1000.0;
    } else if (spec.after_kernels >= 0) {
      fires = boundary == FaultKind::Kernel && seen >= armed.next_count;
    } else if (spec.after_transfers >= 0) {
      fires = boundary == FaultKind::Transfer && seen >= armed.next_count;
    }
    if (!fires) continue;
    armed.fired = true;
    if (spec.recurring && spec.after_ms < 0) {
      // Periodic count trigger: re-arm after the same number of further
      // successful ops (at least one, so a 0-count spec doesn't wedge
      // the arithmetic — it still fails every op).
      const std::int64_t period =
          std::max<std::int64_t>(1, spec.after_kernels >= 0 ? spec.after_kernels
                                                            : spec.after_transfers);
      armed.next_count = seen + period;
    }
    ++fired_;
    last_boundary_ = boundary;
    last_clock_us_ = clock_us;
    throw DeviceFault(cat("injected device fault at ", fault_kind_name(boundary), " #",
                          seen + 1, " (sim clock ", fixed(clock_us, 1), "us): ",
                          spec.describe()));
  }
}

}  // namespace saclo::fault
