#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/error.hpp"

namespace saclo::fault {

/// Raised by a fault-injected simulated device when an armed FaultSpec's
/// trigger is reached at a kernel-launch or transfer boundary. The
/// serving scheduler catches exactly this type to drive failover; any
/// other exception escaping a job still fails the job outright.
class DeviceFault : public Error {
 public:
  using Error::Error;
};

/// Raised on malformed fault specs (bad grammar, missing or conflicting
/// trigger, out-of-range values).
class FaultPlanError : public Error {
 public:
  using Error::Error;
};

/// The operation boundary a fault surfaces at. Count-based triggers
/// imply their own boundary (after_kernels fires at a kernel launch,
/// after_transfers at a transfer); `kind` selects the boundary for
/// time-based triggers, where Any means "the first simulated operation
/// past the deadline, whatever it is".
enum class FaultKind { Kernel, Transfer, Any };

const char* fault_kind_name(FaultKind kind);

/// One scheduled device failure: fail device `device` after N simulated
/// milliseconds, after K successful kernel launches, or after M
/// successful transfers — one-shot (a transient glitch: the device works
/// again once the fault fired) or recurring (a periodically/permanently
/// broken device).
///
/// Exactly one of the three triggers must be set:
///  - after_ms >= 0: the first op (of `kind`) issued at device clock
///    >= after_ms fires the fault. Recurring time faults fire on every
///    such op — a device that is dead from that point on.
///  - after_kernels = K >= 0: the first K kernel launches succeed, the
///    next one fires (K = 0 fails the very first kernel). Recurring
///    specs re-arm every max(1, K) further successful launches.
///  - after_transfers = M >= 0: same, counting accounted PCIe transfers.
struct FaultSpec {
  int device = 0;
  double after_ms = -1;
  std::int64_t after_kernels = -1;
  std::int64_t after_transfers = -1;
  FaultKind kind = FaultKind::Any;
  bool recurring = false;

  /// Throws FaultPlanError unless exactly one trigger is set, values
  /// are in range, and `kind` is consistent with the trigger.
  void validate() const;
  /// Canonical "dev=0,after_kernels=3,kind=kernel" round-trip form.
  std::string describe() const;
};

/// Parses one spec from the CLI grammar, e.g.
///   "dev=2,after_ms=50,kind=kernel"
///   "dev=0,after_kernels=0,recurring"
/// Keys: dev, after_ms, after_kernels, after_transfers, kind
/// (kernel|transfer|any), and the bare flags recurring / oneshot.
/// Throws FaultPlanError on unknown keys or a malformed trigger.
FaultSpec parse_fault_spec(const std::string& text);

/// Per-device fault state machine. A VirtualGpu with an injector
/// installed calls on_kernel()/on_transfer() before each simulated
/// operation; when an armed spec's trigger is reached the injector
/// throws DeviceFault and the operation never happens (fail-stop).
///
/// Counters count *successful* operations only, so a retried workload
/// resumes the count where the fault interrupted it. Not thread-safe:
/// like the VirtualGpu it instruments, an injector belongs to one
/// dispatcher thread.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(const std::vector<FaultSpec>& specs);

  /// Arms one more spec (validates it first).
  void add(const FaultSpec& spec);
  bool armed() const { return !armed_.empty(); }

  /// Kernel-launch boundary; `clock_us` is the device's simulated clock
  /// before the launch. Throws DeviceFault when a spec fires.
  void on_kernel(double clock_us);
  /// Transfer boundary (accounted H2D/D2H copies).
  void on_transfer(double clock_us);

  std::int64_t kernels_seen() const { return kernels_seen_; }
  std::int64_t transfers_seen() const { return transfers_seen_; }
  std::int64_t faults_fired() const { return fired_; }

  /// Boundary and simulated device clock of the most recent firing —
  /// the scheduler copies these into the structured fault event it
  /// logs, so a degraded run is reconstructable from artifacts alone.
  /// Meaningful only once faults_fired() > 0.
  FaultKind last_fault_boundary() const { return last_boundary_; }
  double last_fault_clock_us() const { return last_clock_us_; }

 private:
  struct Armed {
    FaultSpec spec;
    bool fired = false;             ///< one-shot specs disarm after firing
    std::int64_t next_count = 0;    ///< count threshold for the next firing
  };

  void check(FaultKind boundary, std::int64_t seen, double clock_us);

  std::vector<Armed> armed_;
  std::int64_t kernels_seen_ = 0;
  std::int64_t transfers_seen_ = 0;
  std::int64_t fired_ = 0;
  FaultKind last_boundary_ = FaultKind::Any;
  double last_clock_us_ = 0.0;
};

}  // namespace saclo::fault
