#pragma once

#include <stdexcept>
#include <string>

namespace saclo {

/// Base class for all errors raised by the SaCLO libraries.
///
/// Every subsystem throws a subclass of Error so callers can either
/// catch the precise category (e.g. sac::ParseError) or the whole
/// family at once.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Raised when an array/shape operation receives incompatible operands,
/// e.g. rank mismatch, out-of-bounds index, or negative extent.
class ShapeError : public Error {
 public:
  using Error::Error;
};

/// Raised when a tiler specification is internally inconsistent
/// (dimension mismatches between origin/fitting/paving and the arrays
/// they address).
class TilerError : public Error {
 public:
  using Error::Error;
};

}  // namespace saclo
