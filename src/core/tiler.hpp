#pragma once

#include <string>

#include "core/matrix.hpp"
#include "core/ndarray.hpp"

namespace saclo {

/// An ArrayOL tiler: the connector that describes how a
/// multidimensional array is covered by patterns (tiles).
///
/// Following Section IV of the paper, a tiler is defined by
///   - an origin vector `o` (one entry per array dimension),
///   - a fitting matrix `F` (array-rank × pattern-rank) describing how a
///     pattern is filled with array elements, and
///   - a paving matrix `P` (array-rank × repetition-rank) describing how
///     the array is covered by pattern instances.
///
/// For a repetition index r and pattern index i, the addressed array
/// element is  e(r, i) = (o + P·r + F·i) mod s_array  — all indexing is
/// modular, which is what makes boundary tiles wrap around.
struct TilerSpec {
  Index origin;
  IntMat fitting;
  IntMat paving;

  /// Checks dimensional consistency against concrete shapes; throws
  /// TilerError with a precise message otherwise.
  void validate(const Shape& array_shape, const Shape& pattern_shape,
                const Shape& repetition_shape) const;

  /// The array element addressed by (repetition r, pattern i).
  Index element_index(const Shape& array_shape, const Index& rep, const Index& pat) const;

  /// The reference element of pattern instance r (pattern index 0).
  Index reference(const Shape& array_shape, const Index& rep) const;

  std::string to_string() const;
};

/// True when the tiler visits every element of `array_shape` exactly
/// once over the full repetition × pattern space — i.e. the tiling is an
/// exact partition. Tilers used as *output* (scatter) sides of ArrayOL
/// tasks must satisfy this for the task to be deterministic.
bool is_exact_partition(const TilerSpec& spec, const Shape& array_shape,
                        const Shape& pattern_shape, const Shape& repetition_shape);

/// Number of times each array element is visited (same layout as the
/// array). Useful for diagnosing non-partition tilers in tests.
IntArray coverage_map(const TilerSpec& spec, const Shape& array_shape,
                      const Shape& pattern_shape, const Shape& repetition_shape);

/// Input-tiler semantics: gathers tiles from `in` into a fresh array of
/// shape repetition ++ pattern (the paper's first intermediate array).
template <typename T>
NDArray<T> gather(const NDArray<T>& in, const TilerSpec& spec, const Shape& pattern_shape,
                  const Shape& repetition_shape) {
  spec.validate(in.shape(), pattern_shape, repetition_shape);
  NDArray<T> out(repetition_shape.concat(pattern_shape));
  std::int64_t linear = 0;
  for_each_index(repetition_shape, [&](const Index& rep) {
    for_each_index(pattern_shape, [&](const Index& pat) {
      out[linear++] = in.at(spec.element_index(in.shape(), rep, pat));
    });
  });
  return out;
}

/// Output-tiler semantics: scatters an array of shape
/// repetition ++ pattern into `out` (the paper's output frame).
template <typename T>
void scatter(NDArray<T>& out, const NDArray<T>& tiles, const TilerSpec& spec,
             const Shape& pattern_shape, const Shape& repetition_shape) {
  spec.validate(out.shape(), pattern_shape, repetition_shape);
  if (tiles.shape() != repetition_shape.concat(pattern_shape)) {
    throw TilerError(cat("scatter: tile array shape ", tiles.shape().to_string(),
                         " != repetition ++ pattern ",
                         repetition_shape.concat(pattern_shape).to_string()));
  }
  std::int64_t linear = 0;
  for_each_index(repetition_shape, [&](const Index& rep) {
    for_each_index(pattern_shape, [&](const Index& pat) {
      out.at(spec.element_index(out.shape(), rep, pat)) = tiles[linear++];
    });
  });
}

}  // namespace saclo
