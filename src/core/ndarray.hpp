#pragma once

#include <algorithm>
#include <numeric>
#include <span>
#include <vector>

#include "core/fmt.hpp"
#include "core/shape.hpp"

namespace saclo {

/// An owning, contiguous, row-major multidimensional array.
///
/// This is the common value type exchanged between the SaC interpreter,
/// both code generators, the GPU simulator and the tests. It favours a
/// simple contiguous representation: the systems under study (tilers,
/// with-loops) create and consume whole arrays, so views/striding are
/// not needed on the hot paths.
template <typename T>
class NDArray {
 public:
  NDArray() : shape_({}) , data_(1, T{}) {}

  explicit NDArray(Shape shape, T fill = T{})
      : shape_(std::move(shape)), data_(static_cast<std::size_t>(shape_.elements()), fill) {}

  NDArray(Shape shape, std::vector<T> data) : shape_(std::move(shape)), data_(std::move(data)) {
    if (static_cast<std::int64_t>(data_.size()) != shape_.elements()) {
      throw ShapeError(cat("NDArray data size ", data_.size(), " != shape ",
                           shape_.to_string(), " elements ", shape_.elements()));
    }
  }

  /// Rank-0 (scalar) array.
  static NDArray scalar(T value) {
    NDArray a;
    a.data_[0] = value;
    return a;
  }

  const Shape& shape() const { return shape_; }
  std::int64_t elements() const { return static_cast<std::int64_t>(data_.size()); }

  T& operator[](std::int64_t linear) { return data_[static_cast<std::size_t>(linear)]; }
  const T& operator[](std::int64_t linear) const { return data_[static_cast<std::size_t>(linear)]; }

  T& at(const Index& idx) { return data_[static_cast<std::size_t>(shape_.linearize(idx))]; }
  const T& at(const Index& idx) const {
    return data_[static_cast<std::size_t>(shape_.linearize(idx))];
  }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }

  bool operator==(const NDArray& other) const = default;

  /// Reinterprets the same elements under a new shape with equal element
  /// count (rank-preserving reshape is not required).
  NDArray reshaped(Shape new_shape) const {
    if (new_shape.elements() != shape_.elements()) {
      throw ShapeError(cat("reshape ", shape_.to_string(), " -> ", new_shape.to_string(),
                           " changes element count"));
    }
    return NDArray(std::move(new_shape), data_);
  }

  /// Builds an array by evaluating `fn` at each index (row-major order).
  template <typename Fn>
  static NDArray generate(Shape shape, Fn&& fn) {
    NDArray out(std::move(shape));
    std::int64_t linear = 0;
    for_each_index(out.shape(), [&](const Index& idx) { out.data_[linear++] = fn(idx); });
    return out;
  }

 private:
  Shape shape_;
  std::vector<T> data_;
};

using IntArray = NDArray<std::int64_t>;
using FloatArray = NDArray<double>;

}  // namespace saclo
