#include "core/fmt.hpp"

#include <iomanip>

namespace saclo {

std::string bracketed(const std::vector<std::int64_t>& v) {
  return cat("[", join(v, ","), "]");
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

}  // namespace saclo
