#include "core/matrix.hpp"

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace saclo {

IntMat::IntMat(std::size_t rows, std::size_t cols, std::int64_t fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

IntMat::IntMat(std::initializer_list<std::initializer_list<std::int64_t>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw ShapeError("ragged initializer for IntMat");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

std::int64_t& IntMat::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw ShapeError(cat("IntMat index (", r, ",", c, ") out of ", rows_, "x", cols_));
  }
  return data_[r * cols_ + c];
}

std::int64_t IntMat::at(std::size_t r, std::size_t c) const {
  return const_cast<IntMat*>(this)->at(r, c);
}

Index IntMat::mv(const Index& v) const {
  if (v.size() != cols_) {
    throw ShapeError(cat("IntMat::mv: vector size ", v.size(), " != cols ", cols_));
  }
  Index out(rows_, 0);
  for (std::size_t r = 0; r < rows_; ++r) {
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c) acc += data_[r * cols_ + c] * v[c];
    out[r] = acc;
  }
  return out;
}

IntMat IntMat::hcat(const IntMat& other) const {
  if (rows_ != other.rows_) {
    throw ShapeError(cat("IntMat::hcat: row mismatch ", rows_, " vs ", other.rows_));
  }
  IntMat out(rows_, cols_ + other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out.at(r, c) = at(r, c);
    for (std::size_t c = 0; c < other.cols_; ++c) out.at(r, cols_ + c) = other.at(r, c);
  }
  return out;
}

IntMat IntMat::identity(std::size_t n) {
  IntMat out(n, n);
  for (std::size_t i = 0; i < n; ++i) out.at(i, i) = 1;
  return out;
}

std::string IntMat::to_string() const {
  std::string s = "{";
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r) s += ",";
    s += "{";
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c) s += ",";
      s += std::to_string(at(r, c));
    }
    s += "}";
  }
  return s + "}";
}

}  // namespace saclo
