#include "core/tiler.hpp"

#include "core/error.hpp"
#include "core/fmt.hpp"

namespace saclo {

void TilerSpec::validate(const Shape& array_shape, const Shape& pattern_shape,
                         const Shape& repetition_shape) const {
  const std::size_t ar = array_shape.rank();
  if (origin.size() != ar) {
    throw TilerError(cat("tiler origin ", bracketed(origin), " has rank ", origin.size(),
                         " but array shape ", array_shape.to_string(), " has rank ", ar));
  }
  if (fitting.rows() != ar || fitting.cols() != pattern_shape.rank()) {
    throw TilerError(cat("fitting matrix is ", fitting.rows(), "x", fitting.cols(),
                         ", expected ", ar, "x", pattern_shape.rank(), " for array ",
                         array_shape.to_string(), " and pattern ", pattern_shape.to_string()));
  }
  if (paving.rows() != ar || paving.cols() != repetition_shape.rank()) {
    throw TilerError(cat("paving matrix is ", paving.rows(), "x", paving.cols(),
                         ", expected ", ar, "x", repetition_shape.rank(), " for array ",
                         array_shape.to_string(), " and repetition ",
                         repetition_shape.to_string()));
  }
  for (std::size_t d = 0; d < ar; ++d) {
    if (array_shape[d] == 0) {
      throw TilerError(cat("tiler over array with empty dimension ", d));
    }
  }
}

Index TilerSpec::element_index(const Shape& array_shape, const Index& rep,
                               const Index& pat) const {
  Index e = paving.mv(rep);
  const Index f = fitting.mv(pat);
  for (std::size_t d = 0; d < e.size(); ++d) e[d] += origin[d] + f[d];
  return floor_mod(std::move(e), array_shape.dims());
}

Index TilerSpec::reference(const Shape& array_shape, const Index& rep) const {
  Index e = paving.mv(rep);
  for (std::size_t d = 0; d < e.size(); ++d) e[d] += origin[d];
  return floor_mod(std::move(e), array_shape.dims());
}

std::string TilerSpec::to_string() const {
  return cat("tiler{origin=", bracketed(origin), ", fitting=", fitting.to_string(),
             ", paving=", paving.to_string(), "}");
}

IntArray coverage_map(const TilerSpec& spec, const Shape& array_shape,
                      const Shape& pattern_shape, const Shape& repetition_shape) {
  spec.validate(array_shape, pattern_shape, repetition_shape);
  IntArray counts(array_shape, 0);
  for_each_index(repetition_shape, [&](const Index& rep) {
    for_each_index(pattern_shape, [&](const Index& pat) {
      counts.at(spec.element_index(array_shape, rep, pat)) += 1;
    });
  });
  return counts;
}

bool is_exact_partition(const TilerSpec& spec, const Shape& array_shape,
                        const Shape& pattern_shape, const Shape& repetition_shape) {
  if (repetition_shape.elements() * pattern_shape.elements() != array_shape.elements()) {
    return false;
  }
  const IntArray counts = coverage_map(spec, array_shape, pattern_shape, repetition_shape);
  for (std::int64_t i = 0; i < counts.elements(); ++i) {
    if (counts[i] != 1) return false;
  }
  return true;
}

}  // namespace saclo
