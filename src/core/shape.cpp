#include "core/shape.hpp"

#include "core/fmt.hpp"

namespace saclo {

void Shape::validate() const {
  for (std::int64_t d : dims_) {
    if (d < 0) throw ShapeError(cat("negative extent in shape ", bracketed(dims_)));
  }
}

std::int64_t Shape::elements() const {
  std::int64_t n = 1;
  for (std::int64_t d : dims_) n *= d;
  return n;
}

Index Shape::strides() const {
  Index s(dims_.size(), 1);
  for (std::size_t d = dims_.size(); d-- > 1;) {
    s[d - 1] = s[d] * dims_[d];
  }
  return s;
}

std::int64_t Shape::linearize(const Index& idx) const {
  if (!contains(idx)) {
    throw ShapeError(cat("index ", bracketed(idx), " out of bounds for shape ", to_string()));
  }
  return linearize_unchecked(idx);
}

std::int64_t Shape::linearize_unchecked(const Index& idx) const {
  std::int64_t offset = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    offset = offset * dims_[d] + idx[d];
  }
  return offset;
}

Index Shape::delinearize(std::int64_t offset) const {
  if (offset < 0 || offset >= elements()) {
    throw ShapeError(cat("offset ", offset, " out of range for shape ", to_string()));
  }
  Index idx(dims_.size(), 0);
  for (std::size_t d = dims_.size(); d-- > 0;) {
    idx[d] = dims_[d] == 0 ? 0 : offset % dims_[d];
    offset = dims_[d] == 0 ? 0 : offset / dims_[d];
  }
  return idx;
}

bool Shape::contains(const Index& idx) const {
  if (idx.size() != dims_.size()) return false;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (idx[d] < 0 || idx[d] >= dims_[d]) return false;
  }
  return true;
}

Shape Shape::concat(const Shape& other) const {
  Index joined = dims_;
  joined.insert(joined.end(), other.dims_.begin(), other.dims_.end());
  return Shape(std::move(joined));
}

Shape Shape::take(std::size_t n) const {
  if (n > rank()) throw ShapeError(cat("take(", n, ") on rank-", rank(), " shape"));
  return Shape(Index(dims_.begin(), dims_.begin() + static_cast<std::ptrdiff_t>(n)));
}

Shape Shape::drop(std::size_t n) const {
  if (n > rank()) throw ShapeError(cat("drop(", n, ") on rank-", rank(), " shape"));
  return Shape(Index(dims_.begin() + static_cast<std::ptrdiff_t>(n), dims_.end()));
}

std::string Shape::to_string() const { return bracketed(dims_); }

std::int64_t floor_mod(std::int64_t value, std::int64_t modulus) {
  if (modulus <= 0) throw ShapeError(cat("floor_mod by non-positive modulus ", modulus));
  std::int64_t r = value % modulus;
  return r < 0 ? r + modulus : r;
}

Index floor_mod(Index values, const Index& extents) {
  if (values.size() != extents.size()) {
    throw ShapeError(cat("floor_mod rank mismatch: ", bracketed(values), " vs ", bracketed(extents)));
  }
  for (std::size_t d = 0; d < values.size(); ++d) {
    values[d] = floor_mod(values[d], extents[d]);
  }
  return values;
}

void for_each_index(const Shape& shape, const std::function<void(const Index&)>& fn) {
  const std::int64_t total = shape.elements();
  if (total == 0) return;
  Index idx(shape.rank(), 0);
  for (std::int64_t i = 0; i < total; ++i) {
    fn(idx);
    for (std::size_t d = shape.rank(); d-- > 0;) {
      if (++idx[d] < shape[d]) break;
      idx[d] = 0;
    }
  }
}

}  // namespace saclo
