#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace saclo {

/// Minimal string-building helpers. libstdc++ 12 does not ship
/// std::format, so the project standardises on these instead of
/// scattering ostringstream boilerplate.

/// Concatenates all arguments using operator<<.
template <typename... Args>
std::string cat(const Args&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}

/// Joins the elements of a range with a separator: join({1,2,3}, ",") == "1,2,3".
template <typename Range>
std::string join(const Range& range, const std::string& sep) {
  std::ostringstream os;
  bool first = true;
  for (const auto& v : range) {
    if (!first) os << sep;
    os << v;
    first = false;
  }
  return os.str();
}

/// Renders a vector as "[a,b,c]" — the notation used throughout the
/// generated-code printers and error messages.
std::string bracketed(const std::vector<std::int64_t>& v);

/// Left-pads/truncates to a fixed-width column (used by the nvprof-style
/// profiler tables).
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

/// Formats a double with the given number of decimals.
std::string fixed(double value, int decimals);

}  // namespace saclo
