#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/shape.hpp"

namespace saclo {

/// A small dense integer matrix, row-major.
///
/// ArrayOL tilers are defined by two such matrices — the *fitting*
/// matrix F (array-rank × pattern-rank) and the *paving* matrix P
/// (array-rank × repetition-rank). They are tiny (rank × rank), so this
/// type optimises for clarity over blocking/vectorisation.
class IntMat {
 public:
  IntMat() = default;
  IntMat(std::size_t rows, std::size_t cols, std::int64_t fill = 0);
  /// Construct from rows: IntMat({{1,0},{0,8}}).
  IntMat(std::initializer_list<std::initializer_list<std::int64_t>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  std::int64_t& at(std::size_t r, std::size_t c);
  std::int64_t at(std::size_t r, std::size_t c) const;

  /// Matrix–vector product; v.size() must equal cols().
  Index mv(const Index& v) const;

  /// Horizontal concatenation [A | B]; row counts must match. This is
  /// the CAT of the paper's SaC tiler code: CAT(paving, fitting) maps a
  /// concatenated (repetition ++ pattern) index in one product.
  IntMat hcat(const IntMat& other) const;

  static IntMat identity(std::size_t n);

  bool operator==(const IntMat& other) const = default;

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::int64_t> data_;
};

}  // namespace saclo
