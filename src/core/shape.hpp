#pragma once

#include <cstdint>
#include <functional>
#include <initializer_list>
#include <vector>

#include "core/error.hpp"

namespace saclo {

/// An index vector (or extent vector). ArrayOL and SaC treat shapes and
/// indices uniformly as integer vectors, so we do too.
using Index = std::vector<std::int64_t>;

/// The extents of a multidimensional array.
///
/// Invariant: every extent is >= 0. Rank-0 shapes denote scalars and
/// have element count 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(Index dims) : dims_(std::move(dims)) { validate(); }

  std::size_t rank() const { return dims_.size(); }
  std::int64_t extent(std::size_t d) const { return dims_.at(d); }
  std::int64_t operator[](std::size_t d) const { return dims_[d]; }
  const Index& dims() const { return dims_; }

  /// Total number of elements (1 for rank-0).
  std::int64_t elements() const;

  /// Row-major strides; strides()[rank()-1] == 1 for non-empty shapes.
  Index strides() const;

  /// Row-major linearisation of `idx`. Throws ShapeError when the index
  /// is out of bounds or has the wrong rank.
  std::int64_t linearize(const Index& idx) const;

  /// Like linearize() but without bounds checking — for hot loops whose
  /// indices are constructed in-range.
  std::int64_t linearize_unchecked(const Index& idx) const;

  /// Inverse of linearize().
  Index delinearize(std::int64_t offset) const;

  /// True when `idx` has matching rank and 0 <= idx[d] < extent(d).
  bool contains(const Index& idx) const;

  /// Concatenation: [a,b] ++ [c] == [a,b,c]. This is the shape algebra
  /// behind the paper's "repetition shape ++ pattern shape"
  /// intermediate arrays.
  Shape concat(const Shape& other) const;

  /// Leading `n` dimensions / trailing rank()-n dimensions.
  Shape take(std::size_t n) const;
  Shape drop(std::size_t n) const;

  bool operator==(const Shape& other) const = default;

  std::string to_string() const;

 private:
  void validate() const;
  Index dims_;
};

/// Element-wise remainder that always lands in [0, extents): ArrayOL's
/// tiler formulae are defined with a mathematical mod, not C's
/// sign-preserving %.
std::int64_t floor_mod(std::int64_t value, std::int64_t modulus);
Index floor_mod(Index values, const Index& extents);

/// Invokes `fn` for every index of `shape` in row-major order.
void for_each_index(const Shape& shape, const std::function<void(const Index&)>& fn);

}  // namespace saclo
