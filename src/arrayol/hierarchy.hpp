#pragma once

#include <map>
#include <string>
#include <vector>

#include "arrayol/model.hpp"

namespace saclo::aol {

/// Hierarchical ArrayOL application models — the paper's actual design
/// structure: the Downscaler is "hierarchically composed" (Section
/// VIII-B lists FrameGenerator, HorizontalFilter — itself composed of
/// three elementary per-channel tasks — VerticalFilter and
/// FrameConstructor). MARTE captures this nesting; the first
/// model-to-model transformation of the GASPARD2 chain flattens it
/// into the flat Model the code generator consumes.
///
/// A HierarchicalModel is a component with external ports (named
/// arrays) whose contents are either repetitive leaf tasks or
/// instances of other hierarchical components. Instantiation binds the
/// child's external port names to arrays of the parent.

/// One child-component instance: which component, the instance name
/// (names of the child's internals get prefixed with it), and the
/// port binding (child external array -> parent array).
struct Instance {
  std::string name;
  std::string component;  ///< component type name, resolved at flatten time
  std::map<std::string, std::string> bindings;
};

/// A component definition.
class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares an internal or external array of this component.
  void add_array(const std::string& name, Shape shape);
  /// Marks an array as an external input/output port.
  void mark_input(const std::string& name);
  void mark_output(const std::string& name);

  /// A repetitive leaf task (ports reference this component's arrays).
  void add_task(RepetitiveTask task);
  /// A nested component instance.
  void add_instance(Instance instance);

  const std::map<std::string, Shape>& arrays() const { return arrays_; }
  const std::vector<std::string>& inputs() const { return inputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const std::vector<RepetitiveTask>& tasks() const { return tasks_; }
  const std::vector<Instance>& instances() const { return instances_; }

 private:
  std::string name_;
  std::map<std::string, Shape> arrays_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<RepetitiveTask> tasks_;
  std::vector<Instance> instances_;
};

/// A library of components plus the root component name.
class HierarchicalModel {
 public:
  explicit HierarchicalModel(std::string root) : root_(std::move(root)) {}

  Component& define(const std::string& name);
  const Component& component(const std::string& name) const;
  const std::string& root() const { return root_; }

  /// The GASPARD2 chain's first model-to-model transformation:
  /// recursively instantiates every nested component, prefixing
  /// internal array and task names with the instance path
  /// (`hf.b.task`), resolving port bindings, and returning the flat
  /// Model ready for scheduling and code generation. Throws ModelError
  /// on unknown components, unbound ports, shape mismatches, or
  /// instantiation cycles.
  Model flatten() const;

 private:
  void flatten_into(const Component& comp, const std::string& prefix,
                    const std::map<std::string, std::string>& port_map, Model& out,
                    std::vector<std::string>& stack) const;

  std::string root_;
  std::map<std::string, Component> components_;
};

}  // namespace saclo::aol
