#include "arrayol/hierarchy.hpp"

#include <algorithm>
#include <set>

#include "core/fmt.hpp"

namespace saclo::aol {

void Component::add_array(const std::string& name, Shape shape) {
  auto [it, inserted] = arrays_.emplace(name, std::move(shape));
  if (!inserted) {
    throw ModelError(cat("component '", name_, "': array '", name, "' declared twice"));
  }
}

void Component::mark_input(const std::string& name) {
  if (!arrays_.count(name)) {
    throw ModelError(cat("component '", name_, "': unknown input '", name, "'"));
  }
  inputs_.push_back(name);
}

void Component::mark_output(const std::string& name) {
  if (!arrays_.count(name)) {
    throw ModelError(cat("component '", name_, "': unknown output '", name, "'"));
  }
  outputs_.push_back(name);
}

void Component::add_task(RepetitiveTask task) { tasks_.push_back(std::move(task)); }

void Component::add_instance(Instance instance) { instances_.push_back(std::move(instance)); }

Component& HierarchicalModel::define(const std::string& name) {
  auto [it, inserted] = components_.emplace(name, Component(name));
  if (!inserted) throw ModelError(cat("component '", name, "' defined twice"));
  return it->second;
}

const Component& HierarchicalModel::component(const std::string& name) const {
  auto it = components_.find(name);
  if (it == components_.end()) throw ModelError(cat("unknown component '", name, "'"));
  return it->second;
}

Model HierarchicalModel::flatten() const {
  const Component& root = component(root_);
  Model out(root_);
  // Root arrays keep their names; root external ports become the
  // application's ports.
  std::map<std::string, std::string> identity;
  for (const auto& [name, shape] : root.arrays()) {
    identity[name] = name;
    out.add_array(name, shape);
  }
  std::vector<std::string> stack;
  flatten_into(root, "", identity, out, stack);
  for (const std::string& in : root.inputs()) out.mark_input(in);
  for (const std::string& o : root.outputs()) out.mark_output(o);
  return out;
}

void HierarchicalModel::flatten_into(const Component& comp, const std::string& prefix,
                                     const std::map<std::string, std::string>& port_map,
                                     Model& out, std::vector<std::string>& stack) const {
  if (std::find(stack.begin(), stack.end(), comp.name()) != stack.end()) {
    throw ModelError(cat("instantiation cycle through component '", comp.name(), "'"));
  }
  stack.push_back(comp.name());

  auto resolve = [&](const std::string& local) -> std::string {
    auto it = port_map.find(local);
    if (it == port_map.end()) {
      throw ModelError(cat("component '", comp.name(), "': array '", local,
                           "' was not materialised during flattening"));
    }
    return it->second;
  };

  // Leaf tasks: rewrite their port names through the map.
  for (const RepetitiveTask& t : comp.tasks()) {
    RepetitiveTask copy = t;
    copy.name = prefix.empty() ? t.name : prefix + t.name;
    for (TiledPort& in : copy.inputs) in.port.name = resolve(in.port.name);
    for (TiledPort& o : copy.outputs) o.port.name = resolve(o.port.name);
    out.add_task(std::move(copy));
  }

  // Nested instances.
  for (const Instance& inst : comp.instances()) {
    const Component& child = component(inst.component);
    const std::string child_prefix = prefix + inst.name + ".";
    std::map<std::string, std::string> child_map;
    std::set<std::string> child_ports;
    for (const auto& [local, shape] : child.arrays()) {
      const bool is_port =
          std::find(child.inputs().begin(), child.inputs().end(), local) !=
              child.inputs().end() ||
          std::find(child.outputs().begin(), child.outputs().end(), local) !=
              child.outputs().end();
      if (is_port) {
        child_ports.insert(local);
        auto b = inst.bindings.find(local);
        if (b == inst.bindings.end()) {
          throw ModelError(cat("instance '", inst.name, "' of '", inst.component,
                               "' leaves port '", local, "' unbound"));
        }
        const std::string parent_name = resolve(b->second);
        if (out.array_shape(parent_name) != shape) {
          throw ModelError(cat("instance '", inst.name, "': port '", local, "' has shape ",
                               shape.to_string(), " but bound array '", parent_name, "' is ",
                               out.array_shape(parent_name).to_string()));
        }
        child_map[local] = parent_name;
      } else {
        // Internal array: materialise with a prefixed unique name.
        const std::string flat = child_prefix + local;
        out.add_array(flat, shape);
        child_map[local] = flat;
      }
    }
    // Reject bindings to non-port arrays of the child.
    for (const auto& [local, parent] : inst.bindings) {
      (void)parent;
      if (!child.arrays().count(local)) {
        throw ModelError(cat("instance '", inst.name, "' binds unknown port '", local, "'"));
      }
      if (!child_ports.count(local)) {
        throw ModelError(cat("instance '", inst.name, "' binds '", local,
                             "', which is not an external port of '", inst.component, "'"));
      }
    }
    flatten_into(child, child_prefix, child_map, out, stack);
  }
  stack.pop_back();
}

}  // namespace saclo::aol
