#include "arrayol/model.hpp"

#include <algorithm>
#include <set>

#include "core/fmt.hpp"

namespace saclo::aol {

void Model::add_array(const std::string& name, Shape shape) {
  auto [it, inserted] = arrays_.emplace(name, std::move(shape));
  if (!inserted) throw ModelError(cat("array '", name, "' declared twice"));
}

void Model::mark_input(const std::string& name) {
  if (!arrays_.count(name)) throw ModelError(cat("unknown input array '", name, "'"));
  inputs_.push_back(name);
}

void Model::mark_output(const std::string& name) {
  if (!arrays_.count(name)) throw ModelError(cat("unknown output array '", name, "'"));
  outputs_.push_back(name);
}

TaskId Model::add_task(RepetitiveTask task) {
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

const Shape& Model::array_shape(const std::string& name) const {
  auto it = arrays_.find(name);
  if (it == arrays_.end()) throw ModelError(cat("unknown array '", name, "'"));
  return it->second;
}

std::optional<TaskId> Model::producer_of(const std::string& array) const {
  for (std::size_t t = 0; t < tasks_.size(); ++t) {
    for (const TiledPort& out : tasks_[t].outputs) {
      if (out.port.name == array) return t;
    }
  }
  return std::nullopt;
}

void Model::validate() const {
  std::set<std::string> written(inputs_.begin(), inputs_.end());
  std::set<std::string> produced;
  for (const RepetitiveTask& task : tasks_) {
    for (const TiledPort& tp : task.inputs) {
      const Shape& arr = array_shape(tp.port.name);
      if (arr != tp.port.shape) {
        throw ModelError(cat("task '", task.name, "' input port '", tp.port.name,
                             "' has shape ", tp.port.shape.to_string(), " but array is ",
                             arr.to_string()));
      }
      tp.tiler.validate(arr, tp.pattern, task.repetition);
    }
    for (const TiledPort& tp : task.outputs) {
      const Shape& arr = array_shape(tp.port.name);
      if (arr != tp.port.shape) {
        throw ModelError(cat("task '", task.name, "' output port '", tp.port.name,
                             "' has shape ", tp.port.shape.to_string(), " but array is ",
                             arr.to_string()));
      }
      tp.tiler.validate(arr, tp.pattern, task.repetition);
      // Single assignment: every element written exactly once.
      if (!is_exact_partition(tp.tiler, arr, tp.pattern, task.repetition)) {
        throw ModelError(cat("output tiler of task '", task.name, "' on array '", tp.port.name,
                             "' is not an exact partition — ArrayOL single assignment would be "
                             "violated"));
      }
      if (!produced.insert(tp.port.name).second) {
        throw ModelError(cat("array '", tp.port.name, "' is written by more than one task"));
      }
      if (std::find(inputs_.begin(), inputs_.end(), tp.port.name) != inputs_.end()) {
        throw ModelError(cat("input array '", tp.port.name, "' is written by task '", task.name,
                             "'"));
      }
    }
    if (!task.op.compute) {
      throw ModelError(cat("task '", task.name, "' has no IP computation bound"));
    }
  }
  for (const std::string& out : outputs_) {
    if (!produced.count(out) && !written.count(out)) {
      throw ModelError(cat("output array '", out, "' is never produced"));
    }
  }
  // Every consumed array must be an input or produced by some task.
  for (const RepetitiveTask& task : tasks_) {
    for (const TiledPort& tp : task.inputs) {
      if (!produced.count(tp.port.name) && !written.count(tp.port.name)) {
        throw ModelError(cat("task '", task.name, "' reads array '", tp.port.name,
                             "' which is neither an input nor produced"));
      }
    }
  }
}

std::vector<TaskId> Model::schedule() const {
  // Topological order over the array-mediated dependences: only true
  // data dependences constrain the order (ArrayOL principle).
  std::vector<TaskId> order;
  std::vector<bool> done(tasks_.size(), false);
  std::set<std::string> available(inputs_.begin(), inputs_.end());
  bool progress = true;
  while (order.size() < tasks_.size() && progress) {
    progress = false;
    for (std::size_t t = 0; t < tasks_.size(); ++t) {
      if (done[t]) continue;
      bool ready = true;
      for (const TiledPort& in : tasks_[t].inputs) {
        if (!available.count(in.port.name)) ready = false;
      }
      if (!ready) continue;
      done[t] = true;
      order.push_back(t);
      for (const TiledPort& out : tasks_[t].outputs) available.insert(out.port.name);
      progress = true;
    }
  }
  if (order.size() != tasks_.size()) {
    throw ModelError(cat("model '", name_, "' has a dependence cycle or unproduced arrays"));
  }
  return order;
}

std::map<std::string, IntArray> evaluate(const Model& model,
                                         const std::map<std::string, IntArray>& inputs) {
  std::map<std::string, IntArray> env;
  for (const std::string& in : model.inputs()) {
    auto it = inputs.find(in);
    if (it == inputs.end()) throw ModelError(cat("missing input array '", in, "'"));
    if (it->second.shape() != model.array_shape(in)) {
      throw ModelError(cat("input '", in, "' has shape ", it->second.shape().to_string(),
                           ", model expects ", model.array_shape(in).to_string()));
    }
    env.emplace(in, it->second);
  }
  for (TaskId t : model.schedule()) {
    const RepetitiveTask& task = model.tasks()[t];
    // Allocate outputs.
    for (const TiledPort& out : task.outputs) {
      env.emplace(out.port.name, IntArray(out.port.shape));
    }
    std::int64_t in_total = 0;
    for (const TiledPort& in : task.inputs) in_total += in.pattern.elements();
    std::int64_t out_total = 0;
    for (const TiledPort& out : task.outputs) out_total += out.pattern.elements();
    std::vector<std::int64_t> in_buf(static_cast<std::size_t>(in_total));
    std::vector<std::int64_t> out_buf(static_cast<std::size_t>(out_total));

    for_each_index(task.repetition, [&](const Index& rep) {
      std::size_t pos = 0;
      for (const TiledPort& in : task.inputs) {
        const IntArray& arr = env.at(in.port.name);
        for_each_index(in.pattern, [&](const Index& pat) {
          in_buf[pos++] = arr.at(in.tiler.element_index(arr.shape(), rep, pat));
        });
      }
      task.op.compute(in_buf, out_buf);
      pos = 0;
      for (const TiledPort& out : task.outputs) {
        IntArray& arr = env.at(out.port.name);
        for_each_index(out.pattern, [&](const Index& pat) {
          arr.at(out.tiler.element_index(arr.shape(), rep, pat)) =
              out_buf[pos++];
        });
      }
    });
  }
  return env;
}

}  // namespace saclo::aol
