#pragma once

#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/tiler.hpp"

namespace saclo::aol {

/// Raised on malformed ArrayOL models (validation failures).
class ModelError : public Error {
 public:
  using Error::Error;
};

/// A data port: a named multidimensional array boundary of a task.
/// ArrayOL arrays are conceptually infinite-dimensional and single
/// assignment; here every port has a concrete shape (time is folded
/// into the repetition over frames by the runner, as the paper does).
struct Port {
  std::string name;
  Shape shape;
};

/// The computation of an elementary task — GASPARD2's "IP" (intellectual
/// property) block: an opaque function over gathered input patterns
/// producing output patterns, plus the metadata the code generator and
/// the cost model need.
struct ElementaryOp {
  std::string name;
  /// in: concatenated input patterns (in port order); out: concatenated
  /// output patterns.
  std::function<void(std::span<const std::int64_t> in, std::span<std::int64_t> out)> compute;
  double flops_per_invocation = 0;
  /// C body for the OpenCL code generator; reads `in[]`, writes `out[]`.
  std::string c_body;
};

using TaskId = std::size_t;

/// One tiler-connected input or output of a repetitive task.
struct TiledPort {
  Port port;          ///< the external array
  Shape pattern;      ///< the pattern shape the inner task consumes/produces
  TilerSpec tiler;    ///< origin / fitting / paving
};

/// The central ArrayOL construct: a task repeated over a repetition
/// space, its ports bound to external arrays through tilers (the GILR
/// "locally regular" level).
struct RepetitiveTask {
  std::string name;
  Shape repetition;
  std::vector<TiledPort> inputs;
  std::vector<TiledPort> outputs;
  ElementaryOp op;
};

/// A dataflow connection between two array ports by name.
struct Connection {
  std::string from;  ///< producing array
  std::string to;    ///< consuming array (alias)
};

/// A (flat) ArrayOL application model: arrays + repetitive task
/// instances, as produced by flattening the MARTE hierarchy. The
/// "Globally Irregular" level is the dependence graph between tasks
/// induced by shared arrays.
class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Declares an array (a port of the application or an intermediate).
  void add_array(const std::string& name, Shape shape);
  /// Marks an array as an application input / output.
  void mark_input(const std::string& name);
  void mark_output(const std::string& name);

  TaskId add_task(RepetitiveTask task);

  const std::vector<RepetitiveTask>& tasks() const { return tasks_; }
  const std::map<std::string, Shape>& arrays() const { return arrays_; }
  const std::vector<std::string>& inputs() const { return inputs_; }
  const std::vector<std::string>& outputs() const { return outputs_; }
  const Shape& array_shape(const std::string& name) const;

  /// Static semantic checks (the first stage of the transformation
  /// chain): every port array exists, tiler dimensions agree with
  /// array/pattern/repetition shapes, every output tiler is an exact
  /// partition of its array (single assignment!), no array is written
  /// twice, every non-input array is written before read.
  void validate() const;

  /// Dependence-respecting execution order of the task instances
  /// (any such order gives the same result — ArrayOL determinism).
  /// Throws ModelError on cycles.
  std::vector<TaskId> schedule() const;

  /// The producing task of each array (nullopt for inputs).
  std::optional<TaskId> producer_of(const std::string& array) const;

 private:
  std::string name_;
  std::map<std::string, Shape> arrays_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<RepetitiveTask> tasks_;
};

/// Executes a model functionally on the host (the reference semantics:
/// gather -> op -> scatter per repetition point, in schedule order).
/// Used as ground truth for the OpenCL runner.
std::map<std::string, IntArray> evaluate(const Model& model,
                                         const std::map<std::string, IntArray>& inputs);

}  // namespace saclo::aol
