#pragma once

#include "arrayol/model.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"

namespace saclo::opt {

/// Derives the static per-thread cost descriptor of a repetitive task,
/// exactly as the GASPARD OpenCL generator attaches it to the emitted
/// kernel: loads/stores are the gathered/scattered pattern elements,
/// the warp stride is the worst port's address distance between
/// adjacent work items, and index arithmetic adds ~4 ops per addressed
/// element on top of the IP's own flops. `src/gaspard/chain.cpp` calls
/// this for its kernels, so the optimizer's predictions and the
/// simulator's timings come from one formula by construction.
gpu::KernelCost derive_task_cost(const aol::Model& model, const aol::RepetitiveTask& task);

/// Predicted single-run cost of a whole model on one device: the sum of
/// per-task kernel times (launch overhead included — the quantity
/// fusion attacks) plus input upload and output download transfers.
struct ModelCost {
  double kernel_us = 0;
  double h2d_us = 0;
  double d2h_us = 0;
  std::size_t kernels = 0;

  double total_us() const { return kernel_us + h2d_us + d2h_us; }
};

ModelCost predict_model_cost(const aol::Model& model, const gpu::DeviceSpec& device);

}  // namespace saclo::opt
