#pragma once

#include <optional>
#include <string>

#include "arrayol/model.hpp"

namespace saclo::opt {

/// Raised when the optimizer is driven with malformed arguments or an
/// accepted rewrite produces a model that fails validation (which would
/// be a bug in the rewrite, not in the caller's model).
class OptError : public Error {
 public:
  using Error::Error;
};

/// The verdict of a legality check: either the rewrite is provably
/// semantics-preserving, or `reason` says which precondition failed.
/// Rejections are diagnoses, not errors — the search layer enumerates
/// candidates and expects most of them to be refused.
struct Legality {
  bool ok = false;
  std::string reason;

  static Legality yes() { return Legality{true, {}}; }
  static Legality no(std::string why) { return Legality{false, std::move(why)}; }
};

/// Outcome of attempting one elementary transformation: the legality
/// verdict, plus the rewritten (already re-validated) model when legal.
struct RewriteResult {
  Legality legality;
  std::optional<aol::Model> model;
};

/// Paving change (Boulet & Feautrier): split factor `factor` off
/// repetition dimension `dim` of `task_name`, moving it into the
/// patterns. The task body is wrapped so it invokes the original op
/// `factor` times per (smaller) repetition point; every port pattern
/// gains a leading dimension of extent `factor` whose fitting column is
/// the old paving column `dim`. Legal whenever `factor` divides the
/// repetition extent — the rewrite is a bijection on (repetition,
/// pattern) index pairs, so the set of addressed elements and the
/// values written are unchanged.
/// `revalidate` controls whether the rewritten model goes through the
/// full Model::validate() (which re-proves the exact-partition property
/// element by element — O(array size)). The search disables it for
/// *enabling* paving changes whose fusion result is validated anyway;
/// standalone callers should keep the default.
RewriteResult try_change_paving(const aol::Model& model, const std::string& task_name,
                                std::size_t dim, std::int64_t factor, bool revalidate = true);

/// Fusion (producer/consumer): eliminate intermediate array
/// `mid_array` by inlining its producer task into its (single)
/// consumer. Legal only when the consumer's read footprint of the
/// intermediate is, per consumer repetition point, a rectangular set of
/// whole producer instances whose index is an affine function of the
/// consumer's repetition and pattern indices — this is checked
/// exhaustively against the actual tilers, not assumed. The fused task
/// re-tiles the producer's inputs directly against the consumer's
/// repetition space and re-computes the needed producer instances in
/// registers (the paper's on-chip-reuse argument for fewer, larger
/// kernels).
RewriteResult try_fuse(const aol::Model& model, const std::string& mid_array);

/// Task merge (horizontal): combine two independent tasks with
/// identical repetition spaces into one kernel-sized task. Legal when
/// neither task (transitively) depends on the other; ports are
/// concatenated and the ops run back to back per repetition point.
RewriteResult try_merge(const aol::Model& model, const std::string& task_a,
                        const std::string& task_b);

}  // namespace saclo::opt
