#include "opt/transform.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <utility>
#include <vector>

#include "core/fmt.hpp"

namespace saclo::opt {

namespace {

using aol::Model;
using aol::RepetitiveTask;
using aol::TiledPort;

std::optional<std::size_t> find_task(const Model& m, const std::string& name) {
  for (std::size_t i = 0; i < m.tasks().size(); ++i) {
    if (m.tasks()[i].name == name) return i;
  }
  return std::nullopt;
}

/// Rebuilds a model with some tasks/arrays removed and replacement
/// tasks appended. Model has no removal API on purpose (it is a
/// validated value), so every rewrite reconstructs and re-validates.
Model rebuild(const Model& m, const std::vector<std::size_t>& drop_tasks,
              const std::vector<std::string>& drop_arrays,
              std::vector<RepetitiveTask> replacements) {
  Model out(m.name());
  auto dropped = [&](const std::string& a) {
    return std::find(drop_arrays.begin(), drop_arrays.end(), a) != drop_arrays.end();
  };
  for (const auto& [name, shape] : m.arrays()) {
    if (!dropped(name)) out.add_array(name, shape);
  }
  for (const std::string& in : m.inputs()) out.mark_input(in);
  for (const std::string& o : m.outputs()) out.mark_output(o);
  for (std::size_t i = 0; i < m.tasks().size(); ++i) {
    if (std::find(drop_tasks.begin(), drop_tasks.end(), i) != drop_tasks.end()) continue;
    out.add_task(m.tasks()[i]);
  }
  for (RepetitiveTask& t : replacements) out.add_task(std::move(t));
  return out;
}

/// A rewrite that passed its legality check must yield a valid,
/// schedulable model — anything else is a bug in the rewrite itself.
RewriteResult accept(Model rewritten, const char* kind, bool revalidate = true) {
  try {
    if (revalidate) rewritten.validate();
    rewritten.schedule();
  } catch (const Error& e) {
    throw OptError(cat(kind, " produced an invalid model: ", e.what()));
  }
  RewriteResult r;
  r.legality = Legality::yes();
  r.model = std::move(rewritten);
  return r;
}

RewriteResult reject(std::string why) {
  RewriteResult r;
  r.legality = Legality::no(std::move(why));
  return r;
}

constexpr std::size_t kMaxRank = 8;

/// Allocation-free tiler addressing for the fusion analysis hot loops
/// (the inverse map and the exhaustive verification touch every element
/// of the intermediate array, often several times per candidate).
struct FastTiler {
  std::size_t array_rank = 0;
  std::size_t rep_rank = 0;
  std::array<std::int64_t, kMaxRank> origin{};
  std::array<std::int64_t, kMaxRank> dims{};
  std::array<std::int64_t, kMaxRank> strides{};
  std::array<std::int64_t, kMaxRank * kMaxRank> paving{};  // [d * kMaxRank + r]
  /// Per pattern element (enumeration order): the F·i offset vector.
  std::vector<std::array<std::int64_t, kMaxRank>> fit;
};

FastTiler make_fast(const TiledPort& tp, const Shape& array_shape, const Shape& repetition) {
  FastTiler ft;
  ft.array_rank = array_shape.rank();
  ft.rep_rank = repetition.rank();
  const Index strides = array_shape.strides();
  for (std::size_t d = 0; d < ft.array_rank; ++d) {
    ft.origin[d] = tp.tiler.origin[d];
    ft.dims[d] = array_shape[d];
    ft.strides[d] = strides[d];
    for (std::size_t r = 0; r < ft.rep_rank; ++r) {
      ft.paving[d * kMaxRank + r] = tp.tiler.paving.at(d, r);
    }
  }
  for_each_index(tp.pattern, [&](const Index& pat) {
    const Index f = tp.tiler.fitting.mv(pat);
    std::array<std::int64_t, kMaxRank> off{};
    for (std::size_t d = 0; d < ft.array_rank; ++d) off[d] = f[d];
    ft.fit.push_back(off);
  });
  return ft;
}

/// Advances a row-major multi-index (last dimension fastest), matching
/// for_each_index / Shape::linearize enumeration order.
void advance(std::array<std::int64_t, kMaxRank>& idx, const Shape& shape) {
  for (std::size_t d = shape.rank(); d-- > 0;) {
    if (++idx[d] < shape[d]) return;
    idx[d] = 0;
  }
}

IntMat matmul(const IntMat& a, const IntMat& b) {
  IntMat c(a.rows(), b.cols(), 0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      std::int64_t acc = 0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a.at(i, k) * b.at(k, j);
      c.at(i, j) = acc;
    }
  }
  return c;
}

std::string int_list(const std::vector<std::int64_t>& v) {
  std::vector<std::string> parts;
  parts.reserve(v.size());
  for (std::int64_t x : v) parts.push_back(cat(x));
  return join(parts, ", ");
}

}  // namespace

RewriteResult try_change_paving(const Model& model, const std::string& task_name,
                                std::size_t dim, std::int64_t factor, bool revalidate) {
  const auto ti = find_task(model, task_name);
  if (!ti) return reject(cat("paving change: no task named '", task_name, "'"));
  const RepetitiveTask& task = model.tasks()[*ti];
  if (dim >= task.repetition.rank()) {
    return reject(cat("paving change on ", task_name, ": repetition ",
                      task.repetition.to_string(), " has no dimension ", dim));
  }
  if (factor < 2) {
    return reject(cat("paving change on ", task_name, ": factor ", factor,
                      " must be at least 2"));
  }
  if (task.repetition[dim] % factor != 0) {
    return reject(cat("paving change on ", task_name, ": factor ", factor,
                      " does not divide repetition extent ", task.repetition[dim],
                      " of dimension ", dim));
  }

  RepetitiveTask nt;
  nt.name = task.name;
  Index rep_dims = task.repetition.dims();
  rep_dims[dim] /= factor;
  nt.repetition = Shape(std::move(rep_dims));

  // Every port grows a leading pattern dimension of extent `factor`
  // whose fitting column is the old paving column `dim`; the remaining
  // paving column is scaled by `factor`. The map (r, i) -> (r', (s, i))
  // with r[dim] = factor*r'[dim] + s is a bijection on index pairs that
  // addresses exactly the same array element, so coverage (and the
  // exact-partition property of output tilers) is preserved verbatim.
  auto rewrite_port = [&](const TiledPort& tp) {
    TiledPort np = tp;
    np.pattern = Shape({factor}).concat(tp.pattern);
    const std::size_t ar = tp.tiler.paving.rows();
    IntMat split_col(ar, 1, 0);
    for (std::size_t d = 0; d < ar; ++d) split_col.at(d, 0) = tp.tiler.paving.at(d, dim);
    np.tiler.fitting = split_col.hcat(tp.tiler.fitting);
    for (std::size_t d = 0; d < ar; ++d) np.tiler.paving.at(d, dim) *= factor;
    return np;
  };
  std::vector<std::int64_t> in_sizes;
  std::vector<std::int64_t> out_sizes;
  std::int64_t in_total = 0;
  std::int64_t out_total = 0;
  for (const TiledPort& p : task.inputs) {
    nt.inputs.push_back(rewrite_port(p));
    in_sizes.push_back(p.pattern.elements());
    in_total += p.pattern.elements();
  }
  for (const TiledPort& p : task.outputs) {
    nt.outputs.push_back(rewrite_port(p));
    out_sizes.push_back(p.pattern.elements());
    out_total += p.pattern.elements();
  }

  // The wrapped op runs the original body once per split instance; the
  // leading pattern dimension makes each instance's slice contiguous
  // (offset s * |pattern| within each port's block).
  const auto inner = task.op.compute;
  nt.op.name = cat(task.op.name, "_split", factor);
  nt.op.flops_per_invocation = task.op.flops_per_invocation * static_cast<double>(factor);
  nt.op.compute = [inner, factor, in_sizes, out_sizes, in_total, out_total](
                      std::span<const std::int64_t> in, std::span<std::int64_t> out) {
    thread_local std::vector<std::int64_t> ibuf;
    thread_local std::vector<std::int64_t> obuf;
    if (ibuf.size() < static_cast<std::size_t>(in_total)) ibuf.resize(in_total);
    if (obuf.size() < static_cast<std::size_t>(out_total)) obuf.resize(out_total);
    for (std::int64_t s = 0; s < factor; ++s) {
      std::int64_t dst = 0;
      std::int64_t base = 0;
      for (std::int64_t sz : in_sizes) {
        std::copy_n(in.begin() + base + s * sz, sz, ibuf.begin() + dst);
        dst += sz;
        base += factor * sz;
      }
      inner(std::span<const std::int64_t>(ibuf.data(), static_cast<std::size_t>(in_total)),
            std::span<std::int64_t>(obuf.data(), static_cast<std::size_t>(out_total)));
      std::int64_t src = 0;
      base = 0;
      for (std::int64_t sz : out_sizes) {
        std::copy_n(obuf.begin() + src, sz, out.begin() + base + s * sz);
        src += sz;
        base += factor * sz;
      }
    }
  };
  if (task.inputs.size() == 1 && task.outputs.size() == 1) {
    nt.op.c_body = cat("{ // paving change: ", factor, " x ", task.op.name,
                       "\n    const int* split_in = in; int* split_out = out;\n    for (int s_ "
                       "= 0; s_ < ",
                       factor, "; ++s_) {\n      const int* in = split_in + s_ * ", in_sizes[0],
                       "; int* out = split_out + s_ * ", out_sizes[0], ";\n      ",
                       task.op.c_body, "\n    }\n    }");
  } else {
    nt.op.c_body =
        cat("/* paving-change wrapper (x", factor, ") around ", task.op.name, " */");
  }

  return accept(rebuild(model, {*ti}, {}, {std::move(nt)}), "paving change", revalidate);
}

RewriteResult try_fuse(const Model& model, const std::string& mid_array) {
  if (!model.arrays().count(mid_array)) {
    return reject(cat("fuse: no array named '", mid_array, "'"));
  }
  if (std::find(model.outputs().begin(), model.outputs().end(), mid_array) !=
      model.outputs().end()) {
    return reject(cat("fuse: '", mid_array, "' is a model output and cannot be eliminated"));
  }
  const auto prod = model.producer_of(mid_array);
  if (!prod) {
    return reject(cat("fuse: '", mid_array, "' is a model input, not an intermediate"));
  }
  const RepetitiveTask& a = model.tasks()[*prod];
  if (a.outputs.size() != 1) {
    return reject(cat("fuse: producer '", a.name, "' has ", a.outputs.size(),
                      " output ports; only single-output producers can be inlined"));
  }
  std::size_t consumer = 0;
  std::size_t mid_port = 0;
  std::size_t consumer_ports = 0;
  for (std::size_t t = 0; t < model.tasks().size(); ++t) {
    for (std::size_t p = 0; p < model.tasks()[t].inputs.size(); ++p) {
      if (model.tasks()[t].inputs[p].port.name == mid_array) {
        ++consumer_ports;
        consumer = t;
        mid_port = p;
      }
    }
  }
  if (consumer_ports == 0) {
    return reject(cat("fuse: '", mid_array, "' has no consumer — dead intermediate"));
  }
  if (consumer_ports > 1) {
    return reject(cat("fuse: '", mid_array, "' is consumed through ", consumer_ports,
                      " ports; inlining would recompute the producer per consumer"));
  }
  if (consumer == *prod) {
    return reject(cat("fuse: '", mid_array, "' is produced and consumed by the same task"));
  }
  const RepetitiveTask& b = model.tasks()[consumer];

  const Shape& mid_shape = model.array_shape(mid_array);
  const TiledPort& a_out = a.outputs[0];
  const TiledPort& b_mid = b.inputs[mid_port];
  const std::int64_t pa = a_out.pattern.elements();
  const std::int64_t pm = b_mid.pattern.elements();
  if (mid_shape.rank() > kMaxRank || a.repetition.rank() > kMaxRank ||
      b.repetition.rank() > kMaxRank) {
    return reject(cat("fuse: ranks above ", kMaxRank, " are not supported"));
  }

  // Invert the producer's output tiler over the whole intermediate:
  // every element has exactly one (repetition, pattern) origin because
  // output tilers are exact partitions (validated single assignment).
  std::vector<std::int64_t> inv_rep(static_cast<std::size_t>(mid_shape.elements()));
  std::vector<std::int64_t> inv_pat(static_cast<std::size_t>(mid_shape.elements()));
  {
    const FastTiler fa = make_fast(a_out, mid_shape, a.repetition);
    std::array<std::int64_t, kMaxRank> rep{};
    const std::int64_t reps = a.repetition.elements();
    for (std::int64_t r_lin = 0; r_lin < reps; ++r_lin, advance(rep, a.repetition)) {
      std::array<std::int64_t, kMaxRank> base{};
      for (std::size_t d = 0; d < fa.array_rank; ++d) {
        std::int64_t v = fa.origin[d];
        for (std::size_t r = 0; r < fa.rep_rank; ++r) v += fa.paving[d * kMaxRank + r] * rep[r];
        base[d] = v;
      }
      for (std::size_t i_lin = 0; i_lin < fa.fit.size(); ++i_lin) {
        std::int64_t e = 0;
        for (std::size_t d = 0; d < fa.array_rank; ++d) {
          std::int64_t idx = (base[d] + fa.fit[i_lin][d]) % fa.dims[d];
          if (idx < 0) idx += fa.dims[d];
          e += idx * fa.strides[d];
        }
        inv_rep[static_cast<std::size_t>(e)] = r_lin;
        inv_pat[static_cast<std::size_t>(e)] = static_cast<std::int64_t>(i_lin);
      }
    }
  }

  const std::size_t ra = a.repetition.rank();
  const std::size_t rb = b.repetition.rank();
  const std::size_t pmr = b_mid.pattern.rank();
  // rho(r_B, i_B) = which producer instance wrote the element the
  // consumer reads there; iota = which slot of that instance's pattern.
  auto rho = [&](const Index& rep_b, const Index& pat_b) {
    const std::int64_t e = mid_shape.linearize(b_mid.tiler.element_index(mid_shape, rep_b, pat_b));
    return std::pair<Index, std::int64_t>(
        a.repetition.delinearize(inv_rep[static_cast<std::size_t>(e)]),
        inv_pat[static_cast<std::size_t>(e)]);
  };
  const Index zero_r(rb, 0);
  const Index zero_p(pmr, 0);
  const Index rho00 = rho(zero_r, zero_p).first;

  // Probe the affine form rho = M*r_B + G*i_B + rho00 from unit steps,
  // then verify it exhaustively — the legality proof is the check over
  // the full index space, not the probe.
  IntMat M(ra, rb, 0);
  IntMat G(ra, pmr, 0);
  for (std::size_t j = 0; j < rb; ++j) {
    if (b.repetition[j] < 2) continue;
    Index r = zero_r;
    r[j] = 1;
    const Index rj = rho(r, zero_p).first;
    for (std::size_t d = 0; d < ra; ++d) M.at(d, j) = rj[d] - rho00[d];
  }
  for (std::size_t j = 0; j < pmr; ++j) {
    if (b_mid.pattern[j] < 2) continue;
    Index p = zero_p;
    p[j] = 1;
    const Index gj = rho(zero_r, p).first;
    for (std::size_t d = 0; d < ra; ++d) G.at(d, j) = gj[d] - rho00[d];
  }
  std::vector<std::int64_t> iota0(static_cast<std::size_t>(pm));
  {
    std::int64_t i_lin = 0;
    for_each_index(b_mid.pattern, [&](const Index& pat) {
      iota0[static_cast<std::size_t>(i_lin++)] = rho(zero_r, pat).second;
    });
  }
  // ArrayOL arrays are toroidal (tilers wrap with floor_mod), so the
  // instance index only needs to match the affine form modulo the
  // producer's repetition extents. Dimensions that actually wrap are
  // recorded: for those, the producer's input pavings must be periodic
  // over the wrap so the fused tiler's own final mod lands on the same
  // elements.
  std::vector<bool> wraps(ra, false);
  {
    // Per consumer-pattern element: the G·i contribution (precomputed),
    // so the inner loop is pure integer arithmetic.
    std::vector<std::array<std::int64_t, kMaxRank>> gsum(static_cast<std::size_t>(pm));
    {
      std::int64_t i_lin = 0;
      for_each_index(b_mid.pattern, [&](const Index& pat) {
        const Index g = G.mv(pat);
        for (std::size_t d = 0; d < ra; ++d) gsum[static_cast<std::size_t>(i_lin)][d] = g[d];
        ++i_lin;
      });
    }
    const FastTiler fb = make_fast(b_mid, mid_shape, b.repetition);
    const Index a_rep_strides = a.repetition.strides();
    std::array<std::int64_t, kMaxRank> rep{};
    const std::int64_t reps = b.repetition.elements();
    for (std::int64_t r_lin = 0; r_lin < reps; ++r_lin, advance(rep, b.repetition)) {
      std::array<std::int64_t, kMaxRank> base{};
      for (std::size_t d = 0; d < fb.array_rank; ++d) {
        std::int64_t v = fb.origin[d];
        for (std::size_t r = 0; r < fb.rep_rank; ++r) v += fb.paving[d * kMaxRank + r] * rep[r];
        base[d] = v;
      }
      std::array<std::int64_t, kMaxRank> mr{};
      for (std::size_t d = 0; d < ra; ++d) {
        std::int64_t v = rho00[d];
        for (std::size_t j = 0; j < rb; ++j) v += M.at(d, j) * rep[j];
        mr[d] = v;
      }
      for (std::size_t i_lin = 0; i_lin < fb.fit.size(); ++i_lin) {
        std::int64_t e = 0;
        for (std::size_t d = 0; d < fb.array_rank; ++d) {
          std::int64_t idx = (base[d] + fb.fit[i_lin][d]) % fb.dims[d];
          if (idx < 0) idx += fb.dims[d];
          e += idx * fb.strides[d];
        }
        std::int64_t rv_lin = inv_rep[static_cast<std::size_t>(e)];
        for (std::size_t d = 0; d < ra; ++d) {
          const std::int64_t rv = rv_lin / a_rep_strides[d];
          rv_lin %= a_rep_strides[d];
          const std::int64_t diff = rv - (mr[d] + gsum[i_lin][d]);
          if (diff == 0) continue;
          if (floor_mod(diff, a.repetition[d]) == 0) {
            wraps[d] = true;
            continue;
          }
          return reject(cat("fuse ", a.name, " -> ", b.name, " over '", mid_array,
                            "': incompatible paving/fitting — producer instance index is not "
                            "affine at repetition ",
                            bracketed(b.repetition.delinearize(r_lin)), ", pattern ",
                            bracketed(b_mid.pattern.delinearize(
                                static_cast<std::int64_t>(i_lin)))));
        }
        if (inv_pat[static_cast<std::size_t>(e)] != iota0[i_lin]) {
          return reject(cat("fuse ", a.name, " -> ", b.name, " over '", mid_array,
                            "': incompatible paving/fitting — pattern slot depends on the "
                            "repetition index at ",
                            bracketed(b.repetition.delinearize(r_lin)), ", pattern ",
                            bracketed(b_mid.pattern.delinearize(
                                static_cast<std::int64_t>(i_lin)))));
        }
      }
    }
  }
  for (std::size_t d = 0; d < ra; ++d) {
    if (!wraps[d]) continue;
    for (const TiledPort& x : a.inputs) {
      const Shape& xs = model.array_shape(x.port.name);
      for (std::size_t ad = 0; ad < xs.rank(); ++ad) {
        if (floor_mod(a.repetition[d] * x.tiler.paving.at(ad, d), xs[ad]) != 0) {
          return reject(cat("fuse ", a.name, " -> ", b.name, " over '", mid_array,
                            "': consumer read wraps around repetition dim ", d,
                            " but producer input '", x.port.name,
                            "' is not paved periodically there"));
        }
      }
    }
  }

  // Pattern dimensions the producer index actually depends on. The
  // fused task recomputes one producer instance per point of this
  // reduced grid, per consumer repetition point.
  std::vector<std::size_t> red;
  for (std::size_t j = 0; j < pmr; ++j) {
    for (std::size_t d = 0; d < ra; ++d) {
      if (G.at(d, j) != 0) {
        red.push_back(j);
        break;
      }
    }
  }
  Index red_ext;
  for (std::size_t j : red) red_ext.push_back(b_mid.pattern[j]);
  const Shape red_pattern{Index(red_ext)};
  const std::int64_t n_a = red_pattern.elements();
  {
    std::set<Index> images;
    for_each_index(red_pattern, [&](const Index& av) {
      Index full(pmr, 0);
      for (std::size_t k = 0; k < red.size(); ++k) full[red[k]] = av[k];
      images.insert(G.mv(full));
    });
    if (static_cast<std::int64_t>(images.size()) != n_a) {
      return reject(cat("fuse ", a.name, " -> ", b.name, " over '", mid_array,
                        "': consumer re-reads the same producer instance along multiple "
                        "pattern dimensions"));
    }
  }
  IntMat g_red(ra, red.size(), 0);
  for (std::size_t k = 0; k < red.size(); ++k) {
    for (std::size_t d = 0; d < ra; ++d) g_red.at(d, k) = G.at(d, red[k]);
  }
  // Per consumer-pattern slot: which reduced-grid instance, which slot
  // of the producer pattern.
  std::vector<std::int64_t> a_of(static_cast<std::size_t>(pm));
  {
    const Index red_strides = red_pattern.strides();
    std::int64_t i_lin = 0;
    for_each_index(b_mid.pattern, [&](const Index& pat) {
      std::int64_t al = 0;
      for (std::size_t k = 0; k < red.size(); ++k) al += pat[red[k]] * red_strides[k];
      a_of[static_cast<std::size_t>(i_lin++)] = al;
    });
  }

  RepetitiveTask f;
  f.name = a.name + "_" + b.name;
  f.repetition = b.repetition;
  // Producer inputs re-tiled against the consumer repetition space:
  //   element = (o_X + P_X*rho00) + (P_X*M)*r_B + [P_X*G_red | F_X]*(a ++ i_X).
  for (const TiledPort& x : a.inputs) {
    TiledPort np = x;
    np.pattern = red_pattern.concat(x.pattern);
    np.tiler.paving = matmul(x.tiler.paving, M);
    np.tiler.fitting = matmul(x.tiler.paving, g_red).hcat(x.tiler.fitting);
    const Index shift = x.tiler.paving.mv(rho00);
    for (std::size_t d = 0; d < np.tiler.origin.size(); ++d) np.tiler.origin[d] += shift[d];
    f.inputs.push_back(std::move(np));
  }
  for (std::size_t p = 0; p < b.inputs.size(); ++p) {
    if (p != mid_port) f.inputs.push_back(b.inputs[p]);
  }
  f.outputs = b.outputs;

  std::vector<std::int64_t> a_in_sizes;
  std::int64_t a_in_total = 0;
  for (const TiledPort& p : a.inputs) {
    a_in_sizes.push_back(p.pattern.elements());
    a_in_total += p.pattern.elements();
  }
  std::vector<std::int64_t> b_in_sizes;
  std::int64_t b_in_total = 0;
  for (const TiledPort& p : b.inputs) {
    b_in_sizes.push_back(p.pattern.elements());
    b_in_total += p.pattern.elements();
  }
  const auto a_comp = a.op.compute;
  const auto b_comp = b.op.compute;
  f.op.name = a.op.name + "+" + b.op.name;
  f.op.flops_per_invocation =
      static_cast<double>(n_a) * a.op.flops_per_invocation + b.op.flops_per_invocation;
  f.op.compute = [a_comp, b_comp, n_a, pa, pm, a_in_sizes, a_in_total, b_in_sizes, b_in_total,
                  a_of, iota0, mid_port](std::span<const std::int64_t> in,
                                         std::span<std::int64_t> out) {
    thread_local std::vector<std::int64_t> mid_vals;
    thread_local std::vector<std::int64_t> abuf;
    thread_local std::vector<std::int64_t> bbuf;
    if (mid_vals.size() < static_cast<std::size_t>(n_a * pa)) mid_vals.resize(n_a * pa);
    if (abuf.size() < static_cast<std::size_t>(a_in_total)) abuf.resize(a_in_total);
    if (bbuf.size() < static_cast<std::size_t>(b_in_total)) bbuf.resize(b_in_total);
    for (std::int64_t ai = 0; ai < n_a; ++ai) {
      std::int64_t dst = 0;
      std::int64_t base = 0;
      for (std::int64_t sz : a_in_sizes) {
        std::copy_n(in.begin() + base + ai * sz, sz, abuf.begin() + dst);
        dst += sz;
        base += n_a * sz;
      }
      a_comp(std::span<const std::int64_t>(abuf.data(), static_cast<std::size_t>(a_in_total)),
             std::span<std::int64_t>(mid_vals.data() + ai * pa, static_cast<std::size_t>(pa)));
    }
    std::int64_t dst = 0;
    std::int64_t src = n_a * a_in_total;
    for (std::size_t p = 0; p < b_in_sizes.size(); ++p) {
      if (p == mid_port) {
        for (std::int64_t t = 0; t < pm; ++t) {
          bbuf[static_cast<std::size_t>(dst++)] =
              mid_vals[static_cast<std::size_t>(a_of[static_cast<std::size_t>(t)] * pa +
                                                iota0[static_cast<std::size_t>(t)])];
        }
      } else {
        std::copy_n(in.begin() + src, b_in_sizes[p], bbuf.begin() + dst);
        dst += b_in_sizes[p];
        src += b_in_sizes[p];
      }
    }
    b_comp(std::span<const std::int64_t>(bbuf.data(), static_cast<std::size_t>(b_in_total)),
           out);
  };
  if (a.inputs.size() == 1 && b.inputs.size() == 1 && b.outputs.size() == 1) {
    std::vector<std::int64_t> iota_tbl(iota0.begin(), iota0.end());
    f.op.c_body = cat(
        "{ // fused ", a.op.name, " + ", b.op.name, "\n    int mid_vals[", n_a * pa,
        "];\n    const int a_of_[", pm, "] = {", int_list(a_of), "};\n    const int i_of_[", pm,
        "] = {", int_list(iota_tbl), "};\n    const int* fused_in = in; int* fused_out = out;\n",
        "    for (int a_ = 0; a_ < ", n_a, "; ++a_) {\n      const int* in = fused_in + a_ * ",
        a_in_sizes[0], "; int* out = mid_vals + a_ * ", pa, ";\n      ", a.op.c_body,
        "\n    }\n    int b_in_[", pm, "];\n    for (int t_ = 0; t_ < ", pm,
        "; ++t_) b_in_[t_] = mid_vals[a_of_[t_] * ", pa,
        " + i_of_[t_]];\n    { const int* in = b_in_; int* out = fused_out;\n      ", b.op.c_body,
        "\n    }\n    }");
  } else {
    f.op.c_body = cat("/* fused ", a.op.name, " + ", b.op.name, " */");
  }

  return accept(rebuild(model, {*prod, consumer}, {mid_array}, {std::move(f)}), "fusion");
}

RewriteResult try_merge(const Model& model, const std::string& task_a,
                        const std::string& task_b) {
  const auto ia = find_task(model, task_a);
  const auto ib = find_task(model, task_b);
  if (!ia) return reject(cat("merge: no task named '", task_a, "'"));
  if (!ib) return reject(cat("merge: no task named '", task_b, "'"));
  if (*ia == *ib) return reject(cat("merge: '", task_a, "' with itself"));
  const RepetitiveTask& a = model.tasks()[*ia];
  const RepetitiveTask& b = model.tasks()[*ib];
  if (!(a.repetition == b.repetition)) {
    return reject(cat("merge ", a.name, " + ", b.name, ": repetition spaces differ (",
                      a.repetition.to_string(), " vs ", b.repetition.to_string(), ")"));
  }
  // Transitive dependence in either direction forbids a horizontal
  // merge: edges go producer -> consumer through shared arrays.
  const auto reaches = [&](std::size_t from, std::size_t to) {
    std::vector<std::size_t> stack{from};
    std::vector<bool> seen(model.tasks().size(), false);
    seen[from] = true;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      if (u == to) return true;
      for (const TiledPort& out : model.tasks()[u].outputs) {
        for (std::size_t v = 0; v < model.tasks().size(); ++v) {
          if (seen[v]) continue;
          for (const TiledPort& in : model.tasks()[v].inputs) {
            if (in.port.name == out.port.name) {
              seen[v] = true;
              stack.push_back(v);
              break;
            }
          }
        }
      }
    }
    return false;
  };
  if (reaches(*ia, *ib)) {
    return reject(cat("merge ", a.name, " + ", b.name, ": '", b.name, "' depends on '", a.name,
                      "'"));
  }
  if (reaches(*ib, *ia)) {
    return reject(cat("merge ", a.name, " + ", b.name, ": '", a.name, "' depends on '", b.name,
                      "'"));
  }

  RepetitiveTask f;
  f.name = a.name + "_" + b.name;
  f.repetition = a.repetition;
  f.inputs = a.inputs;
  f.inputs.insert(f.inputs.end(), b.inputs.begin(), b.inputs.end());
  f.outputs = a.outputs;
  f.outputs.insert(f.outputs.end(), b.outputs.begin(), b.outputs.end());
  std::int64_t a_in = 0;
  std::int64_t a_out = 0;
  for (const TiledPort& p : a.inputs) a_in += p.pattern.elements();
  for (const TiledPort& p : a.outputs) a_out += p.pattern.elements();
  const auto ca = a.op.compute;
  const auto cb = b.op.compute;
  f.op.name = a.op.name + "+" + b.op.name;
  f.op.flops_per_invocation = a.op.flops_per_invocation + b.op.flops_per_invocation;
  f.op.compute = [ca, cb, a_in, a_out](std::span<const std::int64_t> in,
                                       std::span<std::int64_t> out) {
    ca(in.subspan(0, static_cast<std::size_t>(a_in)),
       out.subspan(0, static_cast<std::size_t>(a_out)));
    cb(in.subspan(static_cast<std::size_t>(a_in)),
       out.subspan(static_cast<std::size_t>(a_out)));
  };
  if (a.inputs.size() == 1 && a.outputs.size() == 1 && b.inputs.size() == 1 &&
      b.outputs.size() == 1) {
    // The generated kernel gathers each port into its own private
    // buffer (in_<port>/out_<port>), so the merged body re-binds the
    // in/out aliases per sub-op.
    f.op.c_body =
        cat("{ // merged ", a.op.name, "\n      const int* in = in_", a.inputs[0].port.name,
            "; int* out = out_", a.outputs[0].port.name, ";\n      ", a.op.c_body,
            "\n    }\n    { // merged ", b.op.name, "\n      const int* in = in_",
            b.inputs[0].port.name, "; int* out = out_", b.outputs[0].port.name, ";\n      ",
            b.op.c_body, "\n    }");
  } else {
    f.op.c_body = cat("/* merged ", a.op.name, " ; ", b.op.name, " */");
  }

  return accept(rebuild(model, {*ia, *ib}, {}, {std::move(f)}), "task merge");
}

}  // namespace saclo::opt
