#include "opt/cost.hpp"

#include <algorithm>
#include <cstdlib>

namespace saclo::opt {

namespace {

/// Warp-adjacent address stride of a port: work item r0+1 moves the
/// reference element by the first paving column.
std::int64_t port_stride(const aol::TiledPort& tp, const Shape& array_shape) {
  const Index strides = array_shape.strides();
  std::int64_t delta = 0;
  for (std::size_t d = 0; d < array_shape.rank(); ++d) {
    delta += tp.tiler.paving.at(d, 0) * strides[d];
  }
  return std::llabs(delta);
}

}  // namespace

gpu::KernelCost derive_task_cost(const aol::Model& model, const aol::RepetitiveTask& task) {
  double loads = 0;
  double stores = 0;
  std::int64_t stride = 1;
  for (const aol::TiledPort& in : task.inputs) {
    loads += static_cast<double>(in.pattern.elements());
    stride = std::max(stride, port_stride(in, model.array_shape(in.port.name)));
  }
  for (const aol::TiledPort& out : task.outputs) {
    stores += static_cast<double>(out.pattern.elements());
    stride = std::max(stride, port_stride(out, model.array_shape(out.port.name)));
  }
  gpu::KernelCost cost;
  cost.global_loads_per_thread = loads;
  cost.global_stores_per_thread = stores;
  // Index arithmetic: ~4 ops per addressed element, plus the IP.
  cost.flops_per_thread = 4.0 * (loads + stores) + task.op.flops_per_invocation;
  cost.warp_access_stride = stride;
  cost.bytes_per_access = 4;
  return cost;
}

ModelCost predict_model_cost(const aol::Model& model, const gpu::DeviceSpec& device) {
  ModelCost mc;
  for (const aol::RepetitiveTask& task : model.tasks()) {
    mc.kernel_us +=
        gpu::kernel_time_us(device, task.repetition.elements(), derive_task_cost(model, task));
    ++mc.kernels;
  }
  for (const std::string& in : model.inputs()) {
    mc.h2d_us += gpu::transfer_time_us(device, model.array_shape(in).elements() * 4,
                                       gpu::Dir::HostToDevice);
  }
  for (const std::string& out : model.outputs()) {
    mc.d2h_us += gpu::transfer_time_us(device, model.array_shape(out).elements() * 4,
                                       gpu::Dir::DeviceToHost);
  }
  return mc;
}

}  // namespace saclo::opt
