#include "opt/search.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::opt {

namespace {

using aol::Model;

/// The task consuming `array`, when there is exactly one consuming
/// port (the only shape fusion accepts anyway).
std::optional<std::size_t> sole_consumer(const Model& m, const std::string& array) {
  std::optional<std::size_t> found;
  std::size_t ports = 0;
  for (std::size_t t = 0; t < m.tasks().size(); ++t) {
    for (const aol::TiledPort& in : m.tasks()[t].inputs) {
      if (in.port.name == array) {
        ++ports;
        found = t;
      }
    }
  }
  if (ports != 1) return std::nullopt;
  return found;
}

bool is_terminal(const Model& m, const std::string& array) {
  return std::find(m.inputs().begin(), m.inputs().end(), array) != m.inputs().end() ||
         std::find(m.outputs().begin(), m.outputs().end(), array) != m.outputs().end();
}

}  // namespace

OptResult optimize(const aol::Model& model, const SearchOptions& options) {
  OptResult result{model, {}, predict_model_cost(model, options.device), {}};
  if (options.level <= 0) {
    result.after = result.before;
    return result;
  }
  Model cur = model;
  double cur_cost = result.before.total_us();

  // Fusion fixpoint: for every intermediate array, try to fuse its
  // producer into its consumer — directly, or after an enabling paving
  // change on the consumer (splitting a repetition dimension so the
  // consumer's read footprint becomes whole producer instances).
  bool changed = true;
  while (changed) {
    changed = false;
    // Array names are iterated in map order; snapshot them because an
    // adopted rewrite replaces `cur`.
    std::vector<std::string> mids;
    for (const auto& [name, shape] : cur.arrays()) {
      if (!is_terminal(cur, name)) mids.push_back(name);
    }
    for (const std::string& mid : mids) {
      auto adopt = [&](Model candidate, std::vector<AppliedRewrite> rewrites) {
        const double cost = predict_model_cost(candidate, options.device).total_us();
        if (cost >= cur_cost) return false;
        cur = std::move(candidate);
        cur_cost = cost;
        for (AppliedRewrite& r : rewrites) result.rewrites.push_back(std::move(r));
        changed = true;
        return true;
      };
      RewriteResult direct = try_fuse(cur, mid);
      if (direct.legality.ok) {
        if (adopt(std::move(*direct.model),
                  {{"fuse", cat("fused producer of '", mid, "' into its consumer")}})) {
          break;
        }
        continue;
      }
      // Enabling paving change: split a consumer repetition dimension
      // by the smallest factor that makes the fusion legal and cheaper.
      const auto consumer = sole_consumer(cur, mid);
      if (!consumer) continue;
      const std::string consumer_name = cur.tasks()[*consumer].name;
      const Shape consumer_rep = cur.tasks()[*consumer].repetition;
      bool adopted = false;
      for (std::size_t d = 0; d < consumer_rep.rank() && !adopted; ++d) {
        for (std::int64_t k = 2; k <= std::min(options.max_paving_factor, consumer_rep[d]);
             ++k) {
          if (consumer_rep[d] % k != 0) continue;
          RewriteResult pv = try_change_paving(cur, consumer_name, d, k, /*revalidate=*/false);
          if (!pv.legality.ok) continue;
          RewriteResult fz = try_fuse(*pv.model, mid);
          if (!fz.legality.ok) continue;
          if (adopt(std::move(*fz.model),
                    {{"paving_change", cat("split repetition dim ", d, " of '", consumer_name,
                                           "' by ", k)},
                     {"fuse", cat("fused producer of '", mid, "' into its consumer")}})) {
            adopted = true;
            break;
          }
        }
      }
      if (adopted) break;
    }
  }

  // Level 2: horizontal merges of independent tasks with identical
  // repetition spaces (one launch instead of two).
  if (options.level >= 2) {
    changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < cur.tasks().size() && !changed; ++i) {
        for (std::size_t j = i + 1; j < cur.tasks().size() && !changed; ++j) {
          const std::string na = cur.tasks()[i].name;
          const std::string nb = cur.tasks()[j].name;
          RewriteResult mg = try_merge(cur, na, nb);
          if (!mg.legality.ok) continue;
          const double cost = predict_model_cost(*mg.model, options.device).total_us();
          if (cost >= cur_cost) continue;
          cur = std::move(*mg.model);
          cur_cost = cost;
          result.rewrites.push_back({"merge", cat("merged '", na, "' and '", nb, "'")});
          changed = true;
        }
      }
    }
  }

  result.after = predict_model_cost(cur, options.device);
  result.model = std::move(cur);
  return result;
}

}  // namespace saclo::opt
