#pragma once

#include <string>
#include <vector>

#include "opt/cost.hpp"
#include "opt/transform.hpp"

namespace saclo::opt {

/// Knobs of the cost-driven transformation search.
struct SearchOptions {
  /// 0 = no rewrites; 1 = producer/consumer fusion (with enabling
  /// paving changes); 2 = additionally merge independent same-shape
  /// tasks into one kernel.
  int level = 1;
  /// Device whose cost model scores candidate schedules.
  gpu::DeviceSpec device = gpu::gtx480();
  /// Largest repetition split tried when searching for an enabling
  /// paving change.
  std::int64_t max_paving_factor = 16;
};

/// One adopted rewrite, for reporting and tests.
struct AppliedRewrite {
  std::string kind;    ///< "fuse", "paving_change", "merge"
  std::string detail;  ///< human-readable description
};

struct OptResult {
  aol::Model model;
  std::vector<AppliedRewrite> rewrites;
  ModelCost before;
  ModelCost after;
};

/// Greedy cost-gated search over the elementary transformations: every
/// candidate must pass its legality check *and* strictly lower the
/// predicted makespan on `options.device` to be adopted; the loop runs
/// to a fixpoint. Deterministic — arrays and task pairs are visited in
/// a fixed order, and the first improving candidate wins.
OptResult optimize(const aol::Model& model, const SearchOptions& options = {});

}  // namespace saclo::opt
