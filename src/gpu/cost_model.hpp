#pragma once

#include <cstdint>

#include "gpu/device.hpp"

namespace saclo::gpu {

/// Static per-thread cost descriptor of a kernel.
///
/// These numbers are *derived by the code generators from the IR*, not
/// supplied by benchmarks: the SaC CUDA backend counts the loads,
/// stores and arithmetic ops of each outlined generator body and
/// analyses the address stride between adjacent threads of a warp; the
/// GASPARD2 OpenCL generator does the same for its task kernels.
struct KernelCost {
  double flops_per_thread = 0.0;
  double global_loads_per_thread = 0.0;
  double global_stores_per_thread = 0.0;
  int bytes_per_access = 4;
  /// Address distance (in elements) between the accesses of adjacent
  /// threads in a warp; 1 == fully coalesced.
  std::int64_t warp_access_stride = 1;
};

/// Timing model for one kernel launch (microseconds of simulated GPU
/// time).
///
/// Roofline style: the launch costs its fixed overhead plus the larger
/// of compute time and global-memory time, where strided warp accesses
/// move `min(stride, max_stride_penalty)` times more bytes than useful.
/// Occupancy quantisation is modelled by rounding the thread count up
/// to whole waves of resident threads for small launches.
double kernel_time_us(const DeviceSpec& dev, std::int64_t threads, const KernelCost& cost);

/// PCIe transfer time (microseconds) for `bytes` in the given
/// direction.
enum class Dir { HostToDevice, DeviceToHost };
double transfer_time_us(const DeviceSpec& dev, std::int64_t bytes, Dir dir);

}  // namespace saclo::gpu
