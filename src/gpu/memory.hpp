#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace saclo::gpu {

/// Raised on device out-of-memory or use of an invalid buffer handle.
class DeviceMemoryError : public Error {
 public:
  using Error::Error;
};

/// Opaque handle to a device allocation (the simulator's cudaMalloc /
/// clCreateBuffer result). `bytes` is the logical (requested) size; the
/// backing block may be larger (alignment padding, allocator size
/// classes).
struct BufferHandle {
  std::uint64_t id = 0;
  std::int64_t bytes = 0;
  bool valid() const { return id != 0; }
};

/// Anything that can hand out and take back device buffers: the raw
/// DeviceMemoryPool, or a caching layer on top of it (serve's
/// CachingDeviceAllocator). RAII owners and the runtime façades
/// allocate through this interface so a caching layer can be installed
/// on a device without touching the pipelines.
class BufferAllocator {
 public:
  virtual ~BufferAllocator() = default;
  virtual BufferHandle allocate(std::int64_t bytes) = 0;
  virtual void free(BufferHandle handle) = 0;
};

/// Simulated device global memory: allocations are backed by host
/// vectors (so kernels can execute functionally) while capacity
/// accounting enforces the device's memory size.
///
/// Like cudaMalloc, every allocation is aligned: capacity accounting
/// rounds the block up to kAlignment bytes (the backing store keeps the
/// exact requested size so typed views stay tight).
class DeviceMemoryPool final : public BufferAllocator {
 public:
  /// cudaMalloc guarantees at least 256-byte alignment on every device.
  static constexpr std::int64_t kAlignment = 256;

  explicit DeviceMemoryPool(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {}

  BufferHandle allocate(std::int64_t bytes) override;
  void free(BufferHandle handle) override;

  /// Raw access to a buffer's backing store; throws on stale handles.
  std::span<std::byte> bytes(BufferHandle handle);
  std::span<const std::byte> bytes(BufferHandle handle) const;

  /// Typed view; `handle` must hold a whole number of T.
  template <typename T>
  std::span<T> view(BufferHandle handle) {
    auto raw = bytes(handle);
    if (raw.size() % sizeof(T) != 0) {
      throw DeviceMemoryError("buffer size is not a multiple of element size");
    }
    return {reinterpret_cast<T*>(raw.data()), raw.size() / sizeof(T)};
  }

  std::int64_t used_bytes() const { return used_; }
  /// High-water mark of used_bytes() over the pool's lifetime.
  std::int64_t peak_bytes() const { return peak_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  std::size_t live_allocations() const { return buffers_.size(); }

 private:
  struct Block {
    std::vector<std::byte> data;
    std::int64_t reserved = 0;  ///< aligned size charged against capacity
  };

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Block> buffers_;
};

/// RAII owner of a BufferHandle (Core Guidelines I.11: no raw-handle
/// ownership across API boundaries). Works against any BufferAllocator,
/// so buffers created through a caching layer are returned to it.
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(BufferAllocator& allocator, std::int64_t bytes)
      : allocator_(&allocator), handle_(allocator.allocate(bytes)) {}
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  BufferHandle handle() const { return handle_; }
  std::int64_t bytes() const { return handle_.bytes; }
  bool valid() const { return handle_.valid(); }

  void reset() {
    if (allocator_ != nullptr && handle_.valid()) allocator_->free(handle_);
    allocator_ = nullptr;
    handle_ = {};
  }

 private:
  void swap(DeviceBuffer& other) {
    std::swap(allocator_, other.allocator_);
    std::swap(handle_, other.handle_);
  }
  BufferAllocator* allocator_ = nullptr;
  BufferHandle handle_{};
};

}  // namespace saclo::gpu
