#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/error.hpp"

namespace saclo::gpu {

/// Raised on device out-of-memory or use of an invalid buffer handle.
class DeviceMemoryError : public Error {
 public:
  using Error::Error;
};

/// Opaque handle to a device allocation (the simulator's cudaMalloc /
/// clCreateBuffer result).
struct BufferHandle {
  std::uint64_t id = 0;
  std::int64_t bytes = 0;
  bool valid() const { return id != 0; }
};

/// Simulated device global memory: allocations are backed by host
/// vectors (so kernels can execute functionally) while capacity
/// accounting enforces the device's memory size.
class DeviceMemoryPool {
 public:
  explicit DeviceMemoryPool(std::int64_t capacity_bytes) : capacity_(capacity_bytes) {}

  BufferHandle allocate(std::int64_t bytes);
  void free(BufferHandle handle);

  /// Raw access to a buffer's backing store; throws on stale handles.
  std::span<std::byte> bytes(BufferHandle handle);
  std::span<const std::byte> bytes(BufferHandle handle) const;

  /// Typed view; `handle` must hold a whole number of T.
  template <typename T>
  std::span<T> view(BufferHandle handle) {
    auto raw = bytes(handle);
    if (raw.size() % sizeof(T) != 0) {
      throw DeviceMemoryError("buffer size is not a multiple of element size");
    }
    return {reinterpret_cast<T*>(raw.data()), raw.size() / sizeof(T)};
  }

  std::int64_t used_bytes() const { return used_; }
  std::int64_t capacity_bytes() const { return capacity_; }
  std::size_t live_allocations() const { return buffers_.size(); }

 private:
  std::int64_t capacity_;
  std::int64_t used_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::vector<std::byte>> buffers_;
};

/// RAII owner of a BufferHandle (Core Guidelines I.11: no raw-handle
/// ownership across API boundaries).
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceMemoryPool& pool, std::int64_t bytes)
      : pool_(&pool), handle_(pool.allocate(bytes)) {}
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& other) noexcept { swap(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      swap(other);
    }
    return *this;
  }

  BufferHandle handle() const { return handle_; }
  std::int64_t bytes() const { return handle_.bytes; }
  bool valid() const { return handle_.valid(); }

  void reset() {
    if (pool_ != nullptr && handle_.valid()) pool_->free(handle_);
    pool_ = nullptr;
    handle_ = {};
  }

 private:
  void swap(DeviceBuffer& other) {
    std::swap(pool_, other.pool_);
    std::swap(handle_, other.handle_);
  }
  DeviceMemoryPool* pool_ = nullptr;
  BufferHandle handle_{};
};

}  // namespace saclo::gpu
