#pragma once

#include <string>
#include <utility>

#include "core/ndarray.hpp"
#include "gpu/sim_gpu.hpp"

namespace saclo::gpu::opencl {

/// A cl_mem-style buffer object. Unlike the CUDA façade, OpenCL buffers
/// are untyped at the API level; the GASPARD2-generated host code binds
/// them to kernel arguments by position.
class Buffer {
 public:
  Buffer() = default;
  Buffer(VirtualGpu& gpu, std::int64_t bytes) : gpu_(&gpu), buffer_(gpu.memory(), bytes) {}

  BufferHandle handle() const { return buffer_.handle(); }
  std::int64_t bytes() const { return buffer_.bytes(); }
  bool valid() const { return buffer_.valid(); }

  template <typename T>
  std::span<T> view() {
    return gpu_->memory().view<T>(buffer_.handle());
  }
  template <typename T>
  std::span<const T> view() const {
    return gpu_->memory().view<T>(buffer_.handle());
  }

 private:
  VirtualGpu* gpu_ = nullptr;
  DeviceBuffer buffer_;
};

/// OpenCL-flavoured façade: a command queue onto the simulated device.
/// GASPARD2's generated host code (Section V of the paper) creates
/// buffers, enqueues async writes/reads and NDRange kernels; this class
/// is that surface. All enqueues execute in order (an in-order queue),
/// which matches the generated code's single-queue usage.
class CommandQueue {
 public:
  explicit CommandQueue(VirtualGpu& gpu) : gpu_(&gpu) {}

  VirtualGpu& gpu() { return *gpu_; }
  const DeviceSpec& spec() const { return gpu_->spec(); }

  Buffer create_buffer(std::int64_t bytes) { return Buffer(*gpu_, bytes); }

  template <typename T>
  Buffer create_buffer_for(const Shape& shape) {
    return Buffer(*gpu_, shape.elements() * static_cast<std::int64_t>(sizeof(T)));
  }

  template <typename T>
  void enqueue_write_buffer(Buffer& dst, const NDArray<T>& src, bool execute = true) {
    gpu_->copy_h2d(dst.handle(), std::as_bytes(src.data()), kHtoDOp, execute);
  }

  template <typename T>
  void enqueue_read_buffer(NDArray<T>& dst, const Buffer& src, bool execute = true) {
    gpu_->copy_d2h(std::as_writable_bytes(dst.data()), src.handle(), kDtoHOp, execute);
  }

  void account_write(std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::HostToDevice, kHtoDOp);
  }
  void account_read(std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::DeviceToHost, kDtoHOp);
  }

  /// clEnqueueNDRangeKernel: `global_work_size` is linearised, exactly
  /// as the generated kernels compute `iGID = get_global_id(0)`.
  double enqueue_ndrange(const KernelLaunch& kernel, bool execute = true) {
    return gpu_->launch(kernel, execute);
  }

  /// The GPU profiler reports OpenCL async copies under the same row
  /// names as CUDA ones (the paper's Table I was produced this way on
  /// an NVIDIA OpenCL stack).
  static constexpr const char* kHtoDOp = "memcpyHtoDasync";
  static constexpr const char* kDtoHOp = "memcpyDtoHasync";

 private:
  VirtualGpu* gpu_;
};

}  // namespace saclo::gpu::opencl
