#pragma once

#include <string>
#include <utility>

#include "core/ndarray.hpp"
#include "gpu/sim_gpu.hpp"

namespace saclo::gpu::opencl {

/// A cl_mem-style buffer object. Unlike the CUDA façade, OpenCL buffers
/// are untyped at the API level; the GASPARD2-generated host code binds
/// them to kernel arguments by position.
class Buffer {
 public:
  Buffer() = default;
  Buffer(VirtualGpu& gpu, std::int64_t bytes) : gpu_(&gpu), buffer_(gpu.allocator(), bytes) {}

  BufferHandle handle() const { return buffer_.handle(); }
  std::int64_t bytes() const { return buffer_.bytes(); }
  bool valid() const { return buffer_.valid(); }

  template <typename T>
  std::span<T> view() {
    return gpu_->memory().view<T>(buffer_.handle());
  }
  template <typename T>
  std::span<const T> view() const {
    return gpu_->memory().view<T>(buffer_.handle());
  }

 private:
  VirtualGpu* gpu_ = nullptr;
  DeviceBuffer buffer_;
};

/// OpenCL-flavoured façade: a command queue onto the simulated device.
/// GASPARD2's generated host code (Section V of the paper) creates
/// buffers, enqueues async writes/reads and NDRange kernels; this class
/// is that surface. All enqueues execute in order (an in-order queue);
/// distinct CommandQueues bound to distinct streams overlap on the
/// simulated timeline unless ordered by a data hazard or a marker
/// event — the multi-queue idiom of async OpenCL pipelines.
class CommandQueue {
 public:
  explicit CommandQueue(VirtualGpu& gpu, StreamId stream = kDefaultStream)
      : gpu_(&gpu), stream_(stream) {}

  VirtualGpu& gpu() { return *gpu_; }
  const DeviceSpec& spec() const { return gpu_->spec(); }
  StreamId stream() const { return stream_; }

  Buffer create_buffer(std::int64_t bytes) { return Buffer(*gpu_, bytes); }

  template <typename T>
  Buffer create_buffer_for(const Shape& shape) {
    return Buffer(*gpu_, shape.elements() * static_cast<std::int64_t>(sizeof(T)));
  }

  template <typename T>
  void enqueue_write_buffer(Buffer& dst, const NDArray<T>& src, bool execute = true) {
    gpu_->copy_h2d(dst.handle(), std::as_bytes(src.data()), kHtoDOp, execute, true, stream_);
  }

  template <typename T>
  void enqueue_read_buffer(NDArray<T>& dst, const Buffer& src, bool execute = true) {
    gpu_->copy_d2h(std::as_writable_bytes(dst.data()), src.handle(), kDtoHOp, execute, true,
                   stream_);
  }

  void account_write(std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::HostToDevice, kHtoDOp, stream_);
  }
  void account_read(std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::DeviceToHost, kDtoHOp, stream_);
  }
  /// Hazard-aware accounting variants: the buffer the transfer fills /
  /// drains orders it against kernels on other queues.
  void account_write(const Buffer& dst, std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::HostToDevice, kHtoDOp, stream_, dst.handle());
  }
  void account_read(const Buffer& src, std::int64_t bytes) {
    gpu_->account_transfer(bytes, Dir::DeviceToHost, kDtoHOp, stream_, src.handle());
  }

  /// clEnqueueNDRangeKernel: `global_work_size` is linearised, exactly
  /// as the generated kernels compute `iGID = get_global_id(0)`.
  double enqueue_ndrange(const KernelLaunch& kernel, bool execute = true) {
    return gpu_->launch(kernel, execute, stream_);
  }

  /// clEnqueueMarker: captures this queue's current tail as an event.
  EventId enqueue_marker() { return gpu_->record_event(stream_); }
  /// clEnqueueWaitForEvents: orders this queue after the event.
  void enqueue_wait(EventId event) { gpu_->wait_event(stream_, event); }

  /// The GPU profiler reports OpenCL async copies under the same row
  /// names as CUDA ones (the paper's Table I was produced this way on
  /// an NVIDIA OpenCL stack).
  static constexpr const char* kHtoDOp = "memcpyHtoDasync";
  static constexpr const char* kDtoHOp = "memcpyDtoHasync";

 private:
  VirtualGpu* gpu_;
  StreamId stream_ = kDefaultStream;
};

}  // namespace saclo::gpu::opencl
