#include "gpu/sim_gpu.hpp"

#include <algorithm>
#include <cstring>

#include "core/fmt.hpp"
#include "fault/fault.hpp"

namespace saclo::gpu {

void VirtualGpu::copy_h2d(BufferHandle dst, std::span<const std::byte> src, const std::string& op,
                          bool execute, bool account, StreamId stream) {
  auto dest = memory_.bytes(dst);
  if (src.size() > dest.size()) {
    throw DeviceMemoryError(cat("copy_h2d of ", src.size(), " bytes into ", dest.size(),
                                "-byte device buffer"));
  }
  // Silent (account=false) copies are device-resident handoffs, not
  // PCIe traffic — they don't cross a fault boundary.
  if (fault_ != nullptr && account) fault_->on_transfer(timeline_.makespan_us());
  if (execute) {
    std::memcpy(dest.data(), src.data(), src.size());
  }
  if (account) {
    const double us =
        transfer_time_us(spec_, static_cast<std::int64_t>(src.size()), Dir::HostToDevice);
    const BufferHandle writes[] = {dst};
    const auto iv = timeline_.schedule(stream, us, {}, writes);
    profiler_.record_interval(op, OpKind::MemcpyHtoD, stream, iv.start_us, iv.end_us);
  }
}

void VirtualGpu::copy_d2h(std::span<std::byte> dst, BufferHandle src, const std::string& op,
                          bool execute, bool account, StreamId stream) {
  auto source = memory_.bytes(src);
  if (dst.size() > source.size()) {
    throw DeviceMemoryError(cat("copy_d2h of ", dst.size(), " bytes from ", source.size(),
                                "-byte device buffer"));
  }
  if (fault_ != nullptr && account) fault_->on_transfer(timeline_.makespan_us());
  if (execute) {
    std::memcpy(dst.data(), source.data(), dst.size());
  }
  if (account) {
    const double us =
        transfer_time_us(spec_, static_cast<std::int64_t>(dst.size()), Dir::DeviceToHost);
    const BufferHandle reads[] = {src};
    const auto iv = timeline_.schedule(stream, us, reads, {});
    profiler_.record_interval(op, OpKind::MemcpyDtoH, stream, iv.start_us, iv.end_us);
  }
}

void VirtualGpu::account_transfer(std::int64_t bytes, Dir dir, const std::string& op,
                                  StreamId stream, BufferHandle touched) {
  if (fault_ != nullptr) fault_->on_transfer(timeline_.makespan_us());
  const double us = transfer_time_us(spec_, bytes, dir);
  const BufferHandle handles[] = {touched};
  const std::span<const BufferHandle> hazard =
      touched.valid() ? std::span<const BufferHandle>(handles) : std::span<const BufferHandle>();
  const auto iv = dir == Dir::HostToDevice ? timeline_.schedule(stream, us, {}, hazard)
                                           : timeline_.schedule(stream, us, hazard, {});
  profiler_.record_interval(op, dir == Dir::HostToDevice ? OpKind::MemcpyHtoD : OpKind::MemcpyDtoH,
                            stream, iv.start_us, iv.end_us);
}

double VirtualGpu::launch(const KernelLaunch& kernel, bool execute, StreamId stream) {
  return launch_impl(kernel, execute, stream);
}

double VirtualGpu::launch_impl(const KernelLaunch& kernel, bool execute, StreamId stream) {
  if (fault_ != nullptr) fault_->on_kernel(timeline_.makespan_us());
  const double us = kernel_time_us(spec_, kernel.threads, kernel.cost);
  if (execute && kernel.body) {
    pool_.parallel_for(kernel.threads, kernel.body);
  }
  const auto iv = timeline_.schedule(stream, us, kernel.reads, kernel.writes);
  profiler_.record_interval(kernel.name, OpKind::Kernel, stream, iv.start_us, iv.end_us);
  return us;
}

double VirtualGpu::run_host(const std::string& op, double us, StreamId stream) {
  const auto iv = timeline_.schedule(stream, us);
  profiler_.record_interval(op, OpKind::Host, stream, iv.start_us, iv.end_us);
  return iv.end_us;
}

}  // namespace saclo::gpu
