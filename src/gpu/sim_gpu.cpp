#include "gpu/sim_gpu.hpp"

#include <algorithm>
#include <cstring>

#include "core/fmt.hpp"
#include "fault/fault.hpp"

namespace saclo::gpu {

VirtualGpu::VirtualGpu(DeviceSpec spec, unsigned workers, BackendKind backend)
    : spec_(std::move(spec)),
      memory_(static_cast<std::int64_t>(spec_.global_mem_bytes)),
      pool_(workers),
      backend_(make_backend(backend, spec_, pool_)) {
  backend_->set_boundary_observer(this);
  profiler_.set_backend_name(backend_->name());
}

VirtualGpu::~VirtualGpu() = default;

void VirtualGpu::on_kernel_boundary(const KernelLaunch& kernel) {
  (void)kernel;
  if (fault_ != nullptr) fault_->on_kernel(timeline_.makespan_us());
}

void VirtualGpu::on_transfer_boundary(Dir dir, std::int64_t bytes) {
  (void)dir;
  (void)bytes;
  if (fault_ != nullptr) fault_->on_transfer(timeline_.makespan_us());
}

void VirtualGpu::copy_h2d(BufferHandle dst, std::span<const std::byte> src, const std::string& op,
                          bool execute, bool account, StreamId stream) {
  auto dest = memory_.bytes(dst);
  if (src.size() > dest.size()) {
    throw DeviceMemoryError(cat("copy_h2d of ", src.size(), " bytes into ", dest.size(),
                                "-byte device buffer"));
  }
  // Silent (account=false) copies are device-resident handoffs, not
  // PCIe traffic — they never reach the backend, so they cross no fault
  // boundary and accrue no time.
  if (!account) {
    if (execute) std::memcpy(dest.data(), src.data(), src.size());
    return;
  }
  const double us = backend_->transfer(Dir::HostToDevice, dest.first(src.size()), src,
                                       static_cast<std::int64_t>(src.size()), execute);
  const BufferHandle writes[] = {dst};
  const auto iv = timeline_.schedule(stream, us, {}, writes);
  profiler_.record_interval(op, OpKind::MemcpyHtoD, stream, iv.start_us, iv.end_us);
}

void VirtualGpu::copy_d2h(std::span<std::byte> dst, BufferHandle src, const std::string& op,
                          bool execute, bool account, StreamId stream) {
  auto source = memory_.bytes(src);
  if (dst.size() > source.size()) {
    throw DeviceMemoryError(cat("copy_d2h of ", dst.size(), " bytes from ", source.size(),
                                "-byte device buffer"));
  }
  if (!account) {
    if (execute) std::memcpy(dst.data(), source.data(), dst.size());
    return;
  }
  const double us = backend_->transfer(Dir::DeviceToHost, dst, source.first(dst.size()),
                                       static_cast<std::int64_t>(dst.size()), execute);
  const BufferHandle reads[] = {src};
  const auto iv = timeline_.schedule(stream, us, reads, {});
  profiler_.record_interval(op, OpKind::MemcpyDtoH, stream, iv.start_us, iv.end_us);
}

void VirtualGpu::account_transfer(std::int64_t bytes, Dir dir, const std::string& op,
                                  StreamId stream, BufferHandle touched) {
  const double us = backend_->transfer(dir, {}, {}, bytes, false);
  const BufferHandle handles[] = {touched};
  const std::span<const BufferHandle> hazard =
      touched.valid() ? std::span<const BufferHandle>(handles) : std::span<const BufferHandle>();
  const auto iv = dir == Dir::HostToDevice ? timeline_.schedule(stream, us, {}, hazard)
                                           : timeline_.schedule(stream, us, hazard, {});
  profiler_.record_interval(op, dir == Dir::HostToDevice ? OpKind::MemcpyHtoD : OpKind::MemcpyDtoH,
                            stream, iv.start_us, iv.end_us);
}

double VirtualGpu::launch(const KernelLaunch& kernel, bool execute, StreamId stream) {
  return launch_impl(kernel, execute, stream);
}

double VirtualGpu::launch_impl(const KernelLaunch& kernel, bool execute, StreamId stream) {
  const double us = backend_->launch_kernel(kernel, execute);
  const auto iv = timeline_.schedule(stream, us, kernel.reads, kernel.writes);
  profiler_.record_interval(kernel.name, OpKind::Kernel, stream, iv.start_us, iv.end_us);
  return us;
}

double VirtualGpu::run_host(const std::string& op, double us, StreamId stream) {
  const auto iv = timeline_.schedule(stream, backend_->host_stage(us));
  profiler_.record_interval(op, OpKind::Host, stream, iv.start_us, iv.end_us);
  return iv.end_us;
}

}  // namespace saclo::gpu
