#include "gpu/sim_gpu.hpp"

#include <algorithm>
#include <cstring>

#include "core/fmt.hpp"

namespace saclo::gpu {

void VirtualGpu::copy_h2d(BufferHandle dst, std::span<const std::byte> src, const std::string& op,
                          bool execute, bool account) {
  auto dest = memory_.bytes(dst);
  if (src.size() > dest.size()) {
    throw DeviceMemoryError(cat("copy_h2d of ", src.size(), " bytes into ", dest.size(),
                                "-byte device buffer"));
  }
  if (execute) {
    std::memcpy(dest.data(), src.data(), src.size());
  }
  if (account) {
    profiler_.record(op, OpKind::MemcpyHtoD, 1,
                     transfer_time_us(spec_, static_cast<std::int64_t>(src.size()),
                                      Dir::HostToDevice));
  }
}

void VirtualGpu::copy_d2h(std::span<std::byte> dst, BufferHandle src, const std::string& op,
                          bool execute, bool account) {
  auto source = memory_.bytes(src);
  if (dst.size() > source.size()) {
    throw DeviceMemoryError(cat("copy_d2h of ", dst.size(), " bytes from ", source.size(),
                                "-byte device buffer"));
  }
  if (execute) {
    std::memcpy(dst.data(), source.data(), dst.size());
  }
  if (account) {
    profiler_.record(op, OpKind::MemcpyDtoH, 1,
                     transfer_time_us(spec_, static_cast<std::int64_t>(dst.size()),
                                      Dir::DeviceToHost));
  }
}

void VirtualGpu::account_transfer(std::int64_t bytes, Dir dir, const std::string& op) {
  profiler_.record(op, dir == Dir::HostToDevice ? OpKind::MemcpyHtoD : OpKind::MemcpyDtoH, 1,
                   transfer_time_us(spec_, bytes, dir));
}

double VirtualGpu::launch(const KernelLaunch& kernel, bool execute) {
  return launch_impl(kernel, execute);
}

double VirtualGpu::launch_impl(const KernelLaunch& kernel, bool execute) {
  const double us = kernel_time_us(spec_, kernel.threads, kernel.cost);
  if (execute && kernel.body) {
    pool_.parallel_for(kernel.threads, kernel.body);
  }
  profiler_.record(kernel.name, OpKind::Kernel, 1, us);
  return us;
}

}  // namespace saclo::gpu
