#include "gpu/memory.hpp"

#include "core/fmt.hpp"

namespace saclo::gpu {

BufferHandle DeviceMemoryPool::allocate(std::int64_t bytes) {
  if (bytes < 0) throw DeviceMemoryError(cat("allocate(", bytes, ") is negative"));
  if (used_ + bytes > capacity_) {
    throw DeviceMemoryError(cat("device out of memory: requested ", bytes, " bytes, ",
                                capacity_ - used_, " of ", capacity_, " available"));
  }
  BufferHandle h{next_id_++, bytes};
  buffers_.emplace(h.id, std::vector<std::byte>(static_cast<std::size_t>(bytes)));
  used_ += bytes;
  return h;
}

void DeviceMemoryPool::free(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    throw DeviceMemoryError(cat("free of invalid device buffer id ", handle.id));
  }
  used_ -= static_cast<std::int64_t>(it->second.size());
  buffers_.erase(it);
}

std::span<std::byte> DeviceMemoryPool::bytes(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    throw DeviceMemoryError(cat("access to invalid device buffer id ", handle.id));
  }
  return it->second;
}

std::span<const std::byte> DeviceMemoryPool::bytes(BufferHandle handle) const {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    throw DeviceMemoryError(cat("access to invalid device buffer id ", handle.id));
  }
  return it->second;
}

}  // namespace saclo::gpu
