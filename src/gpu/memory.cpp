#include "gpu/memory.hpp"

#include "core/fmt.hpp"

namespace saclo::gpu {

namespace {
std::int64_t align_up(std::int64_t bytes, std::int64_t alignment) {
  return (bytes + alignment - 1) / alignment * alignment;
}
}  // namespace

BufferHandle DeviceMemoryPool::allocate(std::int64_t bytes) {
  if (bytes < 0) throw DeviceMemoryError(cat("allocate(", bytes, ") is negative"));
  const std::int64_t reserved = align_up(bytes, kAlignment);
  if (used_ + reserved > capacity_) {
    throw DeviceMemoryError(cat("device out of memory: requested ", bytes, " bytes (", reserved,
                                " aligned), ", capacity_ - used_, " of ", capacity_,
                                " available"));
  }
  BufferHandle h{next_id_++, bytes};
  buffers_.emplace(h.id, Block{std::vector<std::byte>(static_cast<std::size_t>(bytes)), reserved});
  used_ += reserved;
  if (used_ > peak_) peak_ = used_;
  return h;
}

void DeviceMemoryPool::free(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    if (handle.id != 0 && handle.id < next_id_) {
      throw DeviceMemoryError(cat("double free of device buffer id ", handle.id,
                                  ": the handle was already freed (or recycled by a caching "
                                  "allocator and returned twice)"));
    }
    throw DeviceMemoryError(cat("free of invalid device buffer id ", handle.id,
                                ": never allocated by this pool"));
  }
  used_ -= it->second.reserved;
  buffers_.erase(it);
}

std::span<std::byte> DeviceMemoryPool::bytes(BufferHandle handle) {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    throw DeviceMemoryError(cat("access to invalid device buffer id ", handle.id));
  }
  return it->second.data;
}

std::span<const std::byte> DeviceMemoryPool::bytes(BufferHandle handle) const {
  auto it = buffers_.find(handle.id);
  if (it == buffers_.end()) {
    throw DeviceMemoryError(cat("access to invalid device buffer id ", handle.id));
  }
  return it->second.data;
}

}  // namespace saclo::gpu
