#pragma once

#include <cstdint>
#include <string>

namespace saclo::gpu {

/// Static description of a (simulated) GPU.
///
/// The analytic timing model consumes exactly these numbers; see
/// cost_model.hpp. The defaults of gtx480() are calibrated so the
/// paper's measured operations land at the magnitudes of its Tables
/// I/II (see DESIGN.md §3 and EXPERIMENTS.md).
struct DeviceSpec {
  std::string name;

  // Compute.
  int sm_count = 15;
  int cores_per_sm = 32;
  double clock_ghz = 1.4;
  int warp_size = 32;
  int max_resident_threads_per_sm = 1536;
  double flops_per_core_per_cycle = 1.0;

  // Memory system.
  double global_mem_bytes = 1.5e9;
  double mem_bandwidth_gbs = 170.0;  ///< peak, fully coalesced
  /// Upper bound on the slowdown of strided (uncoalesced) warp
  /// accesses. On Fermi the L2 cache caps the effective penalty well
  /// below the warp size; 11 reproduces the paper's measured kernel
  /// times for stride-1920 accesses.
  double max_stride_penalty = 11.0;

  // Host link (PCIe x16 Gen2 on the paper's testbed).
  double pcie_h2d_gbs = 5.36;
  double pcie_d2h_gbs = 6.30;
  double pcie_latency_us = 8.0;

  // Driver/runtime.
  double kernel_launch_overhead_us = 20.0;

  double peak_gflops() const {
    return sm_count * cores_per_sm * clock_ghz * flops_per_core_per_cycle;
  }
  std::int64_t max_resident_threads() const {
    return static_cast<std::int64_t>(sm_count) * max_resident_threads_per_sm;
  }
};

/// Static description of a (simulated) host CPU used for sequential
/// code. cycles_per_op is calibrated against the paper's sequential SaC
/// runtimes (compiler-generated C, superscalar issue, no SIMD): the
/// non-generic horizontal filter lands at the paper's ~4.5 s per 300
/// frames.
struct HostSpec {
  std::string name;
  int cores = 4;
  double clock_ghz = 2.8;
  /// Average cycles per abstract interpreter-level operation (a load,
  /// store, or arithmetic op of the lowered loop nest).
  double cycles_per_op = 0.9;

  double time_us(double ops) const { return ops * cycles_per_op / (clock_ghz * 1e3); }
};

/// NVIDIA GTX480 (Fermi), the paper's evaluation device.
DeviceSpec gtx480();
/// An older Tesla-class part, for the ablation sweeps.
DeviceSpec gtx280();
/// A modern-ish larger device, for the ablation sweeps.
DeviceSpec bigger_fermi();
/// Intel i7-930, the paper's host CPU.
HostSpec i7_930();

}  // namespace saclo::gpu
