// Stub HC (ROCm hc/parallel_for_each) execution backend, compiled only
// with -DSACLO_BACKEND_HC=ON. Mirrors the kazuki saxpy harness shape:
// the same kernel body the other backends run, expressed where
// hc::parallel_for_each over an extent<1> would go. Functional
// execution and timing delegate to the portable path so the stub builds
// without a ROCm toolchain; a real driver replaces the marked bodies
// with hc::array_view bindings and a completion_future wait.

#include <cstring>

#include "gpu/backend.hpp"
#include "gpu/executor.hpp"

namespace saclo::gpu {

namespace {

class HcStubBackend : public ExecutionBackend {
 public:
  HcStubBackend(const DeviceSpec& spec, ThreadPool& pool) : spec_(spec), pool_(pool) {}

  BackendKind kind() const override { return BackendKind::Hc; }

  double launch_kernel(const KernelLaunch& kernel, bool execute) override {
    notify_kernel(kernel);
    // Real driver: hc::parallel_for_each(hc::extent<1>(threads),
    // [=](hc::index<1> i) restrict(amp) { body(i[0]); }).wait().
    if (execute) {
      if (kernel.body) {
        pool_.parallel_for(kernel.threads, kernel.body);
      } else if (kernel.range_body) {
        pool_.parallel_for_ranges(kernel.threads, kernel.range_body);
      }
    }
    return kernel_time_us(spec_, kernel.threads, kernel.cost);
  }

  double transfer(Dir dir, std::span<std::byte> dst, std::span<const std::byte> src,
                  std::int64_t bytes, bool execute) override {
    notify_transfer(dir, bytes);
    // Real driver: hc::copy / array_view synchronize() in `dir`.
    if (execute && !dst.empty() && !src.empty()) {
      std::memcpy(dst.data(), src.data(), std::min(dst.size(), src.size()));
    }
    return transfer_time_us(spec_, bytes, dir);
  }

 private:
  DeviceSpec spec_;
  ThreadPool& pool_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_hc_backend(const DeviceSpec& spec, ThreadPool& pool) {
  return std::make_unique<HcStubBackend>(spec, pool);
}

}  // namespace saclo::gpu
