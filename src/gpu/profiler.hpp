#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "gpu/stream.hpp"

namespace saclo::gpu {

/// Kind of a profiled operation — selects the section of the
/// nvprof-style report.
enum class OpKind { Kernel, MemcpyHtoD, MemcpyDtoH, Host };

/// Accumulates simulated times per named operation and renders them as
/// the nvprof-style tables the paper reports (Tables I and II). When
/// operations are scheduled through the stream timeline it also keeps
/// every per-op `{stream, start, end}` interval, from which it renders
/// a per-stream timeline/overlap report and a Chrome `trace_event`
/// JSON export.
class Profiler {
 public:
  /// Adds `us` microseconds and `calls` invocations to `name`
  /// (aggregate only — no interval).
  void record(const std::string& name, OpKind kind, std::int64_t calls, double us);

  /// Adds one scheduled occurrence of `name` with its placement on the
  /// stream timeline. Also accumulates into the aggregate row.
  void record_interval(const std::string& name, OpKind kind, StreamId stream, double start_us,
                       double end_us);

  /// Tags every subsequently recorded interval with a job's trace id
  /// and failover attempt (the serve dispatcher brackets each job run
  /// with set_trace/clear_trace). `batch` is the coalesced-batch id the
  /// job ran in (the first member's job id), 0 when unbatched. Three
  /// stores — no allocation, so the annotation is free on the dispatch
  /// hot path.
  void set_trace(std::uint64_t trace_id, std::uint32_t attempt, std::uint64_t batch = 0) {
    trace_id_ = trace_id;
    attempt_ = attempt;
    batch_ = batch;
  }
  void clear_trace() { set_trace(0, 0); }
  std::uint64_t current_trace() const { return trace_id_; }

  /// The execution backend this profiler's device runs on ("sim",
  /// "host", ...). VirtualGpu sets it at construction; traced intervals
  /// in the Chrome export carry it so a merged fleet trace shows which
  /// backend produced each span. Empty (the default) adds nothing.
  void set_backend_name(std::string name) { backend_name_ = std::move(name); }
  const std::string& backend_name() const { return backend_name_; }

  struct Row {
    std::string name;
    OpKind kind = OpKind::Kernel;
    std::int64_t calls = 0;
    double total_us = 0.0;
  };

  /// One scheduled occurrence of an operation on a stream. When a
  /// serving job was active (set_trace) the interval carries the job's
  /// trace id and failover attempt, so the fleet-merged Chrome trace
  /// can attribute every kernel/transfer to the request that caused it.
  struct Interval {
    std::string name;
    OpKind kind = OpKind::Kernel;
    StreamId stream = kDefaultStream;
    double start_us = 0.0;
    double end_us = 0.0;
    std::uint64_t trace_id = 0;  ///< owning job (0 = untraced)
    std::uint32_t attempt = 0;   ///< the job's failover hop
    std::uint64_t batch = 0;     ///< coalesced batch the job ran in (0 = unbatched)

    double duration_us() const { return end_us - start_us; }
  };

  /// Rows in first-recorded order.
  std::vector<Row> rows() const;
  double total_us() const;
  double total_us(OpKind kind) const;
  double us_for(const std::string& name) const;

  /// Scheduled intervals in issue order (empty when only aggregate
  /// records were made). NOT safe against a concurrent recorder — use
  /// intervals_snapshot() for that.
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// Copy of the intervals recorded so far, safe to take while another
  /// thread is still recording (the live /debug/trace endpoint
  /// snapshots every device's profiler mid-run). record_interval and
  /// this are the only members that take the lock: post-run readers
  /// keep their lock-free const accessors.
  std::vector<Interval> intervals_snapshot() const;

  /// Latest interval end (the simulated wall clock of the recorded
  /// schedule); 0 with no intervals.
  double makespan_us() const;
  /// Sum of interval durations on one stream.
  double stream_busy_us(StreamId stream) const;

  /// Overlap accounting over the recorded intervals.
  struct OverlapStats {
    double serialized_us = 0.0;       ///< sum of every interval duration
    double makespan_us = 0.0;         ///< wall clock of the schedule
    double transfer_us = 0.0;         ///< total H2D + D2H time
    double hidden_transfer_us = 0.0;  ///< transfer time overlapped with kernel execution
    double saved_us() const { return serialized_us - makespan_us; }
    double hidden_fraction() const {
      return transfer_us > 0.0 ? hidden_transfer_us / transfer_us : 0.0;
    }
  };
  OverlapStats overlap_stats() const;

  void clear();

  /// Renders the table in the layout of the paper's Table I/II:
  ///   Operation | #calls | GPU time(usec) | GPU time (%)
  /// with a total row in seconds.
  std::string table() const;

  /// Renders the per-stream timeline report: ops, busy time and span
  /// per stream, then the serialized-vs-makespan overlap summary.
  std::string timeline() const;

  /// Chrome `trace_event` JSON (load in chrome://tracing or Perfetto):
  /// one complete ("ph":"X") event per interval, tid = stream.
  std::string chrome_trace_json() const;

 private:
  std::vector<Row> rows_;
  std::map<std::string, std::size_t> index_;
  mutable std::mutex intervals_mutex_;  ///< recorder vs. live-snapshot only
  std::vector<Interval> intervals_;
  std::uint64_t trace_id_ = 0;
  std::uint32_t attempt_ = 0;
  std::uint64_t batch_ = 0;
  std::string backend_name_;
};

}  // namespace saclo::gpu
