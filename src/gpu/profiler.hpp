#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace saclo::gpu {

/// Kind of a profiled operation — selects the section of the
/// nvprof-style report.
enum class OpKind { Kernel, MemcpyHtoD, MemcpyDtoH, Host };

/// Accumulates simulated times per named operation and renders them as
/// the nvprof-style tables the paper reports (Tables I and II).
class Profiler {
 public:
  /// Adds `us` microseconds and `calls` invocations to `name`.
  void record(const std::string& name, OpKind kind, std::int64_t calls, double us);

  struct Row {
    std::string name;
    OpKind kind = OpKind::Kernel;
    std::int64_t calls = 0;
    double total_us = 0.0;
  };

  /// Rows in first-recorded order.
  std::vector<Row> rows() const;
  double total_us() const;
  double total_us(OpKind kind) const;
  double us_for(const std::string& name) const;

  void clear();

  /// Renders the table in the layout of the paper's Table I/II:
  ///   Operation | #calls | GPU time(usec) | GPU time (%)
  /// with a total row in seconds.
  std::string table() const;

 private:
  std::vector<Row> rows_;
  std::map<std::string, std::size_t> index_;
};

}  // namespace saclo::gpu
