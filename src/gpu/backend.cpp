#include "gpu/backend.hpp"

#include <chrono>
#include <cstring>

#include "gpu/executor.hpp"

namespace saclo::gpu {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - since)
      .count();
}

void copy_bytes(std::span<std::byte> dst, std::span<const std::byte> src) {
  if (!dst.empty() && !src.empty()) {
    std::memcpy(dst.data(), src.data(), std::min(dst.size(), src.size()));
  }
}

/// The analytic simulator: durations come from the calibrated cost
/// model, functional execution from the thread pool — the original
/// VirtualGpu behaviour, now one implementation among several.
class SimBackend : public ExecutionBackend {
 public:
  SimBackend(const DeviceSpec& spec, ThreadPool& pool) : spec_(spec), pool_(pool) {}

  BackendKind kind() const override { return BackendKind::Sim; }

  double launch_kernel(const KernelLaunch& kernel, bool execute) override {
    notify_kernel(kernel);
    if (execute) {
      if (kernel.body) {
        pool_.parallel_for(kernel.threads, kernel.body);
      } else if (kernel.range_body) {
        pool_.parallel_for_ranges(kernel.threads, kernel.range_body);
      }
    }
    return kernel_time_us(spec_, kernel.threads, kernel.cost);
  }

  double transfer(Dir dir, std::span<std::byte> dst, std::span<const std::byte> src,
                  std::int64_t bytes, bool execute) override {
    notify_transfer(dir, bytes);
    if (execute) copy_bytes(dst, src);
    return transfer_time_us(spec_, bytes, dir);
  }

 private:
  DeviceSpec spec_;
  ThreadPool& pool_;
};

/// The host-parallel backend: the same frame loops run for real on the
/// CPU. Kernel bodies execute through the thread pool — preferring the
/// SIMD-friendly range form, which hoists per-chunk scratch out of the
/// id loop and leaves a vectorisable gather/compute/scatter inner loop
/// — and executed operations are timed with the wall clock, so the
/// device timeline carries what the CPU actually did. Accounting-only
/// repetitions (execute=false) have no real work to measure and charge
/// the analytic model, exactly like the simulator; results stay
/// bit-exact against `sim` because the bodies and the copies are the
/// same computations in the same issue order.
class HostParallelBackend : public ExecutionBackend {
 public:
  HostParallelBackend(const DeviceSpec& spec, ThreadPool& pool) : spec_(spec), pool_(pool) {}

  BackendKind kind() const override { return BackendKind::Host; }

  double launch_kernel(const KernelLaunch& kernel, bool execute) override {
    notify_kernel(kernel);
    if (!execute || (!kernel.range_body && !kernel.body)) {
      return kernel_time_us(spec_, kernel.threads, kernel.cost);
    }
    const auto t0 = std::chrono::steady_clock::now();
    if (kernel.range_body) {
      pool_.parallel_for_ranges(kernel.threads, kernel.range_body);
    } else {
      pool_.parallel_for(kernel.threads, kernel.body);
    }
    return elapsed_us(t0);
  }

  double transfer(Dir dir, std::span<std::byte> dst, std::span<const std::byte> src,
                  std::int64_t bytes, bool execute) override {
    notify_transfer(dir, bytes);
    if (!execute || dst.empty()) {
      return transfer_time_us(spec_, bytes, dir);
    }
    const auto t0 = std::chrono::steady_clock::now();
    copy_bytes(dst, src);
    return elapsed_us(t0);
  }

 private:
  DeviceSpec spec_;
  ThreadPool& pool_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const DeviceSpec& spec,
                                               ThreadPool& pool) {
  switch (kind) {
    case BackendKind::Sim:
      return std::make_unique<SimBackend>(spec, pool);
    case BackendKind::Host:
      return std::make_unique<HostParallelBackend>(spec, pool);
    case BackendKind::OpenCl:
#ifdef SACLO_BACKEND_OPENCL
      return make_opencl_backend(spec, pool);
#else
      throw BackendError(
          "this build has no OpenCL backend (configure with -DSACLO_BACKEND_OPENCL=ON)");
#endif
    case BackendKind::Hc:
#ifdef SACLO_BACKEND_HC
      return make_hc_backend(spec, pool);
#else
      throw BackendError("this build has no HC backend (configure with -DSACLO_BACKEND_HC=ON)");
#endif
  }
  throw BackendError("unknown BackendKind");
}

std::vector<BackendKind> available_backends() {
  std::vector<BackendKind> kinds{BackendKind::Sim, BackendKind::Host};
#ifdef SACLO_BACKEND_OPENCL
  kinds.push_back(BackendKind::OpenCl);
#endif
#ifdef SACLO_BACKEND_HC
  kinds.push_back(BackendKind::Hc);
#endif
  return kinds;
}

}  // namespace saclo::gpu
