#include "gpu/executor.hpp"

#include <algorithm>

namespace saclo::gpu {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  // The calling thread participates, so spawn workers-1 helpers.
  for (unsigned i = 1; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (stopping_ && pending_.empty()) return;
      task = pending_.back();
      pending_.pop_back();
    }
    try {
      (*task.fn)(task.begin, task.end);
    } catch (...) {
      std::lock_guard lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      --outstanding_;
    }
    work_done_.notify_all();
  }
}

void ThreadPool::parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  // The per-id form is the range form with a trivial inner loop.
  const std::function<void(std::int64_t, std::int64_t)> range =
      [&fn](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) fn(i);
      };
  parallel_for_ranges(n, range);
}

void ThreadPool::parallel_for_ranges(std::int64_t n,
                                     const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) return;
  const std::int64_t workers = static_cast<std::int64_t>(worker_count());
  if (workers == 1 || n < 2 * workers) {
    fn(0, n);
    return;
  }
  const std::int64_t chunk = (n + workers - 1) / workers;
  const std::int64_t caller_end = std::min(chunk, n);  // the caller runs the first chunk itself
  {
    std::lock_guard lock(mutex_);
    for (std::int64_t begin = chunk; begin < n; begin += chunk) {
      pending_.push_back(Task{begin, std::min(begin + chunk, n), &fn});
      ++outstanding_;
    }
  }
  work_ready_.notify_all();
  // The caller's own chunk must not unwind past the wait below: pending
  // tasks hold a pointer to `fn`, so leaving early would dangle it.
  try {
    fn(0, caller_end);
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  {
    std::unique_lock lock(mutex_);
    work_done_.wait(lock, [this] { return outstanding_ == 0; });
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }
}

}  // namespace saclo::gpu
