#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gpu/backend_kind.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/memory.hpp"
#include "gpu/stream.hpp"

namespace saclo::gpu {

class ThreadPool;

/// A kernel ready to launch: a name (for profiling), a 1-D thread count
/// (grids are linearised by the code generators, which matches how both
/// generated-code styles compute a global id), a static cost descriptor,
/// and the functional body.
struct KernelLaunch {
  std::string name;
  std::int64_t threads = 0;
  KernelCost cost;
  /// The body receives the global thread id. It must be safe to call
  /// concurrently for distinct ids (single-assignment output, as both
  /// source languages guarantee).
  std::function<void(std::int64_t)> body;
  /// Optional range form of the body: processes every id in
  /// [begin, end) with a tight inner loop. Backends that execute for
  /// real (host) prefer this — per-chunk scratch setup is hoisted out
  /// of the id loop and the loop itself is vectorisable — while the
  /// simulator keeps calling `body` per id. Must compute exactly what
  /// `body` computes for each id.
  std::function<void(std::int64_t, std::int64_t)> range_body;
  /// Device buffers the kernel reads/writes — the data hazards that
  /// order it against operations on other streams. Empty lists mean no
  /// cross-stream constraints (single-stream issue stays correct via
  /// stream order alone).
  std::vector<BufferHandle> reads;
  std::vector<BufferHandle> writes;
};

/// Notified exactly once at each operation boundary a backend processes,
/// *before* any work of the operation happens. VirtualGpu installs an
/// adapter that drives the fault injector from these callbacks, which is
/// what guarantees injected faults fire at the same kernel/transfer
/// boundaries on every backend — the backend-conformance suite locks
/// this contract down.
class OpBoundaryObserver {
 public:
  virtual ~OpBoundaryObserver() = default;
  virtual void on_kernel_boundary(const KernelLaunch& kernel) = 0;
  virtual void on_transfer_boundary(Dir dir, std::int64_t bytes) = 0;
};

/// Where the work of a VirtualGpu actually happens: the kernel-launch,
/// transfer, stream and allocation entry points extracted from the
/// original simulator, so `sim` is just one implementation.
///
/// Contract every backend must honour (see backend_test.cpp):
///  - launch_kernel / transfer notify the boundary observer exactly
///    once, before any side effect, and let its exceptions (injected
///    DeviceFaults) escape without running the operation — fail-stop.
///  - with execute=true the data really moves / the body really runs
///    (bit-exact results across backends); with execute=false only a
///    duration is returned (simulated repetition of an identical op).
///  - the returned duration is microseconds on the device timeline:
///    analytic model time for `sim`, measured wall time for `host`.
class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_kind_name(kind()); }

  /// The fault-boundary hook. VirtualGpu installs its adapter at
  /// construction; nullptr (the default) makes boundaries free.
  void set_boundary_observer(OpBoundaryObserver* observer) { observer_ = observer; }
  OpBoundaryObserver* boundary_observer() const { return observer_; }

  /// Kernel-launch entry point; returns the launch's duration in
  /// microseconds.
  virtual double launch_kernel(const KernelLaunch& kernel, bool execute) = 0;

  /// Transfer entry point for *accounted* PCIe traffic (silent
  /// device-resident handoffs never reach the backend). `dst`/`src` are
  /// empty for accounting-only repetitions; otherwise they are the
  /// destination and source bytes of the copy (`bytes` always holds the
  /// logical transfer size). Returns the transfer's duration.
  virtual double transfer(Dir dir, std::span<std::byte> dst, std::span<const std::byte> src,
                          std::int64_t bytes, bool execute) = 0;

  /// Host-stage entry point (tiler loops, glue code between kernels).
  /// The functional work of host stages runs in the interpreter, not
  /// here; backends only decide what the stage costs on the timeline.
  virtual double host_stage(double modeled_us) { return modeled_us; }

  /// Stream entry point: a real runtime backend creates its command
  /// queue / stream object here. The simulated timeline itself is owned
  /// by VirtualGpu on every backend.
  virtual void on_stream_created(StreamId stream) { (void)stream; }

  /// Allocation entry point: backends with their own device-resident
  /// storage return the allocator buffers must come from; nullptr (the
  /// default) keeps VirtualGpu on its host-backed DeviceMemoryPool,
  /// which is what lets kernels execute functionally.
  virtual BufferAllocator* device_allocator() { return nullptr; }

 protected:
  /// Backend implementations call these exactly once per operation,
  /// before doing any work.
  void notify_kernel(const KernelLaunch& kernel) {
    if (observer_ != nullptr) observer_->on_kernel_boundary(kernel);
  }
  void notify_transfer(Dir dir, std::int64_t bytes) {
    if (observer_ != nullptr) observer_->on_transfer_boundary(dir, bytes);
  }

 private:
  OpBoundaryObserver* observer_ = nullptr;
};

/// Creates a backend of `kind` executing against `spec`, using `pool`
/// for functional kernel execution. The pool must outlive the backend.
/// Throws BackendError for a kind this build does not provide (the
/// OpenCL/HC stubs are behind -DSACLO_BACKEND_OPENCL / -DSACLO_BACKEND_HC).
std::unique_ptr<ExecutionBackend> make_backend(BackendKind kind, const DeviceSpec& spec,
                                               ThreadPool& pool);

/// The backends this build can construct, in BackendKind order. Always
/// contains Sim and Host; OpenCl/Hc appear when compiled in.
std::vector<BackendKind> available_backends();

#ifdef SACLO_BACKEND_OPENCL
std::unique_ptr<ExecutionBackend> make_opencl_backend(const DeviceSpec& spec, ThreadPool& pool);
#endif
#ifdef SACLO_BACKEND_HC
std::unique_ptr<ExecutionBackend> make_hc_backend(const DeviceSpec& spec, ThreadPool& pool);
#endif

}  // namespace saclo::gpu
