#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace saclo::gpu {

/// A fixed-size worker pool used for the *functional* execution of
/// simulated kernels: every launched kernel body really runs, once per
/// thread index, so results are bit-exact regardless of the timing
/// model.
///
/// parallel_for partitions [0, n) into per-worker chunks. Worker count
/// defaults to the host's hardware concurrency; on a single-core host
/// the pool degenerates to serial execution, which is still correct —
/// simulated GPU time is produced by the cost model, not by wall-clock.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const { return static_cast<unsigned>(threads_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n), partitioned across workers.
  /// Blocks until all iterations complete. Exceptions from fn propagate
  /// to the caller (first one wins).
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// Range form: each worker receives one contiguous chunk [begin, end)
  /// and fn is invoked once per chunk. The host-parallel backend's
  /// entry point for SIMD-friendly kernel bodies — per-chunk scratch is
  /// set up once and the id loop inside fn is the compiler's to
  /// vectorise. Same blocking and exception semantics as parallel_for.
  void parallel_for_ranges(std::int64_t n,
                           const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  struct Task {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> pending_;
  std::size_t outstanding_ = 0;
  std::exception_ptr error_;
  bool stopping_ = false;
};

}  // namespace saclo::gpu
