#include "gpu/device.hpp"

namespace saclo::gpu {

DeviceSpec gtx480() {
  DeviceSpec d;
  d.name = "NVIDIA GTX480 (Fermi, simulated)";
  return d;
}

DeviceSpec gtx280() {
  DeviceSpec d;
  d.name = "NVIDIA GTX280 (GT200, simulated)";
  d.sm_count = 30;
  d.cores_per_sm = 8;
  d.clock_ghz = 1.3;
  d.max_resident_threads_per_sm = 1024;
  d.global_mem_bytes = 1.0e9;
  d.mem_bandwidth_gbs = 140.0;
  d.max_stride_penalty = 16.0;  // no L2 cache to absorb strided access
  d.pcie_h2d_gbs = 3.0;
  d.pcie_d2h_gbs = 3.0;
  return d;
}

DeviceSpec bigger_fermi() {
  DeviceSpec d;
  d.name = "2x-Fermi (hypothetical, simulated)";
  d.sm_count = 30;
  d.mem_bandwidth_gbs = 340.0;
  d.global_mem_bytes = 3.0e9;
  d.name += "";
  return d;
}

HostSpec i7_930() {
  HostSpec h;
  h.name = "Intel i7-930 @ 2.8GHz (simulated)";
  return h;
}

}  // namespace saclo::gpu
