// Stub OpenCL execution backend, compiled only with
// -DSACLO_BACKEND_OPENCL=ON. No OpenCL toolchain is assumed: every
// entry point is mapped onto the name of the clEnqueue* call a real
// driver would issue, with the functional execution and timing
// delegated to the portable path so the stub stays buildable and
// testable anywhere. Dropping in a real driver means replacing the
// bodies of launch_kernel/transfer/on_stream_created with
// clEnqueueNDRangeKernel / clEnqueueWriteBuffer / clCreateCommandQueue
// against the handles this class already threads through.

#include <cstring>

#include "gpu/backend.hpp"
#include "gpu/executor.hpp"

namespace saclo::gpu {

namespace {

class OpenClStubBackend : public ExecutionBackend {
 public:
  OpenClStubBackend(const DeviceSpec& spec, ThreadPool& pool) : spec_(spec), pool_(pool) {}

  BackendKind kind() const override { return BackendKind::OpenCl; }

  double launch_kernel(const KernelLaunch& kernel, bool execute) override {
    notify_kernel(kernel);
    // Real driver: clSetKernelArg per bound buffer, then
    // clEnqueueNDRangeKernel(queue, kernel, 1, nullptr, &global, ...).
    if (execute) {
      if (kernel.body) {
        pool_.parallel_for(kernel.threads, kernel.body);
      } else if (kernel.range_body) {
        pool_.parallel_for_ranges(kernel.threads, kernel.range_body);
      }
    }
    return kernel_time_us(spec_, kernel.threads, kernel.cost);
  }

  double transfer(Dir dir, std::span<std::byte> dst, std::span<const std::byte> src,
                  std::int64_t bytes, bool execute) override {
    notify_transfer(dir, bytes);
    // Real driver: clEnqueueWriteBuffer (H2D) / clEnqueueReadBuffer
    // (D2H) with blocking=CL_FALSE on the queue bound to the stream.
    if (execute && !dst.empty() && !src.empty()) {
      std::memcpy(dst.data(), src.data(), std::min(dst.size(), src.size()));
    }
    return transfer_time_us(spec_, bytes, dir);
  }

  void on_stream_created(StreamId stream) override {
    // Real driver: clCreateCommandQueueWithProperties, keyed by stream.
    (void)stream;
  }

 private:
  DeviceSpec spec_;
  ThreadPool& pool_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> make_opencl_backend(const DeviceSpec& spec, ThreadPool& pool) {
  return std::make_unique<OpenClStubBackend>(spec, pool);
}

}  // namespace saclo::gpu
