#pragma once

#include <string>

#include "core/error.hpp"

namespace saclo::gpu {

/// Raised on unknown backend names or use of a backend this build does
/// not provide (the OpenCL/HC stubs are compile-guarded).
class BackendError : public Error {
 public:
  using Error::Error;
};

/// The execution backends a VirtualGpu can delegate to. `Sim` is the
/// analytic simulator (the original behaviour); `Host` executes frame
/// loops for real on the CPU; `OpenCl`/`Hc` are compile-guarded stubs
/// that map the same entry points onto a real runtime's vocabulary.
///
/// This header is dependency-light on purpose: the obs event log and the
/// serve options tag things with a BackendKind without pulling in the
/// whole executor stack.
enum class BackendKind : std::uint8_t { Sim = 0, Host = 1, OpenCl = 2, Hc = 3 };

inline const char* backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::Sim:
      return "sim";
    case BackendKind::Host:
      return "host";
    case BackendKind::OpenCl:
      return "opencl";
    case BackendKind::Hc:
      return "hc";
  }
  return "unknown";
}

/// Parses "sim" / "host" / "opencl" / "hc"; throws BackendError on
/// anything else. Whether the parsed backend is actually available in
/// this build is checked at construction (make_backend).
inline BackendKind parse_backend_kind(const std::string& name) {
  if (name == "sim") return BackendKind::Sim;
  if (name == "host") return BackendKind::Host;
  if (name == "opencl") return BackendKind::OpenCl;
  if (name == "hc") return BackendKind::Hc;
  throw BackendError("unknown execution backend '" + name +
                     "' (expected sim, host, opencl or hc)");
}

}  // namespace saclo::gpu
