#include "gpu/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace saclo::gpu {

double kernel_time_us(const DeviceSpec& dev, std::int64_t threads, const KernelCost& cost) {
  if (threads <= 0) return dev.kernel_launch_overhead_us;

  // Wave quantisation: a launch smaller than one resident wave still
  // occupies the machine for a full (short) wave; larger launches
  // pipeline, so we use the exact thread count.
  const double resident = static_cast<double>(dev.max_resident_threads());
  const double effective_threads =
      threads < resident ? std::max<double>(static_cast<double>(threads), resident * 0.05)
                         : static_cast<double>(threads);

  const double compute_us = effective_threads * cost.flops_per_thread /
                            (dev.peak_gflops() * 1e3);  // GFLOP/s -> ops/us

  const double penalty = std::clamp<double>(static_cast<double>(cost.warp_access_stride), 1.0,
                                            dev.max_stride_penalty);
  const double useful_bytes = effective_threads *
                              (cost.global_loads_per_thread + cost.global_stores_per_thread) *
                              cost.bytes_per_access;
  const double mem_us = useful_bytes * penalty / (dev.mem_bandwidth_gbs * 1e3);  // GB/s -> B/us

  return dev.kernel_launch_overhead_us + std::max(compute_us, mem_us);
}

double transfer_time_us(const DeviceSpec& dev, std::int64_t bytes, Dir dir) {
  const double gbs = dir == Dir::HostToDevice ? dev.pcie_h2d_gbs : dev.pcie_d2h_gbs;
  return dev.pcie_latency_us + static_cast<double>(bytes) / (gbs * 1e3);
}

}  // namespace saclo::gpu
