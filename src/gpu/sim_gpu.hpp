#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/backend.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/executor.hpp"
#include "gpu/memory.hpp"
#include "gpu/profiler.hpp"
#include "gpu/stream.hpp"

namespace saclo::fault {
class FaultInjector;
}  // namespace saclo::fault

namespace saclo::gpu {

/// The virtual GPU: device memory + a pluggable execution backend + the
/// analytic multi-stream clock + profiler.
///
/// The backend (see gpu/backend.hpp) owns what an operation *does* and
/// what it costs: `sim` (the default) runs kernel bodies functionally
/// and charges the calibrated cost model; `host` runs the same bodies
/// and charges measured wall time. VirtualGpu keeps everything
/// backend-independent — memory pool, stream timeline, profiling, fault
/// boundaries — so results are bit-exact across backends by
/// construction.
///
/// Every operation takes an `execute` flag: with execute=true the data
/// movement / kernel body really runs (bit-exact results); with
/// execute=false only time is accrued. Pipelines use this to validate a
/// few frames functionally and then account the remaining repetitions
/// of an identical-cost operation without re-running them.
///
/// Operations land on a stream (default: stream 0). Functional
/// execution always happens immediately in issue order — only the
/// simulated timeline overlaps — so results are bit-exact regardless of
/// the stream assignment, provided the issue order itself respects data
/// dependences (it is the program order of the pipeline).
class VirtualGpu : private OpBoundaryObserver {
 public:
  explicit VirtualGpu(DeviceSpec spec, unsigned workers = 0,
                      BackendKind backend = BackendKind::Sim);
  ~VirtualGpu() override;

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemoryPool& memory() { return memory_; }
  /// The execution backend every kernel launch and accounted transfer
  /// routes through.
  ExecutionBackend& backend() { return *backend_; }
  BackendKind backend_kind() const { return backend_->kind(); }
  const char* backend_name() const { return backend_->name(); }
  /// The allocator buffer creation routes through: an installed caching
  /// layer (serve's CachingDeviceAllocator) first, then the backend's
  /// own device storage if it has one, then the host-backed memory
  /// pool. Install with nullptr to restore the default chain.
  BufferAllocator& allocator() {
    if (allocator_ != nullptr) return *allocator_;
    if (BufferAllocator* dev = backend_->device_allocator(); dev != nullptr) return *dev;
    return memory_;
  }
  void set_allocator(BufferAllocator* allocator) { allocator_ = allocator; }
  /// Installs a fault injector the device consults before every kernel
  /// launch and accounted transfer (fail-stop: a faulted operation does
  /// not run and accrues no simulated time). nullptr uninstalls —
  /// that's also the default, so the fault machinery costs nothing when
  /// unused. The injector must outlive the device or be uninstalled.
  /// Faults fire from the backend's op-boundary callbacks, so the
  /// boundaries are identical on every backend.
  void set_fault_injector(fault::FaultInjector* injector) { fault_ = injector; }
  fault::FaultInjector* fault_injector() const { return fault_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  /// Brackets one serving job's execution on this device: every kernel,
  /// transfer and host block profiled in between carries the job's
  /// trace id, failover attempt and (when coalesced) batch id, which is
  /// what lets the fleet-merged Chrome trace reconstruct a request
  /// across devices. Plain stores — zero allocations, so an untraced
  /// dispatch path pays nothing.
  void begin_job_trace(std::uint64_t trace_id, std::uint32_t attempt, std::uint64_t batch = 0) {
    profiler_.set_trace(trace_id, attempt, batch);
  }
  void end_job_trace() { profiler_.clear_trace(); }
  ThreadPool& thread_pool() { return pool_; }
  const Timeline& timeline() const { return timeline_; }

  /// Simulated wall clock: the makespan over all streams. With every
  /// operation on the default stream this equals the serialized sum of
  /// op times (the pre-stream behaviour).
  double clock_us() const { return timeline_.makespan_us(); }
  /// Current tail of one stream's timeline.
  double stream_tail_us(StreamId stream) const { return timeline_.tail_us(stream); }

  /// Creates a new stream (cudaStreamCreate / clCreateCommandQueue).
  StreamId create_stream() {
    const StreamId s = timeline_.create_stream();
    backend_->on_stream_created(s);
    return s;
  }
  /// Captures the tail of `stream` as an event (cudaEventRecord).
  EventId record_event(StreamId stream) { return timeline_.record_event(stream); }
  /// Orders `stream` after `event` (cudaStreamWaitEvent).
  void wait_event(StreamId stream, EventId event) { timeline_.wait_event(stream, event); }
  /// Pushes the tail of `stream` to at least `time_us`.
  void wait_until(StreamId stream, double time_us) { timeline_.wait_until(stream, time_us); }
  /// Device-wide barrier: every stream's tail reaches the makespan.
  void synchronize() { timeline_.synchronize(); }

  BufferHandle alloc(std::int64_t bytes) { return allocator().allocate(bytes); }
  void free(BufferHandle h) { allocator().free(h); }

  /// Host-to-device copy. `op` is the profiler row name (e.g. the
  /// CUDA-style "memcpyHtoDasync"). With account=false the copy happens
  /// (when execute) but no simulated time is recorded — used for data
  /// that conceptually never crosses PCIe (device-resident
  /// intermediates handed between separately compiled programs).
  void copy_h2d(BufferHandle dst, std::span<const std::byte> src, const std::string& op,
                bool execute, bool account = true, StreamId stream = kDefaultStream);
  /// Device-to-host copy.
  void copy_d2h(std::span<std::byte> dst, BufferHandle src, const std::string& op, bool execute,
                bool account = true, StreamId stream = kDefaultStream);

  /// Accrues transfer time without moving data (simulated repetition).
  /// `touched` is the device buffer the transfer writes (H2D) or reads
  /// (D2H) — its data hazard; pass an invalid handle for none.
  void account_transfer(std::int64_t bytes, Dir dir, const std::string& op,
                        StreamId stream = kDefaultStream, BufferHandle touched = {});

  /// Launches a kernel; returns its duration in microseconds.
  double launch(const KernelLaunch& kernel, bool execute, StreamId stream = kDefaultStream);

  /// Accrues the time of a kernel launch without running the body.
  double account_launch(const KernelLaunch& kernel, StreamId stream = kDefaultStream) {
    return launch_impl(kernel, false, stream);
  }

  /// Schedules `us` microseconds of host-side work (a tiler loop, glue
  /// code) on `stream` — a host timeline interleaved with the device
  /// streams, so host stages take part in the makespan. Returns the
  /// scheduled end time.
  double run_host(const std::string& op, double us, StreamId stream);

 private:
  double launch_impl(const KernelLaunch& kernel, bool execute, StreamId stream);

  // The backend's op-boundary callbacks, fired exactly once before each
  // kernel launch / accounted transfer — where the fault injector hooks
  // in, on every backend alike.
  void on_kernel_boundary(const KernelLaunch& kernel) override;
  void on_transfer_boundary(Dir dir, std::int64_t bytes) override;

  DeviceSpec spec_;
  DeviceMemoryPool memory_;
  BufferAllocator* allocator_ = nullptr;
  fault::FaultInjector* fault_ = nullptr;
  ThreadPool pool_;
  // Declared after pool_: the backend holds a reference to the pool and
  // must be destroyed first.
  std::unique_ptr<ExecutionBackend> backend_;
  Profiler profiler_;
  Timeline timeline_;
};

}  // namespace saclo::gpu
