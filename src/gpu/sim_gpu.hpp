#pragma once

#include <functional>
#include <string>

#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/executor.hpp"
#include "gpu/memory.hpp"
#include "gpu/profiler.hpp"

namespace saclo::gpu {

/// A kernel ready to launch on the simulator: a name (for profiling), a
/// 1-D thread count (grids are linearised by the code generators, which
/// matches how both generated-code styles compute a global id), a
/// static cost descriptor, and the functional body.
struct KernelLaunch {
  std::string name;
  std::int64_t threads = 0;
  KernelCost cost;
  /// The body receives the global thread id. It must be safe to call
  /// concurrently for distinct ids (single-assignment output, as both
  /// source languages guarantee).
  std::function<void(std::int64_t)> body;
};

/// The simulated GPU: device memory + functional executor + analytic
/// clock + profiler.
///
/// Every operation takes an `execute` flag: with execute=true the data
/// movement / kernel body really runs (bit-exact results); with
/// execute=false only simulated time is accrued. Pipelines use this to
/// validate a few frames functionally and then account the remaining
/// repetitions of an identical-cost operation without re-running them.
class VirtualGpu {
 public:
  explicit VirtualGpu(DeviceSpec spec, unsigned workers = 0)
      : spec_(std::move(spec)),
        memory_(static_cast<std::int64_t>(spec_.global_mem_bytes)),
        pool_(workers) {}

  const DeviceSpec& spec() const { return spec_; }
  DeviceMemoryPool& memory() { return memory_; }
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }
  ThreadPool& thread_pool() { return pool_; }

  /// Total simulated time accrued so far (all ops), microseconds.
  double clock_us() const { return profiler_.total_us(); }

  BufferHandle alloc(std::int64_t bytes) { return memory_.allocate(bytes); }
  void free(BufferHandle h) { memory_.free(h); }

  /// Host-to-device copy. `op` is the profiler row name (e.g. the
  /// CUDA-style "memcpyHtoDasync"). With account=false the copy happens
  /// (when execute) but no simulated time is recorded — used for data
  /// that conceptually never crosses PCIe (device-resident
  /// intermediates handed between separately compiled programs).
  void copy_h2d(BufferHandle dst, std::span<const std::byte> src, const std::string& op,
                bool execute, bool account = true);
  /// Device-to-host copy.
  void copy_d2h(std::span<std::byte> dst, BufferHandle src, const std::string& op, bool execute,
                bool account = true);

  /// Accrues transfer time without moving data (simulated repetition).
  void account_transfer(std::int64_t bytes, Dir dir, const std::string& op);

  /// Launches a kernel; returns its simulated duration in microseconds.
  double launch(const KernelLaunch& kernel, bool execute);

  /// Accrues the time of a kernel launch without running the body.
  double account_launch(const KernelLaunch& kernel) { return launch_impl(kernel, false); }

 private:
  double launch_impl(const KernelLaunch& kernel, bool execute);

  DeviceSpec spec_;
  DeviceMemoryPool memory_;
  ThreadPool pool_;
  Profiler profiler_;
};

}  // namespace saclo::gpu
