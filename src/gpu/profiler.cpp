#include "gpu/profiler.hpp"

#include <cmath>

#include "core/fmt.hpp"

namespace saclo::gpu {

void Profiler::record(const std::string& name, OpKind kind, std::int64_t calls, double us) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    index_.emplace(name, rows_.size());
    rows_.push_back(Row{name, kind, calls, us});
    return;
  }
  Row& row = rows_[it->second];
  row.calls += calls;
  row.total_us += us;
}

std::vector<Profiler::Row> Profiler::rows() const { return rows_; }

double Profiler::total_us() const {
  double t = 0.0;
  for (const Row& r : rows_) t += r.total_us;
  return t;
}

double Profiler::total_us(OpKind kind) const {
  double t = 0.0;
  for (const Row& r : rows_) {
    if (r.kind == kind) t += r.total_us;
  }
  return t;
}

double Profiler::us_for(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : rows_[it->second].total_us;
}

void Profiler::clear() {
  rows_.clear();
  index_.clear();
}

std::string Profiler::table() const {
  const double total = total_us();
  std::string out;
  out += pad_right("Operation", 28) + pad_left("#calls", 8) + pad_left("GPU time(usec)", 16) +
         pad_left("GPU time (%)", 14) + "\n";
  out += std::string(66, '-') + "\n";
  for (const Row& r : rows_) {
    out += pad_right(r.name, 28) + pad_left(std::to_string(r.calls), 8) +
           pad_left(std::to_string(static_cast<std::int64_t>(std::llround(r.total_us))), 16) +
           pad_left(fixed(total > 0 ? 100.0 * r.total_us / total : 0.0, 2), 14) + "\n";
  }
  out += std::string(66, '-') + "\n";
  out += pad_right("Total", 28) + pad_left("-", 8) + pad_left(fixed(total / 1e6, 2) + "sec", 16) +
         pad_left("100.00", 14) + "\n";
  return out;
}

}  // namespace saclo::gpu
