#include "gpu/profiler.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/fmt.hpp"

namespace saclo::gpu {

void Profiler::record(const std::string& name, OpKind kind, std::int64_t calls, double us) {
  auto it = index_.find(name);
  if (it == index_.end()) {
    index_.emplace(name, rows_.size());
    rows_.push_back(Row{name, kind, calls, us});
    return;
  }
  Row& row = rows_[it->second];
  row.calls += calls;
  row.total_us += us;
}

void Profiler::record_interval(const std::string& name, OpKind kind, StreamId stream,
                               double start_us, double end_us) {
  record(name, kind, 1, end_us - start_us);
  std::lock_guard<std::mutex> lock(intervals_mutex_);
  intervals_.push_back(Interval{name, kind, stream, start_us, end_us, trace_id_, attempt_, batch_});
}

std::vector<Profiler::Interval> Profiler::intervals_snapshot() const {
  std::lock_guard<std::mutex> lock(intervals_mutex_);
  return intervals_;
}

std::vector<Profiler::Row> Profiler::rows() const { return rows_; }

double Profiler::total_us() const {
  double t = 0.0;
  for (const Row& r : rows_) t += r.total_us;
  return t;
}

double Profiler::total_us(OpKind kind) const {
  double t = 0.0;
  for (const Row& r : rows_) {
    if (r.kind == kind) t += r.total_us;
  }
  return t;
}

double Profiler::us_for(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0.0 : rows_[it->second].total_us;
}

double Profiler::makespan_us() const {
  double m = 0.0;
  for (const Interval& i : intervals_) m = std::max(m, i.end_us);
  return m;
}

double Profiler::stream_busy_us(StreamId stream) const {
  double t = 0.0;
  for (const Interval& i : intervals_) {
    if (i.stream == stream) t += i.duration_us();
  }
  return t;
}

Profiler::OverlapStats Profiler::overlap_stats() const {
  OverlapStats s;
  s.makespan_us = makespan_us();
  // Merge the kernel intervals into a disjoint union, then intersect
  // every transfer interval with it. Ops on the same stream never
  // overlap, so no same-stream exclusion is needed.
  std::vector<Interval> kernels;
  for (const Interval& i : intervals_) {
    s.serialized_us += i.duration_us();
    if (i.kind == OpKind::MemcpyHtoD || i.kind == OpKind::MemcpyDtoH) {
      s.transfer_us += i.duration_us();
    } else if (i.kind == OpKind::Kernel) {
      kernels.push_back(i);
    }
  }
  std::sort(kernels.begin(), kernels.end(),
            [](const Interval& a, const Interval& b) { return a.start_us < b.start_us; });
  std::vector<std::pair<double, double>> merged;
  for (const Interval& k : kernels) {
    if (!merged.empty() && k.start_us <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, k.end_us);
    } else {
      merged.emplace_back(k.start_us, k.end_us);
    }
  }
  for (const Interval& i : intervals_) {
    if (i.kind != OpKind::MemcpyHtoD && i.kind != OpKind::MemcpyDtoH) continue;
    for (const auto& [b, e] : merged) {
      if (e <= i.start_us) continue;
      if (b >= i.end_us) break;
      s.hidden_transfer_us += std::min(e, i.end_us) - std::max(b, i.start_us);
    }
  }
  return s;
}

void Profiler::clear() {
  rows_.clear();
  index_.clear();
  intervals_.clear();
}

std::string Profiler::table() const {
  const double total = total_us();
  std::string out;
  out += pad_right("Operation", 28) + pad_left("#calls", 8) + pad_left("GPU time(usec)", 16) +
         pad_left("GPU time (%)", 14) + "\n";
  out += std::string(66, '-') + "\n";
  for (const Row& r : rows_) {
    out += pad_right(r.name, 28) + pad_left(std::to_string(r.calls), 8) +
           pad_left(std::to_string(static_cast<std::int64_t>(std::llround(r.total_us))), 16) +
           pad_left(fixed(total > 0 ? 100.0 * r.total_us / total : 0.0, 2), 14) + "\n";
  }
  out += std::string(66, '-') + "\n";
  out += pad_right("Total", 28) + pad_left("-", 8) + pad_left(fixed(total / 1e6, 2) + "sec", 16) +
         pad_left("100.00", 14) + "\n";
  return out;
}

std::string Profiler::timeline() const {
  std::string out;
  out += pad_right("Stream", 10) + pad_left("#ops", 8) + pad_left("busy(usec)", 14) +
         pad_left("first(usec)", 14) + pad_left("last(usec)", 14) + "\n";
  out += std::string(60, '-') + "\n";
  std::set<StreamId> streams;
  for (const Interval& i : intervals_) streams.insert(i.stream);
  for (StreamId s : streams) {
    std::int64_t ops = 0;
    double busy = 0.0;
    double first = 0.0;
    double last = 0.0;
    bool any = false;
    for (const Interval& i : intervals_) {
      if (i.stream != s) continue;
      ++ops;
      busy += i.duration_us();
      if (!any || i.start_us < first) first = i.start_us;
      last = std::max(last, i.end_us);
      any = true;
    }
    out += pad_right(cat("stream ", s), 10) + pad_left(std::to_string(ops), 8) +
           pad_left(fixed(busy, 0), 14) + pad_left(fixed(first, 0), 14) +
           pad_left(fixed(last, 0), 14) + "\n";
  }
  out += std::string(60, '-') + "\n";
  const OverlapStats st = overlap_stats();
  out += cat("serialized ", fixed(st.serialized_us / 1e6, 3), "sec   makespan ",
             fixed(st.makespan_us / 1e6, 3), "sec   saved ", fixed(st.saved_us() / 1e6, 3),
             "sec\n");
  out += cat("transfers ", fixed(st.transfer_us / 1e6, 3), "sec, hidden behind kernels ",
             fixed(st.hidden_transfer_us / 1e6, 3), "sec (",
             fixed(100.0 * st.hidden_fraction(), 1), "%)\n");
  return out;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
  }
  return out;
}

const char* category_of(OpKind kind) {
  switch (kind) {
    case OpKind::Kernel:
      return "kernel";
    case OpKind::MemcpyHtoD:
      return "memcpy_h2d";
    case OpKind::MemcpyDtoH:
      return "memcpy_d2h";
    case OpKind::Host:
      return "host";
  }
  return "op";
}

}  // namespace

std::string Profiler::chrome_trace_json() const {
  // The trace_event "JSON Array Format": ts/dur are microseconds, which
  // is exactly the simulator's unit. tid = stream.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  std::set<StreamId> streams;
  for (const Interval& i : intervals_) streams.insert(i.stream);
  bool first = true;
  for (StreamId s : streams) {
    if (!first) out += ",";
    first = false;
    out += cat("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":", s,
               ",\"args\":{\"name\":\"stream ", s, "\"}}");
  }
  for (const Interval& i : intervals_) {
    if (!first) out += ",";
    first = false;
    out += cat("{\"name\":\"", json_escape(i.name), "\",\"cat\":\"", category_of(i.kind),
               "\",\"ph\":\"X\",\"pid\":0,\"tid\":", i.stream, ",\"ts\":", fixed(i.start_us, 3),
               ",\"dur\":", fixed(i.duration_us(), 3));
    // Traced intervals (serve jobs) carry their owner, so a device dump
    // stays attributable even outside the merged fleet trace.
    if (i.trace_id != 0) {
      out += cat(",\"args\":{\"job\":", i.trace_id, ",\"attempt\":", i.attempt);
      if (i.batch != 0) out += cat(",\"batch\":", i.batch);
      if (!backend_name_.empty()) out += cat(",\"backend\":\"", backend_name_, "\"");
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace saclo::gpu
