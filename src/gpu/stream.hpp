#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/error.hpp"
#include "gpu/memory.hpp"

namespace saclo::gpu {

/// Raised on use of an unknown stream or event id.
class StreamError : public Error {
 public:
  using Error::Error;
};

/// Identifies one simulated execution stream (a CUDA stream / OpenCL
/// command queue). Stream 0 always exists: the default stream every
/// legacy call lands on.
using StreamId = int;
inline constexpr StreamId kDefaultStream = 0;

/// Identifies a recorded event (a point on a stream's timeline that
/// other streams can wait on — cudaEventRecord/cudaStreamWaitEvent).
using EventId = std::size_t;

/// The bundle of streams an asynchronous pipeline issues into: one per
/// PCIe direction, one for kernels, one standing in for the host
/// thread. Default-initialised all members alias the default stream,
/// which degenerates to fully serial issue.
struct StreamSet {
  StreamId h2d = kDefaultStream;      ///< host-to-device copies
  StreamId compute = kDefaultStream;  ///< kernel launches (+ in-line tiler traffic)
  StreamId d2h = kDefaultStream;      ///< device-to-host copies
  StreamId host = kDefaultStream;     ///< host-side work (tilers, glue)
};

/// The simulated multi-stream clock.
///
/// Each stream is an in-order queue with its own tail time; an
/// operation scheduled on a stream starts at the stream's tail, pushed
/// later by data hazards on the device buffers it touches
/// (read-after-write, write-after-read, write-after-write) and by
/// recorded event waits. Operations on distinct streams overlap unless
/// one of those constraints orders them. The makespan over all streams
/// is the simulated wall clock.
class Timeline {
 public:
  struct Interval {
    double start_us = 0.0;
    double end_us = 0.0;
  };

  /// Creates a new stream with an empty timeline; returns its id.
  StreamId create_stream();
  /// Number of existing streams (including the default stream 0).
  int stream_count() const { return static_cast<int>(tails_.size()); }

  /// Schedules an operation of `duration_us` on `stream`: start =
  /// max(stream tail, hazard times of `reads`/`writes`), then advances
  /// the tail and the hazard state of the touched buffers.
  Interval schedule(StreamId stream, double duration_us,
                    std::span<const BufferHandle> reads = {},
                    std::span<const BufferHandle> writes = {});

  /// Captures the current tail of `stream` as an event.
  EventId record_event(StreamId stream);
  /// Orders `stream` after the recorded event (cudaStreamWaitEvent).
  void wait_event(StreamId stream, EventId event);
  /// Pushes the tail of `stream` to at least `time_us`.
  void wait_until(StreamId stream, double time_us);
  /// The time an event was recorded at.
  double event_us(EventId event) const;

  /// Current tail of one stream / of every stream (device synchronize).
  double tail_us(StreamId stream) const;
  void synchronize();

  /// Latest end time over every scheduled operation (the wall clock).
  double makespan_us() const { return makespan_; }

 private:
  void check_stream(StreamId stream) const;

  struct Hazard {
    double last_write_end_us = 0.0;
    double last_read_end_us = 0.0;
  };

  std::vector<double> tails_{0.0};  // index = StreamId; slot 0 = default stream
  std::vector<double> events_;
  std::map<std::uint64_t, Hazard> hazards_;  // BufferHandle::id -> hazard state
  double makespan_ = 0.0;
};

}  // namespace saclo::gpu
