#pragma once

#include <cstring>
#include <string>

#include "core/ndarray.hpp"
#include "gpu/sim_gpu.hpp"

namespace saclo::gpu::cuda {

/// A typed, shaped device allocation in the CUDA-style runtime (the
/// simulated analogue of a `T*` returned by cudaMalloc plus the shape
/// descriptor the SaC runtime keeps next to it).
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;
  DeviceArray(VirtualGpu& gpu, Shape shape)
      : gpu_(&gpu),
        shape_(std::move(shape)),
        buffer_(gpu.allocator(), shape_.elements() * static_cast<std::int64_t>(sizeof(T))) {}

  const Shape& shape() const { return shape_; }
  bool valid() const { return buffer_.valid(); }
  BufferHandle handle() const { return buffer_.handle(); }

  /// The simulator-side storage (only meaningful when ops executed
  /// functionally wrote to it).
  std::span<T> view() { return gpu_->memory().view<T>(buffer_.handle()); }
  std::span<const T> view() const { return gpu_->memory().view<T>(buffer_.handle()); }

 private:
  VirtualGpu* gpu_ = nullptr;
  Shape shape_;
  DeviceBuffer buffer_;
};

/// CUDA-flavoured façade over the simulator: the vocabulary the SaC
/// backend's generated host code uses (Section VII of the paper —
/// `host2device`, `device2host`, kernel launches).
class Runtime {
 public:
  explicit Runtime(VirtualGpu& gpu) : gpu_(&gpu) {}

  VirtualGpu& gpu() { return *gpu_; }
  const DeviceSpec& spec() const { return gpu_->spec(); }

  template <typename T>
  DeviceArray<T> device_alloc(Shape shape) {
    return DeviceArray<T>(*gpu_, std::move(shape));
  }

  /// The paper's `host2device` instruction.
  template <typename T>
  void host2device(DeviceArray<T>& dst, const NDArray<T>& src, bool execute = true,
                   StreamId stream = kDefaultStream) {
    gpu_->copy_h2d(dst.handle(), std::as_bytes(src.data()), kHtoDOp, execute, true, stream);
  }

  /// The paper's `device2host` instruction.
  template <typename T>
  NDArray<T> device2host(const DeviceArray<T>& src, bool execute = true,
                         StreamId stream = kDefaultStream) {
    NDArray<T> out(src.shape());
    gpu_->copy_d2h(std::as_writable_bytes(out.data()), src.handle(), kDtoHOp, execute, true,
                   stream);
    return out;
  }

  /// Accounts a transfer without moving data (simulated repetition of a
  /// frame loop).
  void account_host2device(std::int64_t bytes, StreamId stream = kDefaultStream) {
    gpu_->account_transfer(bytes, Dir::HostToDevice, kHtoDOp, stream);
  }
  void account_device2host(std::int64_t bytes, StreamId stream = kDefaultStream) {
    gpu_->account_transfer(bytes, Dir::DeviceToHost, kDtoHOp, stream);
  }

  double launch(const KernelLaunch& kernel, bool execute = true,
                StreamId stream = kDefaultStream) {
    return gpu_->launch(kernel, execute, stream);
  }

  /// Frame transfers: mini-SaC values are int64 on the host, but the
  /// paper's pixel data is 32-bit — device frames are stored (and
  /// their PCIe cost modelled) as 4-byte ints.
  void host2device_frame(DeviceArray<std::int32_t>& dst, const NDArray<std::int64_t>& src,
                         bool execute = true, bool account = true,
                         StreamId stream = kDefaultStream) {
    if (execute) {
      std::vector<std::int32_t> staging(static_cast<std::size_t>(src.elements()));
      for (std::int64_t i = 0; i < src.elements(); ++i) {
        staging[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(src[i]);
      }
      gpu_->copy_h2d(dst.handle(), std::as_bytes(std::span<const std::int32_t>(staging)),
                     kHtoDOp, true, account, stream);
    } else if (account) {
      gpu_->account_transfer(src.elements() * 4, Dir::HostToDevice, kHtoDOp, stream,
                             dst.handle());
    }
  }

  NDArray<std::int64_t> device2host_frame(const DeviceArray<std::int32_t>& src,
                                          bool execute = true, bool account = true,
                                          StreamId stream = kDefaultStream) {
    NDArray<std::int64_t> out(src.shape());
    if (execute) {
      std::vector<std::int32_t> staging(static_cast<std::size_t>(out.elements()));
      gpu_->copy_d2h(std::as_writable_bytes(std::span<std::int32_t>(staging)), src.handle(),
                     kDtoHOp, true, account, stream);
      for (std::int64_t i = 0; i < out.elements(); ++i) {
        out[i] = staging[static_cast<std::size_t>(i)];
      }
    } else if (account) {
      gpu_->account_transfer(out.elements() * 4, Dir::DeviceToHost, kDtoHOp, stream,
                             src.handle());
    }
    return out;
  }

  /// Row names used by the CUDA profiler — and by the paper's tables.
  static constexpr const char* kHtoDOp = "memcpyHtoDasync";
  static constexpr const char* kDtoHOp = "memcpyDtoHasync";

 private:
  VirtualGpu* gpu_;
};

}  // namespace saclo::gpu::cuda
