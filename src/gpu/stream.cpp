#include "gpu/stream.hpp"

#include <algorithm>

#include "core/fmt.hpp"

namespace saclo::gpu {

StreamId Timeline::create_stream() {
  tails_.push_back(0.0);
  return static_cast<StreamId>(tails_.size() - 1);
}

void Timeline::check_stream(StreamId stream) const {
  if (stream < 0 || static_cast<std::size_t>(stream) >= tails_.size()) {
    throw StreamError(cat("unknown stream ", stream));
  }
}

Timeline::Interval Timeline::schedule(StreamId stream, double duration_us,
                                      std::span<const BufferHandle> reads,
                                      std::span<const BufferHandle> writes) {
  check_stream(stream);
  double start = tails_[static_cast<std::size_t>(stream)];
  // Read-after-write: reads wait for the last writer of the buffer.
  for (const BufferHandle& h : reads) {
    if (!h.valid()) continue;
    auto it = hazards_.find(h.id);
    if (it != hazards_.end()) start = std::max(start, it->second.last_write_end_us);
  }
  // Write-after-write and write-after-read.
  for (const BufferHandle& h : writes) {
    if (!h.valid()) continue;
    auto it = hazards_.find(h.id);
    if (it != hazards_.end()) {
      start = std::max(start, it->second.last_write_end_us);
      start = std::max(start, it->second.last_read_end_us);
    }
  }
  const double end = start + duration_us;
  tails_[static_cast<std::size_t>(stream)] = end;
  for (const BufferHandle& h : reads) {
    if (h.valid()) hazards_[h.id].last_read_end_us = std::max(hazards_[h.id].last_read_end_us, end);
  }
  for (const BufferHandle& h : writes) {
    if (h.valid()) {
      hazards_[h.id].last_write_end_us = std::max(hazards_[h.id].last_write_end_us, end);
    }
  }
  makespan_ = std::max(makespan_, end);
  return Interval{start, end};
}

EventId Timeline::record_event(StreamId stream) {
  check_stream(stream);
  events_.push_back(tails_[static_cast<std::size_t>(stream)]);
  return events_.size() - 1;
}

void Timeline::wait_event(StreamId stream, EventId event) {
  wait_until(stream, event_us(event));
}

void Timeline::wait_until(StreamId stream, double time_us) {
  check_stream(stream);
  double& tail = tails_[static_cast<std::size_t>(stream)];
  tail = std::max(tail, time_us);
}

double Timeline::event_us(EventId event) const {
  if (event >= events_.size()) throw StreamError(cat("unknown event ", event));
  return events_[event];
}

double Timeline::tail_us(StreamId stream) const {
  check_stream(stream);
  return tails_[static_cast<std::size_t>(stream)];
}

void Timeline::synchronize() {
  for (double& t : tails_) t = std::max(t, makespan_);
}

}  // namespace saclo::gpu
