#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "gpu/memory.hpp"

namespace saclo::serve {

/// Caching device-buffer allocator in the style of CUB's
/// cudaMalloc-wrapping allocator, layered on the simulator's
/// DeviceMemoryPool.
///
/// Blocks are rounded up to power-of-two size classes (min 256 bytes —
/// the pool's alignment). free() never returns memory to the pool; it
/// parks the block on its class's free list, and the next allocate() of
/// the same class reuses it. A frame loop that allocates the same
/// shapes every iteration therefore does raw pool allocations only
/// during warmup — the steady state is all cache hits, which is what
/// keeps a serving fleet off the (real-world, milliseconds-long)
/// cudaMalloc/cudaFree path.
///
/// Reused blocks are zero-filled before they are handed out, so
/// functional results are bit-exact with fresh pool allocations (the
/// simulator zero-initialises, as several pipelines rely on).
///
/// Thread-safe; in the fleet each device's dispatcher owns one
/// instance, while the metrics exporter reads stats() concurrently.
/// Without a cap, mixed-geometry traffic is a slow leak: every size
/// class a job mix ever touched keeps its high-water block count parked
/// forever, pinning whole-device memory against future geometries. A
/// per-size-class cap bounds the parked bytes of each class; free()
/// evicts least-recently-parked blocks back to the pool once a class
/// exceeds it (reuse pops the most-recently-parked end, so eviction
/// takes the coldest blocks first). 0 = uncapped, the historical
/// behavior.
class CachingDeviceAllocator final : public gpu::BufferAllocator {
 public:
  explicit CachingDeviceAllocator(gpu::DeviceMemoryPool& pool,
                                  std::int64_t class_cap_bytes = 0)
      : pool_(&pool), class_cap_bytes_(class_cap_bytes) {}
  ~CachingDeviceAllocator() override;

  CachingDeviceAllocator(const CachingDeviceAllocator&) = delete;
  CachingDeviceAllocator& operator=(const CachingDeviceAllocator&) = delete;

  /// Returns a block of at least `bytes` (its backing store is the full
  /// size class). Prefers a cached block; falls back to the pool, and
  /// on device OOM trims the cache once and retries.
  gpu::BufferHandle allocate(std::int64_t bytes) override;

  /// Parks the block for reuse. Throws DeviceMemoryError on a double
  /// free of a cached handle; handles this allocator never saw are
  /// forwarded to the pool (mixed usage during installation).
  void free(gpu::BufferHandle handle) override;

  /// Releases every cached block back to the pool (cudaDeviceReset's
  /// little sibling). Live blocks are untouched.
  void trim();

  /// Fault-abort path: forcibly parks every live block on its free list
  /// as if its owner had freed it, and returns how many were reclaimed.
  /// The scheduler calls this after a DeviceFault has fully unwound a
  /// job (RAII owners are gone), so anything still live is a leak from
  /// the interrupted frame loop. Outstanding handles to reclaimed
  /// blocks become invalid — freeing one afterwards is a double free.
  std::int64_t reclaim_live();

  /// Rounds up to the allocation size class: 256-byte minimum, then
  /// powers of two.
  static std::int64_t size_class(std::int64_t bytes);

  /// The per-size-class cap on parked bytes (0 = uncapped).
  std::int64_t class_cap_bytes() const { return class_cap_bytes_; }

  struct Stats {
    std::int64_t hits = 0;            ///< allocations served from the cache
    std::int64_t misses = 0;          ///< allocations that hit the raw pool
    std::int64_t frees = 0;           ///< blocks parked for reuse
    std::int64_t trimmed_blocks = 0;  ///< blocks released by trim()
    std::int64_t reclaimed_blocks = 0;  ///< live blocks swept by reclaim_live()
    /// Blocks evicted LRU because their size class exceeded the
    /// per-class cache cap — the counter the autoscale bench watches to
    /// prove mixed-geometry traffic can't pin whole-device memory.
    std::int64_t cap_evictions = 0;
    std::int64_t live_blocks = 0;     ///< handed out, not yet freed
    std::int64_t cached_blocks = 0;   ///< parked on free lists
    std::int64_t live_bytes = 0;      ///< class bytes of live blocks
    std::int64_t cached_bytes = 0;    ///< class bytes parked on free lists
    std::int64_t requested_bytes = 0;  ///< sum of requested sizes, live blocks
    std::int64_t pool_peak_bytes = 0;  ///< underlying pool high-water mark

    double hit_rate() const {
      const std::int64_t total = hits + misses;
      return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
    /// Internal fragmentation of live blocks: the fraction of reserved
    /// class bytes the requests didn't ask for.
    double fragmentation() const {
      return live_bytes > 0
                 ? static_cast<double>(live_bytes - requested_bytes) /
                       static_cast<double>(live_bytes)
                 : 0.0;
    }
  };
  Stats stats() const;

 private:
  gpu::BufferHandle pop_cached(std::int64_t cls);
  /// Evicts least-recently-parked blocks of `cls` until its parked
  /// bytes fit the cap. Caller holds mutex_.
  void enforce_cap_locked(std::int64_t cls);

  gpu::DeviceMemoryPool* pool_;
  std::int64_t class_cap_bytes_ = 0;  // 0 = uncapped
  mutable std::mutex mutex_;
  // class -> pool buffer ids, ordered oldest-parked first: free()
  // push_backs, reuse pops the back (MRU — warmest block), the cap
  // evicts from the front (LRU — coldest block).
  std::map<std::int64_t, std::vector<std::uint64_t>> free_lists_;
  std::set<std::uint64_t> cached_ids_;             // ids parked on any free list
  std::map<std::uint64_t, std::int64_t> live_;     // id -> size class
  std::map<std::uint64_t, std::int64_t> live_req_;  // id -> requested bytes
  Stats stats_;
};

}  // namespace saclo::serve
