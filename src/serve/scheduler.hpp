#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/plan.hpp"
#include "gpu/sim_gpu.hpp"
#include "obs/alerts.hpp"
#include "obs/events.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/allocator.hpp"
#include "serve/job.hpp"
#include "serve/metrics.hpp"
#include "serve/policy.hpp"

namespace saclo::serve {

/// The multi-GPU serving runtime: accepts concurrent downscale jobs
/// through a bounded, backpressured submission queue and schedules them
/// across a fleet of simulated devices.
///
/// Architecture (the host-side orchestration layer every real
/// inference/transcoding stack puts above its devices):
///
///   submit()/try_submit()  -- any thread, blocks when the fleet-wide
///        |                    backlog reaches queue_capacity
///        v  least-loaded placement (cost-model estimate per route)
///   per-device FIFO  -->  dispatcher thread (one per device)
///        |                    owns a VirtualGpu + caching allocator +
///        |                    per-(route, geometry) compiled drivers
///        v
///   std::future<JobResult>   per-job results, timing and device id
///
/// Each job replays the existing pipelines (PR 1's double-buffered
/// multi-stream frame loops) on its device, so fleet results are
/// bit-exact against single-device runs. Devices are only ever touched
/// by their own dispatcher thread; cross-thread state (queues, metrics,
/// allocator stats) is mutex-guarded.
///
/// Fault tolerance: with a fault_plan installed, a device may throw
/// fault::DeviceFault mid-job. The dispatcher then sweeps leaked
/// buffers back into the caching allocator, marks its device degraded
/// (placement avoids it until the cooldown elapses), and re-enqueues
/// the job on the least-loaded healthy device behind a capped
/// exponential backoff — up to max_retries times, after which the
/// job's future carries the DeviceFault. A failed attempt executed
/// nothing externally visible, so the retried job's results stay
/// bit-exact against a fault-free run.
class ServeRuntime {
 public:
  struct Options {
    int devices = 2;
    /// Fleet-wide bound on accepted-but-unfinished jobs; submit()
    /// blocks (and try_submit() fails) once the backlog reaches it.
    std::size_t queue_capacity = 32;
    gpu::DeviceSpec device = gpu::gtx480();
    gpu::HostSpec host = gpu::i7_930();
    unsigned workers_per_device = 1;  ///< thread-pool width for functional kernels
    /// Execution backend every fleet device delegates to (see
    /// gpu/backend.hpp). Results are bit-exact across backends; only
    /// how op durations are produced differs.
    gpu::BackendKind backend = gpu::BackendKind::Sim;
    bool async_streams = true;        ///< per-job double-buffered stream overlap
    bool cache_buffers = true;        ///< install the caching device allocator
    /// Accept jobs but don't dispatch until resume() — deterministic
    /// placement and queue-depth tests.
    bool start_paused = false;

    // -- dynamic batching -----------------------------------------------------
    /// Maximum jobs a dispatcher coalesces into one fused frame loop.
    /// Members must agree on batch_key() (route, geometry, opt level,
    /// channels); they run back to back on the device in one dispatch
    /// round with the inter-member stream barrier elided — one driver
    /// lookup and one queue sweep serve the whole batch, amortizing the
    /// per-job host-side dispatch overhead. Bit-exact vs unbatched, and
    /// makespan-neutral on the simulated timeline (the hazard-driven
    /// stream model is already work-conserving across jobs — a parity
    /// the serve bench gates on). 1 (the default) disables batching.
    int batch_max = 1;
    /// How long a dispatcher holds an underfull batch open waiting for
    /// more same-key arrivals (real milliseconds). 0 coalesces only
    /// what is already queued — no added latency.
    double batch_wait_ms = 0.0;

    // -- multi-tenant SLO scheduling ------------------------------------------
    /// Queue-draining order of the dispatchers (see policy.hpp). Fifo,
    /// the default, is exactly the pre-SLO behavior; priority/edf scan
    /// the whole queue for the best ready job.
    SchedPolicy policy = SchedPolicy::Fifo;
    /// With a non-Fifo policy: let a queued strictly-higher-priority
    /// job displace the running one at the next frame boundary. The
    /// displaced job keeps its completed frames and re-enqueues
    /// least-loaded (the failover re-enqueue path), so results stay
    /// bit-exact and priority inversion is bounded by one frame.
    bool preemption = true;
    /// Let an idle dispatcher pull the policy-worst tail of the busiest
    /// peer queue — the safety net for cost-model estimates that turn
    /// out wrong. Off by default: stealing trades the placement
    /// determinism several tests (and the batching heuristics) rely on.
    bool work_stealing = false;
    /// Per-tenant token-bucket admission: sustained jobs per second per
    /// tenant (burst below). 0 (the default) disables rate limiting.
    /// Over-limit submissions are shed: their future resolves
    /// immediately with a typed ShedError — it never hangs.
    double tenant_rate_limit = 0.0;
    /// Bucket depth of the per-tenant limiter (>= 1 when limiting).
    double tenant_rate_burst = 4.0;
    /// Shed (typed ShedError, jobs_shed metric) instead of blocking
    /// when the fleet backlog is at queue_capacity — overload sheds
    /// honestly instead of stalling the caller.
    bool shed_on_full = false;

    // -- elastic autoscaling --------------------------------------------------
    /// Upper bound of an elastic fleet. 0 (the default) keeps the
    /// historical fixed fleet — scale_up()/scale_down() throw. A value
    /// >= `devices` pre-builds `max_devices` device slots at
    /// construction: the first `devices` start active, the rest sit
    /// inactive (their dispatchers parked, their simulators idle) until
    /// scale_up() activates them. Slots are pre-built so scaling never
    /// races construction — activation is a state flip, not a device
    /// bring-up.
    int max_devices = 0;
    /// Real-time warm-up window after scale_up() during which placement
    /// treats the fresh device like a degraded one: it only receives
    /// jobs when every other active device is also degraded or warming.
    /// A cold device has an empty backlog estimate and would otherwise
    /// instantly absorb the whole queue while its drivers compile —
    /// the p99 spike autoscaling exists to avoid. Cleared lazily by the
    /// same sweep that heals degraded devices. 0 disables.
    double warmup_ms = 0.0;
    /// Per-size-class cap on each device allocator's parked bytes (see
    /// CachingDeviceAllocator): bounds what mixed-geometry traffic can
    /// pin. 0 = uncapped, the historical behavior.
    std::int64_t alloc_class_cap_bytes = 0;

    // -- fault tolerance ------------------------------------------------------
    /// Fault-injection schedule installed on the fleet's devices at
    /// construction (empty = no injection, zero overhead).
    fault::FaultPlan fault_plan;
    /// Per-job failover budget: how many times a DeviceFault-interrupted
    /// job is re-enqueued before its future carries the fault instead.
    int max_retries = 3;
    /// Capped exponential backoff before a retried job may dispatch
    /// again: min(base * 2^(attempt-1), cap) real milliseconds.
    double retry_backoff_base_ms = 0.25;
    double retry_backoff_cap_ms = 4.0;
    /// Real-time cooldown after which a degraded device becomes
    /// eligible for placement again; negative keeps it degraded for the
    /// runtime's lifetime (deterministic tests).
    double degraded_cooldown_ms = 20.0;

    // -- observability --------------------------------------------------------
    /// Capacity of the structured event log (job_admitted, frame_done,
    /// fault, failover, ... as JSONL). 0 disables it entirely: the
    /// dispatch hot path then performs no event work and no allocation.
    std::size_t event_log_capacity = 0;
    /// Stamp every profiled interval with the owning job's trace id and
    /// failover attempt, which is what the fleet-merged Chrome trace
    /// keys its spans and flow arrows on. Two plain stores per job —
    /// kept switchable for the zero-overhead baseline.
    bool trace_jobs = true;
    /// TCP port of the embedded telemetry endpoint (binds 127.0.0.1):
    /// /metrics, /healthz, /readyz, /debug/events, /debug/trace,
    /// /debug/fleet. 0 asks the kernel for an ephemeral port (read it
    /// back via telemetry()->port()). -1, the default, mounts nothing —
    /// no socket, no thread. Every endpoint reads a snapshot taken
    /// under the owning subsystem's own lock, so a live scrape never
    /// touches the dispatch hot path.
    int telemetry_port = -1;
  };

  explicit ServeRuntime(const Options& options);
  /// Finishes every accepted job, then joins the dispatchers.
  ~ServeRuntime();

  ServeRuntime(const ServeRuntime&) = delete;
  ServeRuntime& operator=(const ServeRuntime&) = delete;

  /// Places the job on the least-loaded device and returns its future.
  /// Blocks while the fleet backlog is at capacity (backpressure);
  /// throws ServeError after shutdown().
  std::future<JobResult> submit(JobSpec spec);
  /// Non-blocking submit: nullopt when the backlog is full (the
  /// caller's cue to shed load) or the runtime is shut down.
  std::optional<std::future<JobResult>> try_submit(JobSpec spec);

  /// Starts dispatching when constructed with start_paused.
  void resume();
  /// Blocks until every accepted job completed (resumes if paused).
  void drain();
  /// Stops accepting new jobs, finishes the accepted ones, joins the
  /// dispatcher threads. Idempotent; the destructor calls it.
  void shutdown();

  int device_count() const { return static_cast<int>(devices_.size()); }
  /// Whether the scheduler currently considers the device unhealthy
  /// (an injected fault fired and the cooldown has not elapsed).
  bool device_degraded(int device) const;
  /// Devices currently placement-eligible (== device_count() on a
  /// fixed fleet).
  int active_devices() const;
  /// Whether the slot is active (inactive and draining slots refuse new
  /// placements).
  bool device_active(int device) const;

  // -- elastic autoscaling ----------------------------------------------------
  /// Activates one inactive slot (with warmup_ms > 0 it joins placement
  /// gradually — see Options::warmup_ms) and returns its index. Throws
  /// ServeError on a fixed fleet, at max_devices, or after shutdown().
  int scale_up();
  /// Gracefully retires `device` (< 0 picks the least-backlogged active
  /// device): marks it draining — no new placements, no steals — moves
  /// its queued jobs (in-backoff retries included, gates intact) onto
  /// the survivors, stops its running job at the next frame boundary
  /// (the preemption re-enqueue path, so progress is kept and results
  /// stay bit-exact), sweeps the allocator, then blocks until the slot
  /// retired. Returns the retired index. Throws ServeError on a fixed
  /// fleet, when it would empty the fleet, on a non-active target, or
  /// when shutdown() interrupts the drain.
  int scale_down(int device = -1);
  /// Jobs accepted and not yet dispatched (fleet-wide).
  std::size_t queued_jobs() const;
  /// Jobs accepted and not yet completed (fleet-wide).
  std::size_t inflight_jobs() const;

  const FleetMetrics& metrics() const { return metrics_; }
  /// Fleet-wide bound on accepted-but-unfinished jobs (the backlog the
  /// alert engine's saturation rule measures against).
  std::size_t queue_capacity() const { return options_.queue_capacity; }
  /// The device's caching-allocator counters; throws without
  /// cache_buffers.
  CachingDeviceAllocator::Stats allocator_stats(int device) const;
  /// Cumulative simulated clock of one device.
  double device_sim_clock_us(int device) const;
  /// One device's Chrome trace of everything it ran so far.
  std::string device_trace_json(int device) const;

  /// Text report / JSON export with fresh allocator stats folded in.
  std::string report();
  std::string metrics_json();
  /// Prometheus text exposition with fresh allocator stats folded in.
  std::string metrics_prometheus();

  /// The structured event log, nullptr unless event_log_capacity > 0.
  const obs::EventLog* event_log() const { return event_log_.get(); }
  /// JSONL export of the event log ("" when disabled).
  std::string events_jsonl() const;
  /// Snapshot of the raw events (empty when the log is disabled) — the
  /// critical-path analyzer's second input besides device_traces().
  std::vector<obs::Event> events() const;
  /// Snapshot of every device's recorded intervals (safe while
  /// dispatchers are still recording) — the input the merged trace and
  /// the critical-path analyzer share.
  std::vector<obs::DeviceTrace> device_traces() const;
  /// Fleet-wide merged Chrome trace: every device's spans in one file
  /// (pid = device, tid = stream), instant events from the event log,
  /// and flow arrows linking failover hops across devices.
  std::string merged_trace_json() const;

  /// The embedded telemetry server, nullptr unless
  /// Options::telemetry_port >= 0. Exposed so late-constructed
  /// subsystems (the alert monitor) can mount endpoints on it.
  obs::TelemetryServer* telemetry() const { return telemetry_.get(); }
  /// Alert-engine sink: records one alert_raised/alert_cleared wire
  /// event per transition and refreshes the saclo_alerts_active gauge.
  void on_alert_transitions(const std::vector<obs::AlertTransition>& transitions,
                            std::size_t active_count);

 private:
  struct Pending {
    std::uint64_t id = 0;
    JobSpec spec;
    std::promise<JobResult> promise;
    double estimate_us = 0;
    int attempts = 0;  ///< device faults survived so far (failover count)
    std::chrono::steady_clock::time_point submit_time;
    /// Retry backoff gate: the dispatcher skips the entry until then.
    std::chrono::steady_clock::time_point ready_time;
    /// Absolute deadline on the steady_clock axis in microseconds
    /// (submit + spec.deadline_ms), 0 when the job carries no SLO —
    /// what the edf comparator orders by.
    double deadline_abs_us = 0;
    // Preemption bookkeeping: a displaced job carries its progress with
    // it, so a resumed chunk never recomputes completed frames.
    int next_frame = 0;    ///< first frame the next dispatch issues
    int preemptions = 0;   ///< frame-boundary displacements so far
    apps::OpBreakdown ops_done;   ///< accumulated over completed chunks
    double sim_wall_done_us = 0;  ///< accumulated simulated wall time
    double exec_done_us = 0;      ///< accumulated dispatcher-thread time
    IntArray partial_output;      ///< latest executed frame across chunks
  };

  /// Lifecycle of an elastic slot. Active is the only state placement
  /// considers; Draining refuses new work while the dispatcher finishes
  /// or re-homes what it has, then retires to Inactive.
  enum class DevState { Active, Inactive, Draining };

  struct Device {
    std::unique_ptr<gpu::VirtualGpu> gpu;
    std::unique_ptr<CachingDeviceAllocator> cache;  // after gpu: destroyed first
    std::unique_ptr<fault::FaultInjector> injector;  // referenced by gpu
    std::deque<Pending> queue;       // guarded by mutex_
    double backlog_estimate_us = 0;  // queued + running, guarded by mutex_
    bool degraded = false;           // guarded by mutex_
    std::chrono::steady_clock::time_point degraded_since;  // guarded by mutex_
    DevState state = DevState::Active;  // guarded by mutex_
    /// Raised (under mutex_) when the device starts draining; polled
    /// lock-free by the frame loop's gate so the running job stops at
    /// the next frame boundary.
    std::atomic<bool> drain_flag{false};
    bool warming = false;  // guarded by mutex_ (see Options::warmup_ms)
    std::chrono::steady_clock::time_point warm_since;  // guarded by mutex_
    /// Priority class of the job the dispatcher is running (kIdleClass
    /// when parked). Written under mutex_ at selection; read by
    /// submitters (under mutex_) to decide whether an arrival should
    /// raise the preempt flag.
    std::atomic<int> running_class{kIdleClass};
    /// Raised (under mutex_) when a strictly-higher-priority job waits
    /// on this device; polled lock-free by the frame loop's gate.
    std::atomic<bool> preempt_flag{false};
    std::thread dispatcher;
  };
  static constexpr int kIdleClass = 1 << 20;

  void dispatcher_loop(int index);
  /// Builds and starts the telemetry server (constructor tail; no-op
  /// with telemetry_port < 0).
  void mount_telemetry();
  /// flush=false skips the member's trailing device synchronize so the
  /// next batch member may overlap it (always true for the last member
  /// of a batch and for unbatched jobs). `gate` is the frame-boundary
  /// preemption check handed to the frame loop (empty = ungated). The
  /// result covers the whole job (all chunks) when it ran to
  /// completion; pending.next_frame < spec.frames afterwards means the
  /// gate stopped the chunk and the job must re-enqueue.
  JobResult run_job(Device& dev, int index, Pending& pending, bool flush,
                    const apps::FrameGate& gate);
  std::optional<std::future<JobResult>> submit_impl(JobSpec spec, bool blocking);
  void refresh_allocator_stats();
  /// The policy comparator's view of a queued job.
  SchedKey sched_key(const Pending& pending) const;
  /// Raise `device`'s preempt flag when `priority` outranks the class
  /// it is running (no-op for Fifo or preemption off).
  void signal_preempt_locked(std::size_t device, Priority priority);
  /// Move the policy-worst ready tail of the fullest peer queue onto
  /// `thief`'s queue; false when nothing was stealable.
  bool steal_into_locked(int thief);
  /// A shed submission: resolve the future immediately with the typed
  /// ShedError and count it honestly.
  std::future<JobResult> shed_locked(JobSpec&& spec, ShedReason reason);
  /// Least-loaded healthy device (degraded cooldowns healed lazily
  /// first); falls back to degraded devices when nothing is healthy,
  /// and to `exclude` itself only when it is the whole fleet.
  std::size_t pick_device_locked(int exclude);
  void heal_elapsed_locked();
  int active_devices_locked() const;
  /// Job left the runtime (completed or failed): release its backlog
  /// share and wake waiters.
  void finish_job(Device& dev, double estimate_us);
  /// Records one structured event; a no-op returning immediately (no
  /// lock, no allocation) when the event log is disabled.
  void emit(obs::EventType type, std::uint64_t job, int device, int attempt, std::int64_t arg,
            double t_sim_us);

  Options options_;
  FleetMetrics metrics_;
  obs::TraceClock trace_clock_;
  std::unique_ptr<obs::EventLog> event_log_;
  std::unique_ptr<AdmissionController> admission_;  // guarded by mutex_
  std::vector<std::unique_ptr<Device>> devices_;

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable space_available_;
  std::condition_variable idle_;
  std::condition_variable drain_done_;  ///< a draining device retired
  std::size_t total_queued_ = 0;
  std::size_t total_inflight_ = 0;
  std::uint64_t next_job_id_ = 1;
  bool paused_ = false;
  bool stopping_ = false;
  bool started_serving_ = false;
  std::chrono::steady_clock::time_point serve_start_;
  /// Declared last so it is destroyed first: its handlers capture
  /// `this` and read the members above. shutdown() also stops it
  /// before joining the dispatchers.
  std::unique_ptr<obs::TelemetryServer> telemetry_;
};

}  // namespace saclo::serve
