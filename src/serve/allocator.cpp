#include "serve/allocator.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

#include "core/fmt.hpp"

namespace saclo::serve {

CachingDeviceAllocator::~CachingDeviceAllocator() {
  // Return cached blocks so the pool's accounting ends clean. Live
  // blocks are the caller's bug; leave them to the pool's own checks.
  try {
    trim();
  } catch (...) {
    // Destructor must not throw; a dead pool means nothing to release.
  }
}

std::int64_t CachingDeviceAllocator::size_class(std::int64_t bytes) {
  const std::int64_t min_class = gpu::DeviceMemoryPool::kAlignment;
  if (bytes <= min_class) return min_class;
  return static_cast<std::int64_t>(std::bit_ceil(static_cast<std::uint64_t>(bytes)));
}

gpu::BufferHandle CachingDeviceAllocator::pop_cached(std::int64_t cls) {
  auto it = free_lists_.find(cls);
  if (it == free_lists_.end() || it->second.empty()) return {};
  const std::uint64_t id = it->second.back();
  it->second.pop_back();
  cached_ids_.erase(id);
  return gpu::BufferHandle{id, cls};
}

gpu::BufferHandle CachingDeviceAllocator::allocate(std::int64_t bytes) {
  if (bytes < 0) throw gpu::DeviceMemoryError(cat("allocate(", bytes, ") is negative"));
  const std::int64_t cls = size_class(bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  gpu::BufferHandle block = pop_cached(cls);
  if (block.valid()) {
    ++stats_.hits;
    stats_.cached_blocks -= 1;
    stats_.cached_bytes -= cls;
    // Fresh pool blocks are zero-initialised; recycled ones must look
    // the same or results stop being bit-exact.
    auto raw = pool_->bytes(block);
    std::memset(raw.data(), 0, raw.size());
  } else {
    try {
      block = pool_->allocate(cls);
    } catch (const gpu::DeviceMemoryError&) {
      // Device OOM with a warm cache: give the parked blocks back and
      // retry once (CUB does the same before surfacing cudaErrorMemoryAllocation).
      std::int64_t released = 0;
      for (auto& [list_cls, ids] : free_lists_) {
        for (std::uint64_t id : ids) {
          pool_->free(gpu::BufferHandle{id, list_cls});
          cached_ids_.erase(id);
          ++released;
          stats_.cached_blocks -= 1;
          stats_.cached_bytes -= list_cls;
          stats_.trimmed_blocks += 1;
        }
        ids.clear();
      }
      if (released == 0) throw;
      block = pool_->allocate(cls);
    }
    ++stats_.misses;
  }
  live_.emplace(block.id, cls);
  live_req_.emplace(block.id, bytes);
  stats_.live_blocks += 1;
  stats_.live_bytes += cls;
  stats_.requested_bytes += bytes;
  stats_.pool_peak_bytes = pool_->peak_bytes();
  // Hand out the logical size; the backing store keeps the class size.
  return gpu::BufferHandle{block.id, bytes};
}

void CachingDeviceAllocator::enforce_cap_locked(std::int64_t cls) {
  if (class_cap_bytes_ <= 0) return;
  auto it = free_lists_.find(cls);
  if (it == free_lists_.end()) return;
  std::vector<std::uint64_t>& ids = it->second;
  // Parked bytes of this class = blocks * class size (every block on a
  // class list has exactly the class's backing size).
  while (!ids.empty() &&
         static_cast<std::int64_t>(ids.size()) * cls > class_cap_bytes_) {
    const std::uint64_t id = ids.front();
    ids.erase(ids.begin());  // the least-recently-parked block
    cached_ids_.erase(id);
    pool_->free(gpu::BufferHandle{id, cls});
    stats_.cached_blocks -= 1;
    stats_.cached_bytes -= cls;
    stats_.cap_evictions += 1;
  }
}

void CachingDeviceAllocator::free(gpu::BufferHandle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = live_.find(handle.id);
  if (it == live_.end()) {
    if (cached_ids_.count(handle.id) != 0) {
      throw gpu::DeviceMemoryError(
          cat("double free of device buffer id ", handle.id,
              ": the handle was already recycled into the caching allocator"));
    }
    // Not ours: allocated straight from the pool before this layer was
    // installed. Forward, so mixed usage stays correct.
    pool_->free(handle);
    return;
  }
  const std::int64_t cls = it->second;
  live_.erase(it);
  auto rit = live_req_.find(handle.id);
  const std::int64_t requested = rit != live_req_.end() ? rit->second : 0;
  if (rit != live_req_.end()) live_req_.erase(rit);
  free_lists_[cls].push_back(handle.id);
  cached_ids_.insert(handle.id);
  stats_.frees += 1;
  stats_.live_blocks -= 1;
  stats_.live_bytes -= cls;
  stats_.requested_bytes -= requested;
  stats_.cached_blocks += 1;
  stats_.cached_bytes += cls;
  enforce_cap_locked(cls);
}

void CachingDeviceAllocator::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [cls, ids] : free_lists_) {
    for (std::uint64_t id : ids) {
      pool_->free(gpu::BufferHandle{id, cls});
      cached_ids_.erase(id);
      stats_.cached_blocks -= 1;
      stats_.cached_bytes -= cls;
      stats_.trimmed_blocks += 1;
    }
    ids.clear();
  }
}

std::int64_t CachingDeviceAllocator::reclaim_live() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t reclaimed = 0;
  while (!live_.empty()) {
    const auto it = live_.begin();
    const std::uint64_t id = it->first;
    const std::int64_t cls = it->second;
    live_.erase(it);
    std::int64_t requested = 0;
    if (auto rit = live_req_.find(id); rit != live_req_.end()) {
      requested = rit->second;
      live_req_.erase(rit);
    }
    free_lists_[cls].push_back(id);
    cached_ids_.insert(id);
    stats_.live_blocks -= 1;
    stats_.live_bytes -= cls;
    stats_.requested_bytes -= requested;
    stats_.cached_blocks += 1;
    stats_.cached_bytes += cls;
    stats_.reclaimed_blocks += 1;
    ++reclaimed;
    enforce_cap_locked(cls);
  }
  return reclaimed;
}

CachingDeviceAllocator::Stats CachingDeviceAllocator::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.pool_peak_bytes = pool_->peak_bytes();
  return s;
}

}  // namespace saclo::serve
