#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/alerts.hpp"

namespace saclo::serve {

class ServeRuntime;

/// How the alert monitor samples the fleet.
struct AlertMonitorOptions {
  obs::AlertPolicy policy;
  /// Sampling period of the background thread (real milliseconds).
  /// <= 0 starts no thread: the owner drives evaluation explicitly
  /// through sample_now() — the deterministic-test mode.
  double interval_ms = 25.0;
};

/// The closed loop around the pure AlertEngine: a sampling thread (the
/// Autoscaler discipline) that periodically snapshots a live runtime's
/// metrics, feeds them to the engine, and forwards every transition to
/// the runtime — which records the alert_raised/alert_cleared wire
/// events and refreshes the saclo_alerts_active gauge. When the
/// runtime has a telemetry server, construction also mounts /alerts
/// on it.
///
/// Construction starts the loop; stop() (or the destructor) joins it.
/// Destroy the monitor before the runtime.
class AlertMonitor {
 public:
  AlertMonitor(ServeRuntime& runtime, const AlertMonitorOptions& options);
  ~AlertMonitor();

  AlertMonitor(const AlertMonitor&) = delete;
  AlertMonitor& operator=(const AlertMonitor&) = delete;

  /// Stops the sampling thread and unmounts /alerts. Idempotent.
  void stop();

  /// Takes one sample and evaluates it right now (also what the
  /// background thread calls each period). Returns the transitions
  /// this evaluation produced.
  std::vector<obs::AlertTransition> sample_now();

  /// Alerts currently firing.
  std::vector<obs::ActiveAlert> active() const;
  /// Every transition observed so far, in order.
  std::vector<obs::AlertTransition> transitions() const;
  /// The alert log: one JSON line per transition (what
  /// `saclo-serve --alerts-out` writes and CI archives).
  std::string transitions_jsonl() const;
  /// The /alerts endpoint body: active alerts + transition history.
  std::string alerts_json() const;

 private:
  void loop();
  std::vector<obs::AlertTransition> evaluate_locked(double now_ms);

  ServeRuntime& runtime_;
  AlertMonitorOptions options_;
  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mutex_;
  obs::AlertEngine engine_;                           // guarded by mutex_
  std::vector<obs::AlertTransition> transitions_;     // guarded by mutex_
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace saclo::serve
