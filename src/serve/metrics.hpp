#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "serve/admission.hpp"
#include "serve/allocator.hpp"
#include "serve/job.hpp"

namespace saclo::serve {

/// Thread-safe registry of fleet-wide serving metrics: per-device
/// utilization and queue depth, job latency percentiles, and
/// throughput. The scheduler records into it; reporters snapshot it
/// concurrently and render the text report or the JSON export that
/// sits alongside the profiler's Chrome trace.
class FleetMetrics {
 public:
  explicit FleetMetrics(int devices);

  // -- recording (called by the scheduler) ------------------------------------
  /// Job accepted and placed on `device`, billed to `tenant` (defaults
  /// to the JobSpec default so pre-SLO callers keep working).
  void on_submit(int device, const std::string& tenant = "default");
  void on_dispatch(int device);  ///< job left the queue, runs now
  /// `sim_clock_us` is the device's cumulative simulated clock after
  /// the job — the fleet makespan is the max over devices.
  void on_complete(int device, const JobResult& result, double sim_clock_us);
  void on_failed(int device);
  /// An injected DeviceFault interrupted a job on `device`;
  /// `reclaimed_blocks` is what the allocator sweep took back.
  void on_device_fault(int device, std::int64_t reclaimed_blocks = 0);
  /// A faulted job was re-enqueued from device `from` onto `to`. Counts
  /// a retry always and a failover when the devices differ, and moves
  /// the queue-depth bookkeeping to the new device.
  void on_failover(int from, int to);
  /// Device entered / left the degraded state (scheduler-driven);
  /// degraded wall time accrues between the two.
  void on_degraded(int device);
  void on_healed(int device);
  /// The dispatcher coalesced `size` same-key jobs into one fused frame
  /// loop on `device` (only called with size >= 2 — a batch of one is
  /// just a dispatch).
  void on_batch(int device, int size);
  /// Admission shed a submission from `tenant` before it entered any
  /// queue. Counts as a submission (the honest accounting identity is
  /// completed + failed + shed == submitted) and as a shed, globally
  /// and per tenant.
  void on_shed(const std::string& tenant, ShedReason reason);
  /// An in-flight job was displaced at a frame boundary on `from` and
  /// re-enqueued on `to` (possibly the same device) — moves the
  /// queue-depth bookkeeping like on_failover.
  void on_preempted(int from, int to);
  /// Idle dispatcher `to` stole a queued job from `from`'s queue.
  void on_steal(int from, int to);
  // -- elastic autoscaling ----------------------------------------------------
  /// Marks a device placement-eligible or retired; active wall time
  /// accrues between the transitions (the device-seconds the autoscale
  /// bench compares against a static fleet). Devices start active; the
  /// elastic runtime deactivates its spare slots at construction.
  void set_active(int device, bool active);
  /// scale_up() activated `device`.
  void on_scale_up(int device);
  /// scale_down() started draining `device`, re-homing `rehomed` queued
  /// jobs onto the surviving devices.
  void on_drain_started(int device, int rehomed);
  /// The draining device finished its last job and retired.
  void on_drain_complete(int device);
  /// One job moved from draining `from` to `to` (queue-depth
  /// bookkeeping like on_steal, without counting a steal). `queued` is
  /// false for the drain-gated running job, which had already left
  /// `from`'s queue-depth gauge at dispatch.
  void on_rehomed(int from, int to, bool queued = true);
  /// Real (wall-clock) microseconds since the runtime started serving;
  /// updated by the scheduler so snapshots can compute real throughput.
  void set_elapsed_real_us(double us);
  /// Attach one device's allocator stats to the next snapshot.
  void set_allocator_stats(int device, const CachingDeviceAllocator::Stats& stats);
  // -- live observability -----------------------------------------------------
  /// Identity labels for the `saclo_build_info` gauge (the build's git
  /// SHA and the compiled backend options). Set once by the runtime.
  void set_build_info(std::string sha, std::string backend_opts);
  /// Event-ring drop count, mirrored into `saclo_events_dropped_total`
  /// (the runtime refreshes it before rendering an exposition).
  void set_events_dropped(std::uint64_t dropped);
  /// Alerts currently firing, for the `saclo_alerts_active` gauge.
  void set_active_alerts(int count);

  // -- reading ---------------------------------------------------------------
  struct DeviceSnapshot {
    int device = 0;
    std::int64_t jobs = 0;
    std::int64_t jobs_failed = 0;  ///< jobs whose future carries an exception
    std::int64_t faults = 0;       ///< injected DeviceFaults observed here
    std::int64_t frames = 0;
    bool degraded = false;    ///< currently marked unhealthy by the scheduler
    double degraded_us = 0;   ///< cumulative real time spent degraded
    bool active = true;       ///< placement-eligible (elastic fleets retire slots)
    double active_us = 0;     ///< cumulative real time spent active
    int queue_depth = 0;      ///< queued, not yet dispatched
    int max_queue_depth = 0;  ///< high-water mark
    int running = 0;          ///< 0 or 1 (one dispatcher per device)
    double busy_sim_us = 0;   ///< sum of per-job simulated wall times
    double sim_clock_us = 0;  ///< device's cumulative simulated clock
    /// Share of the fleet's simulated makespan this device was busy:
    /// busy_sim / max over devices of sim_clock. 1.0 = perfectly
    /// load-balanced fleet.
    double utilization = 0;
    bool has_allocator = false;
    CachingDeviceAllocator::Stats allocator;
  };

  struct Snapshot {
    std::int64_t jobs_submitted = 0;
    std::int64_t jobs_completed = 0;
    std::int64_t jobs_failed = 0;
    std::int64_t frames_completed = 0;
    // Fleet health: the failover machinery's counters.
    std::int64_t device_faults = 0;      ///< injected faults across the fleet
    std::int64_t failovers = 0;          ///< retries that moved device
    std::int64_t retries = 0;            ///< faulted jobs re-enqueued (any device)
    std::int64_t buffers_reclaimed = 0;  ///< allocator blocks swept after faults
    int degraded_devices = 0;            ///< currently degraded
    // Dynamic batching: coalesced dispatches and how many jobs rode in
    // them (jobs dispatched alone count in neither).
    std::int64_t batches_formed = 0;
    std::int64_t jobs_batched = 0;
    // Multi-tenant SLO scheduling.
    std::int64_t jobs_shed = 0;        ///< submissions refused by admission
    std::int64_t preemptions = 0;      ///< frame-boundary displacements
    std::int64_t steals = 0;           ///< queued jobs moved to an idle dispatcher
    std::int64_t deadline_misses = 0;  ///< completions past their SLO deadline
    // Elastic autoscaling.
    std::int64_t scale_ups = 0;     ///< devices activated by scale_up()
    std::int64_t scale_downs = 0;   ///< graceful drains started
    std::int64_t jobs_rehomed = 0;  ///< queued jobs moved off draining devices
    int active_devices = 0;         ///< currently placement-eligible
    /// Sum over devices of real seconds spent active — the cost axis an
    /// autoscaled fleet saves against a static-max one.
    double device_seconds = 0;
    /// Cap-evicted allocator blocks summed across devices (see
    /// CachingDeviceAllocator::Stats::cap_evictions).
    std::int64_t alloc_cap_evictions = 0;
    // Live observability plane.
    std::string build_sha;           ///< saclo_build_info{sha=...}
    std::string build_backend_opts;  ///< saclo_build_info{backend_opts=...}
    std::uint64_t events_dropped = 0;  ///< event-ring rejections
    int active_alerts = 0;             ///< alerts currently firing
    double elapsed_real_us = 0;
    double sim_makespan_us = 0;  ///< max over devices of sim_clock_us
    /// Aggregate throughput in frames per second of simulated device
    /// time — the number the device-count sweep scales.
    double throughput_fps_sim = 0;
    /// Frames per second of real wall-clock (functional execution +
    /// scheduling overhead on this host).
    double throughput_fps_real = 0;
    // Real end-to-end job latency (submit -> completion), microseconds.
    // Percentiles come from the bounded log-bucketed histogram, so they
    // sit within one bucket width (~19%) of the exact sample
    // percentile; mean and max are exact.
    double latency_p50_us = 0;
    double latency_p95_us = 0;
    double latency_p99_us = 0;
    double latency_mean_us = 0;
    double latency_max_us = 0;
    // Simulated per-job device time.
    double sim_job_p50_us = 0;
    double sim_job_p99_us = 0;
    /// The full distributions backing the percentiles above, for the
    /// Prometheus exposition and offline analysis.
    obs::LogHistogram latency_hist;
    obs::LogHistogram sim_job_hist;
    obs::LogHistogram batch_size_hist;  ///< sizes of coalesced batches (>= 2)
    /// Real end-to-end latency split by priority class (index =
    /// static_cast<int>(Priority)) — how a policy's protection of the
    /// high class shows up in the exposition.
    std::array<obs::LogHistogram, 3> class_latency_hist;
    /// Per-tenant accounting, sorted by tenant id.
    struct TenantSnapshot {
      std::string tenant;
      std::int64_t submitted = 0;  ///< accepted + shed
      std::int64_t completed = 0;
      std::int64_t shed = 0;
      std::int64_t slo_jobs = 0;  ///< completed jobs that carried a deadline
      std::int64_t slo_met = 0;   ///< of those, completed within it
      /// slo_met / slo_jobs; 1.0 when the tenant never set a deadline.
      double slo_attainment() const {
        return slo_jobs > 0 ? static_cast<double>(slo_met) / static_cast<double>(slo_jobs) : 1.0;
      }
    };
    std::vector<TenantSnapshot> tenants;
    std::vector<DeviceSnapshot> devices;
  };
  Snapshot snapshot() const;

  /// Metrics glossary rendered as a fixed-width text report.
  std::string report() const;
  /// Machine-readable export (BENCH_serve.json embeds one of these).
  std::string json() const;
  /// Prometheus text exposition (counters, gauges and the latency
  /// histograms) — what `saclo-serve --metrics-out` writes.
  std::string prometheus() const;

 private:
  mutable std::mutex mutex_;
  struct DeviceState {
    std::int64_t jobs = 0;
    std::int64_t jobs_failed = 0;
    std::int64_t faults = 0;
    std::int64_t frames = 0;
    bool degraded = false;
    double degraded_accum_us = 0;
    std::chrono::steady_clock::time_point degraded_since{};
    bool active = true;
    double active_accum_us = 0;
    std::chrono::steady_clock::time_point active_since{};
    int queue_depth = 0;
    int max_queue_depth = 0;
    int running = 0;
    double busy_sim_us = 0;
    double sim_clock_us = 0;
    bool has_allocator = false;
    CachingDeviceAllocator::Stats allocator;
  };
  std::vector<DeviceState> devices_;
  std::int64_t submitted_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t failed_ = 0;
  std::int64_t frames_ = 0;
  std::int64_t device_faults_ = 0;
  std::int64_t failovers_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t buffers_reclaimed_ = 0;
  std::string build_sha_;
  std::string build_backend_opts_;
  std::uint64_t events_dropped_ = 0;
  int active_alerts_ = 0;
  double elapsed_real_us_ = 0;
  // Bounded distributions: fixed 128-counter footprint regardless of
  // how many jobs a long-running fleet serves (the former per-job
  // sample vectors grew without bound).
  std::int64_t batches_ = 0;
  std::int64_t jobs_batched_ = 0;
  std::int64_t shed_ = 0;
  std::int64_t preemptions_ = 0;
  std::int64_t steals_ = 0;
  std::int64_t deadline_misses_ = 0;
  std::int64_t scale_ups_ = 0;
  std::int64_t scale_downs_ = 0;
  std::int64_t jobs_rehomed_ = 0;
  obs::LogHistogram latency_hist_;     // real end-to-end latency, us
  obs::LogHistogram sim_job_hist_;     // simulated device time per job, us
  obs::LogHistogram batch_size_hist_;  // coalesced batch sizes
  std::array<obs::LogHistogram, 3> class_latency_hist_;  // by Priority
  struct TenantState {
    std::int64_t submitted = 0;
    std::int64_t completed = 0;
    std::int64_t shed = 0;
    std::int64_t slo_jobs = 0;
    std::int64_t slo_met = 0;
  };
  std::map<std::string, TenantState> tenants_;
};

/// Interpolated percentile of an unsorted sample (q in [0, 1]); 0 on an
/// empty sample. Exposed for the metrics tests.
double percentile(std::vector<double> values, double q);

/// Escapes a string for use inside a Prometheus label value per the
/// text exposition format: backslash, double quote and newline become
/// \\, \" and \n. Tenant ids arrive from the CLI, so they can contain
/// anything.
std::string prom_escape_label_value(const std::string& value);

}  // namespace saclo::serve
