#pragma once

#include <cstdint>
#include <string>

namespace saclo::serve {

/// Priority class of a job. Lower enumerator = more urgent; dispatchers
/// never run a Normal job while a High job is ready on their queue
/// (policies other than Fifo).
enum class Priority : std::uint8_t {
  High = 0,
  Normal = 1,
  Low = 2,
};

const char* priority_name(Priority priority);
/// Parses "high" / "normal" / "low"; throws ServeError on anything else.
Priority parse_priority(const std::string& name);

/// Queue-draining order of the per-device dispatchers.
enum class SchedPolicy : std::uint8_t {
  /// Submission order — the pre-SLO behavior, and the default.
  Fifo,
  /// Strict class order (High before Normal before Low), submission
  /// order within a class.
  Priority,
  /// Class order, then earliest absolute deadline within a class;
  /// deadline-carrying jobs run before best-effort ones of the same
  /// class, submission order breaks the remaining ties.
  Edf,
};

const char* sched_policy_name(SchedPolicy policy);
/// Parses "fifo" / "priority" / "edf"; throws ServeError otherwise.
SchedPolicy parse_sched_policy(const std::string& name);

/// The ordering key a queued job exposes to the policy comparator.
/// `deadline_us` is an absolute timestamp on any monotonic axis (the
/// scheduler uses steady_clock microseconds); 0 means no deadline.
/// `seq` is the submission sequence (the job id), the total-order
/// tiebreak that makes every policy deterministic.
struct SchedKey {
  Priority priority = Priority::Normal;
  double deadline_us = 0;
  std::uint64_t seq = 0;
};

/// Whether `a` dispatches before `b` under `policy`. A strict weak
/// ordering (the seq tiebreak makes it total), so the dispatcher's
/// best-ready scan is deterministic for any queue content.
bool schedules_before(SchedPolicy policy, const SchedKey& a, const SchedKey& b);

}  // namespace saclo::serve
