#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "serve/job.hpp"

namespace saclo::serve {

class ServeRuntime;

/// When and how aggressively the closed loop resizes the fleet.
/// Defaults are tuned for CI-scale replays (tens of milliseconds of
/// control period); production-shaped runs raise interval_ms and the
/// hysteresis counts together.
struct AutoscalePolicy {
  int min_devices = 1;
  int max_devices = 4;
  /// Control period: how often the loop samples signals and steps.
  double interval_ms = 25.0;
  /// Scale up when the queue depth per active device exceeds this...
  double queue_high = 4.0;
  /// ...and down when it falls below this (with no SLO pressure).
  double queue_low = 1.0;
  /// Optional latency trigger: p99 above this also counts as up
  /// pressure. 0 disables.
  double p99_high_ms = 0.0;
  /// Optional SLO trigger: any tenant's attainment below this counts as
  /// up pressure (and vetoes scale-down). 0 disables.
  double slo_low = 0.0;
  /// Hysteresis: this many consecutive pressured periods before acting.
  /// Scale-down demands more periods than scale-up on purpose — adding
  /// capacity late costs SLOs, removing it late only costs
  /// device-seconds.
  int up_periods = 2;
  int down_periods = 6;
  /// Dead time after any action before pressure accumulates again —
  /// the re-homed queue and warm-up transient would otherwise read as
  /// fresh pressure and flap the fleet.
  double cooldown_ms = 150.0;

  void validate() const;
};

/// One control period's observation of the fleet.
struct AutoscaleSignals {
  std::size_t queued = 0;  ///< jobs accepted, not yet dispatched
  int active = 1;          ///< placement-eligible devices
  double p99_us = 0;       ///< real end-to-end latency p99
  /// Minimum SLO attainment across tenants that carry deadlines (1.0
  /// when none do yet).
  double min_slo_attainment = 1.0;
};

enum class ScaleDecision { Hold, Up, Down };
const char* scale_decision_name(ScaleDecision decision);

/// The pure control law: signals in, decision out. No clock, no
/// threads, no runtime — `now_ms` is injected, so the hysteresis and
/// cooldown behavior is unit-testable tick by tick.
class AutoscaleController {
 public:
  explicit AutoscaleController(const AutoscalePolicy& policy);

  /// Steps one control period. Returns Up/Down at most once per
  /// cooldown window, and only after the configured number of
  /// consecutive pressured periods; decisions are already clamped to
  /// [min_devices, max_devices].
  ScaleDecision step(const AutoscaleSignals& signals, double now_ms);

  const AutoscalePolicy& policy() const { return policy_; }
  int up_streak() const { return up_streak_; }
  int down_streak() const { return down_streak_; }

 private:
  AutoscalePolicy policy_;
  int up_streak_ = 0;
  int down_streak_ = 0;
  double last_action_ms_;  // -infinity until the first action
};

/// The closed loop: a control thread sampling a live runtime every
/// interval_ms and applying the controller's decisions through
/// scale_up()/scale_down(). Construction starts it; stop() (or the
/// destructor) joins it.
class Autoscaler {
 public:
  Autoscaler(ServeRuntime& runtime, const AutoscalePolicy& policy);
  ~Autoscaler();

  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// Stops the control loop and joins the thread. Idempotent.
  void stop();

  struct Stats {
    std::int64_t periods = 0;  ///< control periods evaluated
    std::int64_t ups = 0;      ///< scale_up() calls that succeeded
    std::int64_t downs = 0;    ///< scale_down() drains that completed
  };
  Stats stats() const;

 private:
  void loop();

  ServeRuntime& runtime_;
  AutoscaleController controller_;
  mutable std::mutex mutex_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  Stats stats_;
  std::thread thread_;
};

}  // namespace saclo::serve
