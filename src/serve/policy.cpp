#include "serve/policy.hpp"

#include "core/fmt.hpp"
#include "serve/job.hpp"

namespace saclo::serve {

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::High:
      return "high";
    case Priority::Normal:
      return "normal";
    case Priority::Low:
      return "low";
  }
  return "?";
}

Priority parse_priority(const std::string& name) {
  if (name == "high") return Priority::High;
  if (name == "normal") return Priority::Normal;
  if (name == "low") return Priority::Low;
  throw ServeError(cat("unknown priority '", name, "' (expected high, normal or low)"));
}

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::Fifo:
      return "fifo";
    case SchedPolicy::Priority:
      return "priority";
    case SchedPolicy::Edf:
      return "edf";
  }
  return "?";
}

SchedPolicy parse_sched_policy(const std::string& name) {
  if (name == "fifo") return SchedPolicy::Fifo;
  if (name == "priority") return SchedPolicy::Priority;
  if (name == "edf") return SchedPolicy::Edf;
  throw ServeError(cat("unknown policy '", name, "' (expected fifo, priority or edf)"));
}

bool schedules_before(SchedPolicy policy, const SchedKey& a, const SchedKey& b) {
  if (policy != SchedPolicy::Fifo && a.priority != b.priority) {
    return static_cast<int>(a.priority) < static_cast<int>(b.priority);
  }
  if (policy == SchedPolicy::Edf) {
    const bool a_dl = a.deadline_us > 0;
    const bool b_dl = b.deadline_us > 0;
    if (a_dl != b_dl) return a_dl;  // deadline jobs before best-effort peers
    if (a_dl && a.deadline_us != b.deadline_us) return a.deadline_us < b.deadline_us;
  }
  return a.seq < b.seq;
}

}  // namespace saclo::serve
