#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace saclo::serve {

class ServeRuntime;

/// Raised on malformed traffic specs or unparsable trace files — the
/// typed error the CLI surfaces with a clear message instead of a
/// stack trace.
class TrafficError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// One job class in the generated mix: a (tenant, priority, geometry,
/// route) bucket with a sampling weight. The generator draws each
/// arrival's class by weight, so a trace carries a realistic blend of
/// gold/bronze tenants and small/large geometries.
struct TrafficClass {
  std::string name = "default";
  Route route = Route::SacNongeneric;
  int height = 18;  ///< frame geometry (applied over the default filter specs)
  int width = 32;
  int frames = 4;
  int channels = 3;
  int exec_frames = -1;
  int opt_level = 0;
  std::string tenant = "default";
  Priority priority = Priority::Normal;
  double deadline_ms = 0;
  double weight = 1.0;

  void validate() const;
  /// Materialises the JobSpec this class submits (geometry applied and
  /// validated).
  JobSpec job() const;
};

/// The seeded workload model: a diurnal sinusoid base rate with a
/// Poisson burst overlay, sampled into a concrete arrival trace.
///
///   rate(t) = base_rate_hz * (1 + diurnal_amplitude * sin(2*pi*t/period))
///
/// plus bursts arriving as a Poisson process of burst_rate_hz, each
/// dropping a geometrically-sized clump of back-to-back arrivals within
/// burst_width_ms. All sampling is hand-rolled inverse-transform from
/// raw mt19937_64 draws — std::*_distribution is implementation-defined
/// and would make committed traces differ across standard libraries.
struct TrafficSpec {
  std::uint64_t seed = 42;
  double duration_ms = 1000.0;
  double base_rate_hz = 50.0;
  double diurnal_amplitude = 0.6;   ///< 0 = flat; must stay in [0, 1)
  double diurnal_period_ms = 500.0;
  double burst_rate_hz = 2.0;       ///< bursts per second (0 disables bursts)
  double burst_size_mean = 6.0;     ///< geometric mean arrivals per burst
  double burst_width_ms = 5.0;      ///< burst arrivals spread over this window
  std::vector<TrafficClass> classes;

  void validate() const;

  /// The committed-CI mix: gold (high priority, tight deadline) and
  /// bronze (low priority, loose deadline) tenants over two geometries.
  static TrafficSpec ci_default();

  /// Parses the compact CLI grammar, e.g.
  ///   "seed=7,duration_ms=2000,base_rate_hz=80,burst_rate_hz=4"
  /// Unset keys keep the ci_default() classes and defaults above.
  static TrafficSpec parse(const std::string& text);
};

/// One arrival of the sampled trace: when (trace milliseconds from
/// start) and what to submit.
struct TrafficArrival {
  double t_ms = 0;
  std::string class_name;
  JobSpec spec;
};

/// A materialised trace: the spec it was sampled from plus the sorted
/// arrivals. JSON round-trips exactly, so CI replays a committed file
/// byte-for-byte instead of trusting generation stability.
struct TrafficTrace {
  TrafficSpec spec;
  std::vector<TrafficArrival> arrivals;

  std::string to_json() const;
  /// Parses to_json() output; throws TrafficError with the offending
  /// context on malformed input.
  static TrafficTrace from_json(const std::string& text);
};

/// Samples the spec into a trace. Deterministic: the same spec (seed
/// included) yields the identical trace on every platform.
TrafficTrace generate_trace(const TrafficSpec& spec);

/// What a replay observed end to end.
struct ReplayStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;   ///< futures that carried an exception (non-shed)
  std::int64_t shed = 0;     ///< admission/backpressure sheds (typed ShedError)
  std::uint64_t checksum = 0;  ///< FNV-1a over completed outputs, submission order
  double elapsed_ms = 0;     ///< real wall time of the replay (submit -> all done)
};

/// Replays the trace against a live runtime through the normal
/// admission path (try_submit — overload sheds honestly instead of
/// distorting the arrival schedule by blocking). speed > 1 compresses
/// the timeline (arrival t/speed), so CI replays a 10 s trace in 1 s.
/// Returns once every submitted future resolved.
ReplayStats replay_trace(ServeRuntime& runtime, const TrafficTrace& trace,
                         double speed = 1.0);

}  // namespace saclo::serve
